"""LEC every example design and catalogue IP — the formal CI gate.

Runs the SAT-based logic equivalence checker over the full synthesis
pipeline (RTL vs lowered, optimized and mapped netlists) for the designs
built by the example scripts and every IP in the catalogue, writes one
JSON report, and exits nonzero on any counterexample or inconclusive
cone.

It then runs the prover's self-test: a seeded mutation rewires one gate
input in a mapped netlist, the checker *must* find a counterexample, and
that counterexample *must* reproduce on the lockstep gate-level
simulator.  A prover that passes broken hardware is worse than none.

Usage::

    python examples/prove_designs.py [report.json]
    python examples/prove_designs.py --mutate [report.json]
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.formal import (  # noqa: E402
    check_lec,
    lec_flow,
    mutate_netlist,
    replay_counterexamples,
)
from repro.ip.catalog import catalogue, generate  # noqa: E402
from repro.pdk import get_pdk  # noqa: E402
from repro.synth import synthesize  # noqa: E402

from quickstart import build_counter  # noqa: E402
from research_node_access import build_research_datapath  # noqa: E402
from tiny_soc import build_soc  # noqa: E402


def example_modules():
    yield "examples/quickstart", build_counter()
    yield "examples/research_node_access", build_research_datapath()
    yield "examples/tiny_soc", build_soc()
    for name in catalogue():
        yield f"ip/{name}", generate(name).module


def prove_all(library):
    """LEC gate: every design must prove equivalent at every stage."""
    designs = []
    failed = []
    for name, module in example_modules():
        synth = synthesize(module, library)
        report = lec_flow(module, synth)
        stages = " ".join(
            f"{stage}={'ok' if check.equivalent else check.cones[0].status}"
            for stage, check in report.checks.items()
        )
        verdict = "PROVED" if report.passed else "FAIL"
        print(f"{name:35s} {verdict:6s} {stages}")
        for cex in report.counterexamples:
            print(f"  counterexample: {cex}")
        if not report.passed:
            failed.append(name)
        designs.append({
            "design": name,
            "passed": report.passed,
            "report": json.loads(report.to_json()),
        })
    return designs, failed


def must_fail_mutated(library):
    """Prover self-test: a mutated netlist must yield a replayable cex."""
    module = generate("counter").module
    synth = synthesize(module, library)
    for seed in range(16):
        mutant, description = mutate_netlist(synth.mapped, seed=seed)
        result = check_lec(module, mutant)
        if result.equivalent:
            continue  # this seed's rewire was functionally benign
        print(f"mutation detected (seed {seed}): {description}")
        # One packed batch replays every witness at once (a lane each).
        cexes = result.counterexamples
        for cex, mismatch in zip(
            cexes, replay_counterexamples(module, mutant, cexes)
        ):
            if mismatch is None:
                print(f"  cex does NOT reproduce in simulation: {cex}")
                return False
            print(f"  cex reproduces in simulation: {mismatch}")
        return True
    print("no mutation seed produced a detectable fault")
    return False


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("-")]
    mutate = "--mutate" in argv
    report_path = args[0] if args else None
    library = get_pdk("edu130").library

    designs, failed = prove_all(library)
    guard_ok = must_fail_mutated(library) if mutate else None

    if report_path:
        payload = {
            "designs": designs,
            "passed": not failed,
            "failed": failed,
        }
        if guard_ok is not None:
            payload["mutation_guard"] = guard_ok
        directory = os.path.dirname(report_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(report_path, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nJSON report written to {report_path}")

    if failed:
        print(f"\nLEC FAILED for: {', '.join(failed)}")
        return 1
    if guard_ok is False:
        print("\nmutation guard FAILED: prover accepted broken hardware")
        return 1
    print(f"\nall {len(designs)} designs proved equivalent at every stage")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
