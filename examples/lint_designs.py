"""Lint every example design and catalogue IP — the CI quality gate.

Runs the full static-analysis pass (RTL + mapped netlist) over the
designs built by the example scripts and every IP in the catalogue,
merges the verdicts into one JSON report, and exits nonzero if any
design has an unwaived ``error``-severity finding.  Warnings and info
findings are reported but never gate — the same contract as
``python -m repro lint``.

Usage::

    python examples/lint_designs.py [report.json]
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.ip.catalog import catalogue, generate  # noqa: E402
from repro.lint import lint_design  # noqa: E402
from repro.pdk import get_pdk  # noqa: E402
from repro.synth import synthesize  # noqa: E402

from quickstart import build_counter  # noqa: E402
from research_node_access import build_research_datapath  # noqa: E402
from tiny_soc import build_soc  # noqa: E402


def example_modules():
    yield "examples/quickstart", build_counter()
    yield "examples/research_node_access", build_research_datapath()
    yield "examples/tiny_soc", build_soc()
    for name in catalogue():
        yield f"ip/{name}", generate(name).module


def main(argv):
    report_path = argv[1] if len(argv) > 1 else None
    library = get_pdk("edu130").library

    designs = []
    failed = []
    for name, module in example_modules():
        mapped = synthesize(module, library).mapped
        report = lint_design(module, mapped=mapped)
        counts = report.counts()
        verdict = "clean" if report.clean else "FAIL"
        print(f"{name:35s} {verdict:6s} {counts['error']} errors, "
              f"{counts['warning']} warnings, {counts['info']} info")
        for finding in report.errors:
            print(f"  error: {finding.rule} at "
                  f"{finding.target}.{finding.location}: {finding.message}")
        if not report.clean:
            failed.append(name)
        designs.append({
            "design": name,
            "clean": report.clean,
            "counts": counts,
            "report": json.loads(report.to_json()),
        })

    if report_path:
        with open(report_path, "w") as handle:
            json.dump({"designs": designs,
                       "clean": not failed,
                       "failed": failed}, handle, indent=2)
        print(f"\nJSON report written to {report_path}")

    if failed:
        print(f"\nlint FAILED for: {', '.join(failed)}")
        return 1
    print(f"\nall {len(designs)} designs lint clean (no error findings)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
