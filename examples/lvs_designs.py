"""GDS-in signoff for every example design — the layout CI gate.

For each design built by the example scripts and every IP in the
catalogue: synthesize, implement, stream out GDSII, then treat those
*bytes* as the only source of truth — re-extract the netlist from
geometry alone (``repro.extract``), LVS it net-by-net against the
mapped netlist and prove equivalence with the formal LEC miter.  Writes
one JSON report and exits nonzero on any mismatch.

With ``--mutate`` it also runs the trojan drill: for every trojan class
(:data:`repro.extract.TROJAN_KINDS`) a seeded layout mutation is
planted in the counter's GDS and the check *must* fail.  A layout
signoff that passes a trojaned mask is worse than none.

Usage::

    python examples/lvs_designs.py [report.json]
    python examples/lvs_designs.py --mutate [report.json]
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))
sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.extract import TROJAN_KINDS, mutate_gds, run_lvs  # noqa: E402
from repro.ip.catalog import catalogue, generate  # noqa: E402
from repro.layout import build_chip_gds, write_gds  # noqa: E402
from repro.pdk import get_pdk  # noqa: E402
from repro.pnr import implement  # noqa: E402
from repro.synth import synthesize  # noqa: E402

from quickstart import build_counter  # noqa: E402
from research_node_access import build_research_datapath  # noqa: E402
from tiny_soc import build_soc  # noqa: E402


def example_modules():
    yield "examples/quickstart", build_counter()
    yield "examples/research_node_access", build_research_datapath()
    yield "examples/tiny_soc", build_soc()
    for name in catalogue():
        yield f"ip/{name}", generate(name).module


def lvs_all(pdk):
    """Signoff gate: every design's GDS bytes must extract and verify."""
    designs = []
    failed = []
    for name, module in example_modules():
        mapped = synthesize(module, pdk.library).mapped
        data = write_gds(build_chip_gds(implement(mapped, pdk)))
        report = run_lvs(data, mapped, pdk)
        verdict = "CLEAN" if report.clean else "FAIL"
        print(f"{name:35s} {verdict:6s} {report.summary()}")
        for mismatch in report.mismatches[:5]:
            print(f"  {mismatch}")
        if not report.clean:
            failed.append(name)
        designs.append({
            "design": name,
            "gds_bytes": len(data),
            "report": report.to_dict(),
        })
    return designs, failed


def must_fail_trojaned(pdk):
    """Trojan drill: every mutation class must be caught.

    Some seeds are inapplicable to a given layout (e.g. no via to
    delete); seeds are tried in order until one applies.  An applicable
    mutant that passes LVS is a gate failure.
    """
    module = generate("counter").module
    mapped = synthesize(module, pdk.library).mapped
    data = write_gds(build_chip_gds(implement(mapped, pdk)))
    drills = []
    all_caught = True
    for kind in TROJAN_KINDS:
        caught = None
        for seed in range(16):
            try:
                mutant, description = mutate_gds(data, seed=seed, kind=kind)
            except ValueError:
                continue
            report = run_lvs(mutant, mapped, pdk)
            caught = not report.clean
            print(f"trojan {kind:12s} seed={seed} "
                  f"{'CAUGHT' if caught else 'MISSED'}: {description}")
            drills.append({
                "kind": kind,
                "seed": seed,
                "caught": caught,
                "description": description,
                "mismatches": len(report.mismatches),
            })
            break
        if caught is None:
            print(f"trojan {kind:12s} not applicable to this layout")
            all_caught = False
        elif not caught:
            all_caught = False
    return drills, all_caught


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("-")]
    mutate = "--mutate" in argv
    report_path = args[0] if args else None
    pdk = get_pdk("edu130")

    designs, failed = lvs_all(pdk)
    drills, guard_ok = must_fail_trojaned(pdk) if mutate else ([], None)

    if report_path:
        payload = {
            "designs": designs,
            "passed": not failed,
            "failed": failed,
        }
        if guard_ok is not None:
            payload["trojan_drills"] = drills
            payload["trojan_guard"] = guard_ok
        directory = os.path.dirname(report_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(report_path, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"report written to {report_path}")

    if failed:
        print(f"LVS gate FAILED for: {', '.join(failed)}")
        return 1
    if guard_ok is False:
        print("trojan drill FAILED: a planted layout trojan passed LVS")
        return 1
    print(f"LVS gate passed: {len(designs)} designs verified from GDS bytes")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
