"""A TinyTapeout-style classroom: many student designs, one shuttle.

Recreates the scenario from Section II / Recommendation 8 (beginner
tier): a class of students each pick a small IP, the hub runs the locked
template flow for them on the open 180 nm node, and all designs share one
sponsored MPW run.  The script prints the shuttle manifest, the cost per
student and the inevitable turnaround-vs-course-calendar clash (E5).

Run:  python examples/tinytapeout_classroom.py
"""

from repro.core import (
    AccessTier,
    EnablementHub,
    ShuttleProgram,
    ShuttleProject,
    User,
)
from repro.ip import generate
from repro.pdk import get_pdk

CLASS_ROSTER = [
    ("ada", "counter", {"width": 8}),
    ("grace", "pwm", {"width": 8}),
    ("edsger", "gray_counter", {"width": 8}),
    ("alan", "lfsr", {"width": 8}),
    ("barbara", "seven_seg", {}),
    ("donald", "priority_encoder", {"width": 8}),
]

COURSE_LENGTH_DAYS = 105


def main() -> None:
    hub = EnablementHub()
    pdk = get_pdk("edu180")
    shuttle = ShuttleProgram(
        pdk, runs_per_year=6, capacity_mm2=20.0,
        sponsorship_fund_eur=50_000.0,
    )

    print(f"classroom shuttle on {pdk.name} "
          f"({pdk.node.feature_nm:.0f} nm, open PDK: {pdk.is_open})\n")

    rows = []
    for student, ip_name, params in CLASS_ROSTER:
        hub.enroll(User(name=student, institution="uni-europe"),
                   AccessTier.BEGINNER)
        ip = hub.fetch_ip(ip_name, **params)
        tb = ip.verify(cycles=200)
        record = hub.run_design(student, ip.module, "edu180",
                                clock_period_ps=20_000.0)
        quote = shuttle.submit(
            ShuttleProject(
                name=f"{student}_{ip_name}",
                owner=student,
                area_mm2=max(0.05, record.result.physical.die_area_mm2),
                sponsored=True,
            )
        )
        rows.append((student, ip_name, tb.passed, record.result, quote))

    print(f"{'student':10s} {'ip':18s} {'tb':5s} {'cells':>6s} "
          f"{'die mm2':>9s} {'fmax MHz':>9s} {'seat EUR':>9s}")
    for student, ip_name, tb_ok, result, quote in rows:
        print(
            f"{student:10s} {ip_name:18s} {'PASS' if tb_ok else 'FAIL':5s} "
            f"{result.ppa.cell_count:6d} {result.physical.die_area_mm2:9.4f} "
            f"{result.ppa.fmax_mhz:9.1f} {quote.seat_cost_eur:9.2f}"
        )

    run = shuttle.runs[rows[0][4].run_index]
    quote = rows[0][4]
    print(f"\nshuttle run #{run.index}: launches day {run.launch_day}, "
          f"{run.used_mm2:.2f}/{run.capacity_mm2:.0f} mm2 filled "
          f"({100 * run.fill_fraction:.1f}%)")
    print(f"chips back on day {quote.chips_back_day} "
          f"(fab {pdk.terms.fab_turnaround_days} + "
          f"packaging {pdk.terms.packaging_days} days)")
    if not shuttle.meets_deadline(quote, COURSE_LENGTH_DAYS):
        late = quote.chips_back_day - COURSE_LENGTH_DAYS
        print(f"-> the course ends on day {COURSE_LENGTH_DAYS}: silicon "
              f"arrives {late} days AFTER the course — the paper's "
              "turnaround problem (Section III-C), reproduced.")
    print(f"\nsharing factor vs a dedicated mask set: "
          f"{shuttle.sharing_factor(1.0):.0f}x cheaper")
    print(f"sponsorship fund remaining: "
          f"{shuttle.sponsorship_fund_eur:.2f} EUR")


if __name__ == "__main__":
    main()
