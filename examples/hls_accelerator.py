"""HLS accelerator study: raising the abstraction level (Rec 4, E10).

A dot-product/FIR kernel is written once as four lines of Python and
compiled through the HLS flow under different resource budgets, then the
winners go through full synthesis and FPGA prototyping.  The script shows
the latency/area trade-off curve that scheduling under resource
constraints produces, and the productivity ratio HLS buys.

Run:  python examples/hls_accelerator.py
"""

from repro.analytics import measure_hls_productivity
from repro.fpga import get_device, lut_map
from repro.hls import compile_function, run_hls_module
from repro.pdk import get_pdk
from repro.synth import lower, optimize, synthesize


def fir8(x0, x1, x2, x3, x4, x5, x6, x7):
    """8-tap FIR with symmetric coefficients — the HLS source."""
    acc = x0 * 2 + x1 * 5
    acc = acc + x2 * 9 + x3 * 12
    acc = acc + x4 * 12 + x5 * 9
    acc = acc + x6 * 5 + x7 * 2
    return acc


SAMPLE = {f"x{i}": (i * 37 + 11) % 200 for i in range(8)}


def main() -> None:
    pdk = get_pdk("edu130")
    golden = fir8(**SAMPLE) & 0xFFFF

    print("resource-constrained scheduling (same 4-line Python source):\n")
    print(f"{'multipliers':>11s} {'adders':>7s} {'latency':>8s} "
          f"{'cells':>6s} {'area um2':>9s}")
    for muls, adds in ((1, 1), (2, 2), (4, 4), (8, 8)):
        hls = compile_function(
            fir8, resources={"mul": muls, "addsub": adds}, width=16
        )
        assert run_hls_module(hls, SAMPLE) == golden
        synth = synthesize(hls.module, pdk.library)
        print(f"{muls:11d} {adds:7d} {hls.latency:8d} "
              f"{len(synth.mapped.cells):6d} {synth.mapped.area_um2():9.1f}")

    print("\nproductivity (E10): Python source vs generated RTL vs gates")
    record = measure_hls_productivity(
        fir8, pdk.library, resources={"mul": 2}, width=16
    )
    print(f"  HLS source lines:        {record.hls_lines}")
    print(f"  generated RTL lines:     {record.rtl_lines} "
          f"({record.rtl_lines_per_hls_line:.1f}x)")
    print(f"  mapped gates:            {record.gate_count} "
          f"({record.gates_per_hls_line:.1f} per HLS line)")
    print(f"  schedule latency:        {record.latency_cycles} cycles")

    print("\nFPGA prototype of the same accelerator (E9 partial coverage):")
    hls = compile_function(fir8, resources={"mul": 2}, width=16)
    netlist, _ = optimize(lower(hls.module))
    for device_name in ("edu-ice40", "edu-big"):
        mapping = lut_map(netlist, get_device(device_name))
        report = mapping.report()
        print(f"  {device_name:10s} LUTs={report['luts']:5d} "
              f"FFs={report['ffs']:4d} depth={report['depth']:2d} "
              f"fits={report['fits']} fmax={report['fmax_mhz']:.1f} MHz")
    print("\n(The FPGA path stops here: no CTS, no DRC, no GDSII — the "
          "partial flow coverage of Section III-B.)")


if __name__ == "__main__":
    main()
