"""Talent-pipeline what-if analysis (Section III-A, Recommendations 1-3).

Simulates the European chip-designer supply against growing demand and
compares the paper's three intervention families individually and
coordinated — the E7 experiment as an interactive script.

Run:  python examples/talent_pipeline.py
"""

from repro.analytics import (
    SCENARIOS,
    required_graduate_multiplier,
    simulate_pipeline,
)


def main() -> None:
    print("European chip-design talent pipeline, 2025-2036\n")

    baseline = simulate_pipeline()
    print("baseline trajectory (no interventions):")
    print(f"{'year':>6s} {'graduates':>10s} {'designers':>10s} "
          f"{'demand':>10s} {'gap':>10s}")
    for record in baseline.records[::2]:
        print(f"{record.year:6d} {record.new_graduates:10.0f} "
              f"{record.designers:10.0f} {record.demand:10.0f} "
              f"{record.gap:10.0f}")

    print("\nintervention scenarios (final-year shortage):")
    print(f"{'scenario':16s} {'final gap':>10s} {'gap closed':>11s}")
    for name, interventions in SCENARIOS.items():
        result = simulate_pipeline(interventions=interventions)
        closed = result.gap_closed_year()
        print(f"{name:16s} {result.final_gap:10.0f} "
              f"{closed if closed else 'never':>11}")

    multiplier = required_graduate_multiplier()
    print(f"\nto close the gap by 2036, the graduate flow must grow "
          f"{multiplier:.1f}x —")
    print("no single lever achieves that; the coordinated scenario "
          "(Recommendations 1+2+3 together) comes closest, which is the "
          "paper's concluding argument.")


if __name__ == "__main__":
    main()
