"""Emerging technologies: chiplets and RRAM (paper Sections I, III-D).

The paper's introduction names the frontier where universities can lead:
"novel computing paradigms like neuromorphic computing, new devices like
resistive RAM (RRAM), integration techniques like chiplets".  This
example runs both models: the chiplet-vs-monolithic yield economics that
drive 2.5D integration, and an RRAM crossbar computing a small neural
layer with realistic device non-idealities.

Run:  python examples/emerging_tech.py
"""

import numpy as np

from repro.analog import RramCrossbar, RramDeviceModel
from repro.analytics import (
    chiplet_cost,
    comparison_table,
    crossover_area_mm2,
    die_yield,
)


def chiplet_story() -> None:
    print("=== chiplets: why mix-and-match wins at scale (III-D) ===\n")
    print(f"{'system mm2':>10s} {'mono yield':>11s} {'mono $':>9s} "
          f"{'chiplet $':>10s} {'winner':>11s}")
    for row in comparison_table():
        print(f"{row['system_mm2']:10.0f} {row['mono_yield']:11.3f} "
              f"{row['mono_cost']:9.2f} {row['chiplet_cost']:10.2f} "
              f"{row['winner']:>11s}")
    crossover = crossover_area_mm2(n_chiplets=4)
    print(f"\ncrossover at ~{crossover:.0f} mm2: beyond it, known-good-die "
          "yield pays for the interposer and D2D overhead.")
    print(f"(an 800 mm2 monolithic die yields only "
          f"{die_yield(800):.0%}; a 220 mm2 chiplet yields "
          f"{die_yield(220):.0%})")
    split = chiplet_cost(800.0, 4)
    print(f"4-chiplet 800 mm2 system: {split.good_unit_cost:.2f} USD/good "
          f"unit, detail: {split.detail}")


def rram_story() -> None:
    print("\n=== RRAM crossbar: one analog MAC per device (Section I) ===\n")
    rng = np.random.default_rng(42)
    weights = rng.uniform(0, 1, (16, 8))  # a 16->8 neural layer
    inputs = rng.uniform(0, 1, 16)
    exact = weights.T @ inputs

    print(f"{'levels':>7s} {'variation':>10s} {'stuck %':>8s} "
          f"{'rms error':>10s} {'energy pJ':>10s}")
    for levels, sigma, stuck in (
        (64, 0.0, 0.0), (16, 0.0, 0.0), (4, 0.0, 0.0),
        (64, 0.2, 0.0), (64, 0.0, 0.05),
    ):
        device = RramDeviceModel(levels=levels, variation_sigma=sigma,
                                 stuck_fraction=stuck)
        crossbar = RramCrossbar(16, 8, device=device, seed=7)
        crossbar.program(weights)
        measured = crossbar.mvm_weights(inputs)
        rms = float(np.sqrt(np.mean((measured - exact) ** 2)))
        energy = crossbar.energy_per_mvm_j() * 1e12
        print(f"{levels:7d} {sigma:10.2f} {100 * stuck:8.1f} "
              f"{rms:10.4f} {energy:10.3f}")
    print("\n128 multiply-accumulates happen in one analog read — the "
          "efficiency promise; the error rows show why device research "
          "(the university frontier) is what gates it.")


if __name__ == "__main__":
    chiplet_story()
    rram_story()
