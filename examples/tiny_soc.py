"""TinySoC: an open processor + peripherals through the whole flow.

The paper credits open processor IP (the PULP cores, Section II) with
enabling a research ecosystem.  This example assembles a miniature SoC
from the toolkit's own catalogue — the TinyCPU core running a real
program, a PWM peripheral driven by the CPU output, and a seven-segment
decoder showing the low nibble — then takes it through the complete
RTL→GDSII flow and writes every collateral a student would archive:
waveforms, Verilog, flow reports, DEF and GDSII.

Run:  python examples/tiny_soc.py
"""

from repro.core import OPEN, FlowOptions, full_report, run_flow
from repro.hdl import ModuleBuilder, to_verilog
from repro.ip import assemble, generate_cpu, make_pwm, make_seven_seg, run_program
from repro.layout import from_physical, write_def
from repro.pdk import get_pdk
from repro.sim import Simulator, VcdWriter

PROGRAM = """
    LDI 0
    ADD 9
    ADD 9
    ADD 9
    ADD 9
    ADD 9          ; 9 * 5 = 45 by repeated addition
    OUT            ; drive the peripherals
spin:
    SUB 1
    JNZ spin       ; count down to zero
    HALT
"""


def build_soc():
    cpu = generate_cpu(assemble(PROGRAM), name="cpu0")
    pwm = make_pwm(width=8).module
    sevenseg = make_seven_seg().module

    b = ModuleBuilder("tinysoc")
    run = b.input("run", 1)
    cpu_out = b.instance("u_cpu", cpu, run=run)
    pwm_out = b.instance("u_pwm", pwm, duty=cpu_out["out"])
    seg_out = b.instance("u_seg", sevenseg, digit=cpu_out["out"][3:0])
    b.output("led", pwm_out["out"])
    b.output("segments", seg_out["segments"])
    b.output("halted", cpu_out["halted_out"])
    b.output("result", cpu_out["out"])
    return b.build()


def main() -> None:
    reference = run_program(assemble(PROGRAM))
    print(f"reference interpreter: out={reference['out']}, "
          f"trace={reference['trace']}")

    soc = build_soc()
    sim = Simulator(soc)
    vcd = VcdWriter(signals=["result", "halted", "led"])
    sim.attach_tracer(vcd)
    sim.set("run", 1)
    cycles = 0
    while not sim.get("halted") and cycles < 500:
        sim.step()
        cycles += 1
    print(f"RTL simulation: halted after {cycles} cycles, "
          f"result={sim.get('result')} "
          f"(matches reference: {sim.get('result') == reference['out']})")
    vcd.save("tinysoc.vcd")

    with open("tinysoc.v", "w") as handle:
        handle.write(to_verilog(soc))

    pdk = get_pdk("edu130")
    result = run_flow(soc, pdk,
                      FlowOptions(preset=OPEN, clock_period_ps=4_000.0))
    print("\n" + result.summary())

    with open("tinysoc.rpt", "w") as handle:
        handle.write(full_report(result))
    with open("tinysoc.def", "w") as handle:
        handle.write(write_def(from_physical(result.physical)))
    with open("tinysoc.gds", "wb") as handle:
        handle.write(result.gds_bytes)

    print("\ncollaterals written: tinysoc.v (RTL), tinysoc.vcd (waves), "
          "tinysoc.rpt (reports), tinysoc.def (placement), "
          "tinysoc.gds (masks)")
    print(f"SoC: {result.ppa.cell_count} cells, "
          f"{result.physical.die_area_mm2 * 1e6:.0f} um2 die, "
          f"fmax {result.ppa.fmax_mhz:.0f} MHz, "
          f"{result.ppa.total_power_uw:.1f} uW")


if __name__ == "__main__":
    main()
