"""Quickstart: describe hardware, verify it, take it to GDSII.

The end-to-end "enablement" experience the paper argues universities
need: one script from RTL to a signed-off layout on an open PDK.

Run:  python examples/quickstart.py
"""

from repro.core import OPEN, FlowOptions, run_flow
from repro.hdl import ModuleBuilder, mux, to_verilog
from repro.pdk import get_pdk
from repro.sim import Simulator, VcdWriter


def build_counter(width: int = 8):
    """An enabled counter, written in the HCL frontend."""
    b = ModuleBuilder("counter")
    en = b.input("en", 1)
    count = b.register("count", width)
    count.next = mux(en, count + 1, count)
    b.output("q", count)
    return b.build()


def main() -> None:
    module = build_counter()

    # 1. Functional verification with waveforms.
    sim = Simulator(module)
    vcd = VcdWriter()
    sim.attach_tracer(vcd)
    sim.set("en", 1)
    sim.step(10)
    assert sim.get("q") == 10
    vcd.save("counter.vcd")
    print("simulation: counted to", sim.get("q"), "(waveform: counter.vcd)")

    # 2. RTL collateral.
    print("\n--- generated Verilog ---")
    print(to_verilog(module))

    # 3. The full flow on the open 130 nm PDK.
    pdk = get_pdk("edu130")
    result = run_flow(
        module, pdk, FlowOptions(preset=OPEN, clock_period_ps=2_000.0)
    )
    print("--- flow summary ---")
    print(result.summary())
    for report in result.steps:
        print(f"  {report.step.value:28s} ok={report.ok} "
              f"({report.runtime_s * 1000:.1f} ms)")

    print("\n--- PPA ---")
    for key, value in result.ppa.as_row().items():
        print(f"  {key:12s} {value}")
    print("\ntiming:", result.timing.summary())
    print("power: ", result.power.summary())
    print("drc:   ", result.drc.summary())

    with open("counter.gds", "wb") as handle:
        handle.write(result.gds_bytes)
    print(f"\nwrote counter.gds ({len(result.gds_bytes)} bytes of real GDSII)")


if __name__ == "__main__":
    main()
