"""Analog sizing lab: the task with "no FPGA alternative" (III-B).

The paper singles out analog design: component sizing "demands
meticulous attention and cannot be easily automated".  This example runs
the toolkit's common-source amplifier sizer across a gain sweep, shows
the bias-point search each target requires, and finishes with the RC
transient lab every analog course starts with.

Run:  python examples/analog_sizing.py
"""

import math

from repro.analog import Circuit, analyze_common_source, size_common_source


def main() -> None:
    print("common-source amplifier sizing (vdd=1.8 V, R_load=20 kOhm)\n")
    print(f"{'target |Av|':>11s} {'W/L':>8s} {'Id uA':>8s} "
          f"{'Vout V':>7s} {'|Av|':>6s} {'steps':>6s}")
    for target in (2.0, 4.0, 6.0, 8.0):
        design = size_common_source(target_gain=target)
        print(f"{target:11.1f} {design.w_over_l:8.2f} "
              f"{design.drain_current * 1e6:8.1f} "
              f"{design.drain_voltage:7.3f} {design.gain:6.2f} "
              f"{design.iterations:6d}")
    print("\nevery row is a bisection search over verified operating "
          "points — sizing is iteration, not a formula (Section III-B).")

    print("\nmanual sweep: what happens when a student overdrives W/L")
    print(f"{'W/L':>6s} {'region':>11s} {'Vout V':>7s} {'|Av|':>6s}")
    for w_over_l in (5, 20, 80, 320):
        design = analyze_common_source(w_over_l, 20_000.0, 0.7)
        print(f"{w_over_l:6d} {design.region:>11s} "
              f"{design.drain_voltage:7.3f} {design.gain:6.2f}")
    print("-> gain rises with W/L until the output collapses into triode: "
          "the classic headroom trap.")

    print("\nRC time-constant lab (R=1 kOhm, C=1 uF, tau=1 ms):")
    circuit = Circuit("rc")
    circuit.vsource("vin", "in", 1.0)
    circuit.resistor("r", "in", "out", 1_000.0)
    circuit.capacitor("c", "out", "0", 1e-6)
    waves = circuit.transient(duration_s=5e-3, step_s=1e-5)
    for k in (1, 2, 3, 5):
        measured = waves["out"][k * 100]
        ideal = 1 - math.exp(-k)
        print(f"  t={k} tau: v={measured:.4f} V (ideal {ideal:.4f})")


if __name__ == "__main__":
    main()
