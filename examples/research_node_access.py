"""Advanced-node research: the access gauntlet and the node gap (III-C).

A PhD student needs an advanced node for a research datapath.  The script
walks the legal/administrative gauntlet the paper describes for
commercial PDKs, shows how open nodes have none of it, and quantifies the
node gap (E12): the same RTL, pushed through the full flow on all three
nodes, with the open-vs-commercial preset gap (E4) on top.

Run:  python examples/research_node_access.py
"""

from repro.core import (
    COMMERCIAL,
    OPEN,
    FlowOptions,
    ResidencyStatus,
    User,
    evaluate_access,
    run_flow,
)
from repro.hdl import ModuleBuilder
from repro.pdk import get_pdk, list_pdks


def build_research_datapath():
    """A multiply-accumulate pipeline — the research workload."""
    b = ModuleBuilder("mac_pipe")
    a = b.input("a", 8)
    w = b.input("w", 8)
    product = b.register("product", 16)
    product.next = a * w
    acc = b.register("acc", 16)
    acc.next = (acc + product).trunc(16)
    b.output("y", acc)
    return b.build()


def main() -> None:
    student = User(
        name="phd_student",
        institution="eth-lund-rptu",
        residency=ResidencyStatus.DOMESTIC,
    )

    print("=== access gauntlet (Section III-C) ===\n")
    for name in list_pdks():
        pdk = get_pdk(name)
        decision = evaluate_access(student, pdk)
        print(f"{name} ({pdk.node.feature_nm:.0f} nm, "
              f"{'open' if pdk.is_open else 'commercial'}): "
              f"{'GRANTED' if decision.granted else 'BLOCKED'}")
        for blocker in decision.blockers:
            print(f"    - {blocker}")

    print("\nclearing the gauntlet for edu045 (NDA, tape-out history, "
          "funding, isolated IT)...")
    student.signed_ndas.add("edu045")
    student.completed_tapeouts = 2
    student.has_secured_funding = True
    student.has_fixed_project_description = True
    student.has_isolated_it = True
    assert evaluate_access(student, get_pdk("edu045")).granted
    print("access granted.\n")

    module = build_research_datapath()
    print("=== node gap (E12): same RTL on every node ===\n")
    print(f"{'node':8s} {'preset':11s} {'cells':>6s} {'die mm2':>9s} "
          f"{'fmax MHz':>9s} {'power uW':>9s}")
    for name in ("edu180", "edu130", "edu045"):
        pdk = get_pdk(name)
        for preset in (OPEN, COMMERCIAL):
            result = run_flow(
                module, pdk,
                FlowOptions(preset=preset, clock_period_ps=3_000.0),
            )
            row = result.ppa.as_row()
            print(f"{name:8s} {preset.name:11s} {row['cells']:6d} "
                  f"{row['die_mm2']:9.5f} {row['fmax_mhz']:9.1f} "
                  f"{row['power_uw']:9.2f}")

    print("\nReading the table:")
    print(" - smaller nodes are faster and denser (the research pull toward")
    print("   advanced nodes that open PDKs cannot satisfy, Section III-C);")
    print(" - the commercial preset beats the open one on fmax at equal")
    print("   function (the PPA gap of Section III-D, experiment E4).")


if __name__ == "__main__":
    main()
