"""FPGA device models and K-LUT technology mapping.

Section III-B: "FPGAs offer an alternative for digital design [but] only
partially cover the design flow."  This package makes that claim
measurable: the same gate netlist can be mapped to LUTs and placed on an
FPGA array, and :func:`flow_coverage` reports which ASIC flow steps the
FPGA path exercises (experiment E9).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..synth.netlist import GateNetlist


@dataclass(frozen=True)
class FpgaDevice:
    """A simple LUT-based FPGA."""

    name: str
    lut_inputs: int  # K
    num_luts: int
    num_ffs: int
    lut_delay_ps: float
    routing_delay_ps: float  # per LUT level, the dominant FPGA delay


#: A small educational device catalogue (loosely iCE40/ECP5 class).
DEVICES = {
    "edu-ice40": FpgaDevice("edu-ice40", 4, 5_280, 5_280, 450.0, 600.0),
    "edu-ecp5": FpgaDevice("edu-ecp5", 4, 24_000, 24_000, 380.0, 520.0),
    "edu-big": FpgaDevice("edu-big", 6, 100_000, 100_000, 350.0, 480.0),
}


def get_device(name: str) -> FpgaDevice:
    if name not in DEVICES:
        raise KeyError(f"unknown device {name!r}; available: {sorted(DEVICES)}")
    return DEVICES[name]


@dataclass
class LutMapping:
    """Result of K-LUT covering a gate netlist."""

    device: FpgaDevice
    luts: int
    ffs: int
    depth: int  # LUT levels on the longest path
    #: net -> the input cut (set of nets) of the LUT rooted there.
    cuts: dict[int, frozenset[int]] = field(default_factory=dict)

    @property
    def fits(self) -> bool:
        return self.luts <= self.device.num_luts and self.ffs <= self.device.num_ffs

    @property
    def utilization(self) -> float:
        return self.luts / self.device.num_luts

    @property
    def fmax_mhz(self) -> float:
        if self.depth == 0:
            return 1e6  # purely sequential / wire-only design
        path_ps = self.depth * (
            self.device.lut_delay_ps + self.device.routing_delay_ps
        )
        return 1e6 / path_ps

    def report(self) -> dict[str, object]:
        return {
            "device": self.device.name,
            "luts": self.luts,
            "ffs": self.ffs,
            "depth": self.depth,
            "fits": self.fits,
            "utilization": round(self.utilization, 4),
            "fmax_mhz": round(self.fmax_mhz, 2),
        }


def lut_map(netlist: GateNetlist, device: FpgaDevice) -> LutMapping:
    """Greedy K-feasible cut covering (FlowMap-flavoured heuristic).

    Walking in topological order, each gate tries to absorb its fanins'
    cuts; if the merged cut exceeds K inputs, the largest fanin cuts are
    kept as LUT roots and their outputs become cut inputs.
    """
    k = device.lut_inputs
    gate_outputs = {g.output for g in netlist.gates}
    cut: dict[int, frozenset[int]] = {}
    level: dict[int, int] = {}

    def leaf_cut(net: int) -> frozenset[int]:
        return frozenset((net,))

    for gate in netlist.topo_gates():
        merged: set[int] = set()
        for net in gate.inputs:
            if net in gate_outputs:
                merged |= cut.get(net, leaf_cut(net))
            else:
                merged.add(net)
        if len(merged) <= k:
            cut[gate.output] = frozenset(merged)
            level[gate.output] = max(
                (level.get(n, 0) for n in gate.inputs), default=0
            )
            # Level only rises when the cut closes (a LUT boundary), which
            # is decided by the consumers; approximate by keeping the max
            # fanin level here and bumping at roots below.
        else:
            # Close the fanin cuts: this gate starts a new LUT.
            cut[gate.output] = frozenset(gate.inputs)
            level[gate.output] = 1 + max(
                (level.get(n, 0) for n in gate.inputs), default=0
            )

    # Roots: nets feeding outputs, flip-flops, or more than one cut.
    roots: set[int] = set()
    for nets in netlist.outputs.values():
        roots.update(n for n in nets if n in gate_outputs)
    for ff in netlist.dffs:
        if ff.d in gate_outputs:
            roots.add(ff.d)
    # Nets used as cut leaves by chosen roots become roots themselves.
    work = list(roots)
    chosen: set[int] = set()
    while work:
        net = work.pop()
        if net in chosen or net not in gate_outputs:
            continue
        chosen.add(net)
        for leaf in cut[net]:
            if leaf in gate_outputs and leaf not in chosen:
                work.append(leaf)

    # LUT depth: iterative post-order over the chosen-LUT DAG.
    lut_level: dict[int, int] = {}
    for root in chosen:
        stack = [(root, False)]
        while stack:
            net, expanded = stack.pop()
            if net in lut_level:
                continue
            leaves = [l for l in cut[net] if l in chosen]
            if expanded:
                lut_level[net] = 1 + max(
                    (lut_level[l] for l in leaves), default=0
                )
            else:
                stack.append((net, True))
                stack.extend((l, False) for l in leaves if l not in lut_level)
    depth = max(lut_level.values(), default=0)

    return LutMapping(
        device=device,
        luts=len(chosen),
        ffs=len(netlist.dffs),
        depth=depth,
        cuts={net: cut[net] for net in chosen},
    )


#: The ASIC flow steps (matching :mod:`repro.core.steps`) and whether the
#: FPGA prototyping path covers them — the paper's partial-coverage claim.
FPGA_STEP_COVERAGE = {
    "specification": True,
    "rtl_design": True,
    "functional_simulation": True,
    "synthesis": True,
    "technology_mapping": True,  # LUT mapping instead of cells
    "floorplanning": False,
    "placement": True,  # array placement, but no standard-cell skills
    "clock_tree_synthesis": False,  # prebuilt clock networks
    "routing": True,  # segmented FPGA routing
    "static_timing_analysis": True,
    "power_analysis": True,
    "design_rule_check": False,  # no mask geometry
    "gds_export": False,
    "tapeout": False,
}


def flow_coverage() -> dict[str, bool]:
    """Which ASIC flow steps the FPGA path covers (experiment E9)."""
    return dict(FPGA_STEP_COVERAGE)


def coverage_fraction() -> float:
    covered = sum(1 for v in FPGA_STEP_COVERAGE.values() if v)
    return covered / len(FPGA_STEP_COVERAGE)
