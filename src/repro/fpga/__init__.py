"""FPGA prototyping path: devices, LUT mapping, flow-coverage analysis."""

from .place import FpgaPlacement, place_on_array
from .device import (
    DEVICES,
    FPGA_STEP_COVERAGE,
    FpgaDevice,
    LutMapping,
    coverage_fraction,
    flow_coverage,
    get_device,
    lut_map,
)

__all__ = [
    "DEVICES",
    "FPGA_STEP_COVERAGE",
    "FpgaDevice",
    "FpgaPlacement",
    "LutMapping",
    "coverage_fraction",
    "flow_coverage",
    "get_device",
    "lut_map",
    "place_on_array",
]
