"""FPGA array placement: LUTs onto a logic-cell grid.

Completes the FPGA prototyping path's physical story: mapped LUTs are
placed on a square array with a greedy-swap wirelength minimizer (a
VPR-flavoured toy), and the router demand is summarized as an estimated
channel width — the number every FPGA architecture paper reports.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..synth.netlist import GateNetlist
from .device import FpgaDevice, LutMapping


@dataclass
class FpgaPlacement:
    """LUT positions on the array plus congestion estimates."""

    device: FpgaDevice
    grid: int  # array is grid x grid logic cells
    positions: dict[int, tuple[int, int]]  # LUT root net -> (col, row)
    wirelength: float = 0.0
    channel_width: int = 0
    swaps_accepted: int = 0

    def report(self) -> dict[str, object]:
        return {
            "grid": f"{self.grid}x{self.grid}",
            "luts_placed": len(self.positions),
            "wirelength": round(self.wirelength, 1),
            "channel_width": self.channel_width,
            "swaps_accepted": self.swaps_accepted,
        }


def _connections(netlist: GateNetlist, mapping: LutMapping) -> list[tuple[int, int]]:
    """LUT-to-LUT edges: cut leaves that are themselves LUT roots."""
    edges = []
    for root, cut in mapping.cuts.items():
        for leaf in cut:
            if leaf in mapping.cuts:
                edges.append((leaf, root))
    return edges


def _wirelength(edges, positions) -> float:
    total = 0.0
    for a, b in edges:
        (xa, ya), (xb, yb) = positions[a], positions[b]
        total += abs(xa - xb) + abs(ya - yb)
    return total


def place_on_array(
    netlist: GateNetlist,
    mapping: LutMapping,
    passes: int = 4,
    seed: int = 1,
) -> FpgaPlacement:
    """Place the LUT mapping on the smallest square array that fits.

    Initial placement is topological-order raster scan; refinement is
    greedy pairwise swapping that only keeps improving moves.
    """
    roots = sorted(mapping.cuts)
    grid = max(2, math.ceil(math.sqrt(max(1, len(roots)))))
    slots = [(col, row) for row in range(grid) for col in range(grid)]
    positions = {root: slots[i] for i, root in enumerate(roots)}
    edges = _connections(netlist, mapping)

    rng = random.Random(seed)
    accepted = 0
    cost = _wirelength(edges, positions)
    for _ in range(passes):
        for _ in range(len(roots)):
            if len(roots) < 2:
                break
            a, b = rng.sample(roots, 2)
            positions[a], positions[b] = positions[b], positions[a]
            new_cost = _wirelength(edges, positions)
            if new_cost < cost:
                cost = new_cost
                accepted += 1
            else:
                positions[a], positions[b] = positions[b], positions[a]

    # Channel width estimate: peak number of edges crossing any vertical
    # grid boundary, the standard bisection-style demand proxy.
    channel = 0
    for boundary in range(1, grid):
        crossing = sum(
            1
            for a, b in edges
            if min(positions[a][0], positions[b][0]) < boundary
            <= max(positions[a][0], positions[b][0])
        )
        channel = max(channel, crossing)

    return FpgaPlacement(
        device=mapping.device,
        grid=grid,
        positions=positions,
        wirelength=cost,
        channel_width=channel,
        swaps_accepted=accepted,
    )
