"""Analog substrate: components, nodal analysis, amplifier sizing."""

from .circuit import AnalogError, Circuit, OperatingPoint
from .components import (
    Capacitor,
    CurrentSource,
    Nmos,
    Resistor,
    VoltageSource,
)
from .rram import RramCrossbar, RramDeviceModel, mvm_error
from .sizing import (
    CommonSourceDesign,
    analyze_common_source,
    build_common_source,
    size_common_source,
)

__all__ = [
    "AnalogError",
    "Capacitor",
    "Circuit",
    "CommonSourceDesign",
    "CurrentSource",
    "Nmos",
    "OperatingPoint",
    "Resistor",
    "RramCrossbar",
    "RramDeviceModel",
    "VoltageSource",
    "analyze_common_source",
    "build_common_source",
    "mvm_error",
    "size_common_source",
]
