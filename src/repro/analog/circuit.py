"""Nodal analysis: DC operating point and linear RC transient.

The DC solver writes one KCL equation per free node and solves the
(nonlinear, because of MOSFETs) system with damped Newton iteration via
:func:`scipy.optimize.fsolve`.  The transient solver handles linear RC
networks with backward Euler — enough for the time-constant labs of an
introductory analog course.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.optimize import fsolve

from .components import (
    Capacitor,
    CurrentSource,
    Nmos,
    Resistor,
    VoltageSource,
)

GROUND = "0"


class AnalogError(Exception):
    """Raised for malformed circuits or solver failures."""


@dataclass
class OperatingPoint:
    """DC solution: node voltages and per-device currents."""

    voltages: dict[str, float]
    device_currents: dict[str, float]
    converged: bool

    def v(self, node: str) -> float:
        if node == GROUND:
            return 0.0
        return self.voltages[node]


@dataclass
class Circuit:
    """A flat analog circuit."""

    name: str
    resistors: list[Resistor] = field(default_factory=list)
    capacitors: list[Capacitor] = field(default_factory=list)
    vsources: list[VoltageSource] = field(default_factory=list)
    isources: list[CurrentSource] = field(default_factory=list)
    mosfets: list[Nmos] = field(default_factory=list)

    # -- construction -------------------------------------------------------

    def resistor(self, name, a, b, ohms) -> Resistor:
        component = Resistor(name, a, b, ohms)
        self.resistors.append(component)
        return component

    def capacitor(self, name, a, b, farads) -> Capacitor:
        component = Capacitor(name, a, b, farads)
        self.capacitors.append(component)
        return component

    def vsource(self, name, positive, volts) -> VoltageSource:
        component = VoltageSource(name, positive, volts)
        self.vsources.append(component)
        return component

    def isource(self, name, a, b, amps) -> CurrentSource:
        component = CurrentSource(name, a, b, amps)
        self.isources.append(component)
        return component

    def nmos(self, name, drain, gate, source, w_over_l, **params) -> Nmos:
        component = Nmos(name, drain, gate, source, w_over_l, **params)
        self.mosfets.append(component)
        return component

    # -- topology ---------------------------------------------------------------

    def nodes(self) -> list[str]:
        """All non-ground nodes, fixed-voltage nodes included."""
        found: set[str] = set()
        for r in self.resistors:
            found.update((r.a, r.b))
        for c in self.capacitors:
            found.update((c.a, c.b))
        for v in self.vsources:
            found.add(v.positive)
        for i in self.isources:
            found.update((i.a, i.b))
        for m in self.mosfets:
            found.update((m.drain, m.gate, m.source))
        found.discard(GROUND)
        return sorted(found)

    def _fixed(self) -> dict[str, float]:
        fixed: dict[str, float] = {}
        for source in self.vsources:
            if source.positive in fixed:
                raise AnalogError(
                    f"node {source.positive!r} driven by two voltage sources"
                )
            fixed[source.positive] = source.volts
        return fixed

    # -- DC solution ------------------------------------------------------------

    def dc_operating_point(self, guess: float = 0.5) -> OperatingPoint:
        """Solve the DC operating point."""
        fixed = self._fixed()
        free = [n for n in self.nodes() if n not in fixed]

        def voltages_from(x: np.ndarray) -> dict[str, float]:
            v = {GROUND: 0.0, **fixed}
            for node, value in zip(free, x):
                v[node] = float(value)
            return v

        def kcl(x: np.ndarray) -> np.ndarray:
            v = voltages_from(x)
            residual = {node: 0.0 for node in free}

            def inject(node: str, current: float) -> None:
                if node in residual:
                    residual[node] += current

            for r in self.resistors:
                current = (v[r.b] - v[r.a]) / r.ohms
                inject(r.a, current)
                inject(r.b, -current)
            for s in self.isources:
                inject(s.a, -s.amps)
                inject(s.b, s.amps)
            for m in self.mosfets:
                vgs = v[m.gate] - v[m.source]
                vds = v[m.drain] - v[m.source]
                current = m.ids(vgs, max(0.0, vds))
                inject(m.drain, -current)
                inject(m.source, current)
            return np.array([residual[node] for node in free])

        if free:
            x0 = np.full(len(free), guess)
            solution, _info, ier, _msg = fsolve(kcl, x0, full_output=True)
            converged = ier == 1 and bool(
                np.all(np.abs(kcl(solution)) < 1e-9)
            )
        else:
            solution = np.array([])
            converged = True

        v = voltages_from(solution)
        currents: dict[str, float] = {}
        for r in self.resistors:
            currents[r.name] = (v[r.a] - v[r.b]) / r.ohms
        for m in self.mosfets:
            currents[m.name] = m.ids(
                v[m.gate] - v[m.source], max(0.0, v[m.drain] - v[m.source])
            )
        for s in self.isources:
            currents[s.name] = s.amps
        voltages = {node: v[node] for node in self.nodes()}
        return OperatingPoint(voltages, currents, converged)

    # -- linear transient ---------------------------------------------------

    def transient(
        self, duration_s: float, step_s: float,
        initial: dict[str, float] | None = None,
    ) -> dict[str, list[float]]:
        """Backward-Euler transient for linear RC circuits.

        MOSFETs are not supported here (DC only); raises if present.
        """
        if self.mosfets:
            raise AnalogError("transient supports linear RC circuits only")
        if step_s <= 0 or duration_s <= 0:
            raise AnalogError("duration and step must be positive")
        fixed = self._fixed()
        free = [n for n in self.nodes() if n not in fixed]
        index = {node: i for i, node in enumerate(free)}
        n = len(free)
        steps = int(round(duration_s / step_s))

        v_now = {GROUND: 0.0, **fixed}
        for node in free:
            v_now[node] = (initial or {}).get(node, 0.0)

        waves: dict[str, list[float]] = {node: [v_now[node]] for node in free}
        for _ in range(steps):
            g = np.zeros((n, n))
            rhs = np.zeros(n)

            for r in self.resistors:
                conductance = 1.0 / r.ohms
                a, b = r.a, r.b
                for node, other in ((a, b), (b, a)):
                    if node not in index:
                        continue
                    row = index[node]
                    g[row, row] += conductance
                    if other in index:
                        g[row, index[other]] -= conductance
                    else:
                        rhs[row] += conductance * ({GROUND: 0.0, **fixed}).get(other, 0.0)
            for c in self.capacitors:
                conductance = c.farads / step_s
                a, b = c.a, c.b
                v_c = v_now[a] if a != GROUND else 0.0
                v_c -= v_now[b] if b != GROUND else 0.0
                for node, other, sign in ((a, b, 1.0), (b, a, -1.0)):
                    if node not in index:
                        continue
                    row = index[node]
                    g[row, row] += conductance
                    if other in index:
                        g[row, index[other]] -= conductance
                    else:
                        rhs[row] += conductance * ({GROUND: 0.0, **fixed}).get(other, 0.0)
                    rhs[row] += sign * conductance * v_c
            for s in self.isources:
                if s.a in index:
                    rhs[index[s.a]] -= s.amps
                if s.b in index:
                    rhs[index[s.b]] += s.amps

            solution = np.linalg.solve(g, rhs)
            for node in free:
                v_now[node] = float(solution[index[node]])
                waves[node].append(v_now[node])
        return waves
