"""Analog circuit components.

Section III-B: "Analog design lacks viable alternatives like FPGAs.
Tasks such as component sizing or manual layout demand meticulous
attention and cannot be easily automated."  The analog package gives the
toolkit a minimal but real analog substrate — resistors, capacitors,
sources and square-law MOSFETs over a nodal-analysis solver — so the
sizing experience the paper describes can be taught (and its partial
automation demonstrated) inside the same repository.

Conventions: node ``"0"`` is ground; every component contributes its
branch current into the KCL equations of its terminal nodes.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Resistor:
    name: str
    a: str
    b: str
    ohms: float

    def __post_init__(self):
        if self.ohms <= 0:
            raise ValueError(f"{self.name}: resistance must be positive")

    def current_into_a(self, va: float, vb: float) -> float:
        return (vb - va) / self.ohms


@dataclass(frozen=True)
class Capacitor:
    name: str
    a: str
    b: str
    farads: float

    def __post_init__(self):
        if self.farads <= 0:
            raise ValueError(f"{self.name}: capacitance must be positive")


@dataclass(frozen=True)
class VoltageSource:
    """Ideal DC source from node ``positive`` to ground."""

    name: str
    positive: str
    volts: float


@dataclass(frozen=True)
class CurrentSource:
    """Ideal DC current pushed from node ``a`` into node ``b``."""

    name: str
    a: str
    b: str
    amps: float


@dataclass(frozen=True)
class Nmos:
    """Square-law NMOS transistor (source at the lower potential).

    Model parameters: ``k`` is the process transconductance
    ``mu_n * C_ox`` in A/V^2, ``vth`` the threshold, ``lam`` the channel
    length modulation in 1/V; geometry is the W/L ratio.
    """

    name: str
    drain: str
    gate: str
    source: str
    w_over_l: float
    k: float = 200e-6
    vth: float = 0.5
    lam: float = 0.05

    def __post_init__(self):
        if self.w_over_l <= 0:
            raise ValueError(f"{self.name}: W/L must be positive")

    def ids(self, vgs: float, vds: float) -> float:
        """Drain current for the given terminal voltages (vds >= 0)."""
        vov = vgs - self.vth
        if vov <= 0:
            return 0.0  # cutoff (subthreshold ignored)
        beta = self.k * self.w_over_l
        if vds < vov:  # triode
            return beta * (vov * vds - 0.5 * vds * vds)
        return 0.5 * beta * vov * vov * (1.0 + self.lam * (vds - vov))

    def gm(self, vgs: float, vds: float) -> float:
        """Small-signal transconductance at the operating point."""
        vov = vgs - self.vth
        if vov <= 0:
            return 0.0
        beta = self.k * self.w_over_l
        if vds < vov:
            return beta * vds
        return beta * vov * (1.0 + self.lam * (vds - vov))

    def rout(self, vgs: float, vds: float) -> float:
        """Small-signal output resistance (1 / (lambda * Id))."""
        current = self.ids(vgs, vds)
        if current <= 0 or self.lam <= 0:
            return float("inf")
        return 1.0 / (self.lam * current)

    def region(self, vgs: float, vds: float) -> str:
        vov = vgs - self.vth
        if vov <= 0:
            return "cutoff"
        return "triode" if vds < vov else "saturation"
