"""Analog sizing: the common-source amplifier study.

The paper's Section III-B holds up analog component sizing as the task
that "demands meticulous attention and cannot be easily automated".
This module automates the *textbook* part of it: size a resistor-loaded
common-source NMOS stage for a target small-signal gain and bias point,
then verify the result against the nonlinear DC solver.  The iteration
count and residual error the sizer reports make the paper's point — even
the simplest stage takes a search, not a formula.
"""

from __future__ import annotations

from dataclasses import dataclass

from .circuit import Circuit
from .components import Nmos


@dataclass
class CommonSourceDesign:
    """A sized common-source amplifier with its verified operating point."""

    w_over_l: float
    load_ohms: float
    vgs_bias: float
    vdd: float
    drain_voltage: float
    drain_current: float
    gain: float  # small-signal |Av| = gm * (R_load || rout)
    region: str
    iterations: int

    @property
    def meets_headroom(self) -> bool:
        """Transistor saturated and output near mid-rail."""
        return self.region == "saturation" and (
            0.2 * self.vdd < self.drain_voltage < 0.8 * self.vdd
        )


def build_common_source(
    w_over_l: float, load_ohms: float, vgs: float, vdd: float = 1.8,
    **mos_params,
) -> Circuit:
    """The classic resistor-loaded common-source stage."""
    circuit = Circuit("common_source")
    circuit.vsource("vdd", "vdd", vdd)
    circuit.vsource("vg", "gate", vgs)
    circuit.resistor("rload", "vdd", "drain", load_ohms)
    circuit.nmos("m1", "drain", "gate", "0", w_over_l, **mos_params)
    return circuit


def analyze_common_source(
    w_over_l: float, load_ohms: float, vgs: float, vdd: float = 1.8,
    **mos_params,
) -> CommonSourceDesign:
    """DC-solve one candidate and compute the small-signal gain."""
    circuit = build_common_source(w_over_l, load_ohms, vgs, vdd, **mos_params)
    op = circuit.dc_operating_point(guess=vdd / 2.0)
    transistor = circuit.mosfets[0]
    vd = op.v("drain")
    gm = transistor.gm(vgs, max(0.0, vd))
    rout = transistor.rout(vgs, max(0.0, vd))
    parallel = (load_ohms * rout) / (load_ohms + rout) if rout != float(
        "inf"
    ) else load_ohms
    return CommonSourceDesign(
        w_over_l=w_over_l,
        load_ohms=load_ohms,
        vgs_bias=vgs,
        vdd=vdd,
        drain_voltage=vd,
        drain_current=op.device_currents["m1"],
        gain=gm * parallel,
        region=transistor.region(vgs, max(0.0, vd)),
        iterations=1,
    )


def size_common_source(
    target_gain: float,
    load_ohms: float = 20_000.0,
    vdd: float = 1.8,
    vgs: float = 0.8,
    max_iterations: int = 60,
    tolerance: float = 0.02,
    **mos_params,
) -> CommonSourceDesign:
    """Find W/L for a target |gain| by bisection on the verified gain.

    Gain rises with W/L (more gm) until the drain voltage collapses into
    triode; the search therefore brackets the saturated region first.
    """
    if target_gain <= 0:
        raise ValueError("target gain must be positive")

    low, high = 0.5, 2_000.0
    iterations = 0
    best: CommonSourceDesign | None = None
    for _ in range(max_iterations):
        iterations += 1
        mid = (low + high) / 2.0
        design = analyze_common_source(mid, load_ohms, vgs, vdd, **mos_params)
        if design.region != "saturation":
            high = mid  # too much current: output collapsed
            continue
        best = design
        error = (design.gain - target_gain) / target_gain
        if abs(error) <= tolerance:
            break
        if design.gain < target_gain:
            low = mid
        else:
            high = mid
    if best is None:
        raise ValueError(
            f"no saturated design for gain {target_gain} with this load"
        )
    return CommonSourceDesign(
        **{**best.__dict__, "iterations": iterations}
    )
