"""RRAM crossbar: an emerging-device compute substrate.

The paper's introduction lists the university innovation frontier:
"novel computing paradigms like neuromorphic computing, new devices like
resistive RAM (RRAM)".  This module models the workhorse of that
research: a resistive crossbar performing analog matrix-vector
multiplication (MVM) by Ohm's and Kirchhoff's laws, with the standard
non-idealities (conductance quantization, device variation, wire
resistance, stuck cells) that make crossbar research hard — and
measurable here.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np


@dataclass
class RramDeviceModel:
    """Device window and programming characteristics."""

    g_min_s: float = 1e-6  # high-resistive state conductance
    g_max_s: float = 1e-4  # low-resistive state conductance
    levels: int = 16  # programmable conductance levels
    variation_sigma: float = 0.0  # lognormal programming spread
    stuck_fraction: float = 0.0  # fraction of stuck-at-g_min devices

    def __post_init__(self):
        if not 0 < self.g_min_s < self.g_max_s:
            raise ValueError("need 0 < g_min < g_max")
        if self.levels < 2:
            raise ValueError("need at least two conductance levels")


@dataclass
class RramCrossbar:
    """A rows x cols crossbar storing a non-negative weight matrix.

    Weights in [0, 1] map linearly onto the conductance window.  MVM
    applies the input vector as wordline voltages and reads bitline
    currents: ``i = G^T v`` — one analog multiply-accumulate per cell.
    """

    rows: int
    cols: int
    device: RramDeviceModel = field(default_factory=RramDeviceModel)
    seed: int = 0

    def __post_init__(self):
        if self.rows < 1 or self.cols < 1:
            raise ValueError("crossbar needs positive dimensions")
        self._g = np.full((self.rows, self.cols), self.device.g_min_s)
        self._stuck = np.zeros((self.rows, self.cols), dtype=bool)
        rng = random.Random(self.seed)
        for r in range(self.rows):
            for c in range(self.cols):
                if rng.random() < self.device.stuck_fraction:
                    self._stuck[r, c] = True
        self._rng = np.random.default_rng(self.seed)

    # -- programming -------------------------------------------------------

    def quantize(self, weight: float) -> float:
        """Ideal quantized conductance for a weight in [0, 1]."""
        weight = min(1.0, max(0.0, weight))
        step = round(weight * (self.device.levels - 1))
        fraction = step / (self.device.levels - 1)
        return self.device.g_min_s + fraction * (
            self.device.g_max_s - self.device.g_min_s
        )

    def program(self, weights: np.ndarray) -> None:
        """Program a weight matrix (values clipped to [0, 1])."""
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (self.rows, self.cols):
            raise ValueError(
                f"weights shape {weights.shape} != "
                f"({self.rows}, {self.cols})"
            )
        for r in range(self.rows):
            for c in range(self.cols):
                if self._stuck[r, c]:
                    self._g[r, c] = self.device.g_min_s
                    continue
                g = self.quantize(float(weights[r, c]))
                if self.device.variation_sigma > 0:
                    g *= float(
                        self._rng.lognormal(0.0, self.device.variation_sigma)
                    )
                self._g[r, c] = g

    # -- compute -----------------------------------------------------------

    def mvm(self, voltages: np.ndarray) -> np.ndarray:
        """Bitline currents for the applied wordline voltages (amps)."""
        voltages = np.asarray(voltages, dtype=float)
        if voltages.shape != (self.rows,):
            raise ValueError(f"need {self.rows} wordline voltages")
        return self._g.T @ voltages

    def mvm_weights(self, inputs: np.ndarray, v_read: float = 0.2) -> np.ndarray:
        """Approximate ``W^T x`` in weight units.

        Inputs in [0, 1] scale the read voltage; the current is mapped
        back through the conductance window.  This is the end-to-end
        accuracy the non-idealities degrade.
        """
        inputs = np.asarray(inputs, dtype=float)
        currents = self.mvm(inputs * v_read)
        span = self.device.g_max_s - self.device.g_min_s
        baseline = self.device.g_min_s * v_read * inputs.sum()
        return (currents - baseline) / (span * v_read)

    def energy_per_mvm_j(self, v_read: float = 0.2) -> float:
        """Static read energy per MVM at 10 ns integration."""
        power = float(np.sum(self._g)) * v_read * v_read
        return power * 10e-9

    @property
    def conductances(self) -> np.ndarray:
        return self._g.copy()


def mvm_error(
    weights: np.ndarray,
    inputs: np.ndarray,
    device: RramDeviceModel,
    seed: int = 0,
) -> float:
    """RMS error of the crossbar MVM vs exact ``W^T x``.

    The figure of merit every crossbar paper sweeps against levels,
    variation and stuck fraction.
    """
    weights = np.asarray(weights, dtype=float)
    inputs = np.asarray(inputs, dtype=float)
    crossbar = RramCrossbar(*weights.shape, device=device, seed=seed)
    crossbar.program(weights)
    measured = crossbar.mvm_weights(inputs)
    exact = weights.T @ inputs
    return float(np.sqrt(np.mean((measured - exact) ** 2)))
