"""High-level synthesis frontend: Python functions → dataflow graphs.

Students write a restricted Python function; the HLS compiler parses it
with :mod:`ast` and builds a dataflow graph (DFG).  Supported subset:

* integer arguments (bit width via an integer annotation, default 8);
* straight-line assignments to new names;
* binary ``+ - * & | ^``, shifts by constant, unary ``~ -``;
* ``for i in range(N)`` loops with a constant bound (fully unrolled);
* a single ``return expression``.

This is the "raise the abstraction level" tool of Recommendation 4: one
line of Python may expand into many DFG operations and, after scheduling
and binding, into hundreds of gates (experiment E10).
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field


class HlsError(Exception):
    """Raised for source constructs outside the supported subset."""


_BINOPS = {
    ast.Add: "add",
    ast.Sub: "sub",
    ast.Mult: "mul",
    ast.BitAnd: "and",
    ast.BitOr: "or",
    ast.BitXor: "xor",
    ast.LShift: "shl",
    ast.RShift: "shr",
}

#: Resource class per operation: multipliers are the scarce unit,
#: adders/subtractors share ALUs, bitwise logic is free (dedicated).
RESOURCE_CLASS = {
    "mul": "mul",
    "add": "addsub",
    "sub": "addsub",
    "and": "logic",
    "or": "logic",
    "xor": "logic",
    "shl": "logic",
    "shr": "logic",
    "not": "logic",
    "neg": "addsub",
}


@dataclass
class DfgNode:
    """One operation in the dataflow graph."""

    index: int
    op: str  # "input", "const", or an operation name
    #: Operand node indices (empty for inputs/constants).
    operands: tuple[int, ...] = ()
    name: str | None = None  # source variable, for inputs
    value: int | None = None  # for constants
    shift_amount: int | None = None  # for shl/shr

    @property
    def resource(self) -> str | None:
        return RESOURCE_CLASS.get(self.op)


@dataclass
class Dfg:
    """Dataflow graph with one result node."""

    name: str
    nodes: list[DfgNode] = field(default_factory=list)
    inputs: list[int] = field(default_factory=list)  # node indices
    result: int = -1
    source_lines: int = 0

    def add(self, node: DfgNode) -> int:
        self.nodes.append(node)
        return node.index

    def operation_nodes(self) -> list[DfgNode]:
        return [n for n in self.nodes if n.op not in ("input", "const")]

    def counts_by_resource(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for node in self.operation_nodes():
            counts[node.resource] = counts.get(node.resource, 0) + 1
        return counts

    def depth(self) -> int:
        """Longest operation chain (critical path in operations)."""
        level: dict[int, int] = {}
        for node in self.nodes:
            if node.op in ("input", "const"):
                level[node.index] = 0
            else:
                level[node.index] = 1 + max(
                    (level[i] for i in node.operands), default=0
                )
        return max(level.values(), default=0)


class _Builder(ast.NodeVisitor):
    def __init__(self, dfg: Dfg):
        self.dfg = dfg
        self.env: dict[str, int] = {}  # variable -> node index
        self._const_cache: dict[int, int] = {}

    def _new_node(self, **kwargs) -> int:
        node = DfgNode(index=len(self.dfg.nodes), **kwargs)
        return self.dfg.add(node)

    def _const(self, value: int) -> int:
        if value not in self._const_cache:
            self._const_cache[value] = self._new_node(op="const", value=value)
        return self._const_cache[value]

    def expr(self, node: ast.expr) -> int:
        if isinstance(node, ast.Constant):
            if not isinstance(node.value, int):
                raise HlsError(f"only integer constants allowed: {node.value!r}")
            return self._const(node.value)
        if isinstance(node, ast.Name):
            if node.id not in self.env:
                raise HlsError(f"undefined variable {node.id!r}")
            return self.env[node.id]
        if isinstance(node, ast.BinOp):
            op_type = type(node.op)
            if op_type not in _BINOPS:
                raise HlsError(f"unsupported operator {op_type.__name__}")
            op = _BINOPS[op_type]
            if op in ("shl", "shr"):
                if not isinstance(node.right, ast.Constant) or not isinstance(
                    node.right.value, int
                ):
                    raise HlsError("shift amounts must be integer constants")
                left = self.expr(node.left)
                return self._new_node(
                    op=op, operands=(left,), shift_amount=node.right.value
                )
            left = self.expr(node.left)
            right = self.expr(node.right)
            return self._new_node(op=op, operands=(left, right))
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.Invert):
                return self._new_node(op="not", operands=(self.expr(node.operand),))
            if isinstance(node.op, ast.USub):
                return self._new_node(op="neg", operands=(self.expr(node.operand),))
            raise HlsError(f"unsupported unary operator {type(node.op).__name__}")
        raise HlsError(f"unsupported expression {type(node).__name__}")

    def statement(self, stmt: ast.stmt) -> int | None:
        """Process one statement; returns the result node for ``return``."""
        if isinstance(stmt, ast.Assign):
            if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], ast.Name):
                raise HlsError("only simple single-name assignments allowed")
            self.env[stmt.targets[0].id] = self.expr(stmt.value)
            return None
        if isinstance(stmt, ast.AugAssign):
            if not isinstance(stmt.target, ast.Name):
                raise HlsError("augmented assignment needs a simple name")
            synthetic = ast.BinOp(
                left=ast.Name(id=stmt.target.id, ctx=ast.Load()),
                op=stmt.op,
                right=stmt.value,
            )
            self.env[stmt.target.id] = self.expr(synthetic)
            return None
        if isinstance(stmt, ast.For):
            return self._unroll(stmt)
        if isinstance(stmt, ast.Return):
            if stmt.value is None:
                raise HlsError("function must return a value")
            return self.expr(stmt.value)
        raise HlsError(f"unsupported statement {type(stmt).__name__}")

    def _unroll(self, loop: ast.For) -> None:
        if not isinstance(loop.target, ast.Name):
            raise HlsError("loop variable must be a simple name")
        call = loop.iter
        if not (
            isinstance(call, ast.Call)
            and isinstance(call.func, ast.Name)
            and call.func.id == "range"
            and len(call.args) == 1
            and isinstance(call.args[0], ast.Constant)
            and isinstance(call.args[0].value, int)
        ):
            raise HlsError("loops must be 'for i in range(<int constant>)'")
        bound = call.args[0].value
        if bound > 256:
            raise HlsError(f"refusing to unroll {bound} iterations (max 256)")
        for i in range(bound):
            self.env[loop.target.id] = self._const(i)
            for stmt in loop.body:
                if isinstance(stmt, ast.Return):
                    raise HlsError("return inside a loop is not supported")
                self.statement(stmt)
        return None


def build_dfg(function, default_width: int = 8) -> tuple[Dfg, dict[str, int]]:
    """Parse a Python function into a DFG.

    ``function`` may be a callable (source recovered via :mod:`inspect`)
    or the function's source text directly — the latter covers
    dynamically generated functions, which :func:`inspect.getsource`
    cannot see.  Returns the graph and a map of argument name → bit width
    (taken from integer annotations, else ``default_width``).
    """
    if isinstance(function, str):
        source = textwrap.dedent(function)
    else:
        source = textwrap.dedent(inspect.getsource(function))
    tree = ast.parse(source)
    fn = tree.body[0]
    if not isinstance(fn, ast.FunctionDef):
        raise HlsError("expected a function definition")

    dfg = Dfg(name=fn.name)
    dfg.source_lines = sum(
        1 for line in source.splitlines()
        if line.strip() and not line.strip().startswith("#")
    )
    builder = _Builder(dfg)

    widths: dict[str, int] = {}
    for arg in fn.args.args:
        width = default_width
        annotation = arg.annotation
        if annotation is not None:
            if isinstance(annotation, ast.Constant) and isinstance(
                annotation.value, int
            ):
                width = annotation.value
            else:
                raise HlsError(
                    f"argument {arg.arg!r}: width annotation must be an "
                    "integer literal"
                )
        widths[arg.arg] = width
        index = builder._new_node(op="input", name=arg.arg)
        dfg.inputs.append(index)
        builder.env[arg.arg] = index

    result = None
    for stmt in fn.body:
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring
        value = builder.statement(stmt)
        if value is not None:
            result = value
            break
    if result is None:
        raise HlsError("function has no return statement")
    dfg.result = result
    return dfg, widths
