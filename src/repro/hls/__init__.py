"""High-level synthesis: Python subset → scheduled, bound RTL."""

from .codegen import HlsResult, compile_function, emulate_dfg, run_hls_module
from .dfg import Dfg, DfgNode, HlsError, RESOURCE_CLASS, build_dfg
from .schedule import (
    DEFAULT_RESOURCES,
    Schedule,
    alap_schedule,
    asap_schedule,
    list_schedule,
)

__all__ = [
    "DEFAULT_RESOURCES",
    "Dfg",
    "DfgNode",
    "HlsError",
    "HlsResult",
    "RESOURCE_CLASS",
    "Schedule",
    "alap_schedule",
    "asap_schedule",
    "build_dfg",
    "compile_function",
    "emulate_dfg",
    "list_schedule",
    "run_hls_module",
]
