"""HLS backend: scheduled DFG → FSM + datapath RTL.

The generated architecture is the classic shared-datapath template:

* a cycle counter (the FSM) that saturates at the schedule latency;
* one functional unit per resource instance (multipliers, add/sub ALUs),
  with input multiplexers selected by the cycle counter — true resource
  sharing, not one unit per operation;
* a result register per operation, written in its scheduled cycle;
* ``done`` goes high when the counter reaches the latency.

Every operation computes modulo ``2**width`` (one uniform datapath
width); :func:`emulate_dfg` provides the bit-exact golden model used by
the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hdl.hcl import ModuleBuilder, RegisterValue, Value, mux
from ..hdl.ir import Module
from .dfg import Dfg, HlsError, build_dfg
from .schedule import DEFAULT_RESOURCES, Schedule, list_schedule


@dataclass
class HlsResult:
    """Everything HLS produces for one function."""

    module: Module
    dfg: Dfg
    schedule: Schedule
    width: int
    arg_widths: dict[str, int]
    fu_instances: dict[str, int] = field(default_factory=dict)

    @property
    def latency(self) -> int:
        return self.schedule.latency

    @property
    def source_lines(self) -> int:
        return self.dfg.source_lines

    def report(self) -> dict[str, object]:
        return {
            "function": self.dfg.name,
            "source_lines": self.source_lines,
            "operations": len(self.dfg.operation_nodes()),
            "latency_cycles": self.latency,
            "fu_instances": dict(self.fu_instances),
            "datapath_width": self.width,
        }


def compile_function(
    function,
    resources: dict[str, int] | None = None,
    width: int | None = None,
    default_arg_width: int = 8,
) -> HlsResult:
    """Compile a Python function to RTL.

    ``resources`` bounds shared functional units (e.g. ``{"mul": 1}``);
    ``width`` fixes the datapath width (default: widest argument).
    """
    dfg, arg_widths = build_dfg(function, default_width=default_arg_width)
    schedule = list_schedule(dfg, resources)
    datapath_width = width or max(arg_widths.values(), default=8)

    budget = dict(DEFAULT_RESOURCES)
    if resources:
        budget.update(resources)

    b = ModuleBuilder(f"hls_{dfg.name}")
    latency = max(1, schedule.latency)
    counter_width = max(1, (latency + 1).bit_length())
    counter = b.register("hls_cycle", counter_width)
    counter.next = mux(
        counter.ge(latency), b.const(latency, counter_width), counter + 1
    ).trunc(counter_width)

    inputs: dict[str, Value] = {
        name: b.input(name, w) for name, w in arg_widths.items()
    }

    regs: dict[int, RegisterValue] = {}
    for node in dfg.operation_nodes():
        regs[node.index] = b.register(f"n{node.index}_{node.op}", datapath_width)

    def as_width(value: Value) -> Value:
        if value.width < datapath_width:
            return value.zext(datapath_width)
        if value.width > datapath_width:
            return value.trunc(datapath_width)
        return value

    def value_of(index: int) -> Value:
        node = dfg.nodes[index]
        if node.op == "input":
            return as_width(inputs[node.name])
        if node.op == "const":
            return b.const(node.value % (1 << datapath_width), datapath_width)
        return regs[index]

    # Assign shared-class operations to functional-unit instances.
    assignment: dict[int, tuple[str, int]] = {}  # node -> (class, fu index)
    fu_ops: dict[tuple[str, int], list[int]] = {}
    per_cycle_use: dict[tuple[str, int], int] = {}
    for node in dfg.operation_nodes():
        resource = node.resource
        if resource not in ("mul", "addsub"):
            continue
        cycle = schedule.cycle[node.index]
        slot = per_cycle_use.get((resource, cycle), 0)
        per_cycle_use[(resource, cycle)] = slot + 1
        if slot >= budget.get(resource, 10**9):
            raise HlsError(
                f"schedule uses {slot + 1} {resource} units in cycle "
                f"{cycle}, budget is {budget[resource]}"
            )
        assignment[node.index] = (resource, slot)
        fu_ops.setdefault((resource, slot), []).append(node.index)

    fu_result: dict[tuple[str, int], Value] = {}
    for (resource, slot), op_indices in sorted(fu_ops.items()):
        a_in: Value = b.const(0, datapath_width)
        b_in: Value = b.const(0, datapath_width)
        sub_flag: Value = b.const(0, 1)
        for index in op_indices:
            node = dfg.nodes[index]
            here = counter.eq(schedule.cycle[index])
            if node.op == "neg":
                op_a = b.const(0, datapath_width)
                op_b = as_width(value_of(node.operands[0]))
                is_sub = b.const(1, 1)
            else:
                op_a = as_width(value_of(node.operands[0]))
                op_b = as_width(value_of(node.operands[1]))
                is_sub = b.const(1 if node.op == "sub" else 0, 1)
            a_in = mux(here, op_a, a_in)
            b_in = mux(here, op_b, b_in)
            sub_flag = mux(here, is_sub, sub_flag)
        if resource == "mul":
            result = (a_in * b_in).trunc(datapath_width)
        else:
            result = mux(
                sub_flag,
                (a_in - b_in).trunc(datapath_width),
                (a_in + b_in).trunc(datapath_width),
            )
        fu_result[(resource, slot)] = b.wire(f"fu_{resource}{slot}_y", result)

    for node in dfg.operation_nodes():
        here = counter.eq(schedule.cycle[node.index])
        if node.index in assignment:
            computed = fu_result[assignment[node.index]]
        else:  # dedicated logic operation
            if node.op == "not":
                computed = ~as_width(value_of(node.operands[0]))
            elif node.op == "shl":
                computed = (
                    as_width(value_of(node.operands[0])) << node.shift_amount
                ).trunc(datapath_width)
            elif node.op == "shr":
                computed = as_width(value_of(node.operands[0])) >> node.shift_amount
            else:
                op_a = as_width(value_of(node.operands[0]))
                op_b = as_width(value_of(node.operands[1]))
                computed = {
                    "and": op_a & op_b,
                    "or": op_a | op_b,
                    "xor": op_a ^ op_b,
                }[node.op]
        reg = regs[node.index]
        reg.next = mux(here, computed, reg)

    b.output("result", value_of(dfg.result))
    b.output("done", counter.ge(latency))

    fu_instances = {"mul": 0, "addsub": 0, "logic": 0}
    for resource, _slot in fu_ops:
        fu_instances[resource] = max(fu_instances[resource], _slot + 1)
    fu_instances["logic"] = sum(
        1 for n in dfg.operation_nodes() if n.resource == "logic"
    )

    return HlsResult(
        module=b.build(),
        dfg=dfg,
        schedule=schedule,
        width=datapath_width,
        arg_widths=arg_widths,
        fu_instances=fu_instances,
    )


def emulate_dfg(dfg: Dfg, width: int, args: dict[str, int]) -> int:
    """Bit-exact golden model of the generated datapath."""
    mask = (1 << width) - 1
    values: dict[int, int] = {}
    for node in dfg.nodes:
        if node.op == "input":
            values[node.index] = args[node.name] & mask
        elif node.op == "const":
            values[node.index] = node.value & mask
        else:
            ops = [values[i] for i in node.operands]
            if node.op == "add":
                out = ops[0] + ops[1]
            elif node.op == "sub":
                out = ops[0] - ops[1]
            elif node.op == "mul":
                out = ops[0] * ops[1]
            elif node.op == "and":
                out = ops[0] & ops[1]
            elif node.op == "or":
                out = ops[0] | ops[1]
            elif node.op == "xor":
                out = ops[0] ^ ops[1]
            elif node.op == "shl":
                out = ops[0] << node.shift_amount
            elif node.op == "shr":
                out = ops[0] >> node.shift_amount
            elif node.op == "not":
                out = ~ops[0]
            elif node.op == "neg":
                out = -ops[0]
            else:
                raise HlsError(f"unknown op {node.op!r}")
            values[node.index] = out & mask
    return values[dfg.result]


def run_hls_module(result: HlsResult, args: dict[str, int]) -> int:
    """Simulate the generated module until ``done`` and return the result."""
    from ..sim.engine import Simulator

    sim = Simulator(result.module)
    for name, value in args.items():
        sim.set(name, value & ((1 << result.arg_widths[name]) - 1))
    limit = result.latency + 2
    for _ in range(limit):
        if sim.get("done"):
            break
        sim.step()
    if not sim.get("done"):
        raise HlsError("generated module did not assert done")
    return sim.get("result")
