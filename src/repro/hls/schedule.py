"""Operation scheduling: ASAP, ALAP and resource-constrained list
scheduling — the textbook trio every HLS course teaches.

``logic``-class operations are free (always schedulable); ``mul`` and
``addsub`` classes are limited by the resource budget.  List scheduling
uses ALAP slack as the priority function.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .dfg import Dfg, DfgNode

#: Default functional-unit budget.
DEFAULT_RESOURCES = {"mul": 1, "addsub": 2}


@dataclass
class Schedule:
    """Cycle assignment for every operation node."""

    cycle: dict[int, int] = field(default_factory=dict)
    latency: int = 0
    resources: dict[str, int] = field(default_factory=dict)

    def ops_in_cycle(self, cycle: int) -> list[int]:
        return [n for n, c in self.cycle.items() if c == cycle]


def asap_schedule(dfg: Dfg) -> Schedule:
    """Each op as early as dependencies allow (unlimited resources)."""
    schedule = Schedule(resources={})
    ready: dict[int, int] = {}
    for node in dfg.nodes:
        if node.op in ("input", "const"):
            ready[node.index] = 0
        else:
            start = max((ready[i] for i in node.operands), default=0)
            schedule.cycle[node.index] = start
            ready[node.index] = start + 1
    schedule.latency = max(ready.values(), default=0)
    return schedule


def alap_schedule(dfg: Dfg, latency: int | None = None) -> Schedule:
    """Each op as late as possible within ``latency`` (default: ASAP's)."""
    if latency is None:
        latency = asap_schedule(dfg).latency
    schedule = Schedule(resources={})
    deadline: dict[int, int] = {}
    consumers: dict[int, list[DfgNode]] = {}
    for node in dfg.nodes:
        for operand in node.operands:
            consumers.setdefault(operand, []).append(node)

    for node in reversed(dfg.nodes):
        if node.op in ("input", "const"):
            continue
        users = consumers.get(node.index, [])
        if not users:
            cycle = latency - 1
        else:
            cycle = min(schedule.cycle[u.index] for u in users) - 1
        schedule.cycle[node.index] = cycle
    schedule.latency = latency
    return schedule


def list_schedule(
    dfg: Dfg, resources: dict[str, int] | None = None
) -> Schedule:
    """Resource-constrained list scheduling with ALAP-slack priority."""
    budget = dict(DEFAULT_RESOURCES)
    if resources:
        budget.update(resources)
    alap = alap_schedule(dfg)

    schedule = Schedule(resources=budget)
    done: dict[int, int] = {}  # node -> finish cycle
    for node in dfg.nodes:
        if node.op in ("input", "const"):
            done[node.index] = 0

    pending = list(dfg.operation_nodes())
    cycle = 0
    guard = 0
    while pending:
        guard += 1
        if guard > 100_000:
            raise RuntimeError("list scheduling did not converge")
        used: dict[str, int] = {}
        still_pending: list[DfgNode] = []
        ready = [
            node
            for node in pending
            if all(
                operand in done and done[operand] <= cycle
                for operand in node.operands
            )
        ]
        ready.sort(key=lambda n: alap.cycle[n.index])  # urgency first
        ready_set = {n.index for n in ready}
        for node in pending:
            if node.index not in ready_set:
                still_pending.append(node)
        for node in ready:
            resource = node.resource
            limit = budget.get(resource)
            if limit is not None and used.get(resource, 0) >= limit:
                still_pending.append(node)
                continue
            used[resource] = used.get(resource, 0) + 1
            schedule.cycle[node.index] = cycle
            done[node.index] = cycle + 1
        pending = still_pending
        cycle += 1
    schedule.latency = cycle
    return schedule
