"""Metrics registry: counters, gauges, and fixed-bucket histograms.

Complements tracing (:mod:`repro.obs.trace`): spans answer *where did
this run spend its time*, metrics answer *how much / how many* across a
run or a whole process — flows executed, step latencies, cloud queue
depth over simulated time.  A :class:`MetricsRegistry` owns named
instruments; :meth:`~MetricsRegistry.snapshot` returns a plain-data dict
(JSON-serializable, written into trace files by :mod:`repro.obs.events`)
and :meth:`~MetricsRegistry.reset` zeroes values while keeping the
registered instruments.

All instruments are thread-safe under the registry's lock and cheap
enough to leave permanently enabled.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

#: Default histogram buckets for sub-second engine timings (seconds).
DEFAULT_TIME_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 60.0
)


class Counter:
    """Monotonically increasing count."""

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self._lock = lock
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge")
        with self._lock:
            self.value += amount

    def state(self) -> float:
        return self.value

    def reset(self) -> None:
        self.value = 0.0


class Gauge:
    """Last-written value plus its history as a (time, value) series.

    The series makes gauges useful over *simulated* time too: the cloud
    platform records queue depth and utilization at each dispatch event
    with ``set(value, at=sim_minutes)``.
    """

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self._lock = lock
        self.value: float | None = None
        self.series: list[tuple[float, float]] = []

    def set(self, value: float, at: float | None = None) -> None:
        with self._lock:
            self.value = value
            self.series.append(
                (float(at) if at is not None else float(len(self.series)),
                 float(value))
            )

    def state(self) -> dict[str, object]:
        values = [v for _, v in self.series]
        return {
            "value": self.value,
            "min": min(values) if values else None,
            "max": max(values) if values else None,
            # Lists, not tuples, so a snapshot JSON round-trips unchanged.
            "series": [[t, v] for t, v in self.series],
        }

    def reset(self) -> None:
        self.value = None
        self.series.clear()


class Histogram:
    """Fixed upper-bound buckets; observation ``v`` lands in the first
    bucket whose bound satisfies ``v <= bound`` (one overflow bucket past
    the last bound)."""

    def __init__(self, name: str, buckets, lock: threading.Lock):
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self._lock = lock
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        with self._lock:
            self.counts[bisect_left(self.bounds, value)] += 1
            self.count += 1
            self.sum += value

    def state(self) -> dict[str, object]:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "mean": self.sum / self.count if self.count else None,
        }

    def reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0


class MetricsRegistry:
    """Named instruments, created on first use and stable thereafter."""

    def __init__(self):
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        counter = self._counters.get(name)
        if counter is None:
            with self._lock:
                counter = self._counters.setdefault(
                    name, Counter(name, self._lock)
                )
        return counter

    def gauge(self, name: str) -> Gauge:
        gauge = self._gauges.get(name)
        if gauge is None:
            with self._lock:
                gauge = self._gauges.setdefault(name, Gauge(name, self._lock))
        return gauge

    def histogram(self, name: str, buckets=DEFAULT_TIME_BUCKETS) -> Histogram:
        histogram = self._histograms.get(name)
        if histogram is None:
            with self._lock:
                histogram = self._histograms.setdefault(
                    name, Histogram(name, buckets, self._lock)
                )
        return histogram

    def snapshot(self) -> dict[str, dict[str, object]]:
        """Plain-data view of every instrument (JSON-serializable)."""
        with self._lock:
            return {
                "counters": {n: c.state() for n, c in self._counters.items()},
                "gauges": {n: g.state() for n, g in self._gauges.items()},
                "histograms": {
                    n: h.state() for n, h in self._histograms.items()
                },
            }

    def reset(self) -> None:
        """Zero all values; registered instruments survive."""
        with self._lock:
            for group in (self._counters, self._gauges, self._histograms):
                for instrument in group.values():
                    instrument.reset()


#: Process-wide default registry (always real: metrics are cheap).
_default_registry = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default_registry


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the default; returns the previous one."""
    global _default_registry
    previous = _default_registry
    _default_registry = registry
    return previous
