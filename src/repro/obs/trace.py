"""Hierarchical tracing spans for the flow engines.

A :class:`Tracer` records a tree of timed :class:`Span` objects: each
stage of the flow (and each hot inner phase — opt iterations, placement
passes, rip-up rounds, CTS levels) opens a span, does its work, and the
span's monotonic start/end plus any attached attributes become part of
the run's trace.  Traces are artifacts like GDS: they serialize to JSONL
(:mod:`repro.obs.events`) and render as timelines (:mod:`repro.obs.report`).

Two tracers exist:

* :class:`Tracer` — the real thing: thread-safe, monotonic clock (or any
  injected clock, e.g. simulated minutes for the cloud platform),
  parent/child ids tracked per thread.
* :data:`NULL_TRACER` — a no-op whose :meth:`~NullTracer.span` returns a
  shared singleton and does no allocation, timing, or bookkeeping, so
  instrumentation is effectively free when tracing is off.  Hot paths
  that would pay even for building attribute values guard them with
  ``if tracer.enabled:``.

The process-wide default is the no-op tracer; :func:`set_tracer` /
:func:`use_tracer` install a real one, and every instrumented function
also accepts an explicit ``tracer=`` argument that overrides the default.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Span:
    """One timed operation in a trace tree."""

    span_id: int
    parent_id: int | None
    name: str
    start_s: float
    end_s: float | None = None
    attributes: dict[str, object] = field(default_factory=dict)
    #: Back-reference used only while the span is open; excluded from
    #: equality so a deserialized span compares equal to the original.
    _tracer: "Tracer | None" = field(default=None, repr=False, compare=False)

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def set(self, **attributes) -> "Span":
        """Attach (or overwrite) attributes; chainable."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._tracer is not None:
            if exc_type is not None:
                self.attributes.setdefault("error", exc_type.__name__)
            self._tracer.finish(self)
        return False


class _NullSpan:
    """Shared do-nothing span; every no-op ``span()`` call returns it."""

    __slots__ = ()
    span_id = 0
    parent_id = None
    name = ""
    start_s = 0.0
    end_s = 0.0
    duration_s = 0.0
    attributes: dict[str, object] = {}

    def set(self, **attributes) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-cost tracer: short-circuits before any work happens."""

    enabled = False
    spans: tuple[Span, ...] = ()

    def span(self, name: str, **attributes) -> _NullSpan:
        return NULL_SPAN

    def add_span(self, name, start_s, end_s, parent_id=None, **attributes):
        return NULL_SPAN

    def finish(self, span: Span) -> None:
        pass

    def current(self) -> None:
        return None

    def mark(self) -> int:
        return 0

    def since(self, mark: int) -> list[Span]:
        return []

    def find(self, name: str, mark: int = 0) -> None:
        return None

    def reset(self) -> None:
        pass


NULL_TRACER = NullTracer()


class Tracer:
    """Thread-safe hierarchical span recorder.

    Finished spans accumulate in :attr:`spans` in completion order
    (children before their parents).  The parent of a new span is the
    innermost span still open *on the same thread*, so concurrent flows
    on different threads produce disjoint trees on one tracer.

    ``clock`` defaults to :func:`time.perf_counter`; pass a different
    callable to trace simulated time (the cloud platform does this with
    its event clock, via :meth:`add_span`).
    """

    enabled = True

    def __init__(self, clock=time.perf_counter):
        self._clock = clock
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._local = threading.local()
        self.spans: list[Span] = []

    # -- span lifecycle ----------------------------------------------------

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def span(self, name: str, **attributes) -> Span:
        """Open a child span of the current one; use as a context manager."""
        stack = self._stack()
        parent = stack[-1].span_id if stack else None
        span = Span(
            span_id=next(self._ids),
            parent_id=parent,
            name=name,
            start_s=self._clock(),
            attributes=attributes,
            _tracer=self,
        )
        stack.append(span)
        return span

    def finish(self, span: Span) -> None:
        span.end_s = self._clock()
        span._tracer = None
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # out-of-order exit: tolerate, don't corrupt
            stack.remove(span)
        with self._lock:
            self.spans.append(span)

    def add_span(
        self,
        name: str,
        start_s: float,
        end_s: float,
        parent_id: int | None = None,
        **attributes,
    ) -> Span:
        """Record an already-timed span (simulated or derived timestamps)."""
        span = Span(
            span_id=next(self._ids),
            parent_id=parent_id,
            name=name,
            start_s=start_s,
            end_s=end_s,
            attributes=dict(attributes),
        )
        with self._lock:
            self.spans.append(span)
        return span

    # -- queries -----------------------------------------------------------

    def mark(self) -> int:
        """A position in the finished-span log; pass to :meth:`since`."""
        with self._lock:
            return len(self.spans)

    def since(self, mark: int) -> list[Span]:
        """Finished spans recorded after ``mark`` (completion order)."""
        with self._lock:
            return self.spans[mark:]

    def find(self, name: str, mark: int = 0) -> Span | None:
        """The most recently finished span named ``name`` after ``mark``."""
        with self._lock:
            for span in reversed(self.spans[mark:]):
                if span.name == name:
                    return span
        return None

    def reset(self) -> None:
        with self._lock:
            self.spans.clear()
        self._local = threading.local()


#: Process-wide default tracer; instrumentation reads it via get_tracer().
_default_tracer: Tracer | NullTracer = NULL_TRACER


def get_tracer() -> Tracer | NullTracer:
    """The process-wide default tracer (the no-op tracer unless installed)."""
    return _default_tracer


def set_tracer(tracer: Tracer | NullTracer) -> Tracer | NullTracer:
    """Install ``tracer`` as the process-wide default; returns the old one."""
    global _default_tracer
    previous = _default_tracer
    _default_tracer = tracer
    return previous


@contextmanager
def use_tracer(tracer: Tracer):
    """Scoped :func:`set_tracer`: restore the previous default on exit."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
