"""Structured event log: serialize traces to JSONL and load them back.

A trace file is a line-delimited JSON artifact — the observability
equivalent of a GDS: one header record, one record per span, optional
metric-snapshot and free-form event records.  Being line-delimited it
streams, greps, and diffs; :func:`load_trace` reconstructs the spans
(equal, as dataclasses, to the originals) so downstream tooling
(``repro trace``, CI smoke checks) works offline from the file alone.

Record shapes (``type`` discriminates)::

    {"type": "trace",   "version": 1, "spans": N}
    {"type": "span",    "id": 7, "parent": 3, "name": "step.routing",
                        "start_s": ..., "end_s": ..., "attrs": {...}}
    {"type": "metrics", "data": {"counters": ..., "gauges": ..., ...}}
    {"type": "event",   "name": "...", ...}
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, Iterable

from .metrics import MetricsRegistry
from .trace import Span, Tracer

FORMAT_VERSION = 1


@dataclass
class TraceData:
    """Everything one trace file holds."""

    spans: list[Span] = field(default_factory=list)
    metrics: dict[str, dict[str, object]] = field(default_factory=dict)
    events: list[dict[str, object]] = field(default_factory=list)

    def by_name(self, name: str) -> list[Span]:
        return [span for span in self.spans if span.name == name]

    def names(self) -> set[str]:
        return {span.name for span in self.spans}


def _span_record(span: Span) -> dict[str, object]:
    return {
        "type": "span",
        "id": span.span_id,
        "parent": span.parent_id,
        "name": span.name,
        "start_s": span.start_s,
        "end_s": span.end_s,
        "attrs": span.attributes,
    }


def _coerce_spans(trace: Tracer | Iterable[Span]) -> list[Span]:
    if isinstance(trace, Tracer):
        return list(trace.spans)
    return list(trace)


def dump_trace(
    handle: IO[str],
    trace: Tracer | Iterable[Span],
    metrics: MetricsRegistry | dict | None = None,
    events: Iterable[dict[str, object]] = (),
) -> int:
    """Write a trace stream to an open text handle; returns record count.

    Attribute values that are not JSON types degrade to ``str(value)``
    rather than failing the write — a trace must never kill the run it
    observes.
    """
    spans = _coerce_spans(trace)
    records: list[dict[str, object]] = [
        {"type": "trace", "version": FORMAT_VERSION, "spans": len(spans)}
    ]
    records.extend(_span_record(span) for span in spans)
    if metrics is not None:
        data = (
            metrics.snapshot()
            if isinstance(metrics, MetricsRegistry)
            else metrics
        )
        records.append({"type": "metrics", "data": data})
    for event in events:
        records.append({"type": "event", **event})
    for record in records:
        handle.write(json.dumps(record, default=str))
        handle.write("\n")
    return len(records)


def write_trace(
    path: str,
    trace: Tracer | Iterable[Span],
    metrics: MetricsRegistry | dict | None = None,
    events: Iterable[dict[str, object]] = (),
) -> int:
    """Write a JSONL trace file; returns the number of records written."""
    with open(path, "w") as handle:
        return dump_trace(handle, trace, metrics, events)


def load_trace(path: str) -> TraceData:
    """Load a JSONL trace file back into spans + metrics + events.

    Unknown record types are preserved as events so newer writers stay
    readable by older loaders.
    """
    data = TraceData()
    with open(path) as handle:
        for line_no, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_no}: not valid JSON ({exc})"
                ) from exc
            kind = record.get("type")
            if kind == "trace":
                continue
            if kind == "span":
                data.spans.append(
                    Span(
                        span_id=record["id"],
                        parent_id=record["parent"],
                        name=record["name"],
                        start_s=record["start_s"],
                        end_s=record["end_s"],
                        attributes=record.get("attrs", {}),
                    )
                )
            elif kind == "metrics":
                data.metrics = record.get("data", {})
            else:
                data.events.append(record)
    return data
