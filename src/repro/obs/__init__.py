"""repro.obs — flow-wide observability: spans, metrics, trace artifacts.

The paper's enablement argument (and ROADMAP's scaling goals) need a flow
you can *inspect*, not just run: where each stage spends its time, how
deep the cloud queue gets, which inner phase regressed.  This package is
that layer:

* :mod:`~repro.obs.trace` — hierarchical timed spans with a process-wide
  default tracer and a zero-cost no-op tracer;
* :mod:`~repro.obs.metrics` — counters / gauges / fixed-bucket
  histograms behind a snapshot-able registry;
* :mod:`~repro.obs.events` — JSONL trace serialization (traces are
  artifacts like GDS) and loading;
* :mod:`~repro.obs.report` — timeline and self-time renderings
  (``python -m repro trace run.jsonl``).
"""

from .events import TraceData, dump_trace, load_trace, write_trace
from .metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    set_metrics,
)
from .report import (
    AggregateRow,
    aggregate,
    render_aggregate,
    render_timeline,
    render_trace,
)
from .trace import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "AggregateRow",
    "Counter",
    "DEFAULT_TIME_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "TraceData",
    "Tracer",
    "aggregate",
    "dump_trace",
    "get_metrics",
    "get_tracer",
    "load_trace",
    "render_aggregate",
    "render_timeline",
    "render_trace",
    "set_metrics",
    "set_tracer",
    "use_tracer",
    "write_trace",
]
