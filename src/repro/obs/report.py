"""Trace rendering: indented timelines and self-time aggregation.

Two views of one span tree:

* :func:`render_timeline` — the run as it happened: every span indented
  under its parent, with start offset and duration, so a reader can see
  at a glance where a flow's wall time went.
* :func:`aggregate` / :func:`render_aggregate` — the flamegraph
  aggregation: per span *name*, how many times it ran, its cumulative
  time (including children) and its self time (excluding children).
  Self times partition wall time, so the column sums to the traced total
  and overlapping-step double counting is impossible by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

from .events import TraceData
from .trace import Span


#: Printable units and their scale factors from span seconds.  Unknown
#: labels print unscaled — the span clock need not be wall time at all
#: (the cloud simulator traces in simulated minutes under unit="min").
_UNIT_SCALE = {"s": 1.0, "ms": 1e3, "us": 1e6, "min": 1.0}


def _scale(unit: str) -> float:
    return _UNIT_SCALE.get(unit, 1.0)


def _tree(spans: list[Span]):
    """Roots and a children index, both in start-time order."""
    by_id = {span.span_id: span for span in spans}
    children: dict[int, list[Span]] = {}
    roots: list[Span] = []
    for span in spans:
        parent = span.parent_id
        if parent is not None and parent in by_id:
            children.setdefault(parent, []).append(span)
        else:
            roots.append(span)
    order = {span.span_id: i for i, span in enumerate(spans)}
    key = lambda s: (s.start_s, order[s.span_id])
    roots.sort(key=key)
    for group in children.values():
        group.sort(key=key)
    return roots, children


def _format_attrs(attributes: dict[str, object], limit: int = 4) -> str:
    if not attributes:
        return ""
    parts = []
    for key, value in list(attributes.items())[:limit]:
        if isinstance(value, float):
            value = round(value, 3)
        parts.append(f"{key}={value}")
    if len(attributes) > limit:
        parts.append("…")
    return "  [" + " ".join(parts) + "]"


def render_timeline(spans: list[Span], unit: str = "ms") -> str:
    """The span tree as an indented text timeline.

    ``unit`` scales the printed numbers (``"ms"`` for wall-clock traces,
    ``"min"`` for the cloud platform's simulated-time traces — any label
    works, only ``"ms"`` rescales).
    """
    if not spans:
        return "(empty trace)"
    scale = _scale(unit)
    roots, children = _tree(spans)
    origin = min(span.start_s for span in spans)
    lines = [f"{'start':>10s} {'duration':>10s}  span"]

    def emit(span: Span, depth: int) -> None:
        start = (span.start_s - origin) * scale
        duration = span.duration_s * scale
        lines.append(
            f"{start:10.3f} {duration:10.3f}  "
            f"{'  ' * depth}{span.name}{_format_attrs(span.attributes)}"
        )
        for child in children.get(span.span_id, ()):
            emit(child, depth + 1)

    for root in roots:
        emit(root, 0)
    lines.append(f"({len(spans)} spans, times in {unit})")
    return "\n".join(lines)


@dataclass
class AggregateRow:
    """Per-span-name totals (the flamegraph view)."""

    name: str
    count: int
    total_s: float  # cumulative: includes time inside child spans
    self_s: float  # exclusive: children's cumulative time subtracted

    @property
    def mean_s(self) -> float:
        return self.total_s / self.count if self.count else 0.0


def aggregate(spans: list[Span]) -> list[AggregateRow]:
    """Per-name count/cumulative/self rows, sorted by self time."""
    _, children = _tree(spans)
    rows: dict[str, AggregateRow] = {}
    for span in spans:
        child_time = sum(
            child.duration_s for child in children.get(span.span_id, ())
        )
        row = rows.get(span.name)
        if row is None:
            row = rows[span.name] = AggregateRow(span.name, 0, 0.0, 0.0)
        row.count += 1
        row.total_s += span.duration_s
        row.self_s += max(0.0, span.duration_s - child_time)
    return sorted(rows.values(), key=lambda r: (-r.self_s, r.name))


def render_aggregate(spans: list[Span], unit: str = "ms") -> str:
    """The aggregation as a fixed-width text table."""
    rows = aggregate(spans)
    if not rows:
        return "(empty trace)"
    scale = _scale(unit)
    total_self = sum(row.self_s for row in rows)
    width = max(len(row.name) for row in rows)
    lines = [
        f"{'span':{width}s} {'count':>6s} {'self':>10s} "
        f"{'cum':>10s} {'self%':>6s}"
    ]
    for row in rows:
        share = 100.0 * row.self_s / total_self if total_self else 0.0
        lines.append(
            f"{row.name:{width}s} {row.count:6d} "
            f"{row.self_s * scale:10.3f} {row.total_s * scale:10.3f} "
            f"{share:6.1f}"
        )
    lines.append(
        f"{'total':{width}s} {'':6s} {total_self * scale:10.3f} "
        f"{'':10s} {'100.0':>6s}  (times in {unit})"
    )
    return "\n".join(lines)


def _render_metrics(metrics: dict[str, dict[str, object]]) -> str:
    lines = []
    for name, value in sorted(metrics.get("counters", {}).items()):
        lines.append(f"counter   {name} = {value}")
    for name, state in sorted(metrics.get("gauges", {}).items()):
        lines.append(
            f"gauge     {name} = {state.get('value')} "
            f"(min {state.get('min')}, max {state.get('max')}, "
            f"{len(state.get('series', []))} samples)"
        )
    for name, state in sorted(metrics.get("histograms", {}).items()):
        mean = state.get("mean")
        mean_text = f"{mean:.6g}" if isinstance(mean, (int, float)) else "-"
        lines.append(
            f"histogram {name}: n={state.get('count')} "
            f"sum={state.get('sum'):.6g} mean={mean_text}"
        )
    return "\n".join(lines)


def render_trace(data: TraceData, unit: str = "ms") -> str:
    """Full human-readable report for one loaded trace file."""
    sections = [
        "== timeline ==",
        render_timeline(data.spans, unit=unit),
        "",
        "== by span (self/cumulative) ==",
        render_aggregate(data.spans, unit=unit),
    ]
    if data.metrics:
        sections += ["", "== metrics ==", _render_metrics(data.metrics)]
    return "\n".join(sections)
