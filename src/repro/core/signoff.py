"""Tapeout signoff: the checklist between a flow run and a shuttle seat.

Every real tape-out is gated by a signoff review; forgetting one is how
universities lose an MPW seat worth a semester (the stakes Section III-C
describes).  :func:`run_signoff` evaluates a completed
:class:`~repro.core.flow.FlowResult` against the standard checklist —
equivalence, lint, setup/hold across corners, DRC, routing completion,
congestion, utilization sanity, die-area budget — and produces a
machine-checkable verdict with explicit, named waivers for the items a
supervisor may consciously accept.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..sta.corners import multi_corner_analysis
from .flow import FlowResult


@dataclass(frozen=True)
class SignoffItem:
    """One checklist entry."""

    name: str
    passed: bool
    detail: str
    waivable: bool = True


@dataclass
class SignoffReport:
    items: list[SignoffItem] = field(default_factory=list)
    waivers: set[str] = field(default_factory=set)

    @property
    def failures(self) -> list[SignoffItem]:
        return [
            item for item in self.items
            if not item.passed and item.name not in self.waivers
        ]

    @property
    def unwaivable_failures(self) -> list[SignoffItem]:
        return [
            item for item in self.items if not item.passed and not item.waivable
        ]

    @property
    def ready_for_tapeout(self) -> bool:
        if self.unwaivable_failures:
            return False
        return not self.failures

    def summary(self) -> str:
        status = "READY" if self.ready_for_tapeout else "NOT READY"
        failed = ", ".join(i.name for i in self.failures) or "none"
        waived = ", ".join(sorted(self.waivers)) or "none"
        return (
            f"signoff {status}: {len(self.items)} checks, "
            f"failing: {failed}, waived: {waived}"
        )


def run_signoff(
    result: FlowResult,
    max_die_area_mm2: float | None = None,
    waivers: set[str] | None = None,
    check_corners: bool = True,
) -> SignoffReport:
    """Evaluate the signoff checklist for a finished flow run.

    ``waivers`` names checklist items whose failure is consciously
    accepted; equivalence and DRC can never be waived.

    A partial result (a ``continue_on_error`` run that recorded
    failures, or one missing signoff artifacts) fails the unwaivable
    ``flow_complete`` item and short-circuits: the remaining checks
    cannot be evaluated against artifacts that never got produced.
    """
    report = SignoffReport(waivers=set(waivers or ()))
    add = report.items.append

    missing = [
        name for name, artifact in (
            ("synthesis", result.synthesis),
            ("physical", result.physical),
            ("timing", result.timing),
            ("drc", result.drc),
            ("gds", result.gds_bytes),
        ) if artifact is None
    ]
    complete = not missing and not result.failures
    detail = "all stages completed"
    if not complete:
        parts = []
        if result.failures:
            parts.append(
                f"{len(result.failures)} stage failure(s): "
                + "; ".join(str(f) for f in result.failures)
            )
        if missing:
            parts.append(f"missing artifacts: {', '.join(missing)}")
        detail = "; ".join(parts)
    add(SignoffItem("flow_complete", complete, detail, waivable=False))
    if missing:
        # Nothing below can be checked against artifacts that don't exist.
        return report

    equivalence = result.synthesis.equivalence
    add(SignoffItem(
        "logic_equivalence",
        equivalence is not None and equivalence.passed,
        "simulation equivalence vs RTL"
        if equivalence is not None else "equivalence check was skipped",
        waivable=False,
    ))

    add(SignoffItem(
        "drc_clean",
        result.drc.clean,
        result.drc.summary(),
        waivable=False,
    ))

    # The static-analysis verdict.  A supervisor may consciously waive
    # it (lint is advisory by nature) — unlike equivalence or DRC.
    lint_report = result.lint
    if lint_report is None:
        from ..lint import lint_design

        lint_report = lint_design(
            result.synthesis.module, mapped=result.synthesis.mapped
        )
    add(SignoffItem(
        "lint_clean",
        lint_report.clean,
        lint_report.summary(),
    ))

    # SAT-based LEC across the synthesis pipeline.  Waivable — unlike
    # the simulation check it may return "unknown" on solver-budget
    # exhaustion, which a supervisor may accept; a counterexample is a
    # real bug and should never be waived in practice.
    lec_report = result.lec
    if lec_report is None:
        from ..formal.lec import lec_flow

        lec_report = lec_flow(result.synthesis.module, result.synthesis)
    add(SignoffItem(
        "lec_clean",
        lec_report.passed,
        lec_report.summary(),
    ))

    add(SignoffItem(
        "setup_timing",
        result.timing.wns_ps >= 0,
        f"WNS {result.timing.wns_ps:.1f} ps at "
        f"{result.clock_period_ps:.0f} ps period",
    ))
    add(SignoffItem(
        "hold_timing",
        result.timing.worst_hold_slack_ps >= 0,
        f"worst hold slack {result.timing.worst_hold_slack_ps:.1f} ps",
    ))

    if check_corners:
        corners = multi_corner_analysis(
            result.synthesis.mapped,
            # Corner analysis derates the typical node parameters.
            _node_for(result),
            result.clock_period_ps,
            wire_lengths_um=result.physical.wire_lengths(),
            skew_ps=result.physical.clock_tree.skew_map(),
        )
        add(SignoffItem(
            "multi_corner_timing",
            corners.met,
            corners.summary(),
        ))

    add(SignoffItem(
        "routing_complete",
        not result.physical.routing.failed_nets,
        f"{len(result.physical.routing.failed_nets)} unrouted nets",
        waivable=False,
    ))
    add(SignoffItem(
        "congestion",
        result.physical.routing.overflow == 0,
        f"overflow {result.physical.routing.overflow}",
    ))

    utilization = result.physical.floorplan.utilization_target
    add(SignoffItem(
        "utilization_sane",
        0.1 <= utilization <= 0.9,
        f"target utilization {utilization}",
    ))

    if max_die_area_mm2 is not None:
        add(SignoffItem(
            "die_area_budget",
            result.physical.die_area_mm2 <= max_die_area_mm2,
            f"{result.physical.die_area_mm2:.4f} mm2 vs budget "
            f"{max_die_area_mm2} mm2",
        ))

    add(SignoffItem(
        "gds_generated",
        len(result.gds_bytes) > 0,
        f"{len(result.gds_bytes)} bytes of GDSII",
        waivable=False,
    ))

    # LVS: prefer the connectivity-grade verdict when the flow ran the
    # extract-LVS gate (options.extract_lvs); fall back to the census
    # check otherwise.  Either way, not waivable.
    if result.lvs is not None:
        lvs = result.lvs
    else:
        from ..layout.gds import read_gds
        from ..layout.lvs import check_lvs

        lvs = check_lvs(read_gds(result.gds_bytes), result.physical)
    add(SignoffItem(
        "lvs_clean",
        lvs.clean,
        lvs.summary(),
        waivable=False,
    ))
    return report


def _node_for(result: FlowResult):
    from ..pdk.pdks import get_pdk

    return get_pdk(result.pdk_name).node
