"""Availability vs enablement: the paper's core distinction, quantified.

Section III-D separates *availability* (you can download the PDK and the
tools) from *enablement* (someone made the flow actually work for your
technology).  This module models the enablement work as a task list with
effort estimates and automation flags, so the E6 benchmark can report how
many engineer-hours each strategy removes:

* ``manual``      — a lone research group does everything (the status quo);
* ``templates``   — vendor-independent flow templates (Recommendation 4);
* ``hub``         — a centralized cloud enablement hub (Recommendation 7).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnablementTask:
    """One recurring enablement chore."""

    name: str
    hours_manual: float
    #: Fraction of the effort removed by flow templates (Rec 4).
    template_coverage: float
    #: Fraction removed when a central hub owns the task (Rec 7).
    hub_coverage: float
    recurring_per_year: float  # how often the task recurs annually


#: Task inventory from Section III-D's enumeration: IT setup, tool
#: installation/updates, PDK/library/IP management, tool configuration,
#: flow scripting, user interfaces.  Hours are calibrated to a university
#: group supporting ~20 active designers on one technology.
ENABLEMENT_TASKS: tuple[EnablementTask, ...] = (
    EnablementTask("it_infrastructure_setup", 160.0, 0.10, 0.95, 0.5),
    EnablementTask("eda_tool_installation", 40.0, 0.20, 1.00, 2.0),
    EnablementTask("eda_tool_updates", 24.0, 0.20, 1.00, 4.0),
    EnablementTask("pdk_installation", 32.0, 0.40, 1.00, 2.0),
    EnablementTask("library_ip_management", 60.0, 0.50, 0.90, 2.0),
    EnablementTask("memory_generator_setup", 40.0, 0.30, 0.90, 1.0),
    EnablementTask("tool_technology_config", 120.0, 0.70, 0.95, 1.0),
    EnablementTask("flow_scripting", 200.0, 0.80, 0.90, 1.0),
    EnablementTask("user_interface_provision", 80.0, 0.60, 0.95, 0.5),
    EnablementTask("license_nda_administration", 50.0, 0.00, 0.80, 1.0),
    EnablementTask("student_retraining", 120.0, 0.50, 0.60, 1.0),
)

STRATEGIES = ("manual", "templates", "hub")


def annual_effort_hours(strategy: str = "manual") -> float:
    """Engineer-hours per year one group spends on enablement."""
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; use {STRATEGIES}")
    total = 0.0
    for task in ENABLEMENT_TASKS:
        effort = task.hours_manual * task.recurring_per_year
        if strategy == "templates":
            effort *= 1.0 - task.template_coverage
        elif strategy == "hub":
            effort *= 1.0 - task.hub_coverage
        total += effort
    return round(total, 1)


def effort_breakdown(strategy: str = "manual") -> dict[str, float]:
    """Per-task annual hours under a strategy."""
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; use {STRATEGIES}")
    rows: dict[str, float] = {}
    for task in ENABLEMENT_TASKS:
        effort = task.hours_manual * task.recurring_per_year
        if strategy == "templates":
            effort *= 1.0 - task.template_coverage
        elif strategy == "hub":
            effort *= 1.0 - task.hub_coverage
        rows[task.name] = round(effort, 1)
    return rows


def availability_vs_enablement() -> dict[str, float]:
    """The paper's headline split for one group-year.

    "Availability" is the effort to *obtain* assets (license admin, tool
    installation, PDK installation); "enablement" is everything needed to
    make them usable.  The enablement share dominating is the paper's
    point.
    """
    availability_tasks = {
        "eda_tool_installation", "pdk_installation",
        "license_nda_administration",
    }
    availability = sum(
        t.hours_manual * t.recurring_per_year
        for t in ENABLEMENT_TASKS
        if t.name in availability_tasks
    )
    enablement = sum(
        t.hours_manual * t.recurring_per_year
        for t in ENABLEMENT_TASKS
        if t.name not in availability_tasks
    )
    return {
        "availability_hours": round(availability, 1),
        "enablement_hours": round(enablement, 1),
        "enablement_share": round(enablement / (availability + enablement), 3),
    }
