"""Legal access gates: NDAs, export control, foundry prerequisites.

Section III-C of the paper catalogues the non-technical barriers between
a university and a PDK: NDAs, export-control restrictions "based on
students' countries of origin or visa statuses", minimum prior tape-out
requirements, fixed-project/secured-funding stipulations, and isolated IT
environments.  This module simulates that gauntlet so the platform (and
experiment E8) can show how open PDKs remove it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..pdk.pdks import Pdk


class ResidencyStatus(Enum):
    """Export-control relevant status (deliberately coarse)."""

    DOMESTIC = "domestic"
    ALLIED = "allied"
    RESTRICTED = "restricted"


@dataclass
class User:
    """A student or researcher requesting design assets."""

    name: str
    institution: str
    residency: ResidencyStatus = ResidencyStatus.DOMESTIC
    signed_ndas: set[str] = field(default_factory=set)
    completed_tapeouts: int = 0
    has_secured_funding: bool = False
    has_fixed_project_description: bool = False
    has_isolated_it: bool = False


@dataclass
class AccessDecision:
    granted: bool
    blockers: list[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.granted


def evaluate_access(user: User, pdk: Pdk) -> AccessDecision:
    """Apply a PDK's access terms to a user; lists every blocker."""
    terms = pdk.terms
    blockers: list[str] = []
    if terms.nda_required and pdk.name not in user.signed_ndas:
        blockers.append(f"NDA for {pdk.name} not signed")
    if terms.export_controlled and user.residency is ResidencyStatus.RESTRICTED:
        blockers.append("export control: restricted residency status")
    if user.completed_tapeouts < terms.min_prior_tapeouts:
        blockers.append(
            f"requires {terms.min_prior_tapeouts} prior tape-outs, "
            f"user has {user.completed_tapeouts}"
        )
    if terms.requires_fixed_project and not (
        user.has_fixed_project_description and user.has_secured_funding
    ):
        blockers.append("fixed project description with secured funding required")
    if terms.requires_isolated_it and not user.has_isolated_it:
        blockers.append("isolated IT environment required")
    return AccessDecision(granted=not blockers, blockers=blockers)


def access_friction(user: User, pdk: Pdk) -> int:
    """Number of administrative hurdles between this user and the PDK.

    Zero for open PDKs — the quantitative version of the paper's claim
    that open source "eliminates the dependency on NDAs and vendor- or
    foundry-specific restrictions" (Recommendation 5).
    """
    return len(evaluate_access(user, pdk).blockers)
