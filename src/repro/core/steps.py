"""The canonical digital ASIC flow steps.

Section III-B of the paper walks this exact sequence (frontend: spec →
verified netlist; backend: netlist → GDSII).  Recommendation 4 argues the
backend "is inherently structured into abstract steps" that vendor- and
technology-independent templates can capture — this enum is that
abstraction, shared by the flow runner, the templates, the FPGA coverage
comparison (E9) and the enablement-effort model (E6).
"""

from __future__ import annotations

from enum import Enum


class FlowStep(Enum):
    SPECIFICATION = "specification"
    RTL_DESIGN = "rtl_design"
    FUNCTIONAL_SIMULATION = "functional_simulation"
    SYNTHESIS = "synthesis"
    TECHNOLOGY_MAPPING = "technology_mapping"
    EQUIVALENCE_CHECK = "equivalence_check"
    FLOORPLANNING = "floorplanning"
    PLACEMENT = "placement"
    CLOCK_TREE_SYNTHESIS = "clock_tree_synthesis"
    ROUTING = "routing"
    STATIC_TIMING_ANALYSIS = "static_timing_analysis"
    POWER_ANALYSIS = "power_analysis"
    DESIGN_RULE_CHECK = "design_rule_check"
    GDS_EXPORT = "gds_export"
    TAPEOUT = "tapeout"


#: The steps in canonical order.
FLOW_ORDER: tuple[FlowStep, ...] = tuple(FlowStep)

#: Frontend/backend split as defined in Section III-B.
FRONTEND_STEPS = (
    FlowStep.SPECIFICATION,
    FlowStep.RTL_DESIGN,
    FlowStep.FUNCTIONAL_SIMULATION,
    FlowStep.SYNTHESIS,
    FlowStep.TECHNOLOGY_MAPPING,
    FlowStep.EQUIVALENCE_CHECK,
)
BACKEND_STEPS = tuple(s for s in FLOW_ORDER if s not in FRONTEND_STEPS)


def is_frontend(step: FlowStep) -> bool:
    return step in FRONTEND_STEPS
