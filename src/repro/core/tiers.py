"""Target-group-oriented enablement tiers (Recommendation 8).

The paper: "a one-size-fits-all enablement solution is unlikely since the
spectrum of learners ranges from high-school to PhD students."  Each tier
maps a learner group to the PDKs, presets and support level appropriate
for it — beginner (TinyTapeout-style), intermediate (open PDK + open
flow), advanced (commercial nodes and enablement services).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class AccessTier(Enum):
    BEGINNER = "beginner"  # high school / early undergraduate
    INTERMEDIATE = "intermediate"  # late BSc / early MSc
    ADVANCED = "advanced"  # MSc thesis / PhD


@dataclass(frozen=True)
class TierPolicy:
    """What one tier may use and what pathway it is steered to."""

    tier: AccessTier
    allowed_pdks: tuple[str, ...]
    allowed_presets: tuple[str, ...]
    max_die_area_mm2: float
    shuttle_subsidized: bool
    needs_flow_customization: bool
    recommended_pathway: str


TIER_POLICIES: dict[AccessTier, TierPolicy] = {
    AccessTier.BEGINNER: TierPolicy(
        tier=AccessTier.BEGINNER,
        allowed_pdks=("edu180",),
        allowed_presets=("open",),
        max_die_area_mm2=0.1,
        shuttle_subsidized=True,
        needs_flow_customization=False,
        recommended_pathway=(
            "TinyTapeout-style: fixed template flow, shared shuttle seat, "
            "no flow configuration exposed"
        ),
    ),
    AccessTier.INTERMEDIATE: TierPolicy(
        tier=AccessTier.INTERMEDIATE,
        allowed_pdks=("edu180", "edu130"),
        allowed_presets=("open",),
        max_die_area_mm2=1.0,
        shuttle_subsidized=True,
        needs_flow_customization=True,
        recommended_pathway=(
            "Open PDK + open flow (IHP/SkyWater + OpenROAD class): learners "
            "adapt and customize the flow internals"
        ),
    ),
    AccessTier.ADVANCED: TierPolicy(
        tier=AccessTier.ADVANCED,
        allowed_pdks=("edu180", "edu130", "edu045"),
        allowed_presets=("open", "commercial"),
        max_die_area_mm2=10.0,
        shuttle_subsidized=False,
        needs_flow_customization=True,
        recommended_pathway=(
            "Commercial PDKs and EDA via enablement services / cloud "
            "platform; advanced nodes for research needs"
        ),
    ),
}


def policy_for(tier: AccessTier) -> TierPolicy:
    return TIER_POLICIES[tier]


def tier_allows(tier: AccessTier, pdk_name: str, preset_name: str = "open") -> bool:
    policy = policy_for(tier)
    return pdk_name in policy.allowed_pdks and preset_name in policy.allowed_presets


def recommend_tier(experience_years: float, needs_advanced_node: bool) -> AccessTier:
    """Steer a learner to a tier from two coarse signals."""
    if needs_advanced_node or experience_years >= 4:
        return AccessTier.ADVANCED
    if experience_years >= 2:
        return AccessTier.INTERMEDIATE
    return AccessTier.BEGINNER
