"""Curriculum modelling: course pathways per learner tier (Rec 8).

Recommendation 8 maps learner groups to enablement strategies; a
university implements that mapping as a *curriculum* — courses with
prerequisites that walk a student from first gates to a tape-out
project.  This module models the catalogue, checks prerequisite
consistency, lays courses into semesters (topological scheduling under a
per-semester ECTS budget), and reports which flow steps a pathway
actually teaches — connecting Recommendation 8 to the flow-coverage
metric used by E6/E9.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .steps import FLOW_ORDER, FlowStep
from .tiers import AccessTier


@dataclass(frozen=True)
class Course:
    """One course in the chip-design pathway."""

    name: str
    tier: AccessTier
    ects: int
    teaches: tuple[FlowStep, ...]
    prerequisites: tuple[str, ...] = ()
    uses_toolkit: bool = True


#: A reference chip-design curriculum (bachelor entry to tape-out).
CURRICULUM: tuple[Course, ...] = (
    Course("digital_logic", AccessTier.BEGINNER, 6,
           (FlowStep.SPECIFICATION, FlowStep.RTL_DESIGN)),
    Course("hdl_lab", AccessTier.BEGINNER, 6,
           (FlowStep.RTL_DESIGN, FlowStep.FUNCTIONAL_SIMULATION),
           ("digital_logic",)),
    Course("tinytapeout_project", AccessTier.BEGINNER, 3,
           (FlowStep.GDS_EXPORT, FlowStep.TAPEOUT),
           ("hdl_lab",)),
    Course("synthesis_and_verification", AccessTier.INTERMEDIATE, 6,
           (FlowStep.SYNTHESIS, FlowStep.TECHNOLOGY_MAPPING,
            FlowStep.EQUIVALENCE_CHECK),
           ("hdl_lab",)),
    Course("physical_design", AccessTier.INTERMEDIATE, 6,
           (FlowStep.FLOORPLANNING, FlowStep.PLACEMENT,
            FlowStep.CLOCK_TREE_SYNTHESIS, FlowStep.ROUTING),
           ("synthesis_and_verification",)),
    Course("signoff_and_timing", AccessTier.INTERMEDIATE, 4,
           (FlowStep.STATIC_TIMING_ANALYSIS, FlowStep.POWER_ANALYSIS,
            FlowStep.DESIGN_RULE_CHECK),
           ("physical_design",)),
    Course("analog_fundamentals", AccessTier.INTERMEDIATE, 6, (),
           ("digital_logic",)),
    Course("advanced_node_design", AccessTier.ADVANCED, 6,
           (FlowStep.SYNTHESIS, FlowStep.STATIC_TIMING_ANALYSIS),
           ("signoff_and_timing",)),
    Course("research_tapeout", AccessTier.ADVANCED, 12,
           (FlowStep.GDS_EXPORT, FlowStep.TAPEOUT),
           ("advanced_node_design", "signoff_and_timing")),
)


class CurriculumError(Exception):
    """Raised for inconsistent curricula or impossible plans."""


def course(name: str) -> Course:
    for entry in CURRICULUM:
        if entry.name == name:
            return entry
    raise KeyError(f"no course named {name!r}")


def validate_curriculum(catalogue: tuple[Course, ...] = CURRICULUM) -> None:
    """Prerequisites must exist, be acyclic, and never point up-tier."""
    names = {c.name for c in catalogue}
    by_name = {c.name: c for c in catalogue}
    for entry in catalogue:
        for prerequisite in entry.prerequisites:
            if prerequisite not in names:
                raise CurriculumError(
                    f"{entry.name}: unknown prerequisite {prerequisite!r}"
                )
            if by_name[prerequisite].tier.value > entry.tier.value and (
                list(AccessTier).index(by_name[prerequisite].tier)
                > list(AccessTier).index(entry.tier)
            ):
                raise CurriculumError(
                    f"{entry.name}: prerequisite {prerequisite} is above "
                    "its tier"
                )
    # Cycle check via repeated stripping.
    remaining = dict(by_name)
    while remaining:
        ready = [
            name for name, entry in remaining.items()
            if all(p not in remaining for p in entry.prerequisites)
        ]
        if not ready:
            raise CurriculumError(
                f"prerequisite cycle among {sorted(remaining)}"
            )
        for name in ready:
            del remaining[name]


def courses_for_tier(target: AccessTier) -> list[Course]:
    """All courses at or below the target tier (the learner's pathway)."""
    order = list(AccessTier)
    limit = order.index(target)
    return [c for c in CURRICULUM if order.index(c.tier) <= limit]


def plan_semesters(
    target: AccessTier, ects_per_semester: int = 12
) -> list[list[str]]:
    """Topological semester plan under an ECTS budget.

    Greedy level scheduling: each semester takes ready courses (all
    prerequisites done) up to the budget, earliest-tier first.
    """
    validate_curriculum()
    pathway = courses_for_tier(target)
    done: set[str] = set()
    pending = {c.name: c for c in pathway}
    semesters: list[list[str]] = []
    order = list(AccessTier)
    guard = 0
    while pending:
        guard += 1
        if guard > 50:
            raise CurriculumError("cannot schedule curriculum")
        ready = sorted(
            (c for c in pending.values()
             if all(p in done for p in c.prerequisites)),
            key=lambda c: (order.index(c.tier), -c.ects),
        )
        if not ready:
            raise CurriculumError("unsatisfiable prerequisites in pathway")
        semester: list[str] = []
        budget = ects_per_semester
        for entry in ready:
            if entry.ects <= budget:
                semester.append(entry.name)
                budget -= entry.ects
        if not semester:  # one big course exceeds the budget: take it alone
            semester.append(ready[0].name)
        for name in semester:
            done.add(name)
            del pending[name]
        semesters.append(semester)
    return semesters


def pathway_flow_coverage(target: AccessTier) -> float:
    """Fraction of flow steps the tier's pathway teaches."""
    taught: set[FlowStep] = set()
    for entry in courses_for_tier(target):
        taught.update(entry.teaches)
    return len(taught) / len(FLOW_ORDER)


def total_ects(target: AccessTier) -> int:
    return sum(c.ects for c in courses_for_tier(target))
