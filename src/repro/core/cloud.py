"""Cloud execution platform: a discrete-event job-queue simulator.

Recommendation 7: centralized, cloud-based enablement infrastructure with
"scalable computing resources for chip design tasks".  This simulator
answers the capacity-planning questions such a platform raises: queueing
delay vs number of servers, utilization, and deadline risk for course
assignments — numbers the E6/E8 benchmarks report.

Real shared academic compute also *fails*: a seeded
:class:`~repro.resil.faults.FaultModel` injects server faults (MTBF /
MTTR), job preemptions and fatal errors, and failed jobs re-enter the
queue under a pluggable :class:`~repro.resil.retry.RetryPolicy`
(exponential backoff with jitter, budgeted in simulated minutes,
deadline-aware give-up).  The same seed always yields the same schedule,
so "how many servers do we need to hit the assignment deadline at p95
given 2% node failures" is a reproducible number, not an anecdote.

The simulator is observable (:mod:`repro.obs`): each completed job
becomes a ``cloud.job`` span over *simulated* minutes (with a nested
``cloud.job.run`` span for its service time), fault windows become
``cloud.job.fault`` spans and backoff waits ``resil.retry`` spans, and
queue depth / instantaneous utilization are recorded as gauge series
keyed by simulated time, so a trace renders the platform's congestion
*and* failure history.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field

from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer, get_tracer
from ..resil.faults import FaultModel
from ..resil.retry import ExponentialBackoff, RetryPolicy

#: Wait-time histogram bucket bounds (simulated minutes).
_WAIT_BUCKETS = (0.5, 1, 2, 5, 10, 20, 60, 120, 480)


@dataclass
class CloudJob:
    """One flow execution request."""

    job_id: int
    user: str
    #: Nominal compute time in minutes (e.g. from design size).
    duration_min: float
    submit_min: float
    priority: int = 0  # lower runs first among queued jobs
    #: Absolute simulated minute the results are needed by, if any.
    deadline_min: float | None = None
    #: Start of the successful execution attempt.
    start_min: float | None = None
    finish_min: float | None = None
    #: Execution attempts started (1 for a fault-free job).
    attempts: int = 0
    #: Times the job re-entered the queue after a transient fault.
    retries: int = 0
    preemptions: int = 0
    #: ``pending`` → ``done`` | ``failed`` (fatal fault) | ``gave_up``
    #: (retry budget or deadline exhausted).
    outcome: str = "pending"

    @property
    def completed(self) -> bool:
        return self.outcome == "done"

    @property
    def missed_deadline(self) -> bool:
        """Deadline set, and either never finished or finished late."""
        if self.deadline_min is None:
            return False
        if not self.completed:
            return True
        return self.finish_min > self.deadline_min

    @property
    def wait_min(self) -> float:
        if self.start_min is None:
            return 0.0
        return self.start_min - self.submit_min

    @property
    def turnaround_min(self) -> float:
        if self.finish_min is None:
            return 0.0
        return self.finish_min - self.submit_min


@dataclass
class CloudStats:
    jobs: int
    mean_wait_min: float
    p95_wait_min: float
    mean_turnaround_min: float
    utilization: float
    makespan_min: float
    #: Fault-tolerance outcomes (all zero on a fault-free platform).
    retries: int = 0
    preemptions: int = 0
    faults: int = 0
    failed: int = 0
    deadline_misses: int = 0
    #: Per-user fairness view over finished jobs: ``{user: {"jobs": n,
    #: "mean_wait_min": w, "service_min": s}}`` — the numbers a
    #: fair-share campaign is judged against.
    by_user: dict = field(default_factory=dict)


class CloudPlatform:
    """Fixed pool of identical servers, priority-FIFO dispatch.

    ``fault_model`` switches on failure injection; ``retry_policy``
    (default :class:`~repro.resil.retry.ExponentialBackoff`) schedules
    re-queued jobs after transient faults and preemptions.
    """

    def __init__(self, servers: int = 4, tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None,
                 fault_model: FaultModel | None = None,
                 retry_policy: RetryPolicy | None = None):
        if servers < 1:
            raise ValueError("need at least one server")
        self.servers = servers
        self.tracer = tracer if tracer is not None else get_tracer()
        #: Platform metrics (queue depth / utilization gauges over
        #: simulated minutes, completion counters) — always collected.
        #: Unlike wall-clock engines, the default registry is *private*:
        #: two simulated platforms must not interleave their series.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.fault_model = fault_model
        self.retry_policy = (
            retry_policy if retry_policy is not None else ExponentialBackoff()
        )
        self._jobs: list[CloudJob] = []

    def submit(self, user: str, duration_min: float, submit_min: float,
               priority: int = 0,
               deadline_min: float | None = None) -> CloudJob:
        if duration_min <= 0:
            raise ValueError("job duration must be positive")
        job = CloudJob(
            job_id=len(self._jobs),
            user=user,
            duration_min=duration_min,
            submit_min=submit_min,
            priority=priority,
            deadline_min=deadline_min,
        )
        self._jobs.append(job)
        return job

    def jobs(self) -> list[CloudJob]:
        """The submitted jobs, in submission order."""
        return list(self._jobs)

    def run(self) -> CloudStats:
        """Simulate to completion and return queueing + fault statistics."""
        sampler = (
            self.fault_model.sampler() if self.fault_model is not None
            else None
        )
        policy = self.retry_policy
        seq = itertools.count()
        # Future queue entries: initial submissions plus retry re-entries.
        arrivals: list[tuple[float, int, int]] = []
        for job in self._jobs:
            heapq.heappush(arrivals, (job.submit_min, next(seq), job.job_id))
        # Min-heap of server-free times, one entry per server.
        free_at = [0.0] * self.servers
        heapq.heapify(free_at)
        queued: list[tuple[int, float, int]] = []  # (priority, submit, id)
        by_id = {j.job_id: j for j in self._jobs}
        now = 0.0
        busy_total = 0.0
        busy_end = 0.0  # last instant any server was executing
        retries = preemptions = faults = 0
        queue_depth = self.metrics.gauge("cloud.queue_depth")
        utilization = self.metrics.gauge("cloud.utilization")

        while arrivals or queued:
            # Advance to the next dispatch opportunity: a free server if
            # work is queued, else the next arrival.
            if queued:
                now = max(now, free_at[0])
            else:
                now = max(now, arrivals[0][0])
            while arrivals and arrivals[0][0] <= now:
                _, _, job_id = heapq.heappop(arrivals)
                job = by_id[job_id]
                heapq.heappush(queued, (job.priority, job.submit_min, job_id))
            queue_depth.set(len(queued), at=now)
            if not queued:
                continue
            server_free = heapq.heappop(free_at)
            _, _, job_id = heapq.heappop(queued)
            job = by_id[job_id]
            exec_start = max(server_free, now)
            job.attempts += 1
            kind, fraction = (
                sampler.draw(job.duration_min) if sampler else ("ok", 1.0)
            )

            if kind == "ok":
                job.start_min = exec_start
                job.finish_min = exec_start + job.duration_min
                job.outcome = "done"
                busy_total += job.duration_min
                busy_end = max(busy_end, job.finish_min)
                heapq.heappush(free_at, job.finish_min)
                # Servers busy the instant this job starts: every pool slot
                # whose free time lies beyond the start is still running.
                busy_now = sum(1 for t in free_at if t > job.start_min)
                utilization.set(busy_now / self.servers, at=job.start_min)
                self._trace_job(job)
                self.metrics.counter("cloud.jobs_completed").inc()
                self.metrics.histogram(
                    "cloud.wait_min", buckets=_WAIT_BUCKETS
                ).observe(job.wait_min)
                continue

            # Fault path: the attempt dies part-way through.
            fault_at = exec_start + fraction * job.duration_min
            busy_total += fraction * job.duration_min
            busy_end = max(busy_end, fault_at)
            faults += 1
            self.metrics.counter(f"cloud.faults.{kind}").inc()
            self._trace_fault(job, exec_start, fault_at, kind)
            if kind == "preempt":
                # Resource reclaimed: the server itself is fine.
                job.preemptions += 1
                preemptions += 1
                heapq.heappush(free_at, fault_at)
            else:
                # Server fault: down for the repair window.
                heapq.heappush(free_at, fault_at + self.fault_model.mttr_min)

            if kind == "fatal":
                job.outcome = "failed"
                self.metrics.counter("cloud.jobs_failed").inc()
                continue
            if policy.gives_up(job.attempts):
                job.outcome = "gave_up"
                self.metrics.counter("cloud.jobs_failed").inc()
                continue
            delay = policy.backoff_min(
                job.attempts, sampler.rng if sampler else None
            )
            eligible = fault_at + delay
            if (policy.deadline_aware and job.deadline_min is not None
                    and eligible + job.duration_min > job.deadline_min):
                # Retrying cannot beat the deadline; stop burning servers.
                job.outcome = "gave_up"
                self.metrics.counter("cloud.jobs_failed").inc()
                continue
            job.retries += 1
            retries += 1
            self.metrics.counter("cloud.retries").inc()
            self._trace_retry(job, fault_at, eligible, delay)
            heapq.heappush(arrivals, (eligible, next(seq), job.job_id))

        return self._stats(busy_total, busy_end, retries, preemptions, faults)

    def _stats(self, busy_total: float, busy_end: float, retries: int,
               preemptions: int, faults: int) -> CloudStats:
        finished = [j for j in self._jobs if j.completed]
        failed = sum(
            1 for j in self._jobs if j.outcome in ("failed", "gave_up")
        )
        deadline_misses = sum(1 for j in self._jobs if j.missed_deadline)
        if not finished:
            return CloudStats(
                0, 0.0, 0.0, 0.0, 0.0, 0.0,
                retries=retries, preemptions=preemptions, faults=faults,
                failed=failed, deadline_misses=deadline_misses,
            )
        waits = sorted(j.wait_min for j in finished)
        makespan = max(j.finish_min for j in finished)
        # Nearest-rank p95: the ceil(0.95 n)-th smallest wait, so n=1
        # yields the only sample and n=20 the 19th — int(0.95 n) was one
        # rank too high whenever 0.95 n was an exact integer.
        rank = math.ceil(0.95 * len(waits))
        p95 = waits[min(len(waits) - 1, rank - 1)]
        # Utilization over the interval servers could actually have been
        # busy: first submission to the last execution event.  Measuring
        # from t=0 overstated idle capacity whenever the first job
        # arrived late.
        first_submit = min(j.submit_min for j in self._jobs)
        window = (max(busy_end, makespan) - first_submit) * self.servers
        by_user: dict[str, dict[str, float]] = {}
        for job in finished:
            row = by_user.setdefault(
                job.user, {"jobs": 0, "mean_wait_min": 0.0, "service_min": 0.0}
            )
            row["jobs"] += 1
            row["mean_wait_min"] += job.wait_min
            row["service_min"] += job.duration_min
        for row in by_user.values():
            row["mean_wait_min"] = round(row["mean_wait_min"] / row["jobs"], 3)
            row["service_min"] = round(row["service_min"], 3)
        return CloudStats(
            jobs=len(finished),
            mean_wait_min=round(sum(waits) / len(waits), 3),
            p95_wait_min=round(p95, 3),
            mean_turnaround_min=round(
                sum(j.turnaround_min for j in finished) / len(finished), 3
            ),
            utilization=round(busy_total / window if window > 0 else 0.0, 4),
            makespan_min=round(makespan, 3),
            retries=retries,
            preemptions=preemptions,
            faults=faults,
            failed=failed,
            deadline_misses=deadline_misses,
            by_user=by_user,
        )

    def _trace_job(self, job: CloudJob) -> None:
        """One span per job over simulated minutes: submit→finish, with
        the service interval (start→finish) as a child span."""
        if not self.tracer.enabled:
            return
        parent = self.tracer.add_span(
            "cloud.job",
            job.submit_min,
            job.finish_min,
            user=job.user,
            job_id=job.job_id,
            priority=job.priority,
            wait_min=round(job.wait_min, 3),
            attempts=job.attempts,
        )
        self.tracer.add_span(
            "cloud.job.run",
            job.start_min,
            job.finish_min,
            parent_id=parent.span_id,
            duration_min=job.duration_min,
        )

    def _trace_fault(self, job: CloudJob, exec_start: float, fault_at: float,
                     kind: str) -> None:
        """The doomed execution attempt, as a simulated-minutes span."""
        if not self.tracer.enabled:
            return
        self.tracer.add_span(
            "cloud.job.fault",
            exec_start,
            fault_at,
            user=job.user,
            job_id=job.job_id,
            kind=kind,
            attempt=job.attempts,
        )

    def _trace_retry(self, job: CloudJob, fault_at: float, eligible: float,
                     delay: float) -> None:
        """The backoff wait between a fault and the re-queue."""
        if not self.tracer.enabled:
            return
        self.tracer.add_span(
            "resil.retry",
            fault_at,
            eligible,
            job_id=job.job_id,
            attempt=job.attempts,
            backoff_min=round(delay, 3),
        )


def estimate_job_minutes(cell_count: int) -> float:
    """Nominal flow runtime from design size (calibrated to small EDA
    jobs: ~15 min base plus ~1 min per 100 cells)."""
    return 15.0 + cell_count / 100.0
