"""Cloud execution platform: a discrete-event job-queue simulator.

Recommendation 7: centralized, cloud-based enablement infrastructure with
"scalable computing resources for chip design tasks".  This simulator
answers the capacity-planning questions such a platform raises: queueing
delay vs number of servers, utilization, and deadline risk for course
assignments — numbers the E6/E8 benchmarks report.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field


@dataclass
class CloudJob:
    """One flow execution request."""

    job_id: int
    user: str
    #: Nominal compute time in minutes (e.g. from design size).
    duration_min: float
    submit_min: float
    priority: int = 0  # lower runs first among queued jobs
    start_min: float | None = None
    finish_min: float | None = None

    @property
    def wait_min(self) -> float:
        if self.start_min is None:
            return 0.0
        return self.start_min - self.submit_min

    @property
    def turnaround_min(self) -> float:
        if self.finish_min is None:
            return 0.0
        return self.finish_min - self.submit_min


@dataclass
class CloudStats:
    jobs: int
    mean_wait_min: float
    p95_wait_min: float
    mean_turnaround_min: float
    utilization: float
    makespan_min: float


class CloudPlatform:
    """Fixed pool of identical servers, priority-FIFO dispatch."""

    def __init__(self, servers: int = 4):
        if servers < 1:
            raise ValueError("need at least one server")
        self.servers = servers
        self._jobs: list[CloudJob] = []

    def submit(self, user: str, duration_min: float, submit_min: float,
               priority: int = 0) -> CloudJob:
        if duration_min <= 0:
            raise ValueError("job duration must be positive")
        job = CloudJob(
            job_id=len(self._jobs),
            user=user,
            duration_min=duration_min,
            submit_min=submit_min,
            priority=priority,
        )
        self._jobs.append(job)
        return job

    def run(self) -> CloudStats:
        """Simulate to completion and return queueing statistics."""
        pending = sorted(self._jobs, key=lambda j: j.submit_min)
        # Min-heap of server-free times, one entry per server.
        free_at = [0.0] * self.servers
        heapq.heapify(free_at)
        queued: list[tuple[int, float, int]] = []  # (priority, submit, id)
        by_id = {j.job_id: j for j in self._jobs}
        index = 0
        now = 0.0
        busy_total = 0.0

        while index < len(pending) or queued:
            # Admit everything submitted by the earliest server-free time.
            horizon = free_at[0] if queued or index >= len(pending) else max(
                free_at[0], pending[index].submit_min
            )
            now = max(now, horizon)
            while index < len(pending) and pending[index].submit_min <= now:
                job = pending[index]
                heapq.heappush(queued, (job.priority, job.submit_min, job.job_id))
                index += 1
            if not queued:
                continue
            server_free = heapq.heappop(free_at)
            _, _, job_id = heapq.heappop(queued)
            job = by_id[job_id]
            job.start_min = max(server_free, job.submit_min, now)
            job.finish_min = job.start_min + job.duration_min
            busy_total += job.duration_min
            heapq.heappush(free_at, job.finish_min)

        finished = [j for j in self._jobs if j.finish_min is not None]
        if not finished:
            return CloudStats(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        waits = sorted(j.wait_min for j in finished)
        makespan = max(j.finish_min for j in finished)
        p95 = waits[min(len(waits) - 1, int(0.95 * len(waits)))]
        return CloudStats(
            jobs=len(finished),
            mean_wait_min=round(sum(waits) / len(waits), 3),
            p95_wait_min=round(p95, 3),
            mean_turnaround_min=round(
                sum(j.turnaround_min for j in finished) / len(finished), 3
            ),
            utilization=round(
                busy_total / (self.servers * makespan) if makespan else 0.0, 4
            ),
            makespan_min=round(makespan, 3),
        )


def estimate_job_minutes(cell_count: int) -> float:
    """Nominal flow runtime from design size (calibrated to small EDA
    jobs: ~15 min base plus ~1 min per 100 cells)."""
    return 15.0 + cell_count / 100.0
