"""Cloud execution platform: a discrete-event job-queue simulator.

Recommendation 7: centralized, cloud-based enablement infrastructure with
"scalable computing resources for chip design tasks".  This simulator
answers the capacity-planning questions such a platform raises: queueing
delay vs number of servers, utilization, and deadline risk for course
assignments — numbers the E6/E8 benchmarks report.

The simulator is observable (:mod:`repro.obs`): each completed job
becomes a ``cloud.job`` span over *simulated* minutes (with a nested
``cloud.job.run`` span for its service time), and queue depth /
instantaneous utilization are recorded as gauge series keyed by
simulated time, so a trace renders the platform's congestion history.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass

from ..obs.metrics import MetricsRegistry
from ..obs.trace import Tracer, get_tracer


@dataclass
class CloudJob:
    """One flow execution request."""

    job_id: int
    user: str
    #: Nominal compute time in minutes (e.g. from design size).
    duration_min: float
    submit_min: float
    priority: int = 0  # lower runs first among queued jobs
    start_min: float | None = None
    finish_min: float | None = None

    @property
    def wait_min(self) -> float:
        if self.start_min is None:
            return 0.0
        return self.start_min - self.submit_min

    @property
    def turnaround_min(self) -> float:
        if self.finish_min is None:
            return 0.0
        return self.finish_min - self.submit_min


@dataclass
class CloudStats:
    jobs: int
    mean_wait_min: float
    p95_wait_min: float
    mean_turnaround_min: float
    utilization: float
    makespan_min: float


class CloudPlatform:
    """Fixed pool of identical servers, priority-FIFO dispatch."""

    def __init__(self, servers: int = 4, tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None):
        if servers < 1:
            raise ValueError("need at least one server")
        self.servers = servers
        self.tracer = tracer if tracer is not None else get_tracer()
        #: Platform metrics (queue depth / utilization gauges over
        #: simulated minutes, completion counters) — always collected;
        #: the registry is cheap and private to this platform.
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._jobs: list[CloudJob] = []

    def submit(self, user: str, duration_min: float, submit_min: float,
               priority: int = 0) -> CloudJob:
        if duration_min <= 0:
            raise ValueError("job duration must be positive")
        job = CloudJob(
            job_id=len(self._jobs),
            user=user,
            duration_min=duration_min,
            submit_min=submit_min,
            priority=priority,
        )
        self._jobs.append(job)
        return job

    def run(self) -> CloudStats:
        """Simulate to completion and return queueing statistics."""
        pending = sorted(self._jobs, key=lambda j: j.submit_min)
        # Min-heap of server-free times, one entry per server.
        free_at = [0.0] * self.servers
        heapq.heapify(free_at)
        queued: list[tuple[int, float, int]] = []  # (priority, submit, id)
        by_id = {j.job_id: j for j in self._jobs}
        index = 0
        now = 0.0
        busy_total = 0.0
        queue_depth = self.metrics.gauge("cloud.queue_depth")
        utilization = self.metrics.gauge("cloud.utilization")

        while index < len(pending) or queued:
            # Admit everything submitted by the earliest server-free time.
            horizon = free_at[0] if queued or index >= len(pending) else max(
                free_at[0], pending[index].submit_min
            )
            now = max(now, horizon)
            while index < len(pending) and pending[index].submit_min <= now:
                job = pending[index]
                heapq.heappush(queued, (job.priority, job.submit_min, job.job_id))
                index += 1
            queue_depth.set(len(queued), at=now)
            if not queued:
                continue
            server_free = heapq.heappop(free_at)
            _, _, job_id = heapq.heappop(queued)
            job = by_id[job_id]
            job.start_min = max(server_free, job.submit_min, now)
            job.finish_min = job.start_min + job.duration_min
            busy_total += job.duration_min
            heapq.heappush(free_at, job.finish_min)
            # Servers busy the instant this job starts: every pool slot
            # whose free time lies beyond the start is still running.
            busy_now = sum(1 for t in free_at if t > job.start_min)
            utilization.set(busy_now / self.servers, at=job.start_min)
            self._trace_job(job)
            self.metrics.counter("cloud.jobs_completed").inc()
            self.metrics.histogram(
                "cloud.wait_min",
                buckets=(0.5, 1, 2, 5, 10, 20, 60, 120, 480),
            ).observe(job.wait_min)

        finished = [j for j in self._jobs if j.finish_min is not None]
        if not finished:
            return CloudStats(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        waits = sorted(j.wait_min for j in finished)
        makespan = max(j.finish_min for j in finished)
        # Nearest-rank p95: the ceil(0.95 n)-th smallest wait, so n=1
        # yields the only sample and n=20 the 19th — int(0.95 n) was one
        # rank too high whenever 0.95 n was an exact integer.
        rank = math.ceil(0.95 * len(waits))
        p95 = waits[min(len(waits) - 1, rank - 1)]
        return CloudStats(
            jobs=len(finished),
            mean_wait_min=round(sum(waits) / len(waits), 3),
            p95_wait_min=round(p95, 3),
            mean_turnaround_min=round(
                sum(j.turnaround_min for j in finished) / len(finished), 3
            ),
            utilization=round(
                busy_total / (self.servers * makespan) if makespan else 0.0, 4
            ),
            makespan_min=round(makespan, 3),
        )

    def _trace_job(self, job: CloudJob) -> None:
        """One span per job over simulated minutes: submit→finish, with
        the service interval (start→finish) as a child span."""
        if not self.tracer.enabled:
            return
        parent = self.tracer.add_span(
            "cloud.job",
            job.submit_min,
            job.finish_min,
            user=job.user,
            job_id=job.job_id,
            priority=job.priority,
            wait_min=round(job.wait_min, 3),
        )
        self.tracer.add_span(
            "cloud.job.run",
            job.start_min,
            job.finish_min,
            parent_id=parent.span_id,
            duration_min=job.duration_min,
        )


def estimate_job_minutes(cell_count: int) -> float:
    """Nominal flow runtime from design size (calibrated to small EDA
    jobs: ~15 min base plus ~1 min per 100 cells)."""
    return 15.0 + cell_count / 100.0
