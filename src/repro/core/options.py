"""The flow request object: every knob of one RTL→GDSII run.

``run_flow`` grew nine-and-counting keyword knobs (preset, clock, DRC
strictness, seed, lint waivers, …) and each caller — the hub, the CLI,
the shuttle tape-out path — re-declared its own subset.  A frozen
:class:`FlowOptions` consolidates them: one value-typed request that can
be stored on a job record, hashed into a checkpoint key, copied with
overrides and forwarded verbatim across layers.

Dependency injection stays *out* of the request: ``tracer=`` and
``metrics=`` remain explicit parameters on the entry points (see
DESIGN.md "Dependency-injection convention"), because observability
backends are ambient infrastructure, not part of what is being asked
for.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..lint import Waiver
from ..resil.checkpoint import CheckpointStore
from ..resil.faults import FaultInjector
from .presets import OPEN, FlowPreset, get_preset


@dataclass(frozen=True)
class FlowOptions:
    """Everything one flow run can be asked to do.

    ``preset`` accepts either a :class:`FlowPreset` or its registry name
    (``"open"`` / ``"commercial"``).  The resilience knobs:

    * ``continue_on_error`` — a failing stage records a structured
      :class:`~repro.resil.failure.FlowFailure` instead of raising, and
      every downstream stage that can still run does (partial results
      for students, not stack traces);
    * ``checkpoints`` / ``resume`` — per-stage checkpointing keyed by a
      content hash of (RTL, PDK, preset, seed); a resumed flow skips
      completed stages and reproduces the cold run byte-for-byte;
    * ``inject`` — a deterministic fault drill for testing degradation
      and resume paths.
    """

    preset: FlowPreset = OPEN
    clock_period_ps: float = 5_000.0
    frequency_mhz: float | None = None
    strict_drc: bool = True
    seed: int = 1
    lint_waivers: tuple[Waiver, ...] = ()
    strict_lint: bool = False
    #: Run SAT-based logic equivalence checking (repro.formal) after
    #: synthesis: RTL vs lowered, optimized and mapped netlists.  A
    #: counterexample fails the flow at stage ``formal_lec``.
    formal_lec: bool = False
    #: Run GDS-in signoff (repro.extract) after GDS export: re-extract
    #: the netlist from the stream bytes, compare connectivity against
    #: the mapped netlist and prove equivalence with the LEC miter.  Any
    #: mismatch fails the flow at stage ``extract_lvs``.
    extract_lvs: bool = False
    # -- resilience ---------------------------------------------------------
    continue_on_error: bool = False
    checkpoints: CheckpointStore | None = field(
        default=None, compare=False, repr=False
    )
    resume: bool = True
    inject: FaultInjector | None = field(
        default=None, compare=False, repr=False
    )
    #: Incremental-compilation engine session (:mod:`repro.inter`).  Like
    #: ``checkpoints``/``inject`` this is injected machinery, not part of
    #: the request identity: the flow consults it for memoized per-module
    #: synthesis/lint and verified-replay routing, and every engine is
    #: deterministic-modulo-memo, so a warm session and a cold one produce
    #: byte-identical results for the same design.
    eco: object | None = field(default=None, compare=False, repr=False)

    def __post_init__(self):
        if isinstance(self.preset, str):
            object.__setattr__(self, "preset", get_preset(self.preset))
        object.__setattr__(self, "lint_waivers", tuple(self.lint_waivers))
        if self.clock_period_ps <= 0:
            raise ValueError("clock period must be positive")

    def with_overrides(self, **kwargs) -> "FlowOptions":
        """A copy with selected knobs changed."""
        return replace(self, **kwargs)

    def replace(self, **kwargs) -> "FlowOptions":
        """A copy with selected knobs changed (alias of
        :meth:`with_overrides`, mirroring :func:`dataclasses.replace`)."""
        return replace(self, **kwargs)
