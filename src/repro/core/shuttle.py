"""MPW shuttle program: seat aggregation, pricing, turnaround.

Models the Europractice/TinyTapeout mechanics the paper discusses
(Sections I, III-C, Recommendation 6): periodic multi-project-wafer runs
share one mask set across many small projects; seat price follows the
occupied area; fab + packaging turnaround routinely exceeds a teaching
term.  Sponsorship (the Efabless Open MPW model) can zero the seat price
for qualifying academic projects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs.metrics import MetricsRegistry
from ..obs.trace import get_tracer
from ..pdk.pdks import Pdk


@dataclass
class ShuttleProject:
    """One design occupying a seat on a shuttle run."""

    name: str
    owner: str
    area_mm2: float
    sponsored: bool = False
    run_index: int | None = None

    def __post_init__(self):
        if self.area_mm2 <= 0:
            raise ValueError("project area must be positive")


@dataclass
class ShuttleRun:
    """One MPW launch."""

    index: int
    launch_day: int
    capacity_mm2: float
    projects: list[ShuttleProject] = field(default_factory=list)

    @property
    def used_mm2(self) -> float:
        return sum(p.area_mm2 for p in self.projects)

    @property
    def fill_fraction(self) -> float:
        return self.used_mm2 / self.capacity_mm2

    def fits(self, project: ShuttleProject) -> bool:
        return self.used_mm2 + project.area_mm2 <= self.capacity_mm2


@dataclass
class SeatQuote:
    """Price and schedule for one project on one run."""

    project: str
    run_index: int
    launch_day: int
    chips_back_day: int
    seat_cost_eur: float
    sponsored: bool

    @property
    def turnaround_days(self) -> int:
        return self.chips_back_day


class ShuttleProgram:
    """A recurring MPW shuttle on one PDK."""

    def __init__(
        self,
        pdk: Pdk,
        runs_per_year: int = 4,
        capacity_mm2: float = 50.0,
        sponsorship_fund_eur: float = 0.0,
        tracer=None,
        metrics: MetricsRegistry | None = None,
    ):
        if runs_per_year < 1:
            raise ValueError("need at least one run per year")
        self.pdk = pdk
        self.runs_per_year = runs_per_year
        self.capacity_mm2 = capacity_mm2
        self.sponsorship_fund_eur = sponsorship_fund_eur
        self.tracer = tracer if tracer is not None else get_tracer()
        # Like CloudPlatform, the shuttle runs on its own simulated clock
        # (days); a private registry keeps its series from interleaving
        # with wall-clock process metrics (see DESIGN.md, DI convention).
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.runs: list[ShuttleRun] = []
        self._extend_calendar(4)

    def _extend_calendar(self, count: int) -> None:
        interval = 365 // self.runs_per_year
        start = len(self.runs)
        for i in range(start, start + count):
            self.runs.append(
                ShuttleRun(index=i, launch_day=(i + 1) * interval,
                           capacity_mm2=self.capacity_mm2)
            )

    def seat_price_eur(self, area_mm2: float) -> float:
        """Academic seat price: per-mm2 price with a minimum of 1 mm2."""
        return self.pdk.terms.mpw_cost_per_mm2_eur * max(area_mm2, 1.0)

    def submit(
        self, project: ShuttleProject, ready_day: int = 0
    ) -> SeatQuote:
        """Book the earliest run launching on/after ``ready_day`` with room.

        Sponsored projects draw the seat price from the sponsorship fund
        while it lasts (the Efabless Open MPW mechanism).
        """
        run = None
        while run is None:
            for candidate in self.runs:
                if candidate.launch_day >= ready_day and candidate.fits(project):
                    run = candidate
                    break
            if run is None:
                self._extend_calendar(4)
        project.run_index = run.index
        run.projects.append(project)

        price = self.seat_price_eur(project.area_mm2)
        sponsored = False
        if project.sponsored and self.sponsorship_fund_eur >= price:
            self.sponsorship_fund_eur -= price
            sponsored = True
            price = 0.0
        chips_back = run.launch_day + self.pdk.terms.total_turnaround_days
        # One span per booked seat, on the simulated day clock: wait for
        # the launch, then fab + packaging turnaround.
        self.tracer.add_span(
            "shuttle.seat", float(ready_day), float(chips_back),
            project=project.name, run_index=run.index,
            launch_day=run.launch_day, sponsored=sponsored,
            area_mm2=project.area_mm2,
        )
        self.metrics.counter("shuttle.seats").inc()
        if sponsored:
            self.metrics.counter("shuttle.sponsored_seats").inc()
        self.metrics.gauge("shuttle.fund_eur").set(self.sponsorship_fund_eur)
        self.metrics.histogram(
            "shuttle.turnaround_days", buckets=(90, 120, 180, 270, 365, 540)
        ).observe(chips_back - ready_day)
        return SeatQuote(
            project=project.name,
            run_index=run.index,
            launch_day=run.launch_day,
            chips_back_day=chips_back,
            seat_cost_eur=round(price, 2),
            sponsored=sponsored,
        )

    def full_run_cost_eur(self) -> float:
        """What a dedicated (non-shared) run would cost: the mask set."""
        return self.pdk.terms.mask_set_cost_eur

    def sharing_factor(self, area_mm2: float) -> float:
        """Cost advantage of the shared run over a dedicated mask set."""
        return self.full_run_cost_eur() / self.seat_price_eur(area_mm2)

    def meets_deadline(self, quote: SeatQuote, deadline_day: int) -> bool:
        """Do packaged chips arrive before e.g. the end of a course?"""
        return quote.chips_back_day <= deadline_day
