"""The end-to-end flow runner: RTL module → signed-off GDSII.

This is the "design enablement" artifact the paper argues universities
lack: a *configured* flow where one call takes a design from RTL through
synthesis, P&R, STA, power, DRC and GDS export on a chosen PDK, with all
tool knobs captured in a :class:`~repro.core.presets.FlowPreset`.

Every stage runs inside a tracing span (:mod:`repro.obs`): step runtimes
in the :class:`StepReport` list are *derived from the spans*, so they are
non-overlapping by construction and sum to ≈ the flow's wall time —
previously SYNTHESIS / TECHNOLOGY_MAPPING / EQUIVALENCE_CHECK (and the
four backend steps) shared one timer start and double-counted.  Pass
``tracer=`` (or install one with :func:`repro.obs.set_tracer`) to keep
the full trace, including sub-stage spans, as a JSONL artifact.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hdl.ir import Module
from ..layout.chip import build_chip_gds
from ..layout.drc import DrcReport, check_drc
from ..layout.gds import write_gds
from ..lint import LintReport, Waiver, lint_mapped, lint_module
from ..obs.metrics import get_metrics
from ..obs.trace import Span, Tracer, get_tracer
from ..pdk.pdks import Pdk
from ..pnr.physical import PhysicalDesign, implement
from ..power.engine import PowerAnalyzer, PowerReport
from ..sta.engine import TimingAnalyzer, TimingReport
from ..synth.synthesize import SynthesisResult, synthesize
from .presets import OPEN, FlowPreset
from .steps import FlowStep


class FlowError(Exception):
    """Raised when a flow stage fails hard (e.g. DRC violations)."""


@dataclass
class StepReport:
    step: FlowStep
    ok: bool
    runtime_s: float
    metrics: dict[str, object] = field(default_factory=dict)


@dataclass
class PpaSummary:
    """The three letters every comparison in the paper reduces to."""

    area_um2: float
    die_area_mm2: float
    fmax_mhz: float
    total_power_uw: float
    wns_ps: float
    cell_count: int

    def as_row(self) -> dict[str, float]:
        return {
            "cells": self.cell_count,
            "area_um2": round(self.area_um2, 2),
            "die_mm2": round(self.die_area_mm2, 6),
            "fmax_mhz": round(self.fmax_mhz, 2),
            "power_uw": round(self.total_power_uw, 3),
            "wns_ps": round(self.wns_ps, 2),
        }


@dataclass
class FlowResult:
    """Everything one flow run produces."""

    design_name: str
    pdk_name: str
    preset: FlowPreset
    clock_period_ps: float
    steps: list[StepReport]
    synthesis: SynthesisResult
    physical: PhysicalDesign
    timing: TimingReport
    power: PowerReport
    drc: DrcReport
    gds_bytes: bytes
    ppa: PpaSummary
    #: The run's finished spans (completion order) — a trace artifact.
    trace: list[Span] = field(default_factory=list)
    #: Static-analysis verdict: RTL lint (pre-synthesis) merged with
    #: netlist lint (post-mapping).  Signoff gates on unwaived errors.
    lint: LintReport | None = None

    @property
    def ok(self) -> bool:
        return all(step.ok for step in self.steps)

    def step(self, step: FlowStep) -> StepReport:
        for report in self.steps:
            if report.step is step:
                return report
        raise KeyError(f"no report for step {step}")

    def summary(self) -> str:
        status = "OK" if self.ok else "FAILED"
        row = self.ppa.as_row()
        return (
            f"{self.design_name} on {self.pdk_name} [{self.preset.name}] "
            f"{status}: {row['cells']} cells, {row['area_um2']} um2, "
            f"fmax {row['fmax_mhz']} MHz, {row['power_uw']} uW"
        )


#: FlowSteps whose spans are opened inside synthesize()/implement().
_STAGE_SPAN_NAMES = {step: f"step.{step.value}" for step in FlowStep}


def run_flow(
    module: Module,
    pdk: Pdk,
    preset: FlowPreset = OPEN,
    clock_period_ps: float = 5_000.0,
    frequency_mhz: float | None = None,
    strict_drc: bool = True,
    seed: int = 1,
    tracer: Tracer | None = None,
    lint_waivers: tuple[Waiver, ...] = (),
    strict_lint: bool = False,
) -> FlowResult:
    """Run the complete RTL→GDSII flow.

    ``frequency_mhz`` defaults to the clock the period implies.  With
    ``strict_drc`` any DRC violation raises :class:`FlowError` (signoff
    semantics); otherwise violations are recorded in the report.

    The linter runs twice — over the RTL before synthesis and over the
    mapped netlist after technology mapping — and the merged report
    lands on :attr:`FlowResult.lint`.  Lint is advisory by default;
    ``strict_lint`` raises :class:`FlowError` on any ``error`` finding
    not covered by ``lint_waivers``.

    ``tracer`` collects the run's spans; when omitted the process-wide
    tracer is used if one is installed, else a private tracer records
    stage spans locally (step runtimes always come from spans) without
    publishing anything.  The spans of this run are returned on
    :attr:`FlowResult.trace`.
    """
    if tracer is None:
        tracer = get_tracer()
    if not tracer.enabled:
        # Step timing is span-derived even when the caller asked for no
        # tracing; a private tracer keeps the no-op default truly free
        # for direct engine calls while the flow still measures itself.
        tracer = Tracer()
    metrics = get_metrics()
    mark = tracer.mark()
    steps: list[StepReport] = []

    def record(step: FlowStep, span: Span | None, **step_metrics) -> None:
        """One StepReport whose runtime is the step span's duration."""
        ok = step_metrics.pop("_ok", True)
        runtime_s = span.duration_s if span is not None else 0.0
        if span is not None:
            span.set(**step_metrics)
        steps.append(StepReport(step, ok, round(runtime_s, 6), step_metrics))
        metrics.counter(f"flow.steps.{step.value}").inc()
        metrics.histogram("flow.step_seconds").observe(runtime_s)

    def stage_span(step: FlowStep) -> Span | None:
        """The span a nested engine opened for ``step`` during this run."""
        return tracer.find(_STAGE_SPAN_NAMES[step], mark)

    with tracer.span(
        "flow", design=module.name, pdk=pdk.name, preset=preset.name,
        clock_period_ps=clock_period_ps,
    ) as flow_span:
        with tracer.span("step.rtl_design") as sp:
            module.validate()
        record(FlowStep.RTL_DESIGN, sp, **module.stats())

        # Pre-synthesis quality gate: advisory RTL lint.
        rtl_lint = lint_module(module, waivers=lint_waivers, tracer=tracer)

        synth = synthesize(
            module,
            pdk.library,
            objective=preset.mapping_objective,
            opt_passes=preset.opt_passes,
            sizing=preset.gate_sizing,
            max_load_per_drive_ff=preset.max_load_per_drive_ff,
            verify=preset.run_equivalence,
            verify_cycles=preset.equivalence_cycles,
            tracer=tracer,
        )
        record(
            FlowStep.SYNTHESIS, stage_span(FlowStep.SYNTHESIS),
            gates_raw=synth.opt_stats.gates_before,
            gates_optimized=synth.opt_stats.gates_after,
        )
        record(
            FlowStep.TECHNOLOGY_MAPPING,
            stage_span(FlowStep.TECHNOLOGY_MAPPING),
            cells=len(synth.mapped.cells),
        )
        equivalence_ok = (
            synth.equivalence.passed if synth.equivalence is not None else True
        )
        record(
            FlowStep.EQUIVALENCE_CHECK,
            stage_span(FlowStep.EQUIVALENCE_CHECK),
            _ok=equivalence_ok,
            checked=synth.equivalence is not None,
        )
        if not equivalence_ok:
            raise FlowError(
                f"synthesis equivalence check failed: "
                f"{synth.equivalence.mismatches[:3]}"
            )

        # Post-mapping quality gate: netlist lint over the mapped design.
        lint_report = rtl_lint.merge(
            lint_mapped(synth.mapped, waivers=lint_waivers, tracer=tracer)
        )
        if strict_lint and not lint_report.clean:
            first = lint_report.errors[0]
            raise FlowError(
                f"lint failed with {len(lint_report.errors)} error "
                f"finding(s), first: {first.rule} at "
                f"{first.target}.{first.location}: {first.message}"
            )

        physical = implement(
            synth.mapped,
            pdk,
            utilization=preset.utilization,
            detailed_placement_passes=preset.detailed_placement_passes,
            cts_buffering=preset.cts_buffering,
            router_rip_up=preset.router_rip_up,
            placer=preset.placer,
            seed=seed,
            tracer=tracer,
        )
        record(FlowStep.FLOORPLANNING, stage_span(FlowStep.FLOORPLANNING),
               **physical.floorplan.stats())
        record(FlowStep.PLACEMENT, stage_span(FlowStep.PLACEMENT),
               hpwl_um=physical.placement.hpwl_um)
        record(FlowStep.CLOCK_TREE_SYNTHESIS,
               stage_span(FlowStep.CLOCK_TREE_SYNTHESIS),
               **physical.clock_tree.stats())
        record(FlowStep.ROUTING, stage_span(FlowStep.ROUTING),
               **physical.routing.stats())

        with tracer.span("step.static_timing_analysis") as sp:
            analyzer = TimingAnalyzer(
                synth.mapped,
                pdk.node,
                wire_lengths_um=physical.wire_lengths(),
                skew_ps=physical.clock_tree.skew_map(),
                tracer=tracer,
            )
            timing = analyzer.analyze(clock_period_ps)
        record(
            FlowStep.STATIC_TIMING_ANALYSIS, sp,
            wns_ps=timing.wns_ps, met=timing.met, fmax_mhz=timing.fmax_mhz,
        )

        with tracer.span("step.power_analysis") as sp:
            freq = frequency_mhz or min(timing.fmax_mhz, 1e6 / clock_period_ps)
            power = PowerAnalyzer(
                synth.mapped, pdk.node,
                wire_lengths_um=physical.wire_lengths(),
                tracer=tracer,
            ).analyze(freq)
        record(FlowStep.POWER_ANALYSIS, sp, total_uw=power.total_uw)

        with tracer.span("step.design_rule_check") as sp:
            gds_library = build_chip_gds(physical)
            drc = check_drc(gds_library, pdk.layers, physical.mapped.name,
                            tracer=tracer)
        record(FlowStep.DESIGN_RULE_CHECK, sp, _ok=drc.clean,
               violations=len(drc.violations))
        if strict_drc and not drc.clean:
            raise FlowError(f"DRC failed: {drc.summary()}")

        with tracer.span("step.gds_export") as sp:
            gds_bytes = write_gds(gds_library)
        record(FlowStep.GDS_EXPORT, sp, bytes=len(gds_bytes))

        flow_span.set(ok=all(step.ok for step in steps))

    metrics.counter("flow.runs").inc()
    metrics.histogram("flow.run_seconds").observe(flow_span.duration_s)

    ppa = PpaSummary(
        area_um2=synth.mapped.area_um2(),
        die_area_mm2=physical.die_area_mm2,
        fmax_mhz=timing.fmax_mhz,
        total_power_uw=power.total_uw,
        wns_ps=timing.wns_ps,
        cell_count=len(synth.mapped.cells),
    )
    return FlowResult(
        design_name=module.name,
        pdk_name=pdk.name,
        preset=preset,
        clock_period_ps=clock_period_ps,
        steps=steps,
        synthesis=synth,
        physical=physical,
        timing=timing,
        power=power,
        drc=drc,
        gds_bytes=gds_bytes,
        ppa=ppa,
        trace=tracer.since(mark),
        lint=lint_report,
    )
