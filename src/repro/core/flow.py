"""The end-to-end flow runner: RTL module → signed-off GDSII.

This is the "design enablement" artifact the paper argues universities
lack: a *configured* flow where one call takes a design from RTL through
synthesis, P&R, STA, power, DRC and GDS export on a chosen PDK, with all
tool knobs captured in a :class:`~repro.core.presets.FlowPreset`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..hdl.ir import Module
from ..layout.chip import build_chip_gds
from ..layout.drc import DrcReport, check_drc
from ..layout.gds import write_gds
from ..pdk.pdks import Pdk
from ..pnr.physical import PhysicalDesign, implement
from ..power.engine import PowerAnalyzer, PowerReport
from ..sta.engine import TimingAnalyzer, TimingReport
from ..synth.synthesize import SynthesisResult, synthesize
from .presets import OPEN, FlowPreset
from .steps import FlowStep


class FlowError(Exception):
    """Raised when a flow stage fails hard (e.g. DRC violations)."""


@dataclass
class StepReport:
    step: FlowStep
    ok: bool
    runtime_s: float
    metrics: dict[str, object] = field(default_factory=dict)


@dataclass
class PpaSummary:
    """The three letters every comparison in the paper reduces to."""

    area_um2: float
    die_area_mm2: float
    fmax_mhz: float
    total_power_uw: float
    wns_ps: float
    cell_count: int

    def as_row(self) -> dict[str, float]:
        return {
            "cells": self.cell_count,
            "area_um2": round(self.area_um2, 2),
            "die_mm2": round(self.die_area_mm2, 6),
            "fmax_mhz": round(self.fmax_mhz, 2),
            "power_uw": round(self.total_power_uw, 3),
            "wns_ps": round(self.wns_ps, 2),
        }


@dataclass
class FlowResult:
    """Everything one flow run produces."""

    design_name: str
    pdk_name: str
    preset: FlowPreset
    clock_period_ps: float
    steps: list[StepReport]
    synthesis: SynthesisResult
    physical: PhysicalDesign
    timing: TimingReport
    power: PowerReport
    drc: DrcReport
    gds_bytes: bytes
    ppa: PpaSummary

    @property
    def ok(self) -> bool:
        return all(step.ok for step in self.steps)

    def step(self, step: FlowStep) -> StepReport:
        for report in self.steps:
            if report.step is step:
                return report
        raise KeyError(f"no report for step {step}")

    def summary(self) -> str:
        status = "OK" if self.ok else "FAILED"
        row = self.ppa.as_row()
        return (
            f"{self.design_name} on {self.pdk_name} [{self.preset.name}] "
            f"{status}: {row['cells']} cells, {row['area_um2']} um2, "
            f"fmax {row['fmax_mhz']} MHz, {row['power_uw']} uW"
        )


def run_flow(
    module: Module,
    pdk: Pdk,
    preset: FlowPreset = OPEN,
    clock_period_ps: float = 5_000.0,
    frequency_mhz: float | None = None,
    strict_drc: bool = True,
    seed: int = 1,
) -> FlowResult:
    """Run the complete RTL→GDSII flow.

    ``frequency_mhz`` defaults to the clock the period implies.  With
    ``strict_drc`` any DRC violation raises :class:`FlowError` (signoff
    semantics); otherwise violations are recorded in the report.
    """
    steps: list[StepReport] = []

    def record(step: FlowStep, started: float, **metrics) -> None:
        steps.append(
            StepReport(step, metrics.pop("_ok", True),
                       round(time.perf_counter() - started, 6), metrics)
        )

    t0 = time.perf_counter()
    module.validate()
    record(FlowStep.RTL_DESIGN, t0, **module.stats())

    t0 = time.perf_counter()
    synth = synthesize(
        module,
        pdk.library,
        objective=preset.mapping_objective,
        opt_passes=preset.opt_passes,
        sizing=preset.gate_sizing,
        max_load_per_drive_ff=preset.max_load_per_drive_ff,
        verify=preset.run_equivalence,
        verify_cycles=preset.equivalence_cycles,
    )
    record(
        FlowStep.SYNTHESIS, t0,
        gates_raw=synth.opt_stats.gates_before,
        gates_optimized=synth.opt_stats.gates_after,
    )
    record(FlowStep.TECHNOLOGY_MAPPING, t0, cells=len(synth.mapped.cells))
    equivalence_ok = (
        synth.equivalence.passed if synth.equivalence is not None else True
    )
    record(FlowStep.EQUIVALENCE_CHECK, t0, _ok=equivalence_ok,
           checked=synth.equivalence is not None)
    if not equivalence_ok:
        raise FlowError(
            f"synthesis equivalence check failed: "
            f"{synth.equivalence.mismatches[:3]}"
        )

    t0 = time.perf_counter()
    physical = implement(
        synth.mapped,
        pdk,
        utilization=preset.utilization,
        detailed_placement_passes=preset.detailed_placement_passes,
        cts_buffering=preset.cts_buffering,
        router_rip_up=preset.router_rip_up,
        placer=preset.placer,
        seed=seed,
    )
    record(FlowStep.FLOORPLANNING, t0, **physical.floorplan.stats())
    record(FlowStep.PLACEMENT, t0, hpwl_um=physical.placement.hpwl_um)
    record(FlowStep.CLOCK_TREE_SYNTHESIS, t0, **physical.clock_tree.stats())
    record(FlowStep.ROUTING, t0, **physical.routing.stats())

    t0 = time.perf_counter()
    analyzer = TimingAnalyzer(
        synth.mapped,
        pdk.node,
        wire_lengths_um=physical.wire_lengths(),
        skew_ps=physical.clock_tree.skew_map(),
    )
    timing = analyzer.analyze(clock_period_ps)
    record(
        FlowStep.STATIC_TIMING_ANALYSIS, t0,
        wns_ps=timing.wns_ps, met=timing.met, fmax_mhz=timing.fmax_mhz,
    )

    t0 = time.perf_counter()
    freq = frequency_mhz or min(timing.fmax_mhz, 1e6 / clock_period_ps)
    power = PowerAnalyzer(
        synth.mapped, pdk.node, wire_lengths_um=physical.wire_lengths()
    ).analyze(freq)
    record(FlowStep.POWER_ANALYSIS, t0, total_uw=power.total_uw)

    t0 = time.perf_counter()
    gds_library = build_chip_gds(physical)
    drc = check_drc(gds_library, pdk.layers, physical.mapped.name)
    record(FlowStep.DESIGN_RULE_CHECK, t0, _ok=drc.clean,
           violations=len(drc.violations))
    if strict_drc and not drc.clean:
        raise FlowError(f"DRC failed: {drc.summary()}")

    t0 = time.perf_counter()
    gds_bytes = write_gds(gds_library)
    record(FlowStep.GDS_EXPORT, t0, bytes=len(gds_bytes))

    ppa = PpaSummary(
        area_um2=synth.mapped.area_um2(),
        die_area_mm2=physical.die_area_mm2,
        fmax_mhz=timing.fmax_mhz,
        total_power_uw=power.total_uw,
        wns_ps=timing.wns_ps,
        cell_count=len(synth.mapped.cells),
    )
    return FlowResult(
        design_name=module.name,
        pdk_name=pdk.name,
        preset=preset,
        clock_period_ps=clock_period_ps,
        steps=steps,
        synthesis=synth,
        physical=physical,
        timing=timing,
        power=power,
        drc=drc,
        gds_bytes=gds_bytes,
        ppa=ppa,
    )
