"""The end-to-end flow runner: RTL module → signed-off GDSII.

This is the "design enablement" artifact the paper argues universities
lack: a *configured* flow where one call takes a design from RTL through
synthesis, P&R, STA, power, DRC and GDS export on a chosen PDK, with all
knobs captured in one frozen :class:`~repro.core.options.FlowOptions`
request::

    run_flow(module, pdk, FlowOptions(preset="commercial", seed=7))

The legacy keyword surface (``preset=``, ``clock_period_ps=``, ...) still
works through a deprecation shim that emits one :class:`DeprecationWarning`
and builds the equivalent options object.

Every stage runs inside a tracing span (:mod:`repro.obs`): step runtimes
in the :class:`StepReport` list are *derived from the spans*, so they are
non-overlapping by construction and sum to ≈ the flow's wall time.

Resilience (:mod:`repro.resil`) is threaded through here:

* ``options.continue_on_error`` turns hard stage failures into structured
  :class:`~repro.resil.failure.FlowFailure` records on
  :attr:`FlowResult.failures`; every downstream stage that can still run
  does, and the result is marked :attr:`~FlowResult.partial`;
* ``options.checkpoints`` saves each completed stage under a content hash
  of (RTL, PDK, preset, seed) so a re-run resumes where the last one
  stopped and reproduces the cold run byte-for-byte;
* ``options.inject`` deterministically fails named stages (drills).
"""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import asdict, dataclass, field

from ..formal.lec import LecReport, lec_flow
from ..hdl.ir import Module
from ..layout.chip import build_chip_gds
from ..layout.drc import DrcReport, check_drc
from ..layout.gds import write_gds
from ..layout.lvs import LvsReport
from ..lint import Finding, LintReport, Waiver, lint_mapped, lint_module
from ..obs.metrics import MetricsRegistry, get_metrics
from ..obs.trace import Span, Tracer, get_tracer
from ..pdk.pdks import Pdk
from ..pnr.physical import PhysicalDesign, implement
from ..power.engine import PowerAnalyzer, PowerReport
from ..resil.checkpoint import StageCheckpointer, flow_cache_key
from ..resil.failure import FlowFailure, InjectedFault
from ..sta.engine import TimingAnalyzer, TimingReport
from ..synth.synthesize import SynthesisResult, synthesize
from .options import FlowOptions
from .presets import FlowPreset
from .steps import FlowStep


class FlowError(Exception):
    """Raised when a flow stage fails hard (e.g. DRC violations)."""


@dataclass
class StepReport:
    step: FlowStep
    ok: bool
    runtime_s: float
    metrics: dict[str, object] = field(default_factory=dict)


@dataclass
class PpaSummary:
    """The three letters every comparison in the paper reduces to."""

    area_um2: float
    die_area_mm2: float
    fmax_mhz: float
    total_power_uw: float
    wns_ps: float
    cell_count: int

    def as_row(self) -> dict[str, float]:
        return {
            "cells": self.cell_count,
            "area_um2": round(self.area_um2, 2),
            "die_mm2": round(self.die_area_mm2, 6),
            "fmax_mhz": round(self.fmax_mhz, 2),
            "power_uw": round(self.total_power_uw, 3),
            "wns_ps": round(self.wns_ps, 2),
        }


@dataclass
class FlowResult:
    """Everything one flow run produces.

    Artifact fields are ``None`` for stages that never ran: under
    ``continue_on_error`` a failing stage records a
    :class:`~repro.resil.failure.FlowFailure` in :attr:`failures` and the
    flow keeps whatever it can still produce (:attr:`partial` is then
    true).  On the happy path every field is populated, as before.
    """

    design_name: str
    pdk_name: str
    preset: FlowPreset
    clock_period_ps: float
    steps: list[StepReport]
    synthesis: SynthesisResult | None = None
    physical: PhysicalDesign | None = None
    timing: TimingReport | None = None
    power: PowerReport | None = None
    drc: DrcReport | None = None
    gds_bytes: bytes | None = None
    ppa: PpaSummary | None = None
    #: The run's finished spans (completion order) — a trace artifact.
    trace: list[Span] = field(default_factory=list)
    #: Static-analysis verdict: RTL lint (pre-synthesis) merged with
    #: netlist lint (post-mapping).  Signoff gates on unwaived errors.
    lint: LintReport | None = None
    #: SAT-based equivalence verdicts (``options.formal_lec``): RTL vs
    #: lowered, optimized and mapped netlists.
    lec: LecReport | None = None
    #: GDS-in signoff verdict (``options.extract_lvs``): connectivity
    #: LVS of the netlist re-extracted from the exported stream bytes,
    #: including the extracted-vs-mapped LEC proof.
    lvs: LvsReport | None = None
    #: Structured failures swallowed by ``continue_on_error``.
    failures: list[FlowFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures and all(step.ok for step in self.steps)

    @property
    def partial(self) -> bool:
        """True when some stage failed and the result is incomplete."""
        return bool(self.failures)

    def step(self, step: FlowStep) -> StepReport:
        for report in self.steps:
            if report.step is step:
                return report
        raise KeyError(f"no report for step {step}")

    def summary(self) -> str:
        status = "OK" if self.ok else "FAILED"
        if self.ppa is None:
            return (
                f"{self.design_name} on {self.pdk_name} [{self.preset.name}] "
                f"{status}: partial result, "
                f"{len(self.failures)} failure(s)"
            )
        row = self.ppa.as_row()
        return (
            f"{self.design_name} on {self.pdk_name} [{self.preset.name}] "
            f"{status}: {row['cells']} cells, {row['area_um2']} um2, "
            f"fmax {row['fmax_mhz']} MHz, {row['power_uw']} uW"
        )

    # -- stable serialization ---------------------------------------------
    #
    # The JSON snapshot follows the result_signature conventions
    # (repro.campaign.cache): artifacts and verdicts in, wall clock out.
    # Heavy objects (netlists, placements, raw GDS) serialize as summary
    # dicts / digests; steps, PPA, lint and failures round-trip exactly.

    #: Schema version of :meth:`to_json`; bumped on breaking change.
    #: v2 added the ``lvs`` artifact (GDS-in signoff verdict).
    JSON_SCHEMA = 2

    #: Older schemas :meth:`from_json` still reads (purely-additive
    #: predecessors of the current version).
    _COMPAT_SCHEMAS = frozenset({1})

    def _artifact_snapshot(self) -> dict[str, object]:
        """Summary dicts for the heavyweight artifacts.

        Live objects win; a result rebuilt by :meth:`from_json` (which
        cannot resurrect netlists) falls back to the snapshot it was
        loaded with, keeping ``to_json`` a fixed point.
        """
        stash: dict = getattr(self, "_snapshot", {})

        def pick(name: str, value) -> object:
            return value if value is not None else stash.get(name)

        synthesis = None
        if self.synthesis is not None:
            synthesis = {
                "cells": len(self.synthesis.mapped.cells),
                "gates_raw": self.synthesis.opt_stats.gates_before,
                "gates_optimized": self.synthesis.opt_stats.gates_after,
                "area_um2": round(self.synthesis.mapped.area_um2(), 3),
                "rtl_lines": self.synthesis.rtl_lines,
                "equivalent": (
                    None if self.synthesis.equivalence is None
                    else self.synthesis.equivalence.passed
                ),
            }
        timing = None
        if self.timing is not None:
            timing = {
                "wns_ps": self.timing.wns_ps,
                "fmax_mhz": self.timing.fmax_mhz,
                "met": self.timing.met,
            }
        power = None
        if self.power is not None:
            power = {"total_uw": self.power.total_uw}
        drc = None
        if self.drc is not None:
            drc = {
                "clean": self.drc.clean,
                "violations": len(self.drc.violations),
            }
        gds = None
        if self.gds_bytes is not None:
            gds = {
                "sha256": hashlib.sha256(self.gds_bytes).hexdigest(),
                "n_bytes": len(self.gds_bytes),
            }
        lec = None
        if self.lec is not None:
            lec = {
                "design": self.lec.design,
                "passed": self.lec.passed,
                "stages": {
                    stage: result.equivalent
                    for stage, result in self.lec.checks.items()
                },
            }
        lvs = None
        if self.lvs is not None:
            lvs = self.lvs.to_dict()
        return {
            "synthesis": pick("synthesis", synthesis),
            "timing": pick("timing", timing),
            "power": pick("power", power),
            "drc": pick("drc", drc),
            "gds": pick("gds", gds),
            "lec": pick("lec", lec),
            "lvs": pick("lvs", lvs),
        }

    def to_json(self, indent: int | None = None) -> str:
        """Wall-clock-free JSON form of this result.

        Deterministic for a deterministic flow: step runtimes, spans and
        every other timing artifact are excluded, so two byte-identical
        runs serialize byte-identically — the diffable currency for
        workspaces and campaign caches.
        """
        preset = asdict(self.preset)
        preset["opt_passes"] = sorted(preset["opt_passes"])
        payload = {
            "schema": self.JSON_SCHEMA,
            "design": self.design_name,
            "pdk": self.pdk_name,
            "preset": preset,
            "clock_period_ps": self.clock_period_ps,
            "ok": self.ok,
            "partial": self.partial,
            "steps": [
                {"step": s.step.value, "ok": s.ok, "metrics": s.metrics}
                for s in self.steps
            ],
            "ppa": None if self.ppa is None else asdict(self.ppa),
            "lint": None if self.lint is None else {
                "findings": [f.to_dict() for f in self.lint.findings],
                "waivers": [w.to_dict() for w in self.lint.waivers],
            },
            "failures": [
                {"stage": f.stage, "message": f.message, "kind": f.kind}
                for f in self.failures
            ],
            **self._artifact_snapshot(),
        }
        return json.dumps(payload, sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "FlowResult":
        """Rebuild a summary view of a serialized result.

        Steps, PPA, lint and failures come back as real objects; the
        heavyweight artifacts (netlists, placements, GDS bytes) cannot be
        resurrected from summaries and stay ``None``, but their snapshot
        dicts are retained so ``result.to_json()`` round-trips exactly.
        """
        data = json.loads(text)
        schema = data.get("schema")
        if schema != cls.JSON_SCHEMA and schema not in cls._COMPAT_SCHEMAS:
            raise ValueError(
                f"unsupported FlowResult schema {schema!r} "
                f"(expected {cls.JSON_SCHEMA})"
            )
        preset_data = dict(data["preset"])
        preset_data["opt_passes"] = frozenset(preset_data["opt_passes"])
        lint = None
        if data.get("lint") is not None:
            lint = LintReport(
                findings=[
                    Finding.from_dict(f) for f in data["lint"]["findings"]
                ],
                waivers=tuple(
                    Waiver.from_dict(w) for w in data["lint"]["waivers"]
                ),
            )
        result = cls(
            design_name=data["design"],
            pdk_name=data["pdk"],
            preset=FlowPreset(**preset_data),
            clock_period_ps=data["clock_period_ps"],
            steps=[
                StepReport(
                    _STEP_BY_VALUE[s["step"]], s["ok"], 0.0,
                    dict(s["metrics"]),
                )
                for s in data["steps"]
            ],
            ppa=None if data.get("ppa") is None
            else PpaSummary(**data["ppa"]),
            lint=lint,
            failures=[
                FlowFailure(f["stage"], f["message"], f["kind"])
                for f in data.get("failures", ())
            ],
        )
        result._snapshot = {
            name: data.get(name)
            for name in (
                "synthesis", "timing", "power", "drc", "gds", "lec", "lvs",
            )
        }
        return result


#: FlowSteps whose spans are opened inside synthesize()/implement().
_STAGE_SPAN_NAMES = {step: f"step.{step.value}" for step in FlowStep}
_STEP_BY_VALUE = {step.value: step for step in FlowStep}

#: Keywords the pre-FlowOptions signature accepted, shimmed for one cycle.
_LEGACY_KEYS = frozenset(
    {
        "preset",
        "clock_period_ps",
        "frequency_mhz",
        "strict_drc",
        "seed",
        "lint_waivers",
        "strict_lint",
    }
)


def _coerce_options(options, legacy: dict) -> FlowOptions:
    """Resolve the (options | legacy-kwargs) call surface to FlowOptions."""
    if isinstance(options, FlowPreset):
        # Pre-FlowOptions positional call: run_flow(module, pdk, preset).
        legacy = dict(legacy)
        if "preset" in legacy:
            raise TypeError("preset passed both positionally and by keyword")
        legacy["preset"] = options
        options = None
    if legacy:
        unknown = sorted(set(legacy) - _LEGACY_KEYS)
        if unknown:
            raise TypeError(
                f"run_flow() got unexpected keyword argument(s) {unknown}; "
                f"new knobs live on FlowOptions"
            )
        if options is not None:
            raise TypeError(
                "pass options=FlowOptions(...) or legacy keywords, not both"
            )
        warnings.warn(
            "calling run_flow() with individual keyword knobs is "
            "deprecated; pass options=FlowOptions(...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
        return FlowOptions(**legacy)
    if options is None:
        return FlowOptions()
    if not isinstance(options, FlowOptions):
        raise TypeError(f"options must be FlowOptions, got {type(options)!r}")
    return options


def run_flow(
    module: Module,
    pdk: Pdk,
    options: FlowOptions | FlowPreset | None = None,
    *,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    **legacy,
) -> FlowResult:
    """Run the complete RTL→GDSII flow as described by ``options``.

    ``options`` is a :class:`~repro.core.options.FlowOptions`; omitted it
    defaults to ``FlowOptions()``.  The legacy keyword surface
    (``preset=``, ``clock_period_ps=``, ``strict_drc=``, ``seed=``,
    ``frequency_mhz=``, ``lint_waivers=``, ``strict_lint=``) and the
    positional ``FlowPreset`` third argument still work via a shim that
    emits one :class:`DeprecationWarning` per call.

    With ``options.strict_drc`` any DRC violation raises
    :class:`FlowError` (signoff semantics); otherwise violations are
    recorded in the report.  The linter runs twice — over the RTL before
    synthesis and over the mapped netlist after technology mapping — and
    the merged report lands on :attr:`FlowResult.lint`; lint is advisory
    unless ``options.strict_lint``.

    With ``options.continue_on_error`` a failing stage appends a
    :class:`~repro.resil.failure.FlowFailure` to
    :attr:`FlowResult.failures` instead of raising, and every stage whose
    inputs still exist runs anyway.  ``options.checkpoints`` (a
    :class:`~repro.resil.checkpoint.CheckpointStore`) saves each
    completed stage keyed by a content hash of (RTL, PDK, preset, seed);
    a re-run with the same store skips finished stages.

    ``tracer``/``metrics`` follow the repo-wide DI convention: explicit
    argument, else the installed process-wide default, else (for timing)
    a private tracer, because step runtimes are span-derived.
    """
    opts = _coerce_options(options, legacy)
    preset = opts.preset
    if tracer is None:
        tracer = get_tracer()
    if not tracer.enabled:
        # Step timing is span-derived even when the caller asked for no
        # tracing; a private tracer keeps the no-op default truly free
        # for direct engine calls while the flow still measures itself.
        tracer = Tracer()
    if metrics is None:
        metrics = get_metrics()
    mark = tracer.mark()
    steps: list[StepReport] = []
    failures: list[FlowFailure] = []

    def record(step: FlowStep, span: Span | None, **step_metrics) -> None:
        """One StepReport whose runtime is the step span's duration."""
        ok = step_metrics.pop("_ok", True)
        runtime_s = span.duration_s if span is not None else 0.0
        if span is not None:
            span.set(**step_metrics)
        steps.append(StepReport(step, ok, round(runtime_s, 6), step_metrics))
        metrics.counter(f"flow.steps.{step.value}").inc()
        metrics.histogram("flow.step_seconds").observe(runtime_s)

    def stage_span(step: FlowStep) -> Span | None:
        """The span a nested engine opened for ``step`` during this run."""
        return tracer.find(_STAGE_SPAN_NAMES[step], mark)

    def fail(stage: str, message: str, kind: str = "gate") -> None:
        """Record a stage failure; raise unless continue_on_error."""
        failures.append(FlowFailure(stage, message, kind))
        metrics.counter("flow.failures").inc()
        metrics.counter(f"flow.failures.{kind}").inc()
        if not opts.continue_on_error:
            raise FlowError(message)

    def drill(step: FlowStep) -> None:
        """Trip the fault-injection drill for ``step`` if one is armed."""
        if opts.inject is not None:
            opts.inject.check(step.value)

    ckpt: StageCheckpointer | None = None
    if opts.checkpoints is not None:
        key = flow_cache_key(module, pdk.name, preset, opts.seed)
        ckpt = StageCheckpointer(opts.checkpoints, key, resume=opts.resume)

    with tracer.span(
        "flow", design=module.name, pdk=pdk.name, preset=preset.name,
        clock_period_ps=opts.clock_period_ps,
    ) as flow_span:
        with tracer.span("step.rtl_design") as sp:
            module.validate()
        record(FlowStep.RTL_DESIGN, sp, **module.stats())

        # Pre-synthesis quality gate: advisory RTL lint.  An injected
        # eco session (repro.inter) lints per module against its memo;
        # the merged report is a pure function of the design either way.
        if opts.eco is not None:
            rtl_lint = opts.eco.lint_rtl(
                module, opts.lint_waivers, tracer=tracer
            )
        else:
            rtl_lint = lint_module(
                module, waivers=opts.lint_waivers, tracer=tracer
            )

        # -- synthesis + mapping + equivalence (checkpointable) -------------
        synth: SynthesisResult | None = None
        synth_cached = False
        if ckpt is not None:
            synth = ckpt.load("synthesis")
            synth_cached = synth is not None
            metrics.counter(
                f"resil.checkpoint.{'hit' if synth_cached else 'miss'}"
            ).inc()
        if synth is None:
            try:
                drill(FlowStep.SYNTHESIS)
                if opts.eco is not None:
                    # Hierarchical memoized synthesis + deterministic
                    # stitch; a cold session recomputes every shard, so
                    # warm and cold runs agree byte for byte.
                    synth = opts.eco.synthesize(
                        module, pdk.library, preset, opts.seed,
                        tracer=tracer,
                    )
                else:
                    synth = synthesize(
                        module,
                        pdk.library,
                        objective=preset.mapping_objective,
                        opt_passes=preset.opt_passes,
                        sizing=preset.gate_sizing,
                        max_load_per_drive_ff=preset.max_load_per_drive_ff,
                        verify=preset.run_equivalence,
                        verify_cycles=preset.equivalence_cycles,
                        verify_seed=opts.seed,
                        tracer=tracer,
                    )
            except InjectedFault as exc:
                record(FlowStep.SYNTHESIS, None, _ok=False)
                fail(exc.stage, str(exc), kind="injected")
            else:
                if ckpt is not None:
                    ckpt.save("synthesis", synth)

        lint_report = rtl_lint
        lec_report: LecReport | None = None
        lvs_report: LvsReport | None = None
        if synth is not None:
            record(
                FlowStep.SYNTHESIS,
                None if synth_cached else stage_span(FlowStep.SYNTHESIS),
                gates_raw=synth.opt_stats.gates_before,
                gates_optimized=synth.opt_stats.gates_after,
                **({"cached": True} if synth_cached else {}),
            )
            record(
                FlowStep.TECHNOLOGY_MAPPING,
                None if synth_cached
                else stage_span(FlowStep.TECHNOLOGY_MAPPING),
                cells=len(synth.mapped.cells),
            )
            equivalence_ok = (
                synth.equivalence.passed
                if synth.equivalence is not None else True
            )
            record(
                FlowStep.EQUIVALENCE_CHECK,
                None if synth_cached
                else stage_span(FlowStep.EQUIVALENCE_CHECK),
                _ok=equivalence_ok,
                checked=synth.equivalence is not None,
            )
            if not equivalence_ok:
                fail(
                    FlowStep.EQUIVALENCE_CHECK.value,
                    f"synthesis equivalence check failed: "
                    f"{synth.equivalence.mismatches[:3]}",
                )

            # Post-mapping quality gate: netlist lint over the mapped design.
            lint_report = rtl_lint.merge(
                lint_mapped(
                    synth.mapped, waivers=opts.lint_waivers, tracer=tracer
                )
            )
            if opts.strict_lint and not lint_report.clean:
                first = lint_report.errors[0]
                fail(
                    "lint",
                    f"lint failed with {len(lint_report.errors)} error "
                    f"finding(s), first: {first.rule} at "
                    f"{first.target}.{first.location}: {first.message}",
                )

            # Formal signoff gate: SAT-based LEC across the synthesis
            # pipeline (RTL vs lowered, optimized and mapped netlists).
            if opts.formal_lec:
                lec_report = lec_flow(
                    module, synth, tracer=tracer, metrics=metrics
                )
                if not lec_report.passed:
                    fail("formal_lec", f"LEC failed: {lec_report.summary()}")

        # -- backend: floorplan → place → CTS → route (checkpointable) ------
        physical: PhysicalDesign | None = None
        if synth is not None:
            try:
                physical = implement(
                    synth.mapped,
                    pdk,
                    utilization=preset.utilization,
                    detailed_placement_passes=preset.detailed_placement_passes,
                    cts_buffering=preset.cts_buffering,
                    router_rip_up=preset.router_rip_up,
                    placer=preset.placer,
                    seed=opts.seed,
                    tracer=tracer,
                    metrics=metrics,
                    checkpoints=ckpt,
                    inject=opts.inject,
                    eco=opts.eco,
                )
            except InjectedFault as exc:
                # Stages that finished before the fault have spans (and
                # checkpoints); report them, then the faulted stage.
                faulted = _STEP_BY_VALUE[exc.stage]
                for step in (
                    FlowStep.FLOORPLANNING,
                    FlowStep.PLACEMENT,
                    FlowStep.CLOCK_TREE_SYNTHESIS,
                    FlowStep.ROUTING,
                ):
                    span = stage_span(step)
                    if step is faulted:
                        record(step, span, _ok=False)
                        break
                    if span is not None:
                        record(step, span)
                fail(exc.stage, str(exc), kind="injected")
        if physical is not None:
            record(FlowStep.FLOORPLANNING, stage_span(FlowStep.FLOORPLANNING),
                   **physical.floorplan.stats())
            record(FlowStep.PLACEMENT, stage_span(FlowStep.PLACEMENT),
                   hpwl_um=physical.placement.hpwl_um)
            record(FlowStep.CLOCK_TREE_SYNTHESIS,
                   stage_span(FlowStep.CLOCK_TREE_SYNTHESIS),
                   **physical.clock_tree.stats())
            record(FlowStep.ROUTING, stage_span(FlowStep.ROUTING),
                   **physical.routing.stats())

        # -- analysis + signoff stages --------------------------------------
        timing: TimingReport | None = None
        if physical is not None and synth is not None:
            try:
                with tracer.span("step.static_timing_analysis") as sp:
                    drill(FlowStep.STATIC_TIMING_ANALYSIS)
                    analyzer = TimingAnalyzer(
                        synth.mapped,
                        pdk.node,
                        wire_lengths_um=physical.wire_lengths(),
                        skew_ps=physical.clock_tree.skew_map(),
                        tracer=tracer,
                        metrics=metrics,
                    )
                    timing = analyzer.analyze(opts.clock_period_ps)
            except InjectedFault as exc:
                record(FlowStep.STATIC_TIMING_ANALYSIS, sp, _ok=False)
                fail(exc.stage, str(exc), kind="injected")
            else:
                record(
                    FlowStep.STATIC_TIMING_ANALYSIS, sp,
                    wns_ps=timing.wns_ps, met=timing.met,
                    fmax_mhz=timing.fmax_mhz,
                )

        power: PowerReport | None = None
        if physical is not None and synth is not None:
            try:
                with tracer.span("step.power_analysis") as sp:
                    drill(FlowStep.POWER_ANALYSIS)
                    freq = opts.frequency_mhz or min(
                        timing.fmax_mhz if timing is not None else float("inf"),
                        1e6 / opts.clock_period_ps,
                    )
                    power = PowerAnalyzer(
                        synth.mapped, pdk.node,
                        wire_lengths_um=physical.wire_lengths(),
                        tracer=tracer,
                        metrics=metrics,
                    ).analyze(freq)
            except InjectedFault as exc:
                record(FlowStep.POWER_ANALYSIS, sp, _ok=False)
                fail(exc.stage, str(exc), kind="injected")
            else:
                record(FlowStep.POWER_ANALYSIS, sp, total_uw=power.total_uw)

        drc: DrcReport | None = None
        gds_library = None
        if physical is not None:
            try:
                with tracer.span("step.design_rule_check") as sp:
                    drill(FlowStep.DESIGN_RULE_CHECK)
                    gds_library = build_chip_gds(physical)
                    drc = check_drc(
                        gds_library, pdk.layers, physical.mapped.name,
                        tracer=tracer,
                    )
            except InjectedFault as exc:
                record(FlowStep.DESIGN_RULE_CHECK, sp, _ok=False)
                fail(exc.stage, str(exc), kind="injected")
            else:
                record(FlowStep.DESIGN_RULE_CHECK, sp, _ok=drc.clean,
                       violations=len(drc.violations))
                if opts.strict_drc and not drc.clean:
                    fail(
                        FlowStep.DESIGN_RULE_CHECK.value,
                        f"DRC failed: {drc.summary()}",
                    )

        gds_bytes: bytes | None = None
        if physical is not None:
            try:
                with tracer.span("step.gds_export") as sp:
                    drill(FlowStep.GDS_EXPORT)
                    if gds_library is None:
                        gds_library = build_chip_gds(physical)
                    gds_bytes = write_gds(gds_library)
            except InjectedFault as exc:
                record(FlowStep.GDS_EXPORT, sp, _ok=False)
                fail(exc.stage, str(exc), kind="injected")
            else:
                record(FlowStep.GDS_EXPORT, sp, bytes=len(gds_bytes))

        # GDS-in signoff: the exported *bytes* are re-parsed, the
        # netlist re-extracted from geometry alone, and the result
        # compared (and LEC-proved) against the mapped netlist.  Spans
        # open under ``extract.*``, not a FlowStep — the mask never
        # leaves the flow, so this is a gate, not a pipeline stage.
        if opts.extract_lvs and gds_bytes is not None and synth is not None:
            from ..extract import run_lvs

            lvs_report = run_lvs(
                gds_bytes, synth.mapped, pdk,
                expected_pins={
                    pin.name for pin in physical.floorplan.io_pins
                },
                tracer=tracer, metrics=metrics,
            )
            if not lvs_report.clean:
                fail("extract_lvs", f"LVS failed: {lvs_report.summary()}")

        flow_span.set(
            ok=not failures and all(step.ok for step in steps),
            failures=len(failures),
        )

    metrics.counter("flow.runs").inc()
    if failures:
        metrics.counter("flow.runs_partial").inc()
    metrics.histogram("flow.run_seconds").observe(flow_span.duration_s)

    ppa = None
    if (
        synth is not None and physical is not None
        and timing is not None and power is not None
    ):
        ppa = PpaSummary(
            area_um2=synth.mapped.area_um2(),
            die_area_mm2=physical.die_area_mm2,
            fmax_mhz=timing.fmax_mhz,
            total_power_uw=power.total_uw,
            wns_ps=timing.wns_ps,
            cell_count=len(synth.mapped.cells),
        )
    return FlowResult(
        design_name=module.name,
        pdk_name=pdk.name,
        preset=preset,
        clock_period_ps=opts.clock_period_ps,
        steps=steps,
        synthesis=synth,
        physical=physical,
        timing=timing,
        power=power,
        drc=drc,
        gds_bytes=gds_bytes,
        ppa=ppa,
        trace=tracer.since(mark),
        lint=lint_report,
        lec=lec_report,
        lvs=lvs_report,
        failures=failures,
    )
