"""Flow presets: the open-source vs commercial effort gap, as knobs.

Section III-D: "open-source flows are not yet competitive with proprietary
ones in terms of PPA metrics."  In this toolkit that statement is kept
honest by running the *same* engines under two parameter sets rather than
two codebases: the ``COMMERCIAL`` preset enables the optimizations a paid
tool ships tuned (delay-aware mapping choice, gate sizing, detailed
placement, buffered CTS, rip-up routing, tighter utilization), while
``OPEN`` runs the baseline heuristics.  Experiment E4 measures the
resulting PPA gap.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class FlowPreset:
    """Every tool knob the flow runner honours."""

    name: str
    # Synthesis.
    mapping_objective: str = "area"
    opt_passes: frozenset[str] = frozenset({"fold", "strash", "dce"})
    gate_sizing: bool = False
    max_load_per_drive_ff: float = 8.0
    # Physical design.
    utilization: float = 0.35
    detailed_placement_passes: int = 0
    cts_buffering: bool = True
    router_rip_up: bool = True
    placer: str = "quadratic"
    # Signoff.
    run_equivalence: bool = True
    equivalence_cycles: int = 32

    def with_overrides(self, **kwargs) -> "FlowPreset":
        """A copy with selected knobs changed (ablation helper)."""
        return replace(self, **kwargs)


#: Baseline open-source flow (OpenROAD/OpenLane class defaults).
OPEN = FlowPreset(
    name="open",
    mapping_objective="area",
    gate_sizing=False,
    detailed_placement_passes=0,
    utilization=0.35,
)

#: Commercial-grade flow: same engines, tuned optimizations enabled.
COMMERCIAL = FlowPreset(
    name="commercial",
    mapping_objective="delay",
    gate_sizing=True,
    max_load_per_drive_ff=2.5,
    detailed_placement_passes=2,
    utilization=0.45,
)

PRESETS = {"open": OPEN, "commercial": COMMERCIAL}


def get_preset(name: str) -> FlowPreset:
    if name not in PRESETS:
        raise KeyError(f"unknown preset {name!r}; available: {sorted(PRESETS)}")
    return PRESETS[name]
