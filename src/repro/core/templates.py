"""Vendor- and technology-independent flow templates (Recommendation 4).

A template names the abstract steps of a design flow and per-step
parameters *without* binding them to a tool or technology; binding
happens when the template is instantiated against a PDK and preset.
Reference templates for the common university use cases ship built in —
the "reference designs and flows [that] contribute considerably to
backend productivity" of Recommendation 4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .steps import BACKEND_STEPS, FLOW_ORDER, FRONTEND_STEPS, FlowStep


@dataclass(frozen=True)
class StepSpec:
    """One templated step: the abstract step plus neutral parameters."""

    step: FlowStep
    params: tuple[tuple[str, object], ...] = ()

    def param_dict(self) -> dict[str, object]:
        return dict(self.params)


@dataclass(frozen=True)
class FlowTemplate:
    """An ordered, tool-neutral flow description."""

    name: str
    description: str
    steps: tuple[StepSpec, ...]

    def step_names(self) -> list[str]:
        return [spec.step.value for spec in self.steps]

    def covers(self, step: FlowStep) -> bool:
        return any(spec.step is step for spec in self.steps)

    def coverage_of(self, steps: tuple[FlowStep, ...]) -> float:
        covered = sum(1 for step in steps if self.covers(step))
        return covered / len(steps)

    def validate(self) -> None:
        """Steps must be unique and in canonical flow order."""
        seen: list[FlowStep] = [spec.step for spec in self.steps]
        if len(set(seen)) != len(seen):
            raise ValueError(f"template {self.name!r} repeats a step")
        order = {step: i for i, step in enumerate(FLOW_ORDER)}
        indices = [order[step] for step in seen]
        if indices != sorted(indices):
            raise ValueError(
                f"template {self.name!r} violates canonical step order"
            )


def digital_asic_template() -> FlowTemplate:
    """The full RTL→GDSII reference flow."""
    return FlowTemplate(
        name="digital_asic",
        description="Complete digital ASIC flow from RTL to GDSII signoff",
        steps=tuple(
            StepSpec(step)
            for step in FLOW_ORDER
            if step is not FlowStep.TAPEOUT
        )
        + (StepSpec(FlowStep.TAPEOUT, (("via", "mpw_shuttle"),)),),
    )


def fpga_prototyping_template() -> FlowTemplate:
    """FPGA path: stops where the FPGA stops covering the flow (E9)."""
    fpga_steps = (
        FlowStep.SPECIFICATION,
        FlowStep.RTL_DESIGN,
        FlowStep.FUNCTIONAL_SIMULATION,
        FlowStep.SYNTHESIS,
        FlowStep.TECHNOLOGY_MAPPING,
        FlowStep.PLACEMENT,
        FlowStep.ROUTING,
        FlowStep.STATIC_TIMING_ANALYSIS,
        FlowStep.POWER_ANALYSIS,
    )
    return FlowTemplate(
        name="fpga_prototyping",
        description="FPGA prototyping flow (partial ASIC flow coverage)",
        steps=tuple(StepSpec(step, (("target", "lut_array"),))
                    for step in fpga_steps),
    )


def beginner_tinytapeout_template() -> FlowTemplate:
    """Fixed beginner flow: no configuration surface (Recommendation 8)."""
    steps = (
        FlowStep.RTL_DESIGN,
        FlowStep.FUNCTIONAL_SIMULATION,
        FlowStep.SYNTHESIS,
        FlowStep.TECHNOLOGY_MAPPING,
        FlowStep.PLACEMENT,
        FlowStep.ROUTING,
        FlowStep.GDS_EXPORT,
        FlowStep.TAPEOUT,
    )
    return FlowTemplate(
        name="beginner_tinytapeout",
        description=(
            "Beginner pathway: template does everything, learner only "
            "writes RTL and a testbench"
        ),
        steps=tuple(StepSpec(step, (("locked", True),)) for step in steps),
    )


BUILTIN_TEMPLATES = {
    "digital_asic": digital_asic_template,
    "fpga_prototyping": fpga_prototyping_template,
    "beginner_tinytapeout": beginner_tinytapeout_template,
}


def get_template(name: str) -> FlowTemplate:
    if name not in BUILTIN_TEMPLATES:
        raise KeyError(
            f"unknown template {name!r}; available: {sorted(BUILTIN_TEMPLATES)}"
        )
    template = BUILTIN_TEMPLATES[name]()
    template.validate()
    return template


def backend_coverage(template: FlowTemplate) -> float:
    """Fraction of backend steps a template automates (E6/E9 metric)."""
    return template.coverage_of(BACKEND_STEPS)


def frontend_coverage(template: FlowTemplate) -> float:
    return template.coverage_of(FRONTEND_STEPS)
