"""Outreach and education program models (Recommendations 1-3).

Turns the paper's Section IV program descriptions into a cost/effect
model: each program reaches a population at some cost per head and
converts a fraction of it into the awareness/specialization gains the
workforce simulation consumes.  The model lets a funding agency ask the
paper's real question — *which portfolio of programs buys the biggest
pipeline improvement per euro?* — and encodes the paper's qualitative
points (localization widens reach, targeting only top performers leaves
potential untapped, coordination amplifies).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analytics.workforce import Interventions


@dataclass(frozen=True)
class OutreachProgram:
    """One education/outreach program (Section IV examples)."""

    name: str
    recommendation: int  # 1, 2 or 3 — which paper recommendation it serves
    annual_cost_eur: float
    students_reached: int
    #: Fraction of reached students who become aware/interested.
    conversion: float
    #: Reach multiplier when materials are localized (Rec 1: "translating
    #: these resources into the native languages").
    localization_gain: float = 1.0
    #: True if the program only targets top performers (the paper warns
    #: this leaves "significant untapped potential").
    top_performers_only: bool = False

    def effective_reach(self, localized: bool = True) -> float:
        reach = self.students_reached * (
            self.localization_gain if localized else 1.0
        )
        if self.top_performers_only:
            reach *= 0.25  # top-quartile focus shrinks the funnel
        return reach

    def converts(self, localized: bool = True) -> float:
        return self.effective_reach(localized) * self.conversion

    def cost_per_convert(self, localized: bool = True) -> float:
        converted = self.converts(localized)
        return self.annual_cost_eur / converted if converted else float("inf")


#: Program catalogue modelled on the paper's named examples.
PROGRAMS: tuple[OutreachProgram, ...] = (
    OutreachProgram("tinytapeout_school", 1, 150_000.0, 4_000, 0.12,
                    localization_gain=1.8),
    OutreachProgram("hls_playful_workshops", 1, 120_000.0, 6_000, 0.08,
                    localization_gain=1.6),
    OutreachProgram("olympiad_contest", 1, 90_000.0, 800, 0.30,
                    top_performers_only=True),
    OutreachProgram("industry_visit_days", 2, 60_000.0, 3_000, 0.10),
    OutreachProgram("online_career_portal", 2, 80_000.0, 50_000, 0.015,
                    localization_gain=2.2),
    OutreachProgram("role_model_podcasts", 2, 40_000.0, 20_000, 0.02,
                    localization_gain=1.5),
    OutreachProgram("teacher_development", 3, 200_000.0, 500, 0.0,
                    localization_gain=1.0),  # indirect: scales others
    OutreachProgram("network_coordination_hub", 3, 300_000.0, 0, 0.0),
)


def portfolio_conversions(
    names: list[str], localized: bool = True
) -> float:
    """Annual student conversions of a program portfolio."""
    by_name = {p.name: p for p in PROGRAMS}
    total = 0.0
    for name in names:
        if name not in by_name:
            raise KeyError(f"unknown program {name!r}")
        total += by_name[name].converts(localized)
    return total


def portfolio_cost(names: list[str]) -> float:
    by_name = {p.name: p for p in PROGRAMS}
    return sum(by_name[name].annual_cost_eur for name in names)


def portfolio_to_interventions(
    names: list[str],
    localized: bool = True,
    baseline_aware_students: float = 250_000.0,
) -> Interventions:
    """Translate a program portfolio into workforce-model interventions.

    Conversions raise awareness (Rec 1 programs) or specialization
    (Rec 2); coordination infrastructure (Rec 3, the NNME-style hub)
    amplifies both by 20% and enables the funding lever.
    """
    by_name = {p.name: p for p in PROGRAMS}
    awareness_gain = 0.0
    perception_gain = 0.0
    has_hub = False
    has_funding = False
    for name in names:
        program = by_name[name]
        if program.recommendation == 1:
            awareness_gain += program.converts(localized)
        elif program.recommendation == 2:
            perception_gain += program.converts(localized)
        elif program.recommendation == 3:
            has_funding = True
            if program.name == "network_coordination_hub":
                has_hub = True
    amplifier = 1.2 if has_hub else 1.0
    outreach = 1.0 + amplifier * awareness_gain / baseline_aware_students
    campaigns = 1.0 + amplifier * perception_gain / (
        baseline_aware_students * 0.1
    )
    funding = 1.10 if has_funding else 1.0
    return Interventions(
        outreach=round(outreach, 4),
        campaigns=round(campaigns, 4),
        funding=funding,
    )


def best_value_programs(localized: bool = True, count: int = 3) -> list[str]:
    """Programs ranked by cost per converted student (direct programs)."""
    direct = [p for p in PROGRAMS if p.conversion > 0]
    ranked = sorted(direct, key=lambda p: p.cost_per_convert(localized))
    return [p.name for p in ranked[:count]]
