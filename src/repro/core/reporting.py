"""Human-readable flow reports — the ``.rpt`` collateral real tools emit.

Teaching flows live and die by their reports: students learn to read
timing/power/area tables long before they touch a layout.  This module
renders a :class:`~repro.core.flow.FlowResult` into the familiar report
set (summary, synthesis, timing with critical path, power, routing, DRC)
as plain text.
"""

from __future__ import annotations

from .flow import FlowResult


def _header(title: str) -> str:
    bar = "=" * 64
    return f"{bar}\n{title}\n{bar}\n"


def synthesis_report(result: FlowResult) -> str:
    synth = result.synthesis
    lines = [_header(f"Synthesis report — {result.design_name}")]
    lines.append(f"library            : {synth.mapped.library.name}")
    lines.append(f"RTL lines          : {synth.rtl_lines}")
    lines.append(f"raw gates          : {synth.opt_stats.gates_before}")
    lines.append(
        f"optimized gates    : {synth.opt_stats.gates_after} "
        f"({synth.opt_stats.removed} removed in "
        f"{synth.opt_stats.iterations} iterations)"
    )
    for rule, count in sorted(synth.opt_stats.rules.items()):
        lines.append(f"  rule {rule:<16s}: {count}")
    lines.append(f"mapped cells       : {len(synth.mapped.cells)}")
    stats = synth.mapped.stats()
    for key, value in sorted(stats.items()):
        if key.startswith("kind_"):
            lines.append(f"  {key[5:]:<18s}: {value}")
    lines.append(f"cell area          : {synth.mapped.area_um2():.3f} um2")
    if synth.equivalence is not None:
        lines.append(f"equivalence        : {synth.equivalence.summary()}")
    return "\n".join(lines) + "\n"


def timing_report(result: FlowResult, max_endpoints: int = 10) -> str:
    timing = result.timing
    lines = [_header(f"Timing report — {result.design_name}")]
    lines.append(f"clock period       : {timing.clock_period_ps:.1f} ps")
    lines.append(f"WNS                : {timing.wns_ps:.2f} ps")
    lines.append(f"TNS                : {timing.tns_ps:.2f} ps")
    lines.append(f"worst hold slack   : {timing.worst_hold_slack_ps:.2f} ps")
    lines.append(f"fmax               : {timing.fmax_mhz:.2f} MHz")
    lines.append(f"status             : {'MET' if timing.met else 'VIOLATED'}")
    lines.append("\ncritical path (launch -> capture):")
    for point in timing.critical_path:
        lines.append(
            f"  {point.arrival_ps:10.2f} ps  {point.instance:<24s} "
            f"{point.cell}"
        )
    lines.append("\nworst endpoints:")
    worst = sorted(timing.endpoint_slacks.items(), key=lambda kv: kv[1])
    for name, slack in worst[:max_endpoints]:
        lines.append(f"  {slack:10.2f} ps  {name}")
    return "\n".join(lines) + "\n"


def power_report(result: FlowResult) -> str:
    power = result.power
    lines = [_header(f"Power report — {result.design_name}")]
    lines.append(f"frequency          : {power.frequency_mhz:.1f} MHz")
    lines.append(f"dynamic            : {power.dynamic_uw:.4f} uW")
    lines.append(f"leakage            : {power.leakage_uw:.6f} uW")
    lines.append(f"total              : {power.total_uw:.4f} uW")
    lines.append(f"leakage fraction   : {power.leakage_fraction:.2%}")
    return "\n".join(lines) + "\n"


def physical_report(result: FlowResult) -> str:
    physical = result.physical
    lines = [_header(f"Physical report — {result.design_name}")]
    for key, value in physical.floorplan.stats().items():
        lines.append(f"{key:<19s}: {value}")
    lines.append(f"placement HPWL     : {physical.placement.hpwl_um} um")
    for key, value in physical.clock_tree.stats().items():
        lines.append(f"cts {key:<15s}: {value}")
    for key, value in physical.routing.stats().items():
        lines.append(f"route {key:<13s}: {value}")
    lines.append(f"DRC                : {result.drc.summary()}")
    return "\n".join(lines) + "\n"


def full_report(result: FlowResult) -> str:
    """The complete report bundle for one flow run."""
    summary = [_header(f"Flow summary — {result.design_name}")]
    summary.append(f"pdk                : {result.pdk_name}")
    summary.append(f"preset             : {result.preset.name}")
    summary.append(f"status             : {'OK' if result.ok else 'FAILED'}")
    for step in result.steps:
        summary.append(
            f"  {step.step.value:<26s} {'ok' if step.ok else 'FAIL':<5s}"
            f"{step.runtime_s * 1000:9.2f} ms"
        )
    summary.append("")
    for key, value in result.ppa.as_row().items():
        summary.append(f"{key:<19s}: {value}")
    parts = [
        "\n".join(summary) + "\n",
        synthesis_report(result),
        timing_report(result),
        power_report(result),
        physical_report(result),
    ]
    return "\n".join(parts)
