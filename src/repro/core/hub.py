"""The enablement hub: one front door to PDKs, flows, IP and shuttles.

This class is the paper's Recommendation 7 made concrete: a centralized
(cloud-backed) platform through which users at different tiers
(Recommendation 8) request technology access (Section III-C gates),
run the configured flow (Recommendation 4 templates) and book MPW seats
(Recommendation 6), with the open IP catalogue (Recommendation 5) a call
away.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..hdl.ir import Module
from ..ip.base import IpBlock
from ..ip.catalog import catalogue, generate
from ..obs.metrics import MetricsRegistry, get_metrics
from ..obs.trace import get_tracer
from ..pdk.pdks import Pdk, get_pdk, list_pdks
from ..resil.checkpoint import CheckpointStore, MemoryCheckpointStore
from ..resil.failure import FlowFailure
from ..resil.retry import ExponentialBackoff, RetryPolicy
from .cloud import CloudPlatform, estimate_job_minutes
from .flow import FlowError, FlowResult, run_flow
from .licensing import AccessDecision, User, evaluate_access
from .options import FlowOptions
from .shuttle import SeatQuote, ShuttleProgram, ShuttleProject
from .tiers import AccessTier, policy_for, tier_allows


class HubError(Exception):
    """Raised when a hub request violates policy."""


@dataclass
class Enrollment:
    user: User
    tier: AccessTier


@dataclass
class CampaignRequest:
    """One tenant's design submission to :meth:`EnablementHub.run_campaign`.

    ``options`` wins over ``preset`` when both are given, mirroring
    :meth:`EnablementHub.run_design`.
    """

    user: str
    module: Module
    pdk: str
    preset: str = "open"
    options: FlowOptions | None = None
    priority: int = 0
    deadline_min: float | None = None
    est_minutes: float | None = None


@dataclass
class HubJobRecord:
    """Bookkeeping for one flow execution through the hub."""

    user: str
    design: str
    pdk: str
    preset: str
    result: FlowResult | None = None
    queued_minutes: float = 0.0
    #: Flow attempts it took to produce ``result`` (1 = first try).
    attempts: int = 0
    #: Failures from attempts that were retried (or swallowed by a
    #: ``continue_on_error`` run); empty on a clean first pass.
    failures: list[FlowFailure] = field(default_factory=list)
    #: Simulated deadline the job was submitted against, if any.
    deadline_minute: float | None = None


def _default_cloud() -> CloudPlatform:
    return CloudPlatform(servers=8)


@dataclass
class EnablementHub:
    """The central platform object.

    ``retry_policy`` governs how many times :meth:`run_design` re-runs a
    failing flow and how long (in simulated minutes) it backs off between
    attempts; ``checkpoints`` is the hub-wide store those retries resume
    from, so a retry recomputes only the stage that failed.
    """

    name: str = "eu-design-hub"
    cloud: CloudPlatform = field(default_factory=_default_cloud)
    retry_policy: RetryPolicy = field(default_factory=ExponentialBackoff)
    checkpoints: CheckpointStore = field(
        default_factory=MemoryCheckpointStore
    )
    #: Cross-tenant flow memoization store (repro.campaign.cache); built
    #: lazily in ``__post_init__`` to keep the campaign import one-way.
    result_cache: object = None
    tracer: object = None
    metrics: MetricsRegistry | None = None
    _users: dict[str, Enrollment] = field(default_factory=dict)
    _shuttles: dict[str, ShuttleProgram] = field(default_factory=dict)
    jobs: list[HubJobRecord] = field(default_factory=list)

    def __post_init__(self):
        if self.tracer is None:
            self.tracer = get_tracer()
        if self.metrics is None:
            self.metrics = get_metrics()
        if self.result_cache is None:
            from ..campaign.cache import MemoryResultCache

            self.result_cache = MemoryResultCache()

    # -- enrollment & access -------------------------------------------------

    def enroll(self, user: User, tier: AccessTier) -> Enrollment:
        enrollment = Enrollment(user=user, tier=tier)
        self._users[user.name] = enrollment
        return enrollment

    def _enrollment(self, user_name: str) -> Enrollment:
        if user_name not in self._users:
            raise HubError(f"user {user_name!r} is not enrolled")
        return self._users[user_name]

    def available_pdks(self, user_name: str) -> list[str]:
        """PDKs this user can actually use: tier policy + legal gates."""
        enrollment = self._enrollment(user_name)
        usable = []
        for name in list_pdks():
            if not tier_allows(enrollment.tier, name):
                # Advanced preset access checked separately at run time.
                if name not in policy_for(enrollment.tier).allowed_pdks:
                    continue
            if evaluate_access(enrollment.user, get_pdk(name)).granted:
                usable.append(name)
        return usable

    def request_access(self, user_name: str, pdk_name: str) -> AccessDecision:
        """Full decision trail for one user/PDK pair."""
        enrollment = self._enrollment(user_name)
        policy = policy_for(enrollment.tier)
        if pdk_name not in policy.allowed_pdks:
            return AccessDecision(
                granted=False,
                blockers=[
                    f"tier {enrollment.tier.value!r} does not include "
                    f"{pdk_name} (allowed: {list(policy.allowed_pdks)})"
                ],
            )
        return evaluate_access(enrollment.user, get_pdk(pdk_name))

    # -- flow execution -------------------------------------------------------

    def run_design(
        self,
        user_name: str,
        module: Module,
        pdk_name: str,
        preset_name: str = "open",
        clock_period_ps: float = 5_000.0,
        submit_minute: float = 0.0,
        options: FlowOptions | None = None,
        deadline_minute: float | None = None,
    ) -> HubJobRecord:
        """Policy-check, queue and execute one flow job, with retries.

        ``options`` is the full :class:`~repro.core.options.FlowOptions`
        request; when omitted one is built from ``preset_name`` /
        ``clock_period_ps``.  The hub's checkpoint store is attached
        unless the request brings its own, so a retried attempt resumes
        from the last completed stage instead of starting over.

        A flow attempt that raises :class:`~repro.core.flow.FlowError`
        is retried under the hub's ``retry_policy`` (backoff budgeted in
        simulated minutes, pushing the cloud submission later); the
        attempt count and per-attempt failures land on the returned
        :class:`HubJobRecord`.  With ``deadline_minute`` and a
        deadline-aware policy, retries that cannot start before the
        deadline are abandoned.
        """
        enrollment = self._enrollment(user_name)
        if options is not None:
            preset_name = options.preset.name
        if not tier_allows(enrollment.tier, pdk_name, preset_name):
            raise HubError(
                f"tier {enrollment.tier.value!r} may not run "
                f"{preset_name!r} on {pdk_name!r}"
            )
        decision = evaluate_access(enrollment.user, get_pdk(pdk_name))
        if not decision.granted:
            raise HubError(
                f"access to {pdk_name} blocked: {decision.blockers}"
            )
        if options is None:
            options = FlowOptions(
                preset=preset_name, clock_period_ps=clock_period_ps
            )
        if options.checkpoints is None:
            options = options.with_overrides(checkpoints=self.checkpoints)
        record = HubJobRecord(
            user=user_name, design=module.name, pdk=pdk_name,
            preset=preset_name, deadline_minute=deadline_minute,
        )
        policy = self.retry_policy
        rng = random.Random(options.seed)
        minute = submit_minute
        attempt = 0
        while True:
            attempt += 1
            try:
                result = run_flow(
                    module, get_pdk(pdk_name), options,
                    tracer=self.tracer, metrics=self.metrics,
                )
            except FlowError as exc:
                record.failures.append(
                    FlowFailure("flow", str(exc), kind="crash")
                )
                self.metrics.counter("hub.flow_failures").inc()
                if policy.gives_up(attempt):
                    record.attempts = attempt
                    raise HubError(
                        f"flow failed after {attempt} attempt(s): {exc}"
                    ) from exc
                backoff = policy.backoff_min(attempt, rng)
                if (
                    policy.deadline_aware
                    and deadline_minute is not None
                    and minute + backoff > deadline_minute
                ):
                    record.attempts = attempt
                    raise HubError(
                        f"flow failed and the deadline (minute "
                        f"{deadline_minute:g}) leaves no room for a "
                        f"retry: {exc}"
                    ) from exc
                self.tracer.add_span(
                    "resil.retry", minute, minute + backoff,
                    design=module.name, attempt=attempt,
                    backoff_min=round(backoff, 3),
                )
                self.metrics.counter("hub.retries").inc()
                minute += backoff
            else:
                break
        record.attempts = attempt
        record.failures.extend(result.failures)
        record.queued_minutes = minute - submit_minute
        # A continue_on_error run may be partial; bill only what ran.
        cells = (
            len(result.synthesis.mapped.cells)
            if result.synthesis is not None else 1
        )
        self.cloud.submit(
            user_name, estimate_job_minutes(cells), minute,
            deadline_min=deadline_minute,
        )
        record.result = result
        self.metrics.counter("hub.jobs").inc()
        tier_policy = policy_for(enrollment.tier)
        if (
            result.physical is not None
            and result.physical.die_area_mm2 > tier_policy.max_die_area_mm2
        ):
            raise HubError(
                f"die area {result.physical.die_area_mm2:.4f} mm2 exceeds "
                f"tier limit {tier_policy.max_die_area_mm2} mm2"
            )
        self.jobs.append(record)
        return record

    def run_campaign(
        self,
        requests: list[CampaignRequest],
        workers: int = 0,
        seed: int = 1,
        scheduler=None,
        submit_minute: float = 0.0,
    ):
        """Policy-check, schedule and execute a multi-tenant campaign.

        This is :meth:`run_design` at classroom scale: every request is
        checked against its user's tier and the PDK's legal gates *up
        front* (one bad submission rejects the campaign before any
        compute is spent), then the batch runs through a
        :class:`~repro.campaign.engine.Campaign` — fair-share scheduled
        across users, executed serially or on a process pool, and
        memoized through the hub's cross-tenant ``result_cache`` so a
        design the hub has already built returns its cached
        :class:`~repro.core.flow.FlowResult`.

        Each executed job is billed to the hub's cloud simulator at its
        simulated dispatch minute (cache hits at a nominal service
        cost), one :class:`HubJobRecord` per request lands on
        ``self.jobs``, and the method returns ``(report, records)``.
        """
        from ..campaign.engine import Campaign

        if not requests:
            raise HubError("campaign has no requests")
        prepared = []
        for request in requests:
            enrollment = self._enrollment(request.user)
            options = request.options
            preset_name = (
                options.preset.name if options is not None else request.preset
            )
            if not tier_allows(enrollment.tier, request.pdk, preset_name):
                raise HubError(
                    f"tier {enrollment.tier.value!r} may not run "
                    f"{preset_name!r} on {request.pdk!r}"
                )
            decision = evaluate_access(enrollment.user, get_pdk(request.pdk))
            if not decision.granted:
                raise HubError(
                    f"access to {request.pdk} blocked: {decision.blockers}"
                )
            if options is None:
                options = FlowOptions(preset=preset_name)
            if options.checkpoints is None:
                options = options.with_overrides(checkpoints=self.checkpoints)
            prepared.append((request, options, preset_name))

        campaign = Campaign(
            scheduler=scheduler,
            cache=self.result_cache,
            workers=workers,
            seed=seed,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        for request, options, _ in prepared:
            campaign.submit(
                request.user, request.module, request.pdk, options=options,
                priority=request.priority, deadline_min=request.deadline_min,
                est_minutes=request.est_minutes,
            )
        report = campaign.run()

        records = []
        for (request, options, preset_name), job in zip(
            prepared, campaign.queue.jobs()
        ):
            record = HubJobRecord(
                user=request.user, design=request.module.name,
                pdk=request.pdk, preset=preset_name,
                result=job.result, attempts=0 if job.cache_hit else 1,
                queued_minutes=job.sim_wait_min,
                deadline_minute=request.deadline_min,
            )
            if job.status == "failed":
                record.failures.append(
                    FlowFailure("flow", job.error or "campaign job failed",
                                kind="crash")
                )
                self.metrics.counter("hub.flow_failures").inc()
            else:
                result = job.result
                cells = (
                    len(result.synthesis.mapped.cells)
                    if result is not None and result.synthesis is not None
                    else 1
                )
                # Hits are billed the nominal cache service cost, not a
                # flow run — memoization is the campaign's capacity story.
                minutes = (
                    campaign.cache_hit_minutes if job.cache_hit
                    else estimate_job_minutes(cells)
                )
                self.cloud.submit(
                    request.user, max(minutes, 0.01),
                    submit_minute + job.sim_wait_min,
                    deadline_min=request.deadline_min,
                )
                self.metrics.counter("hub.jobs").inc()
            records.append(record)
            self.jobs.append(record)
        self.metrics.counter("hub.campaigns").inc()
        return report, records

    # -- shuttles ------------------------------------------------------------

    def shuttle(self, pdk_name: str, **kwargs) -> ShuttleProgram:
        if pdk_name not in self._shuttles:
            kwargs.setdefault("tracer", self.tracer)
            self._shuttles[pdk_name] = ShuttleProgram(get_pdk(pdk_name), **kwargs)
        return self._shuttles[pdk_name]

    def book_shuttle_seat(
        self, user_name: str, pdk_name: str, area_mm2: float,
        ready_day: int = 0,
    ) -> SeatQuote:
        enrollment = self._enrollment(user_name)
        decision = self.request_access(user_name, pdk_name)
        if not decision.granted:
            raise HubError(f"shuttle access blocked: {decision.blockers}")
        policy = policy_for(enrollment.tier)
        if area_mm2 > policy.max_die_area_mm2:
            raise HubError(
                f"seat area {area_mm2} mm2 exceeds tier limit "
                f"{policy.max_die_area_mm2} mm2"
            )
        project = ShuttleProject(
            name=f"{user_name}_{len(self.jobs)}",
            owner=user_name,
            area_mm2=area_mm2,
            sponsored=policy.shuttle_subsidized,
        )
        return self.shuttle(pdk_name).submit(project, ready_day=ready_day)

    def request_tapeout(
        self,
        user_name: str,
        record: HubJobRecord,
        waivers: set[str] | None = None,
        ready_day: int = 0,
    ) -> SeatQuote:
        """Signoff-gated shuttle booking: the full tape-out path.

        Runs the signoff checklist on the job's flow result; only a
        READY design (all checks passing or explicitly waived) may book
        a seat — the process discipline that protects a semester's MPW
        budget from a stale or broken layout.
        """
        from .signoff import run_signoff

        if record.result is None:
            raise HubError("job has no flow result to sign off")
        enrollment = self._enrollment(user_name)
        policy = policy_for(enrollment.tier)
        signoff = run_signoff(
            record.result,
            max_die_area_mm2=policy.max_die_area_mm2,
            waivers=waivers,
        )
        if not signoff.ready_for_tapeout:
            raise HubError(f"signoff blocks tape-out: {signoff.summary()}")
        return self.book_shuttle_seat(
            user_name,
            record.pdk,
            area_mm2=max(0.05, record.result.physical.die_area_mm2),
            ready_day=ready_day,
        )

    # -- IP catalogue -----------------------------------------------------------

    def ip_catalogue(self) -> list[str]:
        return catalogue()

    def fetch_ip(self, name: str, **params) -> IpBlock:
        """IP is open (Recommendation 5): no tier or legal gate."""
        return generate(name, **params)
