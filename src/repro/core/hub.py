"""The enablement hub: one front door to PDKs, flows, IP and shuttles.

This class is the paper's Recommendation 7 made concrete: a centralized
(cloud-backed) platform through which users at different tiers
(Recommendation 8) request technology access (Section III-C gates),
run the configured flow (Recommendation 4 templates) and book MPW seats
(Recommendation 6), with the open IP catalogue (Recommendation 5) a call
away.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hdl.ir import Module
from ..ip.base import IpBlock
from ..ip.catalog import catalogue, generate
from ..pdk.pdks import Pdk, get_pdk, list_pdks
from .cloud import CloudPlatform, estimate_job_minutes
from .flow import FlowResult, run_flow
from .licensing import AccessDecision, User, evaluate_access
from .presets import get_preset
from .shuttle import SeatQuote, ShuttleProgram, ShuttleProject
from .tiers import AccessTier, policy_for, tier_allows


class HubError(Exception):
    """Raised when a hub request violates policy."""


@dataclass
class Enrollment:
    user: User
    tier: AccessTier


@dataclass
class HubJobRecord:
    """Bookkeeping for one flow execution through the hub."""

    user: str
    design: str
    pdk: str
    preset: str
    result: FlowResult | None = None
    queued_minutes: float = 0.0


@dataclass
class EnablementHub:
    """The central platform object."""

    name: str = "eu-design-hub"
    cloud: CloudPlatform = field(default_factory=lambda: CloudPlatform(servers=8))
    _users: dict[str, Enrollment] = field(default_factory=dict)
    _shuttles: dict[str, ShuttleProgram] = field(default_factory=dict)
    jobs: list[HubJobRecord] = field(default_factory=list)

    # -- enrollment & access -------------------------------------------------

    def enroll(self, user: User, tier: AccessTier) -> Enrollment:
        enrollment = Enrollment(user=user, tier=tier)
        self._users[user.name] = enrollment
        return enrollment

    def _enrollment(self, user_name: str) -> Enrollment:
        if user_name not in self._users:
            raise HubError(f"user {user_name!r} is not enrolled")
        return self._users[user_name]

    def available_pdks(self, user_name: str) -> list[str]:
        """PDKs this user can actually use: tier policy + legal gates."""
        enrollment = self._enrollment(user_name)
        usable = []
        for name in list_pdks():
            if not tier_allows(enrollment.tier, name):
                # Advanced preset access checked separately at run time.
                if name not in policy_for(enrollment.tier).allowed_pdks:
                    continue
            if evaluate_access(enrollment.user, get_pdk(name)).granted:
                usable.append(name)
        return usable

    def request_access(self, user_name: str, pdk_name: str) -> AccessDecision:
        """Full decision trail for one user/PDK pair."""
        enrollment = self._enrollment(user_name)
        policy = policy_for(enrollment.tier)
        if pdk_name not in policy.allowed_pdks:
            return AccessDecision(
                granted=False,
                blockers=[
                    f"tier {enrollment.tier.value!r} does not include "
                    f"{pdk_name} (allowed: {list(policy.allowed_pdks)})"
                ],
            )
        return evaluate_access(enrollment.user, get_pdk(pdk_name))

    # -- flow execution -------------------------------------------------------

    def run_design(
        self,
        user_name: str,
        module: Module,
        pdk_name: str,
        preset_name: str = "open",
        clock_period_ps: float = 5_000.0,
        submit_minute: float = 0.0,
    ) -> HubJobRecord:
        """Policy-check, queue and execute one flow job."""
        enrollment = self._enrollment(user_name)
        if not tier_allows(enrollment.tier, pdk_name, preset_name):
            raise HubError(
                f"tier {enrollment.tier.value!r} may not run "
                f"{preset_name!r} on {pdk_name!r}"
            )
        decision = evaluate_access(enrollment.user, get_pdk(pdk_name))
        if not decision.granted:
            raise HubError(
                f"access to {pdk_name} blocked: {decision.blockers}"
            )
        record = HubJobRecord(
            user=user_name, design=module.name, pdk=pdk_name,
            preset=preset_name,
        )
        result = run_flow(
            module,
            get_pdk(pdk_name),
            preset=get_preset(preset_name),
            clock_period_ps=clock_period_ps,
        )
        cells = len(result.synthesis.mapped.cells)
        self.cloud.submit(
            user_name, estimate_job_minutes(cells), submit_minute
        )
        record.result = result
        policy = policy_for(enrollment.tier)
        if result.physical.die_area_mm2 > policy.max_die_area_mm2:
            raise HubError(
                f"die area {result.physical.die_area_mm2:.4f} mm2 exceeds "
                f"tier limit {policy.max_die_area_mm2} mm2"
            )
        self.jobs.append(record)
        return record

    # -- shuttles ------------------------------------------------------------

    def shuttle(self, pdk_name: str, **kwargs) -> ShuttleProgram:
        if pdk_name not in self._shuttles:
            self._shuttles[pdk_name] = ShuttleProgram(get_pdk(pdk_name), **kwargs)
        return self._shuttles[pdk_name]

    def book_shuttle_seat(
        self, user_name: str, pdk_name: str, area_mm2: float,
        ready_day: int = 0,
    ) -> SeatQuote:
        enrollment = self._enrollment(user_name)
        decision = self.request_access(user_name, pdk_name)
        if not decision.granted:
            raise HubError(f"shuttle access blocked: {decision.blockers}")
        policy = policy_for(enrollment.tier)
        if area_mm2 > policy.max_die_area_mm2:
            raise HubError(
                f"seat area {area_mm2} mm2 exceeds tier limit "
                f"{policy.max_die_area_mm2} mm2"
            )
        project = ShuttleProject(
            name=f"{user_name}_{len(self.jobs)}",
            owner=user_name,
            area_mm2=area_mm2,
            sponsored=policy.shuttle_subsidized,
        )
        return self.shuttle(pdk_name).submit(project, ready_day=ready_day)

    def request_tapeout(
        self,
        user_name: str,
        record: HubJobRecord,
        waivers: set[str] | None = None,
        ready_day: int = 0,
    ) -> SeatQuote:
        """Signoff-gated shuttle booking: the full tape-out path.

        Runs the signoff checklist on the job's flow result; only a
        READY design (all checks passing or explicitly waived) may book
        a seat — the process discipline that protects a semester's MPW
        budget from a stale or broken layout.
        """
        from .signoff import run_signoff

        if record.result is None:
            raise HubError("job has no flow result to sign off")
        enrollment = self._enrollment(user_name)
        policy = policy_for(enrollment.tier)
        signoff = run_signoff(
            record.result,
            max_die_area_mm2=policy.max_die_area_mm2,
            waivers=waivers,
        )
        if not signoff.ready_for_tapeout:
            raise HubError(f"signoff blocks tape-out: {signoff.summary()}")
        return self.book_shuttle_seat(
            user_name,
            record.pdk,
            area_mm2=max(0.05, record.result.physical.die_area_mm2),
            ready_day=ready_day,
        )

    # -- IP catalogue -----------------------------------------------------------

    def ip_catalogue(self) -> list[str]:
        return catalogue()

    def fetch_ip(self, name: str, **params) -> IpBlock:
        """IP is open (Recommendation 5): no tier or legal gate."""
        return generate(name, **params)
