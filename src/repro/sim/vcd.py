"""Value-change-dump (VCD) waveform writer.

Waveform output is part of the "collateral" story (Recommendation 5): every
IP ships with a testbench whose traces a student can open in GTKWave.
"""

from __future__ import annotations

import io
import string


class VcdWriter:
    """Collects samples from a :class:`~repro.sim.engine.Simulator`.

    Attach with ``sim.attach_tracer(vcd)``; call :meth:`render` (or
    :meth:`save`) when done.  One sample is taken per reset/step.
    """

    _ID_ALPHABET = string.ascii_letters + string.digits + "!#$%&"

    def __init__(self, signals: list[str] | None = None, timescale: str = "1ns"):
        self.signals = signals  # None means "all"
        self.timescale = timescale
        self._samples: list[tuple[int, dict[str, int]]] = []
        self._widths: dict[str, int] = {}

    def sample(self, sim) -> None:
        values = sim.peek_all()
        if self.signals is not None:
            values = {k: values[k] for k in self.signals}
        if not self._widths:
            by_name = {s.name: s.width for s in sim.module.signals}
            self._widths = {name: by_name[name] for name in values}
        self._samples.append((sim.cycle, dict(values)))

    def _ident(self, index: int) -> str:
        alphabet = self._ID_ALPHABET
        ident = ""
        index += 1
        while index:
            index, rem = divmod(index - 1, len(alphabet))
            ident = alphabet[rem] + ident
        return ident

    def render(self) -> str:
        """Produce the VCD file contents."""
        out = io.StringIO()
        out.write("$date repro $end\n")
        out.write(f"$timescale {self.timescale} $end\n")
        out.write("$scope module top $end\n")
        idents = {}
        for i, (name, width) in enumerate(sorted(self._widths.items())):
            ident = self._ident(i)
            idents[name] = ident
            vcd_name = name.replace(".", "_")
            out.write(f"$var wire {width} {ident} {vcd_name} $end\n")
        out.write("$upscope $end\n$enddefinitions $end\n")

        previous: dict[str, int] = {}
        for cycle, values in self._samples:
            out.write(f"#{cycle}\n")
            for name in sorted(values):
                value = values[name]
                if previous.get(name) == value:
                    continue
                previous[name] = value
                width = self._widths[name]
                if width == 1:
                    out.write(f"{value}{idents[name]}\n")
                else:
                    out.write(f"b{value:b} {idents[name]}\n")
        return out.getvalue()

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.render())
