"""Cycle-accurate RTL simulation.

The simulator elaborates (flattens) the design, levelizes the combinational
assignments once, and then evaluates them in topological order each delta
cycle — the standard technique for synchronous single-clock designs.  It
drives the paper's "frontend productivity" story: a design written in the
HCL can be functionally verified before any backend work.
"""

from __future__ import annotations

from ..hdl.elaborate import elaborate
from ..hdl.ir import HdlError, Module, Signal, eval_expr


class Simulator:
    """Simulates a (possibly hierarchical) :class:`~repro.hdl.ir.Module`.

    Typical use::

        sim = Simulator(counter)
        sim.reset()
        sim.set("en", 1)
        sim.step(10)
        assert sim.get("q") == 10

    ``set``/``get`` address signals of the flattened design by name;
    hierarchical signals use ``<instance>.<signal>`` paths.
    """

    def __init__(self, module: Module):
        self.module = elaborate(module)
        self._by_name: dict[str, Signal] = {
            sig.name: sig for sig in self.module.signals
        }
        self._order = self.module.comb_order()
        self._inputs = frozenset(self.module.inputs)
        self._values: dict[Signal, int] = {
            sig: 0 for sig in self.module.signals
        }
        self.cycle = 0
        self._tracers: list = []
        self.reset()

    # -- signal access ------------------------------------------------------

    def _signal(self, name: str) -> Signal:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"no signal {name!r}; available: "
                f"{sorted(self._by_name)[:10]}..."
            ) from None

    def _check_input(self, name: str, value: int) -> Signal:
        sig = self._signal(name)
        if sig not in self._inputs:
            raise HdlError(f"signal {name!r} is not an input port")
        if not 0 <= value <= sig.mask:
            raise HdlError(
                f"value {value} does not fit input {name!r} "
                f"({sig.width} bits)"
            )
        return sig

    def set(self, name: str, value: int) -> None:
        """Drive an input port; takes effect at the next evaluation."""
        self._values[self._check_input(name, value)] = value
        self._settle()

    def set_many(self, values: dict[str, int]) -> None:
        """Drive several input ports, settling combinational logic once.

        Equivalent to calling :meth:`set` per entry but with a single
        re-evaluation sweep — the batched path :meth:`run_vectors` uses.
        All values are validated before any is applied.
        """
        signals = [
            (self._check_input(name, value), value)
            for name, value in values.items()
        ]
        for sig, value in signals:
            self._values[sig] = value
        if signals:
            self._settle()

    def get(self, name: str) -> int:
        """Current value of any signal in the flattened design."""
        return self._values[self._signal(name)]

    def peek_all(self) -> dict[str, int]:
        """Snapshot of every signal value, keyed by flat name."""
        return {sig.name: val for sig, val in self._values.items()}

    # -- simulation ----------------------------------------------------------

    def _settle(self) -> None:
        """Re-evaluate all combinational logic in topological order."""
        for sig in self._order:
            self._values[sig] = eval_expr(
                self.module.assigns[sig], self._values
            )

    def reset(self) -> None:
        """Synchronous reset: load every register's reset value."""
        for reg in self.module.registers:
            self._values[reg.signal] = reg.reset_value
        self._settle()
        for tracer in self._tracers:
            tracer.sample(self)

    def load_state(self, state: dict[str, int]) -> None:
        """Force register words to the given values (by register name).

        Used to replay formal counterexamples, which may start from a
        state no reset-and-step sequence reaches.
        """
        by_name = {reg.signal.name: reg for reg in self.module.registers}
        for name, value in state.items():
            if name not in by_name:
                raise KeyError(f"no register named {name!r} in module")
            reg = by_name[name]
            self._values[reg.signal] = value & reg.signal.mask
        self._settle()

    def get_register(self, name: str) -> int:
        """Current value of the register word ``name``.

        Same as :meth:`get` for RTL, but checked: raises ``KeyError``
        when ``name`` is not a register.  The gate-level simulators
        expose the same method, so generic replay code (formal
        counterexamples) reads state identically across all three.
        """
        if not any(reg.signal.name == name for reg in self.module.registers):
            raise KeyError(f"no register named {name!r} in module")
        return self.get(name)

    def step(self, cycles: int = 1) -> None:
        """Advance ``cycles`` rising clock edges."""
        for _ in range(cycles):
            next_values = {
                reg.signal: eval_expr(reg.next, self._values)
                & reg.signal.mask
                for reg in self.module.registers
            }
            self._values.update(next_values)
            self.cycle += 1
            self._settle()
            for tracer in self._tracers:
                tracer.sample(self)

    def attach_tracer(self, tracer) -> None:
        """Register an object with a ``sample(sim)`` method (e.g. VCD)."""
        self._tracers.append(tracer)

    def run_trajectory(
        self, vectors: list[dict[str, int]], watch: list[str]
    ) -> tuple[list[dict[str, int]], list[list[int]]]:
        """Replay one input vector per cycle, recording the trajectory.

        Returns ``(states, outputs)``: ``states[c]`` is the register
        state *before* vector ``c`` was applied (so it has one more
        entry than ``vectors`` — the final post-run state), and
        ``outputs[c]`` the settled ``watch`` values under vector ``c``.
        This is the record the word-parallel equivalence fast path
        forces into the implementation simulator.

        Semantically identical to :meth:`run_vectors` plus register
        snapshots, but with a single combinational settle per cycle:
        the settle :meth:`step` runs after the register update is
        redundant here because nothing combinational is read before the
        next cycle's :meth:`set_many` re-settles.  With tracers
        attached the method falls back to the plain loop so waveform
        sampling sees fully settled values.
        """
        registers = [reg.signal for reg in self.module.registers]
        watch_sigs = [self._signal(name) for name in watch]
        values = self._values
        fast = not self._tracers
        states: list[dict[str, int]] = []
        outputs: list[list[int]] = []
        for vector in vectors:
            states.append({sig.name: values[sig] for sig in registers})
            self.set_many(vector)
            outputs.append([values[sig] for sig in watch_sigs])
            if fast:
                next_values = {
                    reg.signal: eval_expr(reg.next, values)
                    & reg.signal.mask
                    for reg in self.module.registers
                }
                values.update(next_values)
                self.cycle += 1
            else:
                self.step()
        states.append({sig.name: values[sig] for sig in registers})
        if fast and vectors:
            self._settle()  # leave combinational reads consistent
        return states, outputs

    def run_vectors(
        self, vectors: list[dict[str, int]], watch: list[str]
    ) -> list[dict[str, int]]:
        """Apply one input vector per cycle, recording ``watch`` signals.

        Each vector is applied, outputs are sampled combinationally, then
        the clock steps.  Returns one record per vector.
        """
        records: list[dict[str, int]] = []
        for vector in vectors:
            self.set_many(vector)
            records.append({name: self.get(name) for name in watch})
            self.step()
        return records
