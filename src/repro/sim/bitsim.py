"""Word-parallel (bit-packed) logic simulation.

The scalar simulators evaluate one test vector at a time: every gate
costs one Python-level operation per vector.  This module packs
``W = 64`` *independent* vectors into one Python int per signal **bit**
— lane ``l`` of the word is the value of that bit under vector ``l`` —
and evaluates gates with bitwise operations, so one ``&``/``|``/``^``
simulates all 64 vectors at once.  This is the classic PPSFP technique
from EDA fault simulators, and it is pure-Python friendly because
Python ints are arbitrary-width bit vectors.

Packed value convention
-----------------------

A *packed word* for an ``n``-bit signal is a list of ``n`` ints, LSB
first (the same bit ordering the netlists use): ``words[i]`` holds bit
``i`` of the signal across all lanes, with lane ``l`` in bit ``l`` of
the int.  :func:`pack_word` transposes a list of per-lane scalar values
into this layout, :func:`unpack_word` transposes back, and
:func:`extract_lane` recovers the single scalar value of one lane — the
mismatch-localization primitive the equivalence checker uses to hand a
failing lane back to the scalar simulators.

Three packed engines mirror the scalar simulator APIs
(``set``/``set_many``/``get``/``step``/``get_register``/``load_state``)
so lockstep drivers can treat them interchangeably:

* :class:`PackedGateSimulator` — over a ``GateNetlist``;
* :class:`PackedMappedSimulator` — over a ``MappedNetlist`` of
  standard cells (packed per-kind boolean functions, with a per-lane
  fallback for unknown cells);
* :class:`PackedRtlSimulator` — over an RTL ``Module``, by reusing the
  flow's own verified bit-blaster (:func:`repro.synth.lower.lower`)
  and running the resulting netlist packed.

This module deliberately imports nothing from :mod:`repro.synth` at
module level (the synth package imports back into here); the RTL engine
lowers lazily at construction time.
"""

from __future__ import annotations

#: Number of vectors packed into one machine word.  64 keeps every
#: lane word within one CPython "digit spill" of a small int and
#: matches the classic PPSFP word size.
LANES = 64

#: All-ones mask over the full lane count.
FULL_MASK = (1 << LANES) - 1


class PackedSimError(Exception):
    """Raised for malformed packed stimulus or unsupported designs."""


# ---------------------------------------------------------------------------
# Packing helpers
# ---------------------------------------------------------------------------


def pack_word(values: list[int], width: int) -> list[int]:
    """Transpose per-lane scalar ``values`` into a packed word.

    ``values[l]`` is the scalar value of lane ``l``; the result is one
    int per signal bit, LSB first, with lane ``l`` in bit ``l``.  At
    most :data:`LANES` values are allowed; missing lanes stay 0.
    """
    if len(values) > LANES:
        raise PackedSimError(
            f"cannot pack {len(values)} vectors into {LANES} lanes"
        )
    words = [0] * width
    for bit in range(width):
        probe = 1 << bit
        word = 0
        for lane, value in enumerate(values):
            if value & probe:
                word |= 1 << lane
        words[bit] = word
    return words


def unpack_word(words: list[int], lane_count: int = LANES) -> list[int]:
    """Transpose a packed word back into per-lane scalar values."""
    return [extract_lane(words, lane) for lane in range(lane_count)]


def extract_lane(words: list[int], lane: int) -> int:
    """Scalar value of one lane of a packed word.

    This is the mismatch-localization routine: given the packed inputs
    (or outputs) of a failing simulation and the index of the offending
    lane, it recovers the exact single test vector to replay through
    the scalar simulators.
    """
    value = 0
    for bit, word in enumerate(words):
        value |= ((word >> lane) & 1) << bit
    return value


def extract_lane_vector(
    packed: dict[str, list[int]], lane: int
) -> dict[str, int]:
    """Scalar ``{signal: value}`` vector for one lane of packed stimulus."""
    return {name: extract_lane(words, lane) for name, words in packed.items()}


def broadcast_word(value: int, width: int, mask: int = FULL_MASK) -> list[int]:
    """Packed word holding the same scalar ``value`` in every lane."""
    return [mask if (value >> bit) & 1 else 0 for bit in range(width)]


def group_bit_labels(labels: list[str]) -> dict[str, list[tuple[int, int]]]:
    """Group flat bit labels into words by the ``reg[i]`` convention.

    ``labels[p]`` names state element ``p`` (a flop name or a DFF tag);
    the result maps each word name to ``(bit_index, position)`` pairs.
    Unlabelled positions become single-bit ``dff<p>`` words — the same
    convention the scalar gate simulators use.
    """
    words: dict[str, list[tuple[int, int]]] = {}
    for position, label in enumerate(labels):
        label = label or f"dff{position}"
        base, _, rest = label.rpartition("[")
        if base and rest.endswith("]") and rest[:-1].isdigit():
            words.setdefault(base, []).append((int(rest[:-1]), position))
        else:
            words.setdefault(label, []).append((0, position))
    return words


# ---------------------------------------------------------------------------
# Packed standard-cell functions
# ---------------------------------------------------------------------------

#: Lane-parallel boolean functions per cell kind.  Each takes the lane
#: mask first, then one packed lane word per input pin.
_PACKED_CELL_FUNCS = {
    "INV": lambda m, a: a ^ m,
    "BUF": lambda m, a: a,
    "NAND2": lambda m, a, b: (a & b) ^ m,
    "NOR2": lambda m, a, b: (a | b) ^ m,
    "AND2": lambda m, a, b: a & b,
    "OR2": lambda m, a, b: a | b,
    "XOR2": lambda m, a, b: a ^ b,
    "XNOR2": lambda m, a, b: (a ^ b) ^ m,
    "NAND3": lambda m, a, b, c: (a & b & c) ^ m,
    "NOR3": lambda m, a, b, c: (a | b | c) ^ m,
    "AOI21": lambda m, a, b, c: ((a & b) | c) ^ m,
    "OAI21": lambda m, a, b, c: ((a | b) & c) ^ m,
    "MUX2": lambda m, a, b, s: (b & s) | (a & (s ^ m)),
    "TIE0": lambda m: 0,
    "TIE1": lambda m: m,
}


def packed_cell_function(cell, mask: int):
    """The lane-parallel function of a standard cell.

    Known kinds use a closed-form bitwise expression; anything else
    falls back to evaluating the cell's scalar ``function`` once per
    lane (correct for any cell, just not fast).
    """
    fn = _PACKED_CELL_FUNCS.get(cell.kind)
    if fn is not None:
        return lambda *words, _fn=fn, _m=mask: _fn(_m, *words)
    scalar = cell.function
    if scalar is None:
        raise PackedSimError(
            f"cell {cell.name!r} has no combinational function"
        )
    lanes = mask.bit_length()

    def per_lane(*words):
        out = 0
        for lane in range(lanes):
            if scalar(*(((w >> lane) & 1) for w in words)):
                out |= 1 << lane
        return out

    return per_lane


# ---------------------------------------------------------------------------
# Packed gate-netlist simulator
# ---------------------------------------------------------------------------

# settle() opcodes, kept as ints so the hot loop branches on an int
# compare instead of a dict lookup + lambda call per gate.
_OP_AND, _OP_OR, _OP_XOR, _OP_NOT, _OP_BUF = range(5)
_OPCODES = {"AND": _OP_AND, "OR": _OP_OR, "XOR": _OP_XOR,
            "NOT": _OP_NOT, "BUF": _OP_BUF}


class PackedGateSimulator:
    """Word-parallel simulator over a ``GateNetlist``.

    Mirrors :class:`repro.synth.netlist.GateSimulator` but every net
    holds a lane word: one Python-level bitwise op per gate simulates
    all ``lanes`` vectors.  Packed values are lists of lane words, LSB
    first (see the module docstring).
    """

    def __init__(self, netlist, lanes: int = LANES):
        if not 1 <= lanes <= LANES:
            raise PackedSimError(f"lanes must be in 1..{LANES}, got {lanes}")
        self.netlist = netlist
        self.lanes = lanes
        self.mask = (1 << lanes) - 1
        # Pre-encode the topological settle program once.
        self._program: list[tuple[int, int, int, int]] = []
        for gate in netlist.topo_gates():
            opcode = _OPCODES[gate.op]
            a = gate.inputs[0]
            b = gate.inputs[1] if len(gate.inputs) > 1 else a
            self._program.append((opcode, gate.output, a, b))
        self._values: list[int] = [0] * netlist.n_nets
        self._words = group_bit_labels([ff.name for ff in netlist.dffs])
        self.reset()

    # -- state --------------------------------------------------------------

    def register_words(self) -> dict[str, list[int]]:
        """Register word name -> sorted bit indices (correspondence map)."""
        return {
            name: sorted(bit for bit, _ in pairs)
            for name, pairs in self._words.items()
        }

    def input_widths(self) -> dict[str, int]:
        """Input port name -> bit width."""
        return {name: len(nets) for name, nets in self.netlist.inputs.items()}

    def reset(self) -> None:
        values = self._values
        mask = self.mask
        for net, value in self.netlist.const_nets.items():
            values[net] = mask if value else 0
        for ff in self.netlist.dffs:
            values[ff.q] = mask if ff.reset_value else 0
        self._settle()

    def load_state(
        self, state: dict[str, list[int]], settle: bool = True
    ) -> None:
        """Force register words to packed per-lane values (by flop name).

        ``settle=False`` defers combinational re-evaluation for callers
        that immediately follow with :meth:`set_many` (which settles).
        """
        dffs = self.netlist.dffs
        for name, words in state.items():
            if name not in self._words:
                raise KeyError(f"no register named {name!r} in netlist")
            for bit_index, position in self._words[name]:
                word = words[bit_index] if bit_index < len(words) else 0
                self._check_word(word)
                self._values[dffs[position].q] = word
        if settle:
            self._settle()

    def get_register(self, name: str) -> list[int]:
        """Packed current value of the register word ``name``."""
        if name not in self._words:
            raise KeyError(f"no register named {name!r} in netlist")
        pairs = self._words[name]
        width = 1 + max(bit for bit, _ in pairs)
        words = [0] * width
        for bit_index, position in pairs:
            words[bit_index] = self._values[self.netlist.dffs[position].q]
        return words

    # -- stimulus -----------------------------------------------------------

    def _check_word(self, word: int) -> None:
        if not 0 <= word <= self.mask:
            raise PackedSimError(
                f"lane word {word:#x} exceeds the {self.lanes}-lane mask"
            )

    def _write_input(self, name: str, words: list[int]) -> None:
        nets = self.netlist.inputs[name]
        if len(words) != len(nets):
            raise PackedSimError(
                f"input {name!r} is {len(nets)} bits, got {len(words)} "
                "lane words"
            )
        for net, word in zip(nets, words):
            self._check_word(word)
            self._values[net] = word

    def set(self, name: str, words: list[int]) -> None:
        """Drive an input with one lane word per bit, then settle."""
        self._write_input(name, words)
        self._settle()

    def set_many(self, values: dict[str, list[int]]) -> None:
        """Drive several inputs with a single settle sweep."""
        for name, words in values.items():
            self._write_input(name, words)
        self._settle()

    def get(self, name: str) -> list[int]:
        """Packed value of output ``name`` (one lane word per bit)."""
        values = self._values
        return [values[net] for net in self.netlist.outputs[name]]

    # -- evaluation ---------------------------------------------------------

    def _settle(self) -> None:
        values = self._values
        mask = self.mask
        for opcode, out, a, b in self._program:
            if opcode == _OP_AND:
                values[out] = values[a] & values[b]
            elif opcode == _OP_OR:
                values[out] = values[a] | values[b]
            elif opcode == _OP_XOR:
                values[out] = values[a] ^ values[b]
            elif opcode == _OP_NOT:
                values[out] = values[a] ^ mask
            else:
                values[out] = values[a]

    def step(self, cycles: int = 1) -> None:
        values = self._values
        dffs = self.netlist.dffs
        for _ in range(cycles):
            sampled = [values[ff.d] for ff in dffs]
            for ff, word in zip(dffs, sampled):
                values[ff.q] = word
            self._settle()


# ---------------------------------------------------------------------------
# Packed mapped-netlist simulator
# ---------------------------------------------------------------------------


class PackedMappedSimulator:
    """Word-parallel simulator over a ``MappedNetlist`` of standard cells."""

    def __init__(self, mapped, lanes: int = LANES):
        if not 1 <= lanes <= LANES:
            raise PackedSimError(f"lanes must be in 1..{LANES}, got {lanes}")
        self.mapped = mapped
        self.lanes = lanes
        self.mask = (1 << lanes) - 1
        # Program entries carry the input nets arity-split (a, b, c) so
        # settle can call without *args tuple building per cell.
        self._program = []
        for inst in mapped.topo_comb():
            fn = packed_cell_function(inst.cell, self.mask)
            ins = [inst.pins[p] for p in inst.cell.inputs]
            a, b, c = (ins + [0, 0, 0])[:3]
            self._program.append(
                (len(ins), fn, inst.pins[inst.cell.output], a, b, c)
            )
        self._seq = [
            (inst.pins["d"], inst.pins[inst.cell.output], inst.reset_value)
            for inst in mapped.seq_cells
        ]
        self._words = group_bit_labels(
            [inst.tag for inst in mapped.seq_cells]
        )
        self._values: dict[int, int] = {n: 0 for n in mapped.nets()}
        self.reset()

    # -- state --------------------------------------------------------------

    def register_words(self) -> dict[str, list[int]]:
        """Register word name -> sorted bit indices (correspondence map)."""
        return {
            name: sorted(bit for bit, _ in pairs)
            for name, pairs in self._words.items()
        }

    def input_widths(self) -> dict[str, int]:
        """Input port name -> bit width."""
        return {name: len(nets) for name, nets in self.mapped.inputs.items()}

    def reset(self) -> None:
        mask = self.mask
        for _, q, reset_value in self._seq:
            self._values[q] = mask if reset_value else 0
        self._settle()

    def load_state(
        self, state: dict[str, list[int]], settle: bool = True
    ) -> None:
        """Force register words to packed per-lane values (by DFF tag).

        ``settle=False`` defers combinational re-evaluation for callers
        that immediately follow with :meth:`set_many` (which settles).
        """
        for name, words in state.items():
            if name not in self._words:
                raise KeyError(f"no register named {name!r} in netlist")
            for bit_index, position in self._words[name]:
                word = words[bit_index] if bit_index < len(words) else 0
                self._check_word(word)
                self._values[self._seq[position][1]] = word
        if settle:
            self._settle()

    def get_register(self, name: str) -> list[int]:
        """Packed current value of the register word ``name``."""
        if name not in self._words:
            raise KeyError(f"no register named {name!r} in netlist")
        pairs = self._words[name]
        width = 1 + max(bit for bit, _ in pairs)
        words = [0] * width
        for bit_index, position in pairs:
            words[bit_index] = self._values[self._seq[position][1]]
        return words

    # -- stimulus -----------------------------------------------------------

    def _check_word(self, word: int) -> None:
        if not 0 <= word <= self.mask:
            raise PackedSimError(
                f"lane word {word:#x} exceeds the {self.lanes}-lane mask"
            )

    def _write_input(self, name: str, words: list[int]) -> None:
        nets = self.mapped.inputs[name]
        if len(words) != len(nets):
            raise PackedSimError(
                f"input {name!r} is {len(nets)} bits, got {len(words)} "
                "lane words"
            )
        for net, word in zip(nets, words):
            self._check_word(word)
            self._values[net] = word

    def set(self, name: str, words: list[int]) -> None:
        self._write_input(name, words)
        self._settle()

    def set_many(self, values: dict[str, list[int]]) -> None:
        for name, words in values.items():
            self._write_input(name, words)
        self._settle()

    def get(self, name: str) -> list[int]:
        values = self._values
        return [values[net] for net in self.mapped.outputs[name]]

    # -- evaluation ---------------------------------------------------------

    def _settle(self) -> None:
        values = self._values
        for arity, fn, out, a, b, c in self._program:
            if arity == 2:
                values[out] = fn(values[a], values[b])
            elif arity == 3:
                values[out] = fn(values[a], values[b], values[c])
            elif arity == 1:
                values[out] = fn(values[a])
            else:
                values[out] = fn()

    def step(self, cycles: int = 1) -> None:
        values = self._values
        for _ in range(cycles):
            sampled = [(q, values[d]) for d, q, _ in self._seq]
            for q, word in sampled:
                values[q] = word
            self._settle()


# ---------------------------------------------------------------------------
# Packed RTL simulator
# ---------------------------------------------------------------------------


class PackedRtlSimulator:
    """Word-parallel simulator over an RTL ``Module``.

    RTL expressions are word-level (adds, compares, muxes), which do
    not vectorize over lane words directly, so this engine follows the
    bit-blaster conventions: the module is lowered through the flow's
    own verified bit blaster (:func:`repro.synth.lower.lower`) and the
    resulting gate netlist is simulated packed.  Flop names carry the
    ``reg[i]`` register correspondence, so ``get_register`` /
    ``load_state`` address the same words as the scalar
    :class:`repro.sim.Simulator`.
    """

    def __init__(self, module, lanes: int = LANES):
        # Imported lazily: repro.synth imports back into repro.sim.
        from ..synth.lower import lower

        self.netlist = lower(module)
        self._sim = PackedGateSimulator(self.netlist, lanes)
        self.lanes = self._sim.lanes
        self.mask = self._sim.mask

    def register_words(self) -> dict[str, list[int]]:
        return self._sim.register_words()

    def input_widths(self) -> dict[str, int]:
        return self._sim.input_widths()

    def reset(self) -> None:
        self._sim.reset()

    def load_state(
        self, state: dict[str, list[int]], settle: bool = True
    ) -> None:
        self._sim.load_state(state, settle)

    def get_register(self, name: str) -> list[int]:
        return self._sim.get_register(name)

    def set(self, name: str, words: list[int]) -> None:
        self._sim.set(name, words)

    def set_many(self, values: dict[str, list[int]]) -> None:
        self._sim.set_many(values)

    def get(self, name: str) -> list[int]:
        return self._sim.get(name)

    def step(self, cycles: int = 1) -> None:
        self._sim.step(cycles)
