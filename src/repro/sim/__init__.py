"""Simulation: RTL simulator, waveform tracing, testbench harness."""

from .engine import Simulator
from .testbench import Testbench, TestbenchResult
from .vcd import VcdWriter

__all__ = ["Simulator", "Testbench", "TestbenchResult", "VcdWriter"]
