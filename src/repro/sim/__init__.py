"""Simulation: RTL simulator, waveform tracing, testbench harness,
and the word-parallel (bit-packed) engines."""

from .bitsim import (
    LANES,
    PackedGateSimulator,
    PackedMappedSimulator,
    PackedRtlSimulator,
    PackedSimError,
    broadcast_word,
    extract_lane,
    extract_lane_vector,
    pack_word,
    unpack_word,
)
from .engine import Simulator
from .testbench import Testbench, TestbenchResult
from .vcd import VcdWriter

__all__ = [
    "LANES",
    "PackedGateSimulator",
    "PackedMappedSimulator",
    "PackedRtlSimulator",
    "PackedSimError",
    "Simulator",
    "Testbench",
    "TestbenchResult",
    "VcdWriter",
    "broadcast_word",
    "extract_lane",
    "extract_lane_vector",
    "pack_word",
    "unpack_word",
]
