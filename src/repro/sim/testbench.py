"""Reusable testbench harness.

A :class:`Testbench` packages a design with stimulus and golden-model
checking — the verification collateral the paper's Recommendation 5 calls
out as a prerequisite for high-quality open-source IP.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from ..hdl.ir import Module
from .engine import Simulator


@dataclass
class TestbenchResult:
    """Outcome of a testbench run."""

    passed: bool
    cycles: int
    mismatches: list[str] = field(default_factory=list)

    def summary(self) -> str:
        status = "PASS" if self.passed else "FAIL"
        detail = "" if self.passed else f" ({len(self.mismatches)} mismatches)"
        return f"{status}: {self.cycles} cycles{detail}"


@dataclass
class Testbench:
    """Drives random or directed stimulus against a golden model.

    ``model`` receives the input dict for the current cycle plus a mutable
    ``state`` dict (for sequential golden models) and returns the expected
    output dict for the same cycle, sampled before the clock edge.
    """

    module: Module
    model: Callable[[dict[str, int], dict], dict[str, int]]
    seed: int = 0

    __test__ = False  # not a pytest test class despite the name

    def run_random(self, cycles: int = 200) -> TestbenchResult:
        """Apply uniformly random inputs for ``cycles`` clock cycles."""
        rng = random.Random(self.seed)
        sim = Simulator(self.module)
        vectors = []
        for _ in range(cycles):
            vectors.append(
                {sig.name: rng.randrange(1 << sig.width) for sig in sim.module.inputs}
            )
        return self.run_directed(vectors)

    def run_directed(self, vectors: list[dict[str, int]]) -> TestbenchResult:
        """Apply the given input vectors, one per cycle."""
        sim = Simulator(self.module)
        state: dict = {}
        mismatches: list[str] = []
        for cycle, vector in enumerate(vectors):
            for name, value in vector.items():
                sim.set(name, value)
            expected = self.model(dict(vector), state)
            for name, want in expected.items():
                got = sim.get(name)
                if got != want:
                    mismatches.append(
                        f"cycle {cycle}: {name}: expected {want}, got {got}"
                    )
            sim.step()
        return TestbenchResult(
            passed=not mismatches, cycles=len(vectors), mismatches=mismatches
        )
