"""SAT-based formal verification: AIG, CDCL, LEC and property proving.

The simulation-based equivalence check (:mod:`repro.synth.verify`) samples
a few hundred random cycles; this package closes the corner-case gap with
proofs:

* :mod:`repro.formal.aig` — And-Inverter Graph with structural hashing
  and constant folding, plus builders that extract the combinational
  cones of a :class:`~repro.hdl.ir.Module`, a
  :class:`~repro.synth.netlist.GateNetlist` or a
  :class:`~repro.synth.mapped.MappedNetlist`;
* :mod:`repro.formal.cnf` — Tseitin CNF encoding of AIG cones;
* :mod:`repro.formal.sat` — a CDCL SAT solver (two-watched-literal
  propagation, VSIDS-style decisions, first-UIP learning, restarts);
* :mod:`repro.formal.lec` — miter-based logic equivalence checking with
  register correspondence by name and counterexamples that replay
  directly on the lockstep simulators;
* :mod:`repro.formal.props` — SAT-proved facts (provably-constant nets,
  dead mux arms) consumable by :mod:`repro.lint`.
"""

from .aig import Aig, CombCones, build_cones, from_gate_netlist, from_mapped, from_module
from .cnf import Cnf, tseitin
from .lec import (
    Counterexample,
    LecError,
    LecReport,
    LecResult,
    check_lec,
    lec_flow,
    mutate_netlist,
    replay_counterexample,
    replay_counterexamples,
)
from .props import ProvedFact, prove_facts, refine_lint_report
from .sat import CdclSolver, SatResult, solve_cnf

__all__ = [
    "Aig",
    "CombCones",
    "build_cones",
    "from_module",
    "from_gate_netlist",
    "from_mapped",
    "Cnf",
    "tseitin",
    "CdclSolver",
    "SatResult",
    "solve_cnf",
    "LecError",
    "LecResult",
    "LecReport",
    "Counterexample",
    "check_lec",
    "lec_flow",
    "mutate_netlist",
    "replay_counterexample",
    "replay_counterexamples",
    "ProvedFact",
    "prove_facts",
    "refine_lint_report",
]
