"""Tseitin encoding of AIG cones into CNF.

The encoding allocates one SAT variable per AIG node in the cone of the
requested literals and emits the standard three clauses per AND node:

    c = a & b   →   (¬c ∨ a) (¬c ∨ b) (c ∨ ¬a ∨ ¬b)

SAT literals use the DIMACS-style signed-integer convention (variable ``v``
is the positive literal ``v``, its negation ``-v``; variables start at 1).
The constant node is encoded as a variable forced false by a unit clause,
so constants need no special cases downstream.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .aig import Aig

Clause = tuple[int, ...]


@dataclass
class Cnf:
    """A CNF formula plus the AIG-node → SAT-variable correspondence."""

    n_vars: int = 0
    clauses: list[Clause] = field(default_factory=list)
    #: AIG node id -> SAT variable (1-based).
    var_of_node: dict[int, int] = field(default_factory=dict)

    def new_var(self) -> int:
        self.n_vars += 1
        return self.n_vars

    def add(self, *lits: int) -> None:
        self.clauses.append(tuple(lits))

    def lit(self, aig_lit: int) -> int:
        """The signed SAT literal for an already-encoded AIG literal."""
        var = self.var_of_node[aig_lit >> 1]
        return -var if aig_lit & 1 else var

    def assumption_unit(self, aig_lit: int, value: bool) -> Clause:
        """A unit clause asserting ``aig_lit == value``."""
        lit = self.lit(aig_lit)
        return (lit,) if value else (-lit,)

    def stats(self) -> dict[str, int]:
        return {"vars": self.n_vars, "clauses": len(self.clauses)}


def tseitin(aig: Aig, roots: list[int], cnf: Cnf | None = None) -> Cnf:
    """Encode the cone of ``roots`` into ``cnf`` (a fresh one by default).

    Nodes already present in ``cnf.var_of_node`` are reused, so repeated
    calls against the same :class:`Cnf` incrementally grow one formula —
    this is how the LEC miter shares the common cone between the reference
    and implementation sides.
    """
    cnf = cnf or Cnf()
    for node in aig.cone(roots):
        if node in cnf.var_of_node:
            continue
        var = cnf.new_var()
        cnf.var_of_node[node] = var
        pair = aig.fanins(node)
        if pair is None:
            if node == 0:  # the constant node is always false
                cnf.add(-var)
            continue  # primary input: free variable
        a, b = (cnf.lit(lit) for lit in pair)
        cnf.add(-var, a)
        cnf.add(-var, b)
        cnf.add(var, -a, -b)
    return cnf
