"""And-Inverter Graph: the shared logic representation of the formal layer.

An AIG represents combinational logic with exactly two primitives — the
two-input AND node and edge inversion — which makes structural hashing,
constant folding, CNF encoding and cone extraction all trivial.  Literals
are integers ``2 * node + inverted``; node 0 is the constant-FALSE node,
so literal ``0`` is FALSE and literal ``1`` is TRUE.

Nodes are created in topological order (both fanins of an AND always have
smaller node ids), so evaluation and cone walks are simple forward scans.

The builders at the bottom extract the *combinational cones* of the three
design representations the synthesis pipeline produces: register outputs
become pseudo-inputs (current state) and register data pins become
pseudo-outputs (next state), reducing sequential equivalence to per-cone
combinational equivalence under register correspondence by name.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hdl.elaborate import elaborate
from ..hdl.ir import (
    BinOp,
    Cat,
    Const,
    Expr,
    Module,
    Mux,
    Ref,
    Signal,
    Slice,
    UnaryOp,
)
from ..synth.mapped import MappedNetlist
from ..synth.netlist import GateNetlist

#: Constant literals.
FALSE = 0
TRUE = 1

Bits = list[int]


class Aig:
    """A structurally-hashed And-Inverter Graph."""

    def __init__(self, name: str = "aig"):
        self.name = name
        #: Fanin pair per node; ``None`` marks the constant node and inputs.
        self._fanins: list[tuple[int, int] | None] = [None]
        #: Primary-input bit labels, in creation order.
        self.pi_labels: list[str] = []
        #: label -> input literal (for sharing inputs across builds).
        self._pi_by_label: dict[str, int] = {}
        self._pi_nodes: set[int] = set()
        self._strash: dict[tuple[int, int], int] = {}

    # -- construction --------------------------------------------------------

    @property
    def n_nodes(self) -> int:
        return len(self._fanins)

    @property
    def n_ands(self) -> int:
        return len(self._strash)

    @property
    def n_inputs(self) -> int:
        return len(self.pi_labels)

    def input_bit(self, label: str) -> int:
        """The input literal for ``label``, creating it on first use."""
        lit = self._pi_by_label.get(label)
        if lit is None:
            node = len(self._fanins)
            self._fanins.append(None)
            self._pi_nodes.add(node)
            self._pi_by_label[label] = lit = node << 1
            self.pi_labels.append(label)
        return lit

    def input_word(self, name: str, width: int) -> Bits:
        """Input literals ``name[0] .. name[width-1]`` (LSB first)."""
        return [self.input_bit(f"{name}[{i}]") for i in range(width)]

    def is_input(self, lit: int) -> bool:
        return (lit >> 1) in self._pi_nodes

    def AND(self, a: int, b: int) -> int:
        """Conjunction with constant folding and structural hashing."""
        if a > b:
            a, b = b, a
        if a == FALSE or (a ^ b) == 1:  # 0 & x, x & ~x
            return FALSE
        if a == TRUE or a == b:  # 1 & x, x & x
            return b
        key = (a, b)
        node = self._strash.get(key)
        if node is None:
            node = len(self._fanins)
            self._fanins.append(key)
            self._strash[key] = node
        return node << 1

    @staticmethod
    def NOT(a: int) -> int:
        return a ^ 1

    def OR(self, a: int, b: int) -> int:
        return self.AND(a ^ 1, b ^ 1) ^ 1

    def XOR(self, a: int, b: int) -> int:
        return self.OR(self.AND(a, b ^ 1), self.AND(a ^ 1, b))

    def MUX(self, sel: int, if_true: int, if_false: int) -> int:
        return self.OR(self.AND(sel, if_true), self.AND(sel ^ 1, if_false))

    # -- analysis -------------------------------------------------------------

    def fanins(self, node: int) -> tuple[int, int] | None:
        return self._fanins[node]

    def cone(self, lits: list[int]) -> list[int]:
        """AND nodes feeding ``lits``, in ascending (topological) order."""
        seen: set[int] = set()
        stack = [lit >> 1 for lit in lits]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            pair = self._fanins[node]
            if pair is not None:
                stack.append(pair[0] >> 1)
                stack.append(pair[1] >> 1)
        return sorted(seen)

    def levels(self) -> int:
        """Maximum AND depth over the whole graph."""
        level = [0] * len(self._fanins)
        deepest = 0
        for node, pair in enumerate(self._fanins):
            if pair is None:
                continue
            level[node] = 1 + max(level[pair[0] >> 1], level[pair[1] >> 1])
            deepest = max(deepest, level[node])
        return deepest

    def eval_lits(self, inputs: dict[str, int], lits: list[int]) -> list[int]:
        """Evaluate literals under bit values per input label (default 0)."""
        values = [0] * len(self._fanins)
        for label, value in inputs.items():
            lit = self._pi_by_label.get(label)
            if lit is not None:
                values[lit >> 1] = value & 1
        for node, pair in enumerate(self._fanins):
            if pair is not None:
                a, b = pair
                values[node] = (values[a >> 1] ^ (a & 1)) & (
                    values[b >> 1] ^ (b & 1)
                )
        return [values[lit >> 1] ^ (lit & 1) for lit in lits]

    def stats(self) -> dict[str, int]:
        return {
            "inputs": self.n_inputs,
            "ands": self.n_ands,
            "levels": self.levels(),
        }

    def __repr__(self) -> str:
        return (
            f"Aig({self.name!r}, inputs={self.n_inputs}, ands={self.n_ands})"
        )


def word_value(aig: Aig, inputs: dict[str, int], lits: Bits) -> int:
    """Evaluate a word of literals to an unsigned integer (LSB first)."""
    bits = aig.eval_lits(inputs, lits)
    return sum(bit << i for i, bit in enumerate(bits))


# ---------------------------------------------------------------------------
# Combinational-cone extraction
# ---------------------------------------------------------------------------


@dataclass
class CombCones:
    """The combinational view of one design over a (possibly shared) AIG.

    ``state`` maps register names to their current-value literals (pseudo
    primary inputs) and ``next_state`` to the literals feeding the register
    data pins (pseudo primary outputs).  Sequential equivalence between two
    designs reduces to combinational equivalence of ``outputs`` and
    ``next_state`` cone-by-cone, provided the register names correspond.
    """

    aig: Aig
    source: str  # "rtl" | "gates" | "mapped"
    inputs: dict[str, Bits] = field(default_factory=dict)
    outputs: dict[str, Bits] = field(default_factory=dict)
    state: dict[str, Bits] = field(default_factory=dict)
    next_state: dict[str, Bits] = field(default_factory=dict)
    reset_values: dict[str, int] = field(default_factory=dict)
    #: Every combinationally-assigned signal word (wires and outputs),
    #: so property proving can reason about internal nets too.
    signals: dict[str, Bits] = field(default_factory=dict)
    #: (owner location, select literal) per RTL mux site, for props.
    mux_selects: list[tuple[str, int]] = field(default_factory=list)

    def cone_words(self) -> dict[str, tuple[Bits, str]]:
        """Every compared cone: name -> (literals, kind)."""
        cones = {name: (lits, "output") for name, lits in self.outputs.items()}
        for name, lits in self.next_state.items():
            cones[f"next({name})"] = (lits, "state")
        return cones

    def evaluate(self, inputs: dict[str, int],
                 state: dict[str, int] | None = None) -> dict[str, int]:
        """Evaluate all output and next-state words for one input vector."""
        bit_values: dict[str, int] = {}

        def spread(name: str, lits: Bits, value: int) -> None:
            for i in range(len(lits)):
                bit_values[f"{name}[{i}]"] = (value >> i) & 1

        for name, value in inputs.items():
            spread(name, self.inputs[name], value)
        for name, value in (state or {}).items():
            spread(name, self.state[name], value)
        return {
            name: word_value(self.aig, bit_values, lits)
            for name, (lits, _kind) in self.cone_words().items()
        }


# -- Module -> AIG -----------------------------------------------------------


class _ModuleBlaster:
    """Bit-blast the word-level IR straight into an AIG.

    This is a second, independent implementation of the IR semantics
    (:func:`repro.hdl.ir.eval_expr`) — deliberately *not* shared with
    :mod:`repro.synth.lower`, so a lowering bug cannot hide from LEC.
    """

    def __init__(self, module: Module, aig: Aig):
        if module.instances:
            module = elaborate(module)
        module.validate()
        self.module = module
        self.aig = aig
        self.bits: dict[Signal, Bits] = {}
        self.mux_selects: list[tuple[str, int]] = []
        self._location = ""

    def _pad(self, bits: Bits, width: int) -> Bits:
        if len(bits) > width:
            raise ValueError(f"cannot narrow {len(bits)} bits to {width}")
        return bits + [FALSE] * (width - len(bits))

    def _ripple_add(self, a: Bits, b: Bits, cin: int) -> tuple[Bits, int]:
        g = self.aig
        out: Bits = []
        carry = cin
        for x, y in zip(a, b):
            xy = g.XOR(x, y)
            out.append(g.XOR(xy, carry))
            carry = g.OR(g.AND(x, y), g.AND(xy, carry))
        return out, carry

    def _tree(self, op, bits: Bits) -> int:
        level = list(bits)
        while len(level) > 1:
            nxt = [op(level[i], level[i + 1])
                   for i in range(0, len(level) - 1, 2)]
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]

    def expr(self, node: Expr) -> Bits:
        g = self.aig
        if isinstance(node, Const):
            return [TRUE if (node.value >> i) & 1 else FALSE
                    for i in range(node.width)]
        if isinstance(node, Ref):
            return list(self.bits[node.signal])
        if isinstance(node, UnaryOp):
            operand = self.expr(node.operand)
            if node.op == "not":
                return [bit ^ 1 for bit in operand]
            if node.op == "neg":
                zero = [FALSE] * len(operand)
                out, _ = self._ripple_add(
                    [bit ^ 1 for bit in operand], zero, TRUE
                )
                return out
            if node.op == "rand":
                return [self._tree(g.AND, operand)]
            if node.op == "ror":
                return [self._tree(g.OR, operand)]
            if node.op == "rxor":
                return [self._tree(g.XOR, operand)]
            raise ValueError(f"unhandled unary op {node.op!r}")
        if isinstance(node, BinOp):
            return self._binop(node)
        if isinstance(node, Mux):
            sel = self.expr(node.sel)[0]
            self.mux_selects.append((self._location, sel))
            width = node.width
            t = self._pad(self.expr(node.if_true), width)
            f = self._pad(self.expr(node.if_false), width)
            return [g.MUX(sel, ti, fi) for ti, fi in zip(t, f)]
        if isinstance(node, Cat):
            bits: Bits = []
            for part in reversed(node.parts):  # last part is the LSB side
                bits.extend(self.expr(part))
            return bits
        if isinstance(node, Slice):
            return self.expr(node.value)[node.lo:node.hi + 1]
        raise TypeError(f"cannot blast expression {node!r}")

    def _binop(self, node: BinOp) -> Bits:
        g = self.aig
        op = node.op
        if op in ("shl", "shr"):
            return self._shift(node)
        a = self.expr(node.a)
        b = self.expr(node.b)
        if op in ("and", "or", "xor"):
            width = node.width
            a, b = self._pad(a, width), self._pad(b, width)
            fn = {"and": g.AND, "or": g.OR, "xor": g.XOR}[op]
            return [fn(x, y) for x, y in zip(a, b)]
        if op == "add":
            width = node.width
            out, _ = self._ripple_add(
                self._pad(a, width), self._pad(b, width), FALSE
            )
            return out
        if op == "sub":
            width = node.width
            out, _ = self._ripple_add(
                self._pad(a, width),
                [bit ^ 1 for bit in self._pad(b, width)],
                TRUE,
            )
            return out
        if op == "mul":
            width = node.width
            acc = [FALSE] * width
            for j, b_bit in enumerate(b):
                partial = [FALSE] * j
                partial += [g.AND(a_bit, b_bit) for a_bit in a]
                partial = self._pad(partial[:width], width)
                acc, _ = self._ripple_add(acc, partial, FALSE)
            return acc
        if op in ("eq", "ne"):
            width = max(len(a), len(b))
            a, b = self._pad(a, width), self._pad(b, width)
            diff = self._tree(g.OR, [g.XOR(x, y) for x, y in zip(a, b)])
            return [diff if op == "ne" else diff ^ 1]
        if op in ("lt", "le", "gt", "ge"):
            return [self._compare(op, a, b)]
        raise ValueError(f"unhandled binary op {op!r}")

    def _compare(self, op: str, a: Bits, b: Bits) -> int:
        # Unsigned comparison via the carry out of ``a + ~b + 1``.
        if op == "gt":
            return self._compare("lt", b, a)
        if op == "le":
            return self._compare("ge", b, a)
        width = max(len(a), len(b))
        a, b = self._pad(a, width), self._pad(b, width)
        _, carry = self._ripple_add(a, [bit ^ 1 for bit in b], TRUE)
        return carry if op == "ge" else carry ^ 1

    def _shift(self, node: BinOp) -> Bits:
        g = self.aig
        a = self.expr(node.a)
        width = len(a)
        left = node.op == "shl"
        if isinstance(node.b, Const):
            amount = node.b.value
            if amount >= width:
                return [FALSE] * width
            if left:
                return [FALSE] * amount + a[:width - amount]
            return a[amount:] + [FALSE] * amount
        amount_bits = self.expr(node.b)
        current = a
        for k, sel in enumerate(amount_bits):
            step = 1 << k
            if step >= width:
                current = [g.MUX(sel, FALSE, bit) for bit in current]
                continue
            if left:
                shifted = [FALSE] * step + current[:width - step]
            else:
                shifted = current[step:] + [FALSE] * step
            current = [g.MUX(sel, s, c) for s, c in zip(shifted, current)]
        return current

    def run(self) -> CombCones:
        cones = CombCones(self.aig, "rtl")
        for sig in self.module.inputs:
            self.bits[sig] = self.aig.input_word(sig.name, sig.width)
            cones.inputs[sig.name] = self.bits[sig]
        for reg in self.module.registers:
            self.bits[reg.signal] = self.aig.input_word(
                reg.signal.name, reg.signal.width
            )
            cones.state[reg.signal.name] = self.bits[reg.signal]
            cones.reset_values[reg.signal.name] = reg.reset_value
        for sig in self.module.comb_order():
            self._location = sig.name
            self.bits[sig] = self._pad(
                self.expr(self.module.assigns[sig]), sig.width
            )
            cones.signals[sig.name] = self.bits[sig]
        for reg in self.module.registers:
            self._location = reg.signal.name
            # The simulator masks a wider ``next`` down to the register
            # width, so truncate here rather than reject.
            width = reg.signal.width
            cones.next_state[reg.signal.name] = self._pad(
                self.expr(reg.next)[:width], width
            )
        for sig in self.module.outputs:
            cones.outputs[sig.name] = self.bits[sig]
        cones.mux_selects = self.mux_selects
        return cones


def from_module(module: Module, aig: Aig | None = None) -> CombCones:
    """Extract the combinational cones of an RTL module."""
    return _ModuleBlaster(module, aig or Aig(module.name)).run()


# -- GateNetlist -> AIG ------------------------------------------------------


def _group_state_bits(
    named_bits: list[tuple[str, int, int]],
) -> tuple[dict[str, Bits], dict[str, int]]:
    """Group ``(bit label, literal, reset bit)`` rows into register words.

    Labels follow the ``name[index]`` convention stamped by the lowerer;
    an unlabeled flip-flop gets a positional ``dff<n>`` name so hand-built
    netlists still check (correspondence is then positional by intent).
    """
    words: dict[str, dict[int, int]] = {}
    resets: dict[str, dict[int, int]] = {}
    for label, lit, reset in named_bits:
        base, _, rest = label.rpartition("[")
        if base and rest.endswith("]") and rest[:-1].isdigit():
            index = int(rest[:-1])
        else:
            base, index = label, 0
        words.setdefault(base, {})[index] = lit
        resets.setdefault(base, {})[index] = reset
    grouped: dict[str, Bits] = {}
    reset_values: dict[str, int] = {}
    for base, by_index in words.items():
        if sorted(by_index) != list(range(len(by_index))):
            raise ValueError(
                f"register {base!r}: non-contiguous bit indexes "
                f"{sorted(by_index)}"
            )
        grouped[base] = [by_index[i] for i in range(len(by_index))]
        reset_values[base] = sum(
            bit << i for i, bit in resets[base].items()
        )
    return grouped, reset_values


def from_gate_netlist(netlist: GateNetlist, aig: Aig | None = None) -> CombCones:
    """Extract the combinational cones of a primitive gate netlist."""
    g = aig or Aig(netlist.name)
    cones = CombCones(g, "gates")
    lit_of: dict[int, int] = {}
    for net, value in netlist.const_nets.items():
        lit_of[net] = TRUE if value else FALSE
    for name, nets in netlist.inputs.items():
        lits = g.input_word(name, len(nets))
        cones.inputs[name] = lits
        for net, lit in zip(nets, lits):
            lit_of[net] = lit

    state_rows = []
    for index, ff in enumerate(netlist.dffs):
        label = ff.name or f"dff{index}"
        lit_of[ff.q] = g.input_bit(label)
        state_rows.append((label, lit_of[ff.q], ff.reset_value))
    cones.state, cones.reset_values = _group_state_bits(state_rows)

    for gate in netlist.topo_gates():
        ins = [lit_of[net] for net in gate.inputs]
        if gate.op == "AND":
            lit = g.AND(ins[0], ins[1])
        elif gate.op == "OR":
            lit = g.OR(ins[0], ins[1])
        elif gate.op == "XOR":
            lit = g.XOR(ins[0], ins[1])
        elif gate.op == "NOT":
            lit = ins[0] ^ 1
        else:  # BUF
            lit = ins[0]
        lit_of[gate.output] = lit

    def resolve(net: int) -> int:
        try:
            return lit_of[net]
        except KeyError:
            raise ValueError(
                f"netlist {netlist.name!r}: net {net} is read but never "
                "driven"
            ) from None

    next_rows = []
    for index, ff in enumerate(netlist.dffs):
        label = ff.name or f"dff{index}"
        next_rows.append((label, resolve(ff.d), ff.reset_value))
    cones.next_state, _ = _group_state_bits(next_rows)
    for name, nets in netlist.outputs.items():
        cones.outputs[name] = [resolve(net) for net in nets]
    return cones


# -- MappedNetlist -> AIG ----------------------------------------------------


def _cell_lit(g: Aig, kind: str, pins: dict[str, int]) -> int:
    """AIG literal for one standard cell's output, by cell kind."""
    a = pins.get("a", FALSE)
    b = pins.get("b", FALSE)
    c = pins.get("c", FALSE)
    if kind == "INV":
        return a ^ 1
    if kind == "BUF":
        return a
    if kind == "AND2":
        return g.AND(a, b)
    if kind == "NAND2":
        return g.AND(a, b) ^ 1
    if kind == "OR2":
        return g.OR(a, b)
    if kind == "NOR2":
        return g.OR(a, b) ^ 1
    if kind == "XOR2":
        return g.XOR(a, b)
    if kind == "XNOR2":
        return g.XOR(a, b) ^ 1
    if kind == "NAND3":
        return g.AND(g.AND(a, b), c) ^ 1
    if kind == "NOR3":
        return g.OR(g.OR(a, b), c) ^ 1
    if kind == "AOI21":
        return g.OR(g.AND(a, b), c) ^ 1
    if kind == "OAI21":
        return g.AND(g.OR(a, b), c) ^ 1
    if kind == "MUX2":
        return g.MUX(pins["s"], b, a)  # s ? b : a
    if kind == "TIE0":
        return FALSE
    if kind == "TIE1":
        return TRUE
    raise ValueError(f"no AIG model for cell kind {kind!r}")


def _cell_lit_from_function(g: Aig, cell, pin_lits: dict[str, int]) -> int:
    """Fallback for kinds without a hand-written model: enumerate the
    cell's truth function into a sum-of-products over its input pins."""
    pins = list(cell.inputs)
    lits = [pin_lits[p] for p in pins]
    out = FALSE
    for row in range(1 << len(pins)):
        bits = [(row >> i) & 1 for i in range(len(pins))]
        if cell.function(*bits):
            term = TRUE
            for lit, bit in zip(lits, bits):
                term = g.AND(term, lit if bit else lit ^ 1)
            out = g.OR(out, term)
    return out


def from_mapped(mapped: MappedNetlist, aig: Aig | None = None) -> CombCones:
    """Extract the combinational cones of a technology-mapped netlist."""
    g = aig or Aig(mapped.name)
    cones = CombCones(g, "mapped")
    lit_of: dict[int, int] = {}
    for name, nets in mapped.inputs.items():
        lits = g.input_word(name, len(nets))
        cones.inputs[name] = lits
        for net, lit in zip(nets, lits):
            lit_of[net] = lit

    state_rows = []
    for index, inst in enumerate(mapped.seq_cells):
        label = inst.tag or f"dff{index}"
        q = inst.pins[inst.cell.output]
        lit_of[q] = g.input_bit(label)
        state_rows.append((label, lit_of[q], inst.reset_value))
    cones.state, cones.reset_values = _group_state_bits(state_rows)

    for inst in mapped.topo_comb():
        pin_lits = {
            pin: lit_of[net]
            for pin, net in inst.pins.items()
            if pin != inst.cell.output
        }
        out = inst.pins.get(inst.cell.output)
        if out is None:
            continue
        try:
            lit_of[out] = _cell_lit(g, inst.cell.kind, pin_lits)
        except ValueError:
            lit_of[out] = _cell_lit_from_function(g, inst.cell, pin_lits)

    def resolve(net: int) -> int:
        try:
            return lit_of[net]
        except KeyError:
            raise ValueError(
                f"mapped netlist {mapped.name!r}: net {net} is read but "
                "never driven"
            ) from None

    next_rows = []
    for index, inst in enumerate(mapped.seq_cells):
        label = inst.tag or f"dff{index}"
        next_rows.append(
            (label, resolve(inst.pins["d"]), inst.reset_value)
        )
    cones.next_state, _ = _group_state_bits(next_rows)
    for name, nets in mapped.outputs.items():
        cones.outputs[name] = [resolve(net) for net in nets]
    return cones


def build_cones(design, aig: Aig | None = None) -> CombCones:
    """Dispatch to the right builder for ``design``'s representation."""
    if isinstance(design, Module):
        return from_module(design, aig)
    if isinstance(design, GateNetlist):
        return from_gate_netlist(design, aig)
    if isinstance(design, MappedNetlist):
        return from_mapped(design, aig)
    raise TypeError(f"cannot build AIG cones from {type(design)!r}")
