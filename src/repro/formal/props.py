"""SAT-proved design facts, consumable by :mod:`repro.lint`.

The lint rules reason *syntactically*: ``rtl.const-expr`` fires when a
driver references no signals, ``rtl.dead-mux-arm`` when a mux select is
a literal constant.  This module proves (or refutes) the *semantic*
versions of the same properties with the SAT machinery:

* **const-net** — a signal word whose every bit is provably constant
  under all inputs and all register states (reachable or not — state
  bits are free variables, so a "proved" here is sound but a
  "disproved" may still be constant on the reachable states);
* **mux-select-const** — a mux whose select literal is provably stuck,
  making one arm dead for every input/state assignment.

:func:`refine_lint_report` folds the facts back into a
:class:`~repro.lint.core.LintReport`: a finding whose property is
SAT-proved is promoted to ``error`` confidence, one whose property is
refuted (a witness exists where it toggles) is dropped, and findings
with no matching fact pass through untouched.  ``repro lint --formal``
is this function behind a flag.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..hdl.ir import Module
from ..obs.metrics import MetricsRegistry, get_metrics
from ..obs.trace import Tracer, get_tracer
from .aig import FALSE, TRUE, Aig, from_module
from .cnf import tseitin
from .sat import CdclSolver


@dataclass
class ProvedFact:
    """One SAT-settled property of a design."""

    kind: str  # "const-net" | "mux-select-const"
    location: str  # signal name / mux owner location
    proved: bool  # True: property holds; False: refuted with a witness
    value: int | None = None  # the proved constant, when proved
    detail: str = ""
    conflicts: int = 0

    def to_dict(self) -> dict[str, object]:
        return {
            "kind": self.kind,
            "location": self.location,
            "proved": self.proved,
            "value": self.value,
            "detail": self.detail,
            "conflicts": self.conflicts,
        }


@dataclass
class _BitVerdict:
    constant: bool
    value: int = 0
    conflicts: int = 0


def _prove_bit(aig: Aig, lit: int, max_conflicts: int | None) -> _BitVerdict:
    """Is ``lit`` constant under all assignments?  Two UNSAT calls."""
    if lit == FALSE:
        return _BitVerdict(True, 0)
    if lit == TRUE:
        return _BitVerdict(True, 1)
    cnf = tseitin(aig, [lit])
    conflicts = 0
    can_be = {}
    for value in (1, 0):
        unit = (cnf.lit(lit),) if value else (-cnf.lit(lit),)
        sat = CdclSolver([*cnf.clauses, unit], cnf.n_vars).solve(
            max_conflicts=max_conflicts
        )
        conflicts += sat.stats.conflicts
        can_be[value] = not sat.is_unsat  # "unknown" counts as possible
    if can_be[1] and not can_be[0]:
        return _BitVerdict(True, 1, conflicts)
    if can_be[0] and not can_be[1]:
        return _BitVerdict(True, 0, conflicts)
    return _BitVerdict(False, conflicts=conflicts)


def prove_facts(
    module: Module,
    locations: set[str] | None = None,
    max_conflicts: int | None = 10_000,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> list[ProvedFact]:
    """Settle the const-net and dead-mux-arm properties of ``module``.

    ``locations`` restricts the candidate sites (typically the locations
    of the lint findings being refined); by default every assigned
    signal, register next-value and mux select is examined.  Register
    state bits are treated as free variables, so proved facts hold on
    every state, reachable or not.
    """
    if tracer is None:
        tracer = get_tracer()
    if metrics is None:
        metrics = get_metrics()

    facts: list[ProvedFact] = []
    with tracer.span("formal.props", design=module.name) as span:
        cones = from_module(module)
        aig = cones.aig

        candidates: dict[str, list[int]] = dict(cones.signals)
        for name, lits in cones.next_state.items():
            candidates.setdefault(name, lits)
        for location, lits in sorted(candidates.items()):
            if locations is not None and location not in locations:
                continue
            with tracer.span("formal.props.const", location=location):
                value = 0
                conflicts = 0
                constant = True
                for i, lit in enumerate(lits):
                    verdict = _prove_bit(aig, lit, max_conflicts)
                    conflicts += verdict.conflicts
                    if not verdict.constant:
                        constant = False
                        break
                    value |= verdict.value << i
            facts.append(ProvedFact(
                kind="const-net",
                location=location,
                proved=constant,
                value=value if constant else None,
                detail=(
                    f"always {value}" if constant
                    else "a witness assignment toggles it"
                ),
                conflicts=conflicts,
            ))

        for location, sel in cones.mux_selects:
            if locations is not None and location not in locations:
                continue
            with tracer.span("formal.props.mux", location=location):
                verdict = _prove_bit(aig, sel, max_conflicts)
            facts.append(ProvedFact(
                kind="mux-select-const",
                location=location,
                proved=verdict.constant,
                value=verdict.value if verdict.constant else None,
                detail=(
                    f"select stuck at {verdict.value}; the "
                    f"{'if_false' if verdict.value else 'if_true'} arm "
                    "is dead" if verdict.constant
                    else "select toggles under some assignment"
                ),
                conflicts=verdict.conflicts,
            ))

        if tracer.enabled:
            span.set(
                facts=len(facts),
                proved=sum(1 for f in facts if f.proved),
            )
    metrics.counter("formal.props.runs").inc()
    metrics.counter("formal.props.proved").inc(
        sum(1 for f in facts if f.proved)
    )
    metrics.counter("formal.props.disproved").inc(
        sum(1 for f in facts if not f.proved)
    )
    return facts


#: lint rule id -> the fact kind that settles it.
_RULE_TO_KIND = {
    "rtl.const-expr": "const-net",
    "rtl.dead-mux-arm": "mux-select-const",
}


def refine_lint_report(report, facts: list[ProvedFact]):
    """Fold SAT verdicts into a lint report (``repro lint --formal``).

    Findings whose rule has a matching proved fact at the same location
    are promoted to ``error`` severity (the tool is now *sure*, not
    suspicious); findings whose property was refuted are dropped; all
    other findings — including every rule the formal layer has no
    opinion on — pass through unchanged.  Returns a new report; the
    input is not modified.
    """
    from ..lint.core import LintReport

    by_site: dict[tuple[str, str], list[ProvedFact]] = {}
    for fact in facts:
        by_site.setdefault((fact.kind, fact.location), []).append(fact)

    refined = []
    for finding in report.findings:
        kind = _RULE_TO_KIND.get(finding.rule)
        if kind is None:
            refined.append(finding)
            continue
        site_facts = by_site.get((kind, finding.location))
        if not site_facts:
            refined.append(finding)
            continue
        proved = [f for f in site_facts if f.proved]
        if proved:
            refined.append(replace(
                finding,
                severity="error",
                message=f"{finding.message} [SAT-proved: {proved[0].detail}]",
            ))
        else:
            # Refuted: a concrete witness toggles the property — the
            # syntactic suspicion was wrong, drop the finding.
            continue
    return LintReport(findings=refined, waivers=report.waivers)
