"""Miter-based logic equivalence checking.

Two designs are equivalent when no input/state assignment makes any
output or register next-value differ.  The check builds both designs'
combinational cones into **one shared AIG** (so identical logic hashes
to identical nodes — most cones of an honest synthesis run collapse to
the *same literal* and need no SAT call at all), then for each cone
constructs a miter::

            inputs + current state (shared pseudo-inputs)
                 │                    │
          ┌──────┴──────┐      ┌──────┴──────┐
          │  reference  │      │    impl     │
          └──────┬──────┘      └──────┬──────┘
                 │   bit-wise XOR     │
                 └─────────┬──────────┘
                        OR-reduce
                           │
                        diff  ──── SAT?  UNSAT ⇒ equivalent

A satisfying assignment of ``diff`` is a **counterexample**: an exact
input vector and register state under which the two designs disagree.
It is extracted as plain ``{name: value}`` dicts that replay directly
on the lockstep simulators (``load_state`` + ``set``) — a proof a
student can watch fail in simulation.

Register correspondence is by name: the lowerer stamps each flip-flop
with the ``reg[bit]`` label of the RTL register bit it implements, the
optimizer and mapper preserve it, and the builders in
:mod:`repro.formal.aig` group the labels back into words.  Sequential
equivalence then reduces to per-cone combinational equivalence over the
outputs and the register next-state functions, plus a static reset-value
comparison.
"""

from __future__ import annotations

import copy
import json
import random
from dataclasses import dataclass, field

from ..hdl.ir import Module
from ..obs.metrics import MetricsRegistry, get_metrics
from ..obs.trace import Tracer, get_tracer
from ..sim.bitsim import (
    LANES,
    PackedGateSimulator,
    PackedMappedSimulator,
    PackedRtlSimulator,
    PackedSimError,
    extract_lane,
    pack_word,
)
from ..sim.engine import Simulator
from ..synth.lower import lower
from ..synth.mapped import MappedNetlist, MappedSimulator
from ..synth.netlist import Gate, GateNetlist, GateSimulator
from ..synth.verify import Mismatch
from .aig import FALSE, Aig, CombCones, build_cones, word_value
from .cnf import tseitin
from .sat import CdclSolver, SolverStats


class LecError(Exception):
    """Raised when two designs cannot even be compared (structural
    mismatch of ports or registers) or a report file is malformed."""


@dataclass
class Counterexample:
    """One satisfying assignment of a miter: a disagreement witness."""

    cone: str  # output name or "next(<register>)"
    kind: str  # "output" | "state" | "reset"
    inputs: dict[str, int] = field(default_factory=dict)
    state: dict[str, int] = field(default_factory=dict)
    expect: int = 0  # reference value of the cone word
    got: int = 0  # implementation value of the cone word

    def __str__(self) -> str:
        return (
            f"{self.cone}: ref={self.expect} impl={self.got} under "
            f"inputs={self.inputs} state={self.state}"
        )

    def as_mismatch(self) -> Mismatch:
        """The simulator-replayable record (cycle 0 by construction)."""
        return Mismatch(
            cycle=0,
            output=self.cone,
            expect=self.expect,
            got=self.got,
            inputs=dict(self.inputs),
            state=dict(self.state),
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "cone": self.cone,
            "kind": self.kind,
            "inputs": dict(self.inputs),
            "state": dict(self.state),
            "expect": self.expect,
            "got": self.got,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Counterexample":
        return cls(
            cone=data["cone"],
            kind=data["kind"],
            inputs={k: int(v) for k, v in data.get("inputs", {}).items()},
            state={k: int(v) for k, v in data.get("state", {}).items()},
            expect=int(data.get("expect", 0)),
            got=int(data.get("got", 0)),
        )


@dataclass
class ConeVerdict:
    """The verdict for one compared cone."""

    cone: str
    kind: str  # "output" | "state" | "reset"
    status: str  # "equal" | "counterexample" | "unknown"
    proof: str  # "structural" | "sat" | "static"
    counterexample: Counterexample | None = None
    conflicts: int = 0
    decisions: int = 0

    def to_dict(self) -> dict[str, object]:
        record: dict[str, object] = {
            "cone": self.cone,
            "kind": self.kind,
            "status": self.status,
            "proof": self.proof,
            "conflicts": self.conflicts,
            "decisions": self.decisions,
        }
        if self.counterexample is not None:
            record["counterexample"] = self.counterexample.to_dict()
        return record

    @classmethod
    def from_dict(cls, data: dict) -> "ConeVerdict":
        cex = data.get("counterexample")
        return cls(
            cone=data["cone"],
            kind=data["kind"],
            status=data["status"],
            proof=data["proof"],
            counterexample=None if cex is None
            else Counterexample.from_dict(cex),
            conflicts=int(data.get("conflicts", 0)),
            decisions=int(data.get("decisions", 0)),
        )


@dataclass
class LecResult:
    """Outcome of one pairwise equivalence check."""

    design: str
    reference: str  # "rtl" | "gates" | "mapped"
    implementation: str
    cones: list[ConeVerdict] = field(default_factory=list)
    aig_stats: dict[str, int] = field(default_factory=dict)
    sat_stats: dict[str, int] = field(default_factory=dict)

    @property
    def equivalent(self) -> bool:
        return all(v.status == "equal" for v in self.cones)

    @property
    def inconclusive(self) -> bool:
        """True when a conflict budget ran out before any verdict."""
        return any(v.status == "unknown" for v in self.cones)

    @property
    def counterexamples(self) -> list[Counterexample]:
        return [v.counterexample for v in self.cones
                if v.counterexample is not None]

    @property
    def structural_cones(self) -> int:
        """Cones the shared AIG hashed equal — proved without SAT."""
        return sum(1 for v in self.cones if v.proof == "structural")

    def summary(self) -> str:
        status = ("EQUIVALENT" if self.equivalent
                  else "INCONCLUSIVE" if self.inconclusive
                  else "NOT EQUIVALENT")
        return (
            f"{self.design}: {self.reference} vs {self.implementation} "
            f"{status} ({len(self.cones)} cones, "
            f"{self.structural_cones} structural, "
            f"{self.sat_stats.get('conflicts', 0)} conflicts, "
            f"{len(self.counterexamples)} counterexamples)"
        )

    def to_dict(self) -> dict[str, object]:
        return {
            "design": self.design,
            "reference": self.reference,
            "implementation": self.implementation,
            "equivalent": self.equivalent,
            "cones": [v.to_dict() for v in self.cones],
            "aig": dict(self.aig_stats),
            "sat": dict(self.sat_stats),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "LecResult":
        return cls(
            design=data["design"],
            reference=data["reference"],
            implementation=data["implementation"],
            cones=[ConeVerdict.from_dict(v) for v in data.get("cones", ())],
            aig_stats=dict(data.get("aig", {})),
            sat_stats=dict(data.get("sat", {})),
        )


@dataclass
class LecReport:
    """The flow-level aggregation: one LEC verdict per pipeline stage."""

    design: str
    checks: dict[str, LecResult] = field(default_factory=dict)

    @property
    def passed(self) -> bool:
        return bool(self.checks) and all(
            result.equivalent for result in self.checks.values()
        )

    @property
    def counterexamples(self) -> list[tuple[str, Counterexample]]:
        return [
            (stage, cex)
            for stage, result in self.checks.items()
            for cex in result.counterexamples
        ]

    def summary(self) -> str:
        status = "PROVED" if self.passed else "FAILED"
        stages = ", ".join(
            f"{stage}={'ok' if result.equivalent else 'FAIL'}"
            for stage, result in self.checks.items()
        ) or "no stages checked"
        return f"lec {status} for {self.design}: {stages}"

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(
            {
                "design": self.design,
                "passed": self.passed,
                "checks": {
                    stage: result.to_dict()
                    for stage, result in self.checks.items()
                },
            },
            indent=indent,
        )

    @classmethod
    def from_json(cls, text: str) -> "LecReport":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise LecError(f"malformed LEC report: {exc}") from exc
        if not isinstance(data, dict) or "checks" not in data:
            raise LecError("LEC report has no 'checks' record")
        return cls(
            design=data.get("design", ""),
            checks={
                stage: LecResult.from_dict(result)
                for stage, result in data["checks"].items()
            },
        )


# ---------------------------------------------------------------------------
# The check itself
# ---------------------------------------------------------------------------


def _check_correspondence(ref: CombCones, impl: CombCones) -> None:
    """Ports and registers must match by name and width, or the designs
    are not comparable and the check is a usage error, not a verdict."""
    for label, ref_words, impl_words in (
        ("input", ref.inputs, impl.inputs),
        ("output", ref.outputs, impl.outputs),
        ("register", ref.state, impl.state),
    ):
        missing = sorted(set(ref_words) - set(impl_words))
        extra = sorted(set(impl_words) - set(ref_words))
        if missing or extra:
            raise LecError(
                f"{label} correspondence broken: "
                f"missing from implementation: {missing or 'none'}, "
                f"unmatched in implementation: {extra or 'none'}"
            )
        for name in ref_words:
            if len(ref_words[name]) != len(impl_words[name]):
                raise LecError(
                    f"{label} {name!r} is {len(ref_words[name])} bits in "
                    f"the reference but {len(impl_words[name])} in the "
                    f"implementation"
                )


def _extract_counterexample(
    aig: Aig,
    cnf,
    model: dict[int, bool],
    cones: CombCones,
    cone: str,
    kind: str,
    ref_lits: list[int],
    impl_lits: list[int],
) -> Counterexample:
    """Turn a SAT model into named input/state words plus both values."""

    def word(lits: list[int]) -> int:
        value = 0
        for i, lit in enumerate(lits):
            var = cnf.var_of_node.get(lit >> 1)
            bit = bool(model.get(var)) if var is not None else False
            value |= int(bit) << i
        return value

    bit_values: dict[str, int] = {}
    inputs = {}
    for name, lits in cones.inputs.items():
        inputs[name] = word(lits)
        for i, _ in enumerate(lits):
            bit_values[f"{name}[{i}]"] = (inputs[name] >> i) & 1
    state = {}
    for name, lits in cones.state.items():
        state[name] = word(lits)
        for i, _ in enumerate(lits):
            bit_values[f"{name}[{i}]"] = (state[name] >> i) & 1
    return Counterexample(
        cone=cone,
        kind=kind,
        inputs=inputs,
        state=state,
        expect=word_value(aig, bit_values, ref_lits),
        got=word_value(aig, bit_values, impl_lits),
    )


def check_lec(
    reference: Module | GateNetlist | MappedNetlist,
    implementation: GateNetlist | MappedNetlist | Module,
    max_conflicts: int | None = 100_000,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    cones: set[str] | None = None,
) -> LecResult:
    """Prove (or refute) combinational-cone equivalence of two designs.

    Both designs are built into one shared, structurally-hashed AIG;
    cones whose literals collapse to the same node are proved without
    touching the solver.  The rest go through Tseitin encoding and the
    CDCL solver; a SAT verdict yields a replayable
    :class:`Counterexample`, an exhausted ``max_conflicts`` budget an
    ``unknown`` verdict (never silently "equivalent").

    ``cones`` restricts proving to the named cones (output port names and
    ``next(register)`` words, as produced by
    :meth:`~repro.formal.aig.CombCones.cone_words`); a register's reset
    comparison rides along with its ``next(...)`` cone.  Port/register
    correspondence is always checked in full — an interface mismatch is a
    structural anomaly no cone filter may hide.  The cone filter is the
    incremental-compilation contract: callers must pass a superset of the
    cones whose logic could have changed (a taint closure over the dirty
    cells), making the limited proof as strong as a full one.
    """
    if tracer is None:
        tracer = get_tracer()
    if metrics is None:
        metrics = get_metrics()

    design = getattr(reference, "name", "design")
    totals = SolverStats()
    with tracer.span("formal.lec", design=design) as lec_span:
        aig = Aig(design)
        with tracer.span("formal.lec.build") as build_span:
            ref = build_cones(reference, aig)
            impl = build_cones(implementation, aig)
            if tracer.enabled:
                build_span.set(**aig.stats())
        _check_correspondence(ref, impl)

        result = LecResult(
            design=design, reference=ref.source,
            implementation=impl.source, aig_stats=aig.stats(),
        )

        # Reset values are compared statically: a register that wakes up
        # different is a day-one mismatch no combinational cone shows.
        skipped = 0
        for name, ref_reset in sorted(ref.reset_values.items()):
            if cones is not None and f"next({name})" not in cones:
                skipped += 1
                continue
            impl_reset = impl.reset_values.get(name, 0)
            if ref_reset == impl_reset:
                result.cones.append(ConeVerdict(
                    f"reset({name})", "reset", "equal", "static"
                ))
            else:
                result.cones.append(ConeVerdict(
                    f"reset({name})", "reset", "counterexample", "static",
                    counterexample=Counterexample(
                        cone=f"reset({name})", kind="reset",
                        expect=ref_reset, got=impl_reset,
                    ),
                ))

        ref_cones = ref.cone_words()
        impl_cones = impl.cone_words()
        for cone, (ref_lits, kind) in sorted(ref_cones.items()):
            if cones is not None and cone not in cones:
                skipped += 1
                continue
            impl_lits = impl_cones[cone][0]
            with tracer.span("formal.lec.cone", cone=cone) as cone_span:
                diff = FALSE
                for a, b in zip(ref_lits, impl_lits):
                    diff = aig.OR(diff, aig.XOR(a, b))
                if diff == FALSE:
                    # Structural hashing folded every bit-pair equal.
                    result.cones.append(
                        ConeVerdict(cone, kind, "equal", "structural")
                    )
                    if tracer.enabled:
                        cone_span.set(status="equal", proof="structural")
                    continue
                cnf = tseitin(aig, [diff])
                solver = CdclSolver(
                    [*cnf.clauses, (cnf.lit(diff),)], cnf.n_vars
                )
                sat = solver.solve(max_conflicts=max_conflicts)
                stats = sat.stats
                totals.decisions += stats.decisions
                totals.conflicts += stats.conflicts
                totals.propagations += stats.propagations
                totals.restarts += stats.restarts
                totals.learned += stats.learned
                if sat.is_unsat:
                    verdict = ConeVerdict(
                        cone, kind, "equal", "sat",
                        conflicts=stats.conflicts,
                        decisions=stats.decisions,
                    )
                elif sat.is_sat:
                    verdict = ConeVerdict(
                        cone, kind, "counterexample", "sat",
                        counterexample=_extract_counterexample(
                            aig, cnf, sat.model, ref, cone, kind,
                            ref_lits, impl_lits,
                        ),
                        conflicts=stats.conflicts,
                        decisions=stats.decisions,
                    )
                else:
                    verdict = ConeVerdict(
                        cone, kind, "unknown", "sat",
                        conflicts=stats.conflicts,
                        decisions=stats.decisions,
                    )
                result.cones.append(verdict)
                if tracer.enabled:
                    cone_span.set(
                        status=verdict.status, vars=cnf.n_vars,
                        clauses=len(cnf.clauses),
                        conflicts=stats.conflicts,
                    )

        result.sat_stats = totals.as_dict()
        if tracer.enabled:
            lec_span.set(
                equivalent=result.equivalent,
                cones=len(result.cones),
                structural=result.structural_cones,
                conflicts=totals.conflicts,
                skipped=skipped,
            )

    metrics.counter("formal.lec.runs").inc()
    metrics.counter("formal.lec.cones").inc(len(result.cones))
    if result.counterexamples:
        metrics.counter("formal.lec.counterexamples").inc(
            len(result.counterexamples)
        )
    for stat, value in totals.as_dict().items():
        if value:
            metrics.counter(f"formal.sat.{stat}").inc(value)
    return result


def lec_flow(
    module: Module,
    synth,
    max_conflicts: int | None = 100_000,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> LecReport:
    """Prove the whole synthesis pipeline: RTL ↔ gates ↔ mapped.

    ``synth`` is a :class:`~repro.synth.synthesize.SynthesisResult`.
    Three stage checks:

    * ``post_synthesis`` — RTL vs the freshly lowered (unoptimized)
      gate netlist: does bit-blasting preserve the IR semantics?
    * ``post_opt`` — RTL vs the optimized netlist: did the rewrite
      passes stay sound?
    * ``post_mapping`` — RTL vs the technology-mapped cells: did
      pattern matching and sizing keep the logic?
    """
    report = LecReport(design=module.name)
    report.checks["post_synthesis"] = check_lec(
        module, lower(module), max_conflicts=max_conflicts,
        tracer=tracer, metrics=metrics,
    )
    report.checks["post_opt"] = check_lec(
        module, synth.netlist, max_conflicts=max_conflicts,
        tracer=tracer, metrics=metrics,
    )
    report.checks["post_mapping"] = check_lec(
        module, synth.mapped, max_conflicts=max_conflicts,
        tracer=tracer, metrics=metrics,
    )
    return report


# ---------------------------------------------------------------------------
# Counterexample replay + netlist mutation (the self-test of the prover)
# ---------------------------------------------------------------------------

#: Below this batch size the packed replay path costs more to set up
#: (lowering the RTL, building two packed simulators) than it saves;
#: measured crossover is ~4 witnesses on the catalogue designs.
PACKED_REPLAY_MIN = 4


def replay_counterexample(
    module: Module,
    implementation: GateNetlist | MappedNetlist,
    cex: Counterexample,
) -> Mismatch | None:
    """Replay a formal counterexample on the lockstep simulators.

    Loads ``cex.state`` into both the RTL and gate-level simulators,
    applies ``cex.inputs``, and compares the witnessed cone: the output
    directly for output cones, the register word after one clock edge
    for next-state cones.  Returns a :class:`Mismatch` when the
    disagreement reproduces in simulation — the cross-check that the
    formal and simulation worlds describe the same hardware — or
    ``None`` when it does not.

    Delegates to :func:`replay_counterexamples`; callers with several
    witnesses should pass them all at once, which packs up to
    :data:`repro.sim.bitsim.LANES` replays into one simulation.
    """
    return replay_counterexamples(module, implementation, [cex])[0]


def _replay_counterexample_scalar(
    module: Module,
    implementation: GateNetlist | MappedNetlist,
    cex: Counterexample,
) -> Mismatch | None:
    """One-at-a-time replay on the scalar simulators (reference path)."""
    rtl = Simulator(module)
    if isinstance(implementation, GateNetlist):
        gate = GateSimulator(implementation)
    elif isinstance(implementation, MappedNetlist):
        gate = MappedSimulator(implementation)
    else:
        raise TypeError(
            f"cannot simulate implementation {type(implementation)!r}"
        )
    if cex.state:
        rtl.load_state(cex.state)
        gate.load_state(cex.state)
    for name, value in cex.inputs.items():
        rtl.set(name, value)
        gate.set(name, value)
    if cex.kind == "output":
        want, got = rtl.get(cex.cone), gate.get(cex.cone)
    else:
        register = cex.cone[len("next("):-1]
        rtl.step()
        gate.step()
        want, got = rtl.get_register(register), gate.get_register(register)
    if want == got:
        return None
    return Mismatch(0, cex.cone, want, got, dict(cex.inputs),
                    dict(cex.state))


def _packed_replay_sims(module, implementation):
    rtl = PackedRtlSimulator(module)
    if isinstance(implementation, GateNetlist):
        gate = PackedGateSimulator(implementation)
    elif isinstance(implementation, MappedNetlist):
        gate = PackedMappedSimulator(implementation)
    else:
        raise TypeError(
            f"cannot simulate implementation {type(implementation)!r}"
        )
    return rtl, gate


def _packed_state_words(resets, chunk) -> dict[str, list[int]]:
    """Per-lane register words: lane ``l`` holds counterexample ``l``'s
    recorded state, defaulting to the simulator's own reset value for
    registers the witness does not constrain (exactly what the scalar
    replay's fresh-simulator-plus-``load_state`` sequence produces).
    State names the simulator does not know pass through so its
    ``load_state`` raises the same ``KeyError`` the scalar path would.
    """
    names = set(resets)
    for cex in chunk:
        names.update(cex.state)
    words: dict[str, list[int]] = {}
    for name in names:
        lanes = [cex.state.get(name, resets.get(name, 0)) for cex in chunk]
        width = max((v.bit_length() for v in lanes), default=1) or 1
        words[name] = pack_word(lanes, width)
    return words


def replay_counterexamples(
    module: Module,
    implementation: GateNetlist | MappedNetlist,
    cexes: list[Counterexample],
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> list[Mismatch | None]:
    """Replay a batch of counterexamples through packed simulation.

    Each witness occupies one lane of a word-parallel run
    (:mod:`repro.sim.bitsim`): lane ``l``'s register state and inputs
    are counterexample ``l``'s, so up to 64 replays cost one load, one
    settle and one clock edge.  Output cones are compared before the
    edge, next-state cones after it; the per-lane verdicts match the
    scalar :func:`replay_counterexample` bit for bit (the differential
    tests pin this).  Designs the packed engines cannot build (exotic
    hand-built netlists) fall back to scalar replay per witness.

    Returns one entry per counterexample: a :class:`Mismatch` when the
    disagreement reproduces, ``None`` when it does not.  ``reset``-kind
    counterexamples are not replayable (no stimulus reaches a reset
    value) and raise ``ValueError``, as in the scalar path.

    Batches smaller than :data:`PACKED_REPLAY_MIN` replay through the
    scalar path directly: building the packed simulators (including
    lowering the RTL) costs more than a couple of scalar replays, so
    packing only pays once several witnesses share one netlist.
    """
    if tracer is None:
        tracer = get_tracer()
    if metrics is None:
        metrics = get_metrics()
    for cex in cexes:
        if cex.kind not in ("output", "state"):
            raise ValueError(f"cannot replay a {cex.kind!r} counterexample")
    if not cexes:
        return []
    if len(cexes) < PACKED_REPLAY_MIN:
        return [
            _replay_counterexample_scalar(module, implementation, cex)
            for cex in cexes
        ]
    try:
        rtl, gate = _packed_replay_sims(module, implementation)
    except PackedSimError:
        return [
            _replay_counterexample_scalar(module, implementation, cex)
            for cex in cexes
        ]

    # Reset values captured once, before any lane is forced: they are
    # the defaults for registers a witness leaves unconstrained.
    reset_words = [
        {
            name: extract_lane(sim.get_register(name), 0)
            for name in sim.register_words()
        }
        for sim in (rtl, gate)
    ]
    results: list[Mismatch | None] = []
    with tracer.span(
        "sim.packed.replay", design=getattr(module, "name", "design"),
        counterexamples=len(cexes),
    ):
        for base in range(0, len(cexes), LANES):
            chunk = cexes[base:base + LANES]
            for sim, resets in zip((rtl, gate), reset_words):
                # Force every register word and drive every input so no
                # lane inherits values from a previous chunk; inputs a
                # witness does not name are 0, as on a fresh simulator.
                sim.load_state(
                    _packed_state_words(resets, chunk), settle=False
                )
                widths = sim.input_widths()
                for cex in chunk:
                    for name, value in cex.inputs.items():
                        if name not in widths:
                            raise KeyError(
                                f"no input named {name!r} to replay into"
                            )
                        if value >> widths[name]:
                            raise ValueError(
                                f"value {value} does not fit input "
                                f"{name!r} ({widths[name]} bits)"
                            )
                sim.set_many({
                    name: pack_word(
                        [cex.inputs.get(name, 0) for cex in chunk], width
                    )
                    for name, width in widths.items()
                })
            # Output cones read before the clock edge...
            verdicts: list[tuple[int, int] | None] = [None] * len(chunk)
            for lane, cex in enumerate(chunk):
                if cex.kind == "output":
                    verdicts[lane] = (
                        extract_lane(rtl.get(cex.cone), lane),
                        extract_lane(gate.get(cex.cone), lane),
                    )
            # ...next-state cones after it.
            if any(cex.kind == "state" for cex in chunk):
                rtl.step()
                gate.step()
                for lane, cex in enumerate(chunk):
                    if cex.kind == "state":
                        register = cex.cone[len("next("):-1]
                        verdicts[lane] = (
                            extract_lane(rtl.get_register(register), lane),
                            extract_lane(gate.get_register(register), lane),
                        )
            for cex, (want, got) in zip(chunk, verdicts):
                if want == got:
                    results.append(None)
                else:
                    results.append(Mismatch(
                        0, cex.cone, want, got, dict(cex.inputs),
                        dict(cex.state),
                    ))
    metrics.counter("sim.packed.replays").inc(len(cexes))
    return results


def _safe_nets_gate(netlist: GateNetlist) -> list[int]:
    """Nets that are always acyclic to rewire onto: inputs, flop
    outputs and constants."""
    nets = [net for word in netlist.inputs.values() for net in word]
    nets.extend(ff.q for ff in netlist.dffs)
    nets.extend(netlist.const_nets)
    return nets


def mutate_netlist(
    design: GateNetlist | MappedNetlist,
    seed: int = 0,
) -> tuple[GateNetlist | MappedNetlist, str]:
    """A deep copy of ``design`` with exactly one gate input rewired.

    The replacement net is drawn (seeded, deterministic) from the
    primary inputs, flop outputs and constants, so the mutant stays
    acyclic; the rewire is the classic LEC self-test: the prover must
    find a counterexample for it, and the counterexample must reproduce
    in the lockstep simulator.  Returns ``(mutant, description)``.
    Individual seeds can produce functionally-benign rewires (redundant
    logic); callers loop seeds until the prover objects.
    """
    rng = random.Random(seed)
    mutant = copy.deepcopy(design)
    if isinstance(mutant, GateNetlist):
        candidates = [
            (index, position)
            for index, gate in enumerate(mutant.gates)
            for position in range(len(gate.inputs))
        ]
        if not candidates:
            raise LecError(f"netlist {design.name!r} has no gates to mutate")
        index, position = rng.choice(candidates)
        gate = mutant.gates[index]
        choices = [n for n in _safe_nets_gate(mutant)
                   if n != gate.inputs[position]]
        if not choices:
            raise LecError("no replacement net available for mutation")
        replacement = rng.choice(choices)
        new_inputs = list(gate.inputs)
        old = new_inputs[position]
        new_inputs[position] = replacement
        mutant.gates[index] = Gate(gate.op, tuple(new_inputs), gate.output)
        description = (
            f"gate #{index} ({gate.op}) input {position}: "
            f"net {old} -> net {replacement}"
        )
    elif isinstance(mutant, MappedNetlist):
        safe = [net for word in mutant.inputs.values() for net in word]
        safe.extend(
            inst.pins[inst.cell.output] for inst in mutant.seq_cells
        )
        candidates = [
            (inst, pin)
            for inst in mutant.cells
            if not inst.cell.is_sequential
            for pin in inst.cell.inputs
            if pin in inst.pins
        ]
        if not candidates:
            raise LecError(f"netlist {design.name!r} has no cells to mutate")
        inst, pin = rng.choice(candidates)
        choices = [n for n in safe if n != inst.pins[pin]]
        if not choices:
            raise LecError("no replacement net available for mutation")
        replacement = rng.choice(choices)
        old = inst.pins[pin]
        mutant.rewire(inst, pin, replacement)
        description = (
            f"cell {inst.name} ({inst.cell.kind}) pin {pin}: "
            f"net {old} -> net {replacement}"
        )
    else:
        raise TypeError(f"cannot mutate {type(design)!r}")
    return mutant, description
