"""A small CDCL SAT solver.

Clauses are tuples of non-zero signed integers (DIMACS convention).  The
solver implements the classic conflict-driven loop:

* **two-watched-literal propagation** — each clause watches two of its
  literals; only clauses watching the negation of a newly assigned
  literal are visited, so propagation cost tracks the watch lists rather
  than the whole formula;
* **first-UIP conflict analysis** — conflicts are resolved backwards
  along the trail until a single literal of the current decision level
  remains, producing an asserting learned clause and a backjump level;
* **VSIDS-style decisions** — variables bumped during conflict analysis
  accumulate activity that decays geometrically; decisions pick the most
  active unassigned variable, with phase saving;
* **geometric restarts** — the trail is rewound to level 0 after a
  growing number of conflicts, keeping learned clauses.

The instances produced by LEC miters are small (hundreds to a few
thousand variables), so there is no clause-database reduction; every
learned clause is kept.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cnf import Clause, Cnf


@dataclass
class SolverStats:
    """Search statistics, surfaced as ``formal.sat.*`` metrics."""

    decisions: int = 0
    conflicts: int = 0
    propagations: int = 0
    restarts: int = 0
    learned: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "decisions": self.decisions,
            "conflicts": self.conflicts,
            "propagations": self.propagations,
            "restarts": self.restarts,
            "learned": self.learned,
        }


@dataclass
class SatResult:
    """Outcome of one solver run."""

    status: str  # "sat" | "unsat" | "unknown"
    model: dict[int, bool] | None = None
    stats: SolverStats = field(default_factory=SolverStats)

    @property
    def is_sat(self) -> bool:
        return self.status == "sat"

    @property
    def is_unsat(self) -> bool:
        return self.status == "unsat"


_RESTART_FIRST = 100
_RESTART_FACTOR = 1.5
_ACTIVITY_DECAY = 0.95
_ACTIVITY_RESCALE = 1e100


class CdclSolver:
    """Conflict-driven clause learning over a fixed clause set."""

    def __init__(self, clauses: list[Clause], n_vars: int):
        self.n_vars = n_vars
        self._clauses: list[list[int]] = []
        # Assignment state, 1-indexed by variable.
        self._assign = [0] * (n_vars + 1)  # 0 free, +1 true, -1 false
        self._level = [0] * (n_vars + 1)
        self._reason: list[int | None] = [None] * (n_vars + 1)
        self._phase = [False] * (n_vars + 1)
        self._activity = [0.0] * (n_vars + 1)
        self._var_inc = 1.0
        self._watches: dict[int, list[int]] = {}
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._queue_head = 0
        self._unsat_at_setup = False
        self.stats = SolverStats()
        for clause in clauses:
            self._add_clause(list(clause), learned=False)

    # -- assignment primitives ------------------------------------------------

    def _value(self, lit: int) -> int:
        """+1 if lit is true, -1 if false, 0 if unassigned."""
        v = self._assign[abs(lit)]
        return v if lit > 0 else -v

    @property
    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _enqueue(self, lit: int, reason: int | None) -> bool:
        if self._value(lit) != 0:
            return self._value(lit) > 0
        var = abs(lit)
        self._assign[var] = 1 if lit > 0 else -1
        self._level[var] = self._decision_level
        self._reason[var] = reason
        self._phase[var] = lit > 0
        self._trail.append(lit)
        return True

    # -- clause management ------------------------------------------------

    def _watch(self, lit: int, ci: int) -> None:
        self._watches.setdefault(lit, []).append(ci)

    def _add_clause(self, lits: list[int], learned: bool) -> int | None:
        if not learned:
            unique = list(dict.fromkeys(lits))
            if any(-lit in unique for lit in unique):
                return None  # tautology
            lits = unique
        if not lits:
            self._unsat_at_setup = True
            return None
        if len(lits) == 1:
            if not self._enqueue(lits[0], None):
                self._unsat_at_setup = True
            return None
        ci = len(self._clauses)
        self._clauses.append(lits)
        self._watch(lits[0], ci)
        self._watch(lits[1], ci)
        return ci

    # -- propagation -------------------------------------------------------

    def _propagate(self) -> int | None:
        """Unit propagation; returns a conflicting clause index or None."""
        while self._queue_head < len(self._trail):
            lit = self._trail[self._queue_head]
            self._queue_head += 1
            self.stats.propagations += 1
            falsified = -lit
            watchers = self._watches.get(falsified)
            if not watchers:
                continue
            kept: list[int] = []
            conflict: int | None = None
            for idx, ci in enumerate(watchers):
                clause = self._clauses[ci]
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) > 0:
                    kept.append(ci)
                    continue
                for k in range(2, len(clause)):
                    if self._value(clause[k]) >= 0:
                        clause[1], clause[k] = clause[k], clause[1]
                        self._watch(clause[1], ci)
                        break
                else:
                    kept.append(ci)
                    if not self._enqueue(first, ci):
                        conflict = ci
                        kept.extend(watchers[idx + 1:])
                        break
            self._watches[falsified] = kept
            if conflict is not None:
                return conflict
        return None

    # -- conflict analysis ---------------------------------------------------

    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > _ACTIVITY_RESCALE:
            for v in range(1, self.n_vars + 1):
                self._activity[v] *= 1.0 / _ACTIVITY_RESCALE
            self._var_inc *= 1.0 / _ACTIVITY_RESCALE

    def _analyze(self, confl: int) -> tuple[list[int], int]:
        """First-UIP learning: (asserting clause, backjump level)."""
        learnt: list[int] = [0]  # slot 0 is the UIP literal
        seen = [False] * (self.n_vars + 1)
        counter = 0
        p: int | None = None
        index = len(self._trail) - 1
        while True:
            clause = self._clauses[confl]
            start = 0 if p is None else 1
            for lit in clause[start:]:
                var = abs(lit)
                if seen[var] or self._level[var] == 0:
                    continue
                seen[var] = True
                self._bump(var)
                if self._level[var] == self._decision_level:
                    counter += 1
                else:
                    learnt.append(lit)
            while not seen[abs(self._trail[index])]:
                index -= 1
            p = self._trail[index]
            index -= 1
            counter -= 1
            if counter == 0:
                break
            confl = self._reason[abs(p)]  # type: ignore[assignment]
        learnt[0] = -p
        if len(learnt) == 1:
            return learnt, 0
        # Move the deepest non-UIP literal to the watch slot.
        deepest = max(range(1, len(learnt)),
                      key=lambda i: self._level[abs(learnt[i])])
        learnt[1], learnt[deepest] = learnt[deepest], learnt[1]
        return learnt, self._level[abs(learnt[1])]

    def _backtrack(self, level: int) -> None:
        if self._decision_level <= level:
            return
        cut = self._trail_lim[level]
        for lit in self._trail[cut:]:
            var = abs(lit)
            self._assign[var] = 0
            self._reason[var] = None
        del self._trail[cut:]
        del self._trail_lim[level:]
        self._queue_head = len(self._trail)

    # -- decisions ----------------------------------------------------------

    def _pick_branch(self) -> int | None:
        best_var, best_act = None, -1.0
        for var in range(1, self.n_vars + 1):
            if self._assign[var] == 0 and self._activity[var] > best_act:
                best_var, best_act = var, self._activity[var]
        if best_var is None:
            return None
        return best_var if self._phase[best_var] else -best_var

    # -- main loop ------------------------------------------------------------

    def solve(self, max_conflicts: int | None = None) -> SatResult:
        if self._unsat_at_setup:
            return SatResult("unsat", stats=self.stats)
        restart_limit = _RESTART_FIRST
        conflicts_since_restart = 0
        while True:
            confl = self._propagate()
            if confl is not None:
                self.stats.conflicts += 1
                conflicts_since_restart += 1
                if self._decision_level == 0:
                    return SatResult("unsat", stats=self.stats)
                learnt, back_level = self._analyze(confl)
                self._backtrack(back_level)
                if len(learnt) == 1:
                    self._enqueue(learnt[0], None)
                else:
                    ci = self._add_clause(learnt, learned=True)
                    self._enqueue(learnt[0], ci)
                self.stats.learned += 1
                self._var_inc /= _ACTIVITY_DECAY
                if (max_conflicts is not None
                        and self.stats.conflicts >= max_conflicts):
                    return SatResult("unknown", stats=self.stats)
                if conflicts_since_restart >= restart_limit:
                    self.stats.restarts += 1
                    conflicts_since_restart = 0
                    restart_limit = int(restart_limit * _RESTART_FACTOR)
                    self._backtrack(0)
                continue
            decision = self._pick_branch()
            if decision is None:
                model = {
                    var: self._assign[var] > 0
                    for var in range(1, self.n_vars + 1)
                }
                return SatResult("sat", model=model, stats=self.stats)
            self.stats.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(decision, None)

    def __repr__(self) -> str:
        return (
            f"CdclSolver(vars={self.n_vars}, clauses={len(self._clauses)})"
        )


def solve_cnf(
    cnf: Cnf,
    extra: list[Clause] = (),
    max_conflicts: int | None = None,
) -> SatResult:
    """Solve ``cnf`` together with ``extra`` clauses (e.g. miter units)."""
    solver = CdclSolver([*cnf.clauses, *extra], cnf.n_vars)
    return solver.solve(max_conflicts=max_conflicts)
