"""Graph-based static timing analysis.

Implements the standard two-pass algorithm over the mapped netlist:
forward propagation of earliest/latest arrival times, backward required
times from endpoints, slack per endpoint, and critical-path extraction.

Delay model per stage (one linear segment, an educational NLDM):

    stage = intrinsic + R_drive * (C_pins + C_wire) + 0.5 * R_wire * C_wire

Wire parasitics come from routed lengths when available (post-route STA),
or from a fanout-based wireload model before routing — the same practice
real flows follow.  Clock skew per sequential cell (from CTS) shifts both
launch and capture edges.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..obs.metrics import get_metrics
from ..obs.trace import get_tracer
from ..pdk.node import ProcessNode
from ..synth.mapped import CellInst, MappedNetlist

#: Setup/hold as fractions of the flip-flop's clk->q intrinsic delay.
SETUP_FRACTION = 0.5
HOLD_FRACTION = 0.15


@dataclass
class PathPoint:
    """One stage on a timing path."""

    instance: str
    cell: str
    net: int
    arrival_ps: float


@dataclass
class TimingReport:
    """STA results for one clock period."""

    clock_period_ps: float
    wns_ps: float  # worst negative slack (positive means met)
    tns_ps: float  # total negative slack (0 when met)
    worst_hold_slack_ps: float
    critical_path: list[PathPoint] = field(default_factory=list)
    endpoint_slacks: dict[str, float] = field(default_factory=dict)

    @property
    def met(self) -> bool:
        return self.wns_ps >= 0.0 and self.worst_hold_slack_ps >= 0.0

    @property
    def fmax_mhz(self) -> float:
        """Highest clock frequency the critical path supports."""
        critical = self.clock_period_ps - self.wns_ps
        if critical <= 0:
            return math.inf
        return 1e6 / critical

    def summary(self) -> str:
        status = "MET" if self.met else "VIOLATED"
        return (
            f"{status}: period={self.clock_period_ps:.0f} ps, "
            f"WNS={self.wns_ps:.1f} ps, TNS={self.tns_ps:.1f} ps, "
            f"fmax={self.fmax_mhz:.1f} MHz"
        )


class TimingAnalyzer:
    """STA over a :class:`~repro.synth.mapped.MappedNetlist`."""

    def __init__(
        self,
        mapped: MappedNetlist,
        node: ProcessNode,
        wire_lengths_um: dict[int, float] | None = None,
        skew_ps: dict[str, float] | None = None,
        wireload_fanout_um: float = 6.0,
        tracer=None,
        metrics=None,
    ):
        self.mapped = mapped
        self.node = node
        self.wire_lengths = wire_lengths_um or {}
        self.skew = skew_ps or {}
        self.wireload_fanout_um = wireload_fanout_um
        self._tracer = tracer if tracer is not None else get_tracer()
        self._metrics = metrics if metrics is not None else get_metrics()
        self._loads = mapped.net_loads()
        self._order = mapped.topo_comb()
        # Stage delays depend only on static loads and routed lengths, so
        # the whole table is computed once per analyzer and shared by the
        # worst/early propagation passes, analyze() and minimum_period_ps.
        self._net_load_ff: dict[int, float] = {}
        with self._tracer.span("sta.stage_delays") as sp:
            self._stage_delay_ps: dict[str, float] = {
                inst.name: self._compute_stage_delay_ps(inst)
                for inst in mapped.cells
                if inst.output_net is not None
            }
            sp.set(instances=len(self._stage_delay_ps))

    # -- parasitics -----------------------------------------------------------

    def _wire_length(self, net: int) -> float:
        if net in self.wire_lengths:
            return self.wire_lengths[net]
        # Wireload model: length grows with fanout before routing exists.
        return self.wireload_fanout_um * len(self._loads.get(net, ()))

    def net_load_ff(self, net: int) -> float:
        cached = self._net_load_ff.get(net)
        if cached is None:
            pins = sum(
                sink.cell.input_cap_ff for sink, _ in self._loads.get(net, ())
            )
            wire = self._wire_length(net) * self.node.wire_cap_ff_per_um
            cached = self._net_load_ff[net] = pins + wire
        return cached

    def _compute_stage_delay_ps(self, inst: CellInst) -> float:
        net = inst.output_net
        load = self.net_load_ff(net)
        length = self._wire_length(net)
        wire_r = length * self.node.wire_res_ohm_per_um / 1000.0  # kohm
        wire_c = length * self.node.wire_cap_ff_per_um
        return (
            inst.cell.intrinsic_ps
            + inst.cell.resistance_kohm * load
            + 0.5 * wire_r * wire_c
        )

    def stage_delay_ps(self, inst: CellInst) -> float:
        """Precomputed stage delay for one of this netlist's instances.

        Subclasses that scale delays (e.g. corner derates) must override
        :meth:`_compute_stage_delay_ps`, which feeds both the eager table
        and this compute-on-miss fallback — overriding this lookup alone
        would be bypassed by the propagation passes.
        """
        cached = self._stage_delay_ps.get(inst.name)
        if cached is None:
            cached = self._stage_delay_ps[inst.name] = (
                self._compute_stage_delay_ps(inst)
            )
        return cached

    # -- arrival propagation -----------------------------------------------

    def _propagate(self, worst: bool) -> tuple[dict[int, float], dict[int, CellInst]]:
        """Latest (worst=True) or earliest arrival per net, plus the
        driving instance on the dominant path for backtracking."""
        pick = max if worst else min
        arrival: dict[int, float] = {}
        via: dict[int, CellInst] = {}
        delay = self._stage_delay_ps
        for nets in self.mapped.inputs.values():
            for net in nets:
                arrival[net] = 0.0
        for inst in self.mapped.seq_cells:
            q = inst.pins[inst.cell.output]
            launch = self.skew.get(inst.name, 0.0)
            arrival[q] = launch + delay[inst.name]
            via[q] = inst
        for inst in self._order:
            ins = inst.input_nets()
            base = pick((arrival.get(n, 0.0) for n in ins), default=0.0)
            out = inst.pins[inst.cell.output]
            arrival[out] = base + delay[inst.name]
            via[out] = inst
        return arrival, via

    def analyze(self, clock_period_ps: float) -> TimingReport:
        tracer = self._tracer
        with tracer.span("sta.analyze") as root:
            with tracer.span("sta.propagate", worst=True):
                arrival, via = self._propagate(worst=True)
            with tracer.span("sta.propagate", worst=False):
                early, _ = self._propagate(worst=False)
            with tracer.span("sta.slacks"):
                report = self._build_report(
                    clock_period_ps, arrival, via, early
                )
            root.set(clock_period_ps=clock_period_ps,
                     wns_ps=report.wns_ps, met=report.met)
        self._metrics.counter("sta.analyses").inc()
        return report

    def _build_report(
        self,
        clock_period_ps: float,
        arrival: dict[int, float],
        via: dict[int, CellInst],
        early: dict[int, float],
    ) -> TimingReport:
        """Slack computation and critical-path backtracking."""
        dff_setup = SETUP_FRACTION * self.mapped.library.dff.intrinsic_ps
        dff_hold = HOLD_FRACTION * self.mapped.library.dff.intrinsic_ps

        endpoint_slacks: dict[str, float] = {}
        worst_hold = math.inf
        worst_endpoint: tuple[float, int] | None = None  # (slack, net)

        for inst in self.mapped.seq_cells:
            d_net = inst.pins["d"]
            capture = self.skew.get(inst.name, 0.0)
            slack = (
                clock_period_ps + capture - dff_setup
                - arrival.get(d_net, 0.0)
            )
            endpoint_slacks[inst.name] = slack
            hold_slack = early.get(d_net, 0.0) - (dff_hold + capture)
            worst_hold = min(worst_hold, hold_slack)
            if worst_endpoint is None or slack < worst_endpoint[0]:
                worst_endpoint = (slack, d_net)

        for name, nets in self.mapped.outputs.items():
            for i, net in enumerate(nets):
                slack = clock_period_ps - arrival.get(net, 0.0)
                endpoint_slacks[f"{name}[{i}]"] = slack
                if worst_endpoint is None or slack < worst_endpoint[0]:
                    worst_endpoint = (slack, net)

        if not endpoint_slacks:
            return TimingReport(clock_period_ps, clock_period_ps, 0.0, 0.0)

        wns = min(endpoint_slacks.values())
        tns = sum(s for s in endpoint_slacks.values() if s < 0)
        if worst_hold is math.inf:
            worst_hold = 0.0

        path: list[PathPoint] = []
        net = worst_endpoint[1]
        seen: set[int] = set()
        while net in via and net not in seen:
            seen.add(net)
            inst = via[net]
            path.append(
                PathPoint(inst.name, inst.cell.name, net,
                          round(arrival.get(net, 0.0), 2))
            )
            if inst.cell.is_sequential:
                break
            ins = inst.input_nets()
            if not ins:
                break
            net = max(ins, key=lambda n: arrival.get(n, 0.0))
        path.reverse()

        return TimingReport(
            clock_period_ps=clock_period_ps,
            wns_ps=round(wns, 3),
            tns_ps=round(tns, 3),
            worst_hold_slack_ps=round(worst_hold, 3),
            critical_path=path,
            endpoint_slacks=endpoint_slacks,
        )

    def minimum_period_ps(self) -> float:
        """Smallest period with non-negative setup slack."""
        report = self.analyze(0.0)
        return max(0.0, -report.wns_ps)
