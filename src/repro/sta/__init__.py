"""Static timing analysis, including multi-corner signoff."""

from .corners import (
    FF,
    SS,
    STANDARD_CORNERS,
    TT,
    Corner,
    MultiCornerReport,
    derated_node,
    multi_corner_analysis,
)
from .engine import (
    HOLD_FRACTION,
    SETUP_FRACTION,
    PathPoint,
    TimingAnalyzer,
    TimingReport,
)

__all__ = [
    "Corner",
    "FF",
    "HOLD_FRACTION",
    "MultiCornerReport",
    "SS",
    "STANDARD_CORNERS",
    "TT",
    "PathPoint",
    "SETUP_FRACTION",
    "TimingAnalyzer",
    "TimingReport",
    "derated_node",
    "multi_corner_analysis",
]
