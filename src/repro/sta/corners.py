"""Multi-corner timing analysis.

Real signoff never trusts one operating point: setup is checked where
silicon is slowest (SS process, low voltage, high temperature) and hold
where it is fastest (FF, high voltage, low temperature).  Corners here
are derate factors applied to the node's cell delay parameters — the
standard abstraction one level above SPICE.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..pdk.node import ProcessNode
from ..synth.mapped import MappedNetlist
from .engine import TimingAnalyzer, TimingReport


@dataclass(frozen=True)
class Corner:
    """One process/voltage/temperature corner as delay derates."""

    name: str
    delay_derate: float  # multiplies intrinsic delay and drive resistance
    wire_derate: float = 1.0  # multiplies wire RC

    def __post_init__(self):
        if self.delay_derate <= 0 or self.wire_derate <= 0:
            raise ValueError("derates must be positive")


#: The classic three-corner set.
SS = Corner("ss", delay_derate=1.20, wire_derate=1.10)
TT = Corner("tt", delay_derate=1.00, wire_derate=1.00)
FF = Corner("ff", delay_derate=0.85, wire_derate=0.95)
STANDARD_CORNERS = (SS, TT, FF)


def derated_node(node: ProcessNode, corner: Corner) -> ProcessNode:
    """A copy of ``node`` with the corner's derates applied."""
    return replace(
        node,
        name=f"{node.name}_{corner.name}",
        inv_intrinsic_ps=node.inv_intrinsic_ps * corner.delay_derate,
        inv_resistance_kohm=node.inv_resistance_kohm * corner.delay_derate,
        wire_res_ohm_per_um=node.wire_res_ohm_per_um * corner.wire_derate,
        wire_cap_ff_per_um=node.wire_cap_ff_per_um * corner.wire_derate,
    )


@dataclass
class MultiCornerReport:
    """Per-corner timing plus the signoff verdict."""

    reports: dict[str, TimingReport]
    setup_corner: str
    hold_corner: str

    @property
    def setup_report(self) -> TimingReport:
        return self.reports[self.setup_corner]

    @property
    def hold_report(self) -> TimingReport:
        return self.reports[self.hold_corner]

    @property
    def met(self) -> bool:
        """Setup at the slow corner AND hold at the fast corner."""
        return (
            self.setup_report.wns_ps >= 0
            and self.hold_report.worst_hold_slack_ps >= 0
        )

    @property
    def signoff_fmax_mhz(self) -> float:
        """Frequency limited by the worst setup corner."""
        return min(r.fmax_mhz for r in self.reports.values())

    def summary(self) -> str:
        rows = ", ".join(
            f"{name}: WNS {report.wns_ps:.1f} ps"
            for name, report in sorted(self.reports.items())
        )
        status = "MET" if self.met else "VIOLATED"
        return f"{status} across corners ({rows})"


class CornerScaledAnalyzer(TimingAnalyzer):
    """Timing analyzer whose *cell* delays are scaled by a corner derate.

    Node wire parameters are handled by :func:`derated_node`; cell
    intrinsic/resistance values live in the library, so they are scaled
    at delay-computation time instead of by rebuilding the library.
    """

    def __init__(self, *args, cell_derate: float = 1.0, **kwargs):
        # Must be set before super().__init__: the base analyzer builds its
        # stage-delay table there, dispatching to _compute_stage_delay_ps.
        self.cell_derate = cell_derate
        super().__init__(*args, **kwargs)

    def _compute_stage_delay_ps(self, inst) -> float:
        base = super()._compute_stage_delay_ps(inst)
        return base * self.cell_derate


def multi_corner_analysis(
    mapped: MappedNetlist,
    node: ProcessNode,
    clock_period_ps: float,
    wire_lengths_um: dict[int, float] | None = None,
    skew_ps: dict[str, float] | None = None,
    corners: tuple[Corner, ...] = STANDARD_CORNERS,
) -> MultiCornerReport:
    """Run STA at every corner and aggregate the signoff verdict."""
    if not corners:
        raise ValueError("need at least one corner")
    reports: dict[str, TimingReport] = {}
    for corner in corners:
        analyzer = CornerScaledAnalyzer(
            mapped,
            derated_node(node, corner),
            wire_lengths_um=wire_lengths_um,
            skew_ps=skew_ps,
            cell_derate=corner.delay_derate,
        )
        reports[corner.name] = analyzer.analyze(clock_period_ps)
    setup_corner = max(corners, key=lambda c: c.delay_derate).name
    hold_corner = min(corners, key=lambda c: c.delay_derate).name
    return MultiCornerReport(
        reports=reports,
        setup_corner=setup_corner,
        hold_corner=hold_corner,
    )
