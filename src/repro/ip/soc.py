"""A composed system-on-chip IP: the catalogue's largest design.

``make_soc`` stitches ten catalogue blocks into one top module — a
counter and an LFSR drive a FIR filter, a multiplier and an ALU, whose
result fans out into a FIFO-fed UART transmitter, a PWM, a shift
register and a seven-segment decoder.  It is the design the incremental
edit-loop benchmark (``benchmarks/bench_incremental.py``) edits one
module of, and the stress case for hierarchical placement: every
sub-block lands in its own region, so editing one leaves the rest at
seed-stable positions.

The golden model composes the sub-IPs' own golden models in
combinational dependency order, each with a private state slice — so
the SoC verifies constrained-random against the same reference
semantics every individual block is verified against.
"""

from __future__ import annotations

from ..hdl.hcl import ModuleBuilder
from ..sim.testbench import Testbench
from .base import Collateral, IpBlock, VerificationStatus
from .digital import (
    make_alu,
    make_counter,
    make_fifo,
    make_fir,
    make_gray_counter,
    make_lfsr,
    make_multiplier,
    make_priority_encoder,
    make_pwm,
    make_seven_seg,
    make_shift_register,
    make_uart_tx,
)


def sevenseg_recode_rtl() -> str:
    """Verilog for an active-low re-encode of the seven-segment decoder.

    The canonical one-module edit for :class:`~repro.inter.Workspace`
    demos (``repro edit --demo``) and the incremental benchmark: same
    name and ports as the catalogue ``sevenseg``, every segment pattern
    inverted.
    """
    from ..hdl.hcl import mux
    from ..hdl.verilog import to_verilog
    from .digital import _SEVEN_SEG

    b = ModuleBuilder("sevenseg")
    digit = b.input("digit", 4)
    segments = b.const(_SEVEN_SEG[0] ^ 0x7F, 7)
    for value in range(1, 16):
        segments = mux(
            digit.eq(value), b.const(_SEVEN_SEG[value] ^ 0x7F, 7), segments
        )
    b.output("segments", segments)
    return to_verilog(b.build())


def make_soc() -> IpBlock:
    """Fifteen-instance SoC: counter/LFSR → FIR/mult/ALU → FIFO/UART/…"""
    counter = make_counter(width=8)
    lfsr = make_lfsr(width=16)
    gray = make_gray_counter(width=8)
    fir = make_fir()
    fir5 = make_fir(taps=(1, 2, 3, 2, 1))
    mult = make_multiplier(width=4)
    alu = make_alu(width=8)
    fifo = make_fifo()
    uart = make_uart_tx()
    pwm = make_pwm(width=8)
    shift = make_shift_register(width=8)
    seg = make_seven_seg()
    pri = make_priority_encoder(width=8)

    b = ModuleBuilder("soc")
    en = b.input("en", 1)
    load = b.input("load", 1)
    value = b.input("value", 8)
    cnt = b.instance("u_cnt", counter.module, en=en, load=load, value=value)
    rnd = b.instance("u_rnd", lfsr.module, en=en)
    gry = b.instance("u_gray", gray.module, en=en)
    f = b.instance("u_fir", fir.module, x=rnd["q"][7:0])
    f2 = b.instance("u_fir2", fir5.module, x=cnt["q"])
    m = b.instance(
        "u_mul", mult.module, a=cnt["q"][3:0], b=rnd["q"][3:0]
    )
    m2 = b.instance(
        "u_mul2", mult.module, a=gry["gray"][3:0], b=cnt["q"][7:4]
    )
    a = b.instance(
        "u_alu", alu.module, a=m["p"], op=rnd["q"][2:0], b=f["y"][7:0]
    )
    q = b.instance("u_fifo", fifo.module, wdata=a["y"], push=en, pop=load)
    u = b.instance("u_uart", uart.module, data=q["rdata"], start=q["full"])
    p = b.instance("u_pwm", pwm.module, duty=a["y"])
    s = b.instance("u_sh", shift.module, d=a["y"])
    s2 = b.instance("u_sh2", shift.module, d=m2["p"])
    sg = b.instance("u_seg", seg.module, digit=cnt["q"][3:0])
    pe = b.instance("u_pe", pri.module, data=f2["y"][7:0])
    b.output("tx", u["txd"])
    b.output("led", p["out"])
    b.output("acc", a["y"])
    b.output("busy", u["busy"])
    b.output("dly", s["q"])
    b.output("segments", sg["segments"])
    b.output("prod", m2["p"])
    b.output("dly2", s2["q"])
    b.output("mark", pe["index"])
    b.output("hit", pe["valid"])
    module = b.build()

    models = {
        "cnt": counter.testbench.model,
        "rnd": lfsr.testbench.model,
        "gray": gray.testbench.model,
        "fir": fir.testbench.model,
        "fir2": fir5.testbench.model,
        "mul": mult.testbench.model,
        "mul2": mult.testbench.model,
        "alu": alu.testbench.model,
        "fifo": fifo.testbench.model,
        "uart": uart.testbench.model,
        "pwm": pwm.testbench.model,
        "sh": shift.testbench.model,
        "sh2": shift.testbench.model,
        "seg": seg.testbench.model,
        "pe": pri.testbench.model,
    }

    def model(inputs, state):
        # Each sub-model is called exactly once per cycle, in
        # combinational dependency order, with the pre-edge values its
        # RTL inputs carry; slices in the wiring become masks here.
        sub = state.setdefault("sub", {name: {} for name in models})
        cnt_o = models["cnt"](
            {"en": inputs["en"], "load": inputs["load"],
             "value": inputs["value"]},
            sub["cnt"],
        )
        rnd_o = models["rnd"]({"en": inputs["en"]}, sub["rnd"])
        gry_o = models["gray"]({"en": inputs["en"]}, sub["gray"])
        fir_o = models["fir"]({"x": rnd_o["q"] & 0xFF}, sub["fir"])
        fir2_o = models["fir2"]({"x": cnt_o["q"]}, sub["fir2"])
        mul_o = models["mul"](
            {"a": cnt_o["q"] & 0xF, "b": rnd_o["q"] & 0xF}, sub["mul"]
        )
        mul2_o = models["mul2"](
            {"a": gry_o["gray"] & 0xF, "b": (cnt_o["q"] >> 4) & 0xF},
            sub["mul2"],
        )
        alu_o = models["alu"](
            {"a": mul_o["p"], "b": fir_o["y"] & 0xFF,
             "op": rnd_o["q"] & 0x7},
            sub["alu"],
        )
        fifo_o = models["fifo"](
            {"wdata": alu_o["y"], "push": inputs["en"],
             "pop": inputs["load"]},
            sub["fifo"],
        )
        # rdata is undefined (stale storage) while the FIFO is empty and
        # the fifo model omits it then; the UART only samples data when
        # start (= full) is high, where rdata is always defined.
        uart_o = models["uart"](
            {"data": fifo_o.get("rdata", 0), "start": fifo_o["full"]},
            sub["uart"],
        )
        pwm_o = models["pwm"]({"duty": alu_o["y"]}, sub["pwm"])
        sh_o = models["sh"]({"d": alu_o["y"]}, sub["sh"])
        sh2_o = models["sh2"]({"d": mul2_o["p"]}, sub["sh2"])
        seg_o = models["seg"]({"digit": cnt_o["q"] & 0xF}, sub["seg"])
        pe_o = models["pe"]({"data": fir2_o["y"] & 0xFF}, sub["pe"])
        return {
            "tx": uart_o["txd"],
            "led": pwm_o["out"],
            "acc": alu_o["y"],
            "busy": uart_o["busy"],
            "dly": sh_o["q"],
            "segments": seg_o["segments"],
            "prod": mul2_o["p"],
            "dly2": sh2_o["q"],
            "mark": pe_o["index"],
            "hit": pe_o["valid"],
        }

    return IpBlock(
        name="soc",
        module=module,
        params={},
        testbench=Testbench(module, model, seed=97),
        collateral=Collateral(
            description=(
                "Fifteen-instance demonstration SoC composing the "
                "catalogue: counter, LFSR and Gray-counter stimulus into "
                "two FIR filters, two 4-bit multipliers and an 8-bit "
                "ALU, whose results feed a FIFO-buffered UART "
                "transmitter, a PWM, shift registers, a priority encoder "
                "and a seven-segment decoder."
            ),
            synthesis_hints={
                "clock_period_ps": 6000.0,
                "placer": "hier",
                "notes": "largest catalogue design; use the hierarchical "
                         "placer for stable incremental edits",
            },
            integration_notes=(
                "Pure-synchronous single-clock design. `en` gates the "
                "counter/LFSR stimulus, `load`/`value` preload the "
                "counter and drain the FIFO. All outputs are observable "
                "one level below the top, which makes the SoC the "
                "reference design for Workspace edit-loop demos."
            ),
            example_instantiation=(
                "soc u0 (.clk(clk), .rst(rst), .en(1'b1), .load(1'b0), "
                ".value(8'h00), .tx(tx), .led(led), .acc(acc), "
                ".busy(busy), .dly(dly), .segments(segments));"
            ),
        ),
        verification=VerificationStatus.RANDOM,
    )
