"""The digital IP catalogue: parameterized generators with golden models.

Every generator returns an :class:`~repro.ip.base.IpBlock` whose testbench
checks the RTL against a cycle-accurate Python golden model under random
stimulus — the PULP-style "rich and widely reusable library of digital
IPs" the paper holds up as the open-hardware success story (Section II).
"""

from __future__ import annotations

from ..hdl.hcl import ModuleBuilder, cat, mux
from ..sim.testbench import Testbench
from .base import Collateral, IpBlock, VerificationStatus

#: Maximal-length LFSR tap positions (1-indexed from the LSB).
_LFSR_TAPS = {
    4: (4, 3),
    8: (8, 6, 5, 4),
    16: (16, 15, 13, 4),
}


def make_counter(width: int = 8, step: int = 1) -> IpBlock:
    """Up-counter with enable and synchronous load."""
    b = ModuleBuilder(f"counter{width}")
    en = b.input("en", 1)
    load = b.input("load", 1)
    value = b.input("value", width)
    count = b.register("count", width)
    incremented = (count + step).trunc(width)
    count.next = mux(load, value, mux(en, incremented, count))
    b.output("q", count)
    module = b.build()

    mask = (1 << width) - 1

    def model(inputs, state):
        current = state.get("count", 0)
        expected = {"q": current}
        if inputs["load"]:
            state["count"] = inputs["value"]
        elif inputs["en"]:
            state["count"] = (current + step) & mask
        else:
            state["count"] = current
        return expected

    return IpBlock(
        name=f"counter{width}",
        module=module,
        params={"width": width, "step": step},
        testbench=Testbench(module, model, seed=11),
        collateral=Collateral(
            description=(
                f"{width}-bit up-counter with enable and synchronous load; "
                f"steps by {step} per enabled cycle and wraps modulo 2^{width}."
            ),
            synthesis_hints={"target_period_ns": 5.0},
            integration_notes="Hold load for one cycle to preset the count.",
            example_instantiation="b.instance('u_cnt', counter.module, en=..., load=..., value=...)",
        ),
        verification=VerificationStatus.RANDOM,
    )


def make_shift_register(width: int = 8, depth: int = 4) -> IpBlock:
    """Delay line: input appears on the output ``depth`` cycles later."""
    b = ModuleBuilder(f"shift{width}x{depth}")
    d = b.input("d", width)
    stages = []
    previous = d
    for i in range(depth):
        stage = b.register(f"stage{i}", width)
        stage.next = previous
        stages.append(stage)
        previous = stage
    b.output("q", previous)
    module = b.build()

    def model(inputs, state):
        pipe = state.setdefault("pipe", [0] * depth)
        expected = {"q": pipe[-1]}
        pipe.insert(0, inputs["d"])
        pipe.pop()
        return expected

    return IpBlock(
        name=f"shift{width}x{depth}",
        module=module,
        params={"width": width, "depth": depth},
        testbench=Testbench(module, model, seed=12),
        collateral=Collateral(
            description=(
                f"{depth}-stage, {width}-bit shift register (delay line); "
                "useful for retiming and pipeline balancing exercises."
            ),
            integration_notes="Latency is exactly `depth` clock cycles.",
            example_instantiation="b.instance('u_dly', shift.module, d=...)",
            synthesis_hints={"registers": depth * width},
        ),
        verification=VerificationStatus.RANDOM,
    )


def make_gray_counter(width: int = 8) -> IpBlock:
    """Binary counter with Gray-coded output (CDC teaching block)."""
    b = ModuleBuilder(f"gray{width}")
    en = b.input("en", 1)
    binary = b.register("binary", width)
    binary.next = mux(en, (binary + 1).trunc(width), binary)
    b.output("gray", binary ^ (binary >> 1))
    module = b.build()

    mask = (1 << width) - 1

    def model(inputs, state):
        current = state.get("binary", 0)
        expected = {"gray": current ^ (current >> 1)}
        if inputs["en"]:
            state["binary"] = (current + 1) & mask
        else:
            state["binary"] = current
        return expected

    return IpBlock(
        name=f"gray{width}",
        module=module,
        params={"width": width},
        testbench=Testbench(module, model, seed=13),
        collateral=Collateral(
            description=(
                f"{width}-bit Gray-code counter: exactly one output bit "
                "toggles per increment, the classic clock-domain-crossing "
                "pointer encoding."
            ),
            integration_notes="Pair with a synchronizer for async FIFOs.",
            example_instantiation="b.instance('u_gray', gray.module, en=...)",
            synthesis_hints={"registers": width},
        ),
        verification=VerificationStatus.RANDOM,
    )


def make_lfsr(width: int = 8) -> IpBlock:
    """Maximal-length Fibonacci LFSR (pseudo-random source)."""
    if width not in _LFSR_TAPS:
        raise ValueError(
            f"no tap table for width {width}; supported: {sorted(_LFSR_TAPS)}"
        )
    taps = _LFSR_TAPS[width]
    b = ModuleBuilder(f"lfsr{width}")
    en = b.input("en", 1)
    state = b.register("state", width, reset=1)
    feedback = state[taps[0] - 1]
    for tap in taps[1:]:
        feedback = feedback ^ state[tap - 1]
    shifted = cat(state[width - 2 : 0], feedback) if width > 1 else feedback
    state.next = mux(en, shifted, state)
    b.output("q", state)
    module = b.build()

    def model(inputs, state_dict):
        current = state_dict.get("state", 1)
        expected = {"q": current}
        if inputs["en"]:
            bit = 0
            for tap in taps:
                bit ^= (current >> (tap - 1)) & 1
            state_dict["state"] = ((current << 1) | bit) & ((1 << width) - 1)
        else:
            state_dict["state"] = current
        return expected

    return IpBlock(
        name=f"lfsr{width}",
        module=module,
        params={"width": width, "taps": taps},
        testbench=Testbench(module, model, seed=14),
        collateral=Collateral(
            description=(
                f"{width}-bit maximal-length LFSR with taps {taps}; cycles "
                f"through 2^{width}-1 states, used for BIST and scrambling."
            ),
            integration_notes="Never reaches the all-zero state; resets to 1.",
            example_instantiation="b.instance('u_lfsr', lfsr.module, en=...)",
            synthesis_hints={"registers": width},
        ),
        verification=VerificationStatus.RANDOM,
    )


def make_priority_encoder(width: int = 8) -> IpBlock:
    """Combinational highest-set-bit encoder with a valid flag."""
    out_width = max(1, (width - 1).bit_length())
    b = ModuleBuilder(f"prienc{width}")
    data = b.input("data", width)
    index = b.const(0, out_width)
    for i in range(width):  # highest bit wins: later muxes override
        index = mux(data[i], b.const(i, out_width), index)
    b.output("index", index)
    b.output("valid", data.ne(0))
    module = b.build()

    def model(inputs, state):
        value = inputs["data"]
        if value == 0:
            return {"index": 0, "valid": 0}
        return {"index": value.bit_length() - 1, "valid": 1}

    return IpBlock(
        name=f"prienc{width}",
        module=module,
        params={"width": width},
        testbench=Testbench(module, model, seed=15),
        collateral=Collateral(
            description=(
                f"{width}-to-{out_width} priority encoder returning the "
                "index of the most significant set bit, with a valid flag "
                "for the all-zero input."
            ),
            integration_notes="Purely combinational; index is 0 when invalid.",
            example_instantiation="b.instance('u_enc', enc.module, data=...)",
            synthesis_hints={"combinational": True},
        ),
        verification=VerificationStatus.RANDOM,
    )


_SEVEN_SEG = [
    0x3F, 0x06, 0x5B, 0x4F, 0x66, 0x6D, 0x7D, 0x07,
    0x7F, 0x6F, 0x77, 0x7C, 0x39, 0x5E, 0x79, 0x71,
]


def make_seven_seg() -> IpBlock:
    """Hex digit to seven-segment decoder (segments a-g, active high)."""
    b = ModuleBuilder("sevenseg")
    digit = b.input("digit", 4)
    segments = b.const(_SEVEN_SEG[0], 7)
    for value in range(1, 16):
        segments = mux(digit.eq(value), b.const(_SEVEN_SEG[value], 7), segments)
    b.output("segments", segments)
    module = b.build()

    def model(inputs, state):
        return {"segments": _SEVEN_SEG[inputs["digit"]]}

    return IpBlock(
        name="sevenseg",
        module=module,
        params={},
        testbench=Testbench(module, model, seed=16),
        collateral=Collateral(
            description=(
                "Hexadecimal digit to seven-segment display decoder with "
                "active-high segment outputs in gfedcba order."
            ),
            integration_notes="Combinational lookup; invert for common anode.",
            example_instantiation="b.instance('u_7seg', seg.module, digit=...)",
            synthesis_hints={"combinational": True},
        ),
        verification=VerificationStatus.EXTENSIVE,
    )


#: ALU opcodes for :func:`make_alu`.
ALU_OPS = {
    0: "add", 1: "sub", 2: "and", 3: "or", 4: "xor",
    5: "shl1", 6: "shr1", 7: "pass_a",
}


def make_alu(width: int = 8) -> IpBlock:
    """Eight-operation ALU with a zero flag."""
    b = ModuleBuilder(f"alu{width}")
    a = b.input("a", width)
    c = b.input("b", width)
    op = b.input("op", 3)
    results = {
        0: (a + c).trunc(width),
        1: (a - c).trunc(width),
        2: a & c,
        3: a | c,
        4: a ^ c,
        5: (a << 1).trunc(width),
        6: a >> 1,
        7: a,
    }
    y = results[7]
    for code in range(7):
        y = mux(op.eq(code), results[code], y)
    y = b.wire("alu_y", y)
    b.output("y", y)
    b.output("zero", y.eq(0))
    module = b.build()

    mask = (1 << width) - 1

    def model(inputs, state):
        a_v, b_v, op_v = inputs["a"], inputs["b"], inputs["op"]
        table = {
            0: (a_v + b_v) & mask, 1: (a_v - b_v) & mask,
            2: a_v & b_v, 3: a_v | b_v, 4: a_v ^ b_v,
            5: (a_v << 1) & mask, 6: a_v >> 1, 7: a_v,
        }
        y_v = table[op_v]
        return {"y": y_v, "zero": 1 if y_v == 0 else 0}

    return IpBlock(
        name=f"alu{width}",
        module=module,
        params={"width": width, "ops": dict(ALU_OPS)},
        testbench=Testbench(module, model, seed=17),
        collateral=Collateral(
            description=(
                f"{width}-bit combinational ALU: add, sub, and, or, xor, "
                "shift-left/right by one and pass-through, plus a zero flag "
                "— the datapath core of the tiny-CPU teaching example."
            ),
            integration_notes="Opcode map in params['ops'].",
            example_instantiation="b.instance('u_alu', alu.module, a=..., b=..., op=...)",
            synthesis_hints={"combinational": True},
        ),
        verification=VerificationStatus.EXTENSIVE,
    )


def make_pwm(width: int = 8) -> IpBlock:
    """Pulse-width modulator: output high while counter < duty."""
    b = ModuleBuilder(f"pwm{width}")
    duty = b.input("duty", width)
    counter = b.register("counter", width)
    counter.next = (counter + 1).trunc(width)
    b.output("out", counter.lt(duty))
    module = b.build()

    mask = (1 << width) - 1

    def model(inputs, state):
        current = state.get("counter", 0)
        expected = {"out": 1 if current < inputs["duty"] else 0}
        state["counter"] = (current + 1) & mask
        return expected

    return IpBlock(
        name=f"pwm{width}",
        module=module,
        params={"width": width},
        testbench=Testbench(module, model, seed=18),
        collateral=Collateral(
            description=(
                f"{width}-bit PWM generator: duty cycle is duty/2^{width}; "
                "the free-running counter gives a fixed carrier frequency."
            ),
            integration_notes="Duty is sampled combinationally every cycle.",
            example_instantiation="b.instance('u_pwm', pwm.module, duty=...)",
            synthesis_hints={"registers": width},
        ),
        verification=VerificationStatus.RANDOM,
    )


def make_multiplier(width: int = 8) -> IpBlock:
    """Combinational unsigned multiplier with a full-width product."""
    b = ModuleBuilder(f"mult{width}")
    a = b.input("a", width)
    c = b.input("b", width)
    b.output("p", a * c)
    module = b.build()

    def model(inputs, state):
        return {"p": inputs["a"] * inputs["b"]}

    return IpBlock(
        name=f"mult{width}",
        module=module,
        params={"width": width},
        testbench=Testbench(module, model, seed=19),
        collateral=Collateral(
            description=(
                f"{width}x{width} combinational array multiplier producing "
                f"the full {2 * width}-bit product; a good synthesis and "
                "timing-closure study (long carry chains)."
            ),
            integration_notes="Consider pipelining above 8x8 for timing.",
            example_instantiation="b.instance('u_mul', mul.module, a=..., b=...)",
            synthesis_hints={"combinational": True, "critical": True},
        ),
        verification=VerificationStatus.RANDOM,
    )


def make_fifo(width: int = 8, depth: int = 4) -> IpBlock:
    """Synchronous FIFO with full/empty flags and an element count."""
    if depth & (depth - 1):
        raise ValueError(f"depth must be a power of two, got {depth}")
    ptr_width = max(1, depth.bit_length() - 1)
    cnt_width = depth.bit_length()
    b = ModuleBuilder(f"fifo{width}x{depth}")
    push = b.input("push", 1)
    pop = b.input("pop", 1)
    wdata = b.input("wdata", width)

    count = b.register("count_r", cnt_width)
    wptr = b.register("wptr", ptr_width)
    rptr = b.register("rptr", ptr_width)
    full = count.eq(depth)
    empty = count.eq(0)
    do_push = b.wire("do_push", push & ~full)
    do_pop = b.wire("do_pop", pop & ~empty)

    slots = []
    for i in range(depth):
        slot = b.register(f"mem{i}", width)
        slot.next = mux(do_push & wptr.eq(i), wdata, slot)
        slots.append(slot)

    wptr.next = mux(do_push, (wptr + 1).trunc(ptr_width), wptr)
    rptr.next = mux(do_pop, (rptr + 1).trunc(ptr_width), rptr)
    count.next = mux(
        do_push & ~do_pop, (count + 1).trunc(cnt_width),
        mux(do_pop & ~do_push, (count - 1).trunc(cnt_width), count),
    )

    rdata = slots[0]
    for i in range(1, depth):
        rdata = mux(rptr.eq(i), slots[i], rdata)
    b.output("rdata", rdata)
    b.output("full", full)
    b.output("empty", empty)
    b.output("count", count)
    module = b.build()

    def model(inputs, state):
        queue = state.setdefault("queue", [])
        expected = {
            "full": 1 if len(queue) == depth else 0,
            "empty": 1 if not queue else 0,
            "count": len(queue),
        }
        if queue:  # rdata is undefined (stale storage) while empty
            expected["rdata"] = queue[0]
        pushing = inputs["push"] and len(queue) < depth
        popping = inputs["pop"] and queue
        if popping:
            queue.pop(0)
        if pushing:
            queue.append(inputs["wdata"])
        return expected

    return IpBlock(
        name=f"fifo{width}x{depth}",
        module=module,
        params={"width": width, "depth": depth},
        testbench=Testbench(module, model, seed=20),
        collateral=Collateral(
            description=(
                f"Synchronous {width}-bit x {depth} FIFO with registered "
                "storage, full/empty flags and an element counter; "
                "first-word-fall-through read port."
            ),
            integration_notes=(
                "Push into a full FIFO and pop from an empty one are "
                "silently ignored (flags must be honoured upstream)."
            ),
            example_instantiation="b.instance('u_fifo', fifo.module, push=..., pop=..., wdata=...)",
            synthesis_hints={"registers": depth * width},
        ),
        verification=VerificationStatus.EXTENSIVE,
    )


def make_fir(taps: tuple[int, ...] = (1, 2, 2, 1), width: int = 8) -> IpBlock:
    """Transposed-form FIR filter, one sample per cycle."""
    out_width = width + max(1, sum(taps)).bit_length()
    b = ModuleBuilder(f"fir{len(taps)}")
    x = b.input("x", width)
    delayed = [x]
    for i in range(1, len(taps)):
        stage = b.register(f"x{i}", width)
        stage.next = delayed[i - 1]
        delayed.append(stage)
    acc = b.const(0, out_width)
    for tap, sample in zip(taps, delayed):
        term = (sample * tap).zext(out_width) if tap != 1 else sample.zext(out_width)
        acc = (acc + term).trunc(out_width)
    b.output("y", acc)
    module = b.build()

    mask = (1 << out_width) - 1

    def model(inputs, state):
        history = state.setdefault("history", [0] * len(taps))
        current = [inputs["x"]] + history[: len(taps) - 1]
        expected = {"y": sum(t * s for t, s in zip(taps, current)) & mask}
        state["history"] = current
        return expected

    return IpBlock(
        name=f"fir{len(taps)}",
        module=module,
        params={"taps": taps, "width": width},
        testbench=Testbench(module, model, seed=21),
        collateral=Collateral(
            description=(
                f"{len(taps)}-tap FIR filter with coefficients {taps}; "
                "direct form, one sample per clock, full-precision output."
            ),
            integration_notes="Output width grows with the coefficient sum.",
            example_instantiation="b.instance('u_fir', fir.module, x=...)",
            synthesis_hints={"multipliers": sum(1 for t in taps if t > 1)},
        ),
        verification=VerificationStatus.RANDOM,
    )


def make_uart_tx(divisor: int = 4) -> IpBlock:
    """UART transmitter: 8N1 framing at clk/divisor baud."""
    if divisor < 2:
        raise ValueError("divisor must be at least 2")
    div_width = max(1, (divisor - 1).bit_length())
    b = ModuleBuilder(f"uarttx{divisor}")
    start = b.input("start", 1)
    data = b.input("data", 8)

    busy = b.register("busy_r", 1)
    baud = b.register("baud", div_width)
    bits = b.register("bits", 4)
    shifter = b.register("shifter", 10, reset=0x3FF)

    tick = b.wire("tick", busy & baud.eq(divisor - 1))
    go = b.wire("go", start & ~busy)
    last_bit = bits.eq(9)

    baud.next = mux(
        go, 0, mux(busy, mux(tick, b.const(0, div_width),
                             (baud + 1).trunc(div_width)), baud)
    )
    bits.next = mux(go, 0, mux(tick, (bits + 1).trunc(4), bits))
    busy.next = mux(go, b.const(1, 1), mux(tick & last_bit, b.const(0, 1), busy))
    # Frame, LSB first: start(0), data[7:0], stop(1).
    frame = cat(b.const(1, 1), data, b.const(0, 1))
    shifter.next = mux(
        go, frame,
        mux(tick, cat(b.const(1, 1), shifter[9:1]), shifter),
    )
    b.output("txd", mux(busy, shifter[0], b.const(1, 1)))
    b.output("busy", busy)
    module = b.build()

    def model(inputs, state):
        busy_v = state.get("busy", 0)
        shifter_v = state.get("shifter", 0x3FF)
        baud_v = state.get("baud", 0)
        bits_v = state.get("bits", 0)
        expected = {
            "txd": (shifter_v & 1) if busy_v else 1,
            "busy": busy_v,
        }
        tick = busy_v and baud_v == divisor - 1
        if inputs["start"] and not busy_v:
            state["busy"] = 1
            state["baud"] = 0
            state["bits"] = 0
            state["shifter"] = (1 << 9) | (inputs["data"] << 1)
        else:
            if busy_v:
                state["baud"] = 0 if tick else baud_v + 1
            if tick:
                state["bits"] = (bits_v + 1) & 0xF
                state["shifter"] = (shifter_v >> 1) | (1 << 9)
                if bits_v == 9:
                    state["busy"] = 0
        return expected

    return IpBlock(
        name=f"uarttx{divisor}",
        module=module,
        params={"divisor": divisor, "frame": "8N1"},
        testbench=Testbench(module, model, seed=22),
        collateral=Collateral(
            description=(
                f"UART transmitter, 8N1 framing at clk/{divisor} baud, "
                "with a busy flag; the canonical first 'real' peripheral "
                "in introductory SoC courses."
            ),
            integration_notes="Pulse start for one cycle while busy is low.",
            example_instantiation="b.instance('u_tx', uart.module, start=..., data=...)",
            synthesis_hints={"registers": 16 + div_width},
        ),
        verification=VerificationStatus.EXTENSIVE,
    )
