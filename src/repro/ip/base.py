"""IP block packaging: module + verification + collaterals.

Recommendation 5 of the paper: open-source IP is only an enabler when it
ships with "collaterals (documentation, synthesis and simulation scripts,
integration harness)" and real verification maturity.  :class:`IpBlock`
bundles exactly that, and :func:`quality_score` turns the recommendation
into a checkable metric used by the hub's IP catalogue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..hdl.ir import Module
from ..sim.testbench import Testbench


class VerificationStatus(Enum):
    """Verification maturity ladder (Recommendation 5)."""

    NONE = 0
    SMOKE = 1  # a directed sanity test exists
    RANDOM = 2  # constrained-random against a golden model
    EXTENSIVE = 3  # random + corner-case directed suites


@dataclass
class Collateral:
    """Everything around the RTL that makes an IP reusable."""

    description: str
    license: str = "Apache-2.0"
    author: str = "repro contributors"
    synthesis_hints: dict[str, object] = field(default_factory=dict)
    integration_notes: str = ""
    example_instantiation: str = ""


@dataclass
class IpBlock:
    """A packaged IP: RTL, parameters, testbench, collateral."""

    name: str
    module: Module
    params: dict[str, object]
    testbench: Testbench
    collateral: Collateral
    verification: VerificationStatus = VerificationStatus.RANDOM

    def verify(self, cycles: int = 200):
        """Run the packaged random testbench."""
        return self.testbench.run_random(cycles=cycles)

    def rtl(self) -> str:
        from ..hdl.verilog import to_verilog

        return to_verilog(self.module)


def quality_score(ip: IpBlock) -> float:
    """IP quality on [0, 1] following Recommendation 5's criteria.

    Weighted: verification maturity 40%, documentation 20%, license
    clarity 10%, synthesis hints 10%, integration notes 10%, example 10%.
    """
    score = 0.4 * (ip.verification.value / VerificationStatus.EXTENSIVE.value)
    if len(ip.collateral.description) >= 40:
        score += 0.2
    if ip.collateral.license:
        score += 0.1
    if ip.collateral.synthesis_hints:
        score += 0.1
    if ip.collateral.integration_notes:
        score += 0.1
    if ip.collateral.example_instantiation:
        score += 0.1
    return round(score, 3)
