"""TinyCPU — an open 8-bit accumulator processor core.

The paper (Section II) credits open processor IP — the PULP platform's
RISC-V cores — with seeding an entire research ecosystem.  TinyCPU is
this toolkit's miniature homage: a fully synthesizable accumulator
machine with an assembler, a cycle-accurate Python golden model, and the
usual collaterals, small enough to take through the whole RTL→GDSII flow
in seconds.

ISA (8-bit accumulator, program baked in as a ROM):

======  =========  ==========================================
opcode  mnemonic   effect
======  =========  ==========================================
0x0     NOP        —
0x1     LDI imm    acc = imm
0x2     ADD imm    acc += imm (mod 256)
0x3     SUB imm    acc -= imm (mod 256)
0x4     AND imm    acc &= imm
0x5     OR  imm    acc |= imm
0x6     XOR imm    acc ^= imm
0x7     SHL        acc <<= 1 (mod 256)
0x8     SHR        acc >>= 1
0x9     OUT        out = acc
0xA     JMP addr   pc = addr
0xB     JNZ addr   if acc != 0: pc = addr
0xF     HALT       stop (pc freezes, halted = 1)
======  =========  ==========================================
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hdl.hcl import ModuleBuilder, mux
from ..hdl.ir import Module
from ..sim.testbench import Testbench
from .base import Collateral, IpBlock, VerificationStatus

OPCODES = {
    "NOP": 0x0, "LDI": 0x1, "ADD": 0x2, "SUB": 0x3, "AND": 0x4,
    "OR": 0x5, "XOR": 0x6, "SHL": 0x7, "SHR": 0x8, "OUT": 0x9,
    "JMP": 0xA, "JNZ": 0xB, "HALT": 0xF,
}
_NEEDS_OPERAND = {"LDI", "ADD", "SUB", "AND", "OR", "XOR", "JMP", "JNZ"}


class AssemblerError(Exception):
    """Raised for malformed TinyCPU assembly."""


@dataclass(frozen=True)
class Instruction:
    opcode: int
    operand: int = 0


def assemble(source: str) -> list[Instruction]:
    """Two-pass assembler: labels (``name:``), mnemonics, ``;`` comments."""
    lines = []
    for raw in source.splitlines():
        text = raw.split(";", 1)[0].strip()
        if text:
            lines.append(text)

    labels: dict[str, int] = {}
    statements: list[tuple[str, str | None]] = []
    for text in lines:
        while ":" in text:
            label, text = text.split(":", 1)
            label = label.strip()
            if not label.isidentifier():
                raise AssemblerError(f"bad label {label!r}")
            if label in labels:
                raise AssemblerError(f"duplicate label {label!r}")
            labels[label] = len(statements)
            text = text.strip()
        if not text:
            continue
        parts = text.split()
        mnemonic = parts[0].upper()
        if mnemonic not in OPCODES:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}")
        operand = parts[1] if len(parts) > 1 else None
        if (operand is None) == (mnemonic in _NEEDS_OPERAND):
            raise AssemblerError(
                f"{mnemonic} {'requires' if mnemonic in _NEEDS_OPERAND else 'takes no'} operand"
            )
        statements.append((mnemonic, operand))

    program: list[Instruction] = []
    for mnemonic, operand in statements:
        value = 0
        if operand is not None:
            if operand in labels:
                value = labels[operand]
            else:
                try:
                    value = int(operand, 0)
                except ValueError:
                    raise AssemblerError(
                        f"undefined label or bad literal {operand!r}"
                    ) from None
        if not 0 <= value <= 255:
            raise AssemblerError(f"operand {value} out of byte range")
        program.append(Instruction(OPCODES[mnemonic], value))
    if not program:
        raise AssemblerError("empty program")
    return program


def run_program(program: list[Instruction], max_cycles: int = 10_000) -> dict:
    """Reference interpreter; returns the final architectural state."""
    acc = out = pc = 0
    halted = False
    trace: list[int] = []
    for _ in range(max_cycles):
        if halted or pc >= len(program):
            break
        inst = program[pc]
        op, imm = inst.opcode, inst.operand
        next_pc = pc + 1
        if op == OPCODES["LDI"]:
            acc = imm
        elif op == OPCODES["ADD"]:
            acc = (acc + imm) & 0xFF
        elif op == OPCODES["SUB"]:
            acc = (acc - imm) & 0xFF
        elif op == OPCODES["AND"]:
            acc &= imm
        elif op == OPCODES["OR"]:
            acc |= imm
        elif op == OPCODES["XOR"]:
            acc ^= imm
        elif op == OPCODES["SHL"]:
            acc = (acc << 1) & 0xFF
        elif op == OPCODES["SHR"]:
            acc >>= 1
        elif op == OPCODES["OUT"]:
            out = acc
            trace.append(acc)
        elif op == OPCODES["JMP"]:
            next_pc = imm
        elif op == OPCODES["JNZ"]:
            next_pc = imm if acc != 0 else next_pc
        elif op == OPCODES["HALT"]:
            halted = True
            next_pc = pc
        pc = next_pc
    return {"acc": acc, "out": out, "pc": pc, "halted": halted,
            "trace": trace}


def generate_cpu(program: list[Instruction],
                 name: str = "tinycpu") -> Module:
    """Synthesizable TinyCPU with ``program`` baked into the ROM."""
    if not program:
        raise AssemblerError("cannot generate a CPU with an empty program")
    depth = len(program)
    pc_width = max(1, (depth - 1).bit_length() if depth > 1 else 1)

    b = ModuleBuilder(name)
    run = b.input("run", 1)

    acc = b.register("acc", 8)
    out = b.register("out_r", 8)
    pc = b.register("pc", pc_width)
    halted = b.register("halted", 1)

    # Instruction ROM: a mux chain over the program counter.
    opcode = b.const(OPCODES["HALT"], 4)  # past-the-end fetches halt
    operand = b.const(0, 8)
    for index, inst in enumerate(program):
        here = pc.eq(index)
        opcode = mux(here, b.const(inst.opcode, 4), opcode)
        operand = mux(here, b.const(inst.operand, 8), operand)
    opcode = b.wire("opcode", opcode)
    operand = b.wire("operand", operand)

    def is_op(mnemonic: str):
        return opcode.eq(OPCODES[mnemonic])

    alu = acc
    alu = mux(is_op("LDI"), operand, alu)
    alu = mux(is_op("ADD"), (acc + operand).trunc(8), alu)
    alu = mux(is_op("SUB"), (acc - operand).trunc(8), alu)
    alu = mux(is_op("AND"), acc & operand, alu)
    alu = mux(is_op("OR"), acc | operand, alu)
    alu = mux(is_op("XOR"), acc ^ operand, alu)
    alu = mux(is_op("SHL"), (acc << 1).trunc(8), alu)
    alu = mux(is_op("SHR"), acc >> 1, alu)

    advance = run & ~halted
    acc.next = mux(advance, alu, acc)
    out.next = mux(advance & is_op("OUT"), acc, out)
    halted.next = mux(advance & is_op("HALT"), b.const(1, 1), halted)

    target = operand.trunc(pc_width) if pc_width < 8 else operand.zext(pc_width)
    taken = is_op("JMP") | (is_op("JNZ") & acc.ne(0))
    next_pc = mux(taken, target, (pc + 1).trunc(pc_width))
    next_pc = mux(is_op("HALT"), pc, next_pc)
    pc.next = mux(advance, next_pc, pc)

    b.output("acc_out", acc)
    b.output("out", out)
    b.output("pc_out", pc)
    b.output("halted_out", halted)
    return b.build()


def make_tinycpu(source: str | None = None) -> IpBlock:
    """Packaged TinyCPU IP; default program computes 7 * 6 by iterated
    addition — multiplication as a loop, the classic first program."""
    if source is None:
        source = """
            LDI 0
            ADD 7
            ADD 7
            ADD 7
            ADD 7
            ADD 7
            ADD 7        ; 7 * 6 by repeated addition
            OUT          ; out = 42
        loop:
            SUB 1
            JNZ loop     ; count the accumulator back down to zero
            HALT
        """
    program = assemble(source)
    module = generate_cpu(program)
    reference = run_program(program)

    def model(inputs, state):
        cpu = state.setdefault(
            "cpu", {"acc": 0, "out": 0, "pc": 0, "halted": 0}
        )
        expected = {
            "acc_out": cpu["acc"], "out": cpu["out"],
            "pc_out": cpu["pc"], "halted_out": cpu["halted"],
        }
        if inputs["run"] and not cpu["halted"]:
            inst = (program[cpu["pc"]] if cpu["pc"] < len(program)
                    else Instruction(OPCODES["HALT"]))
            op, imm = inst.opcode, inst.operand
            acc = cpu["acc"]
            next_pc = cpu["pc"] + 1
            if op == OPCODES["LDI"]:
                acc = imm
            elif op == OPCODES["ADD"]:
                acc = (acc + imm) & 0xFF
            elif op == OPCODES["SUB"]:
                acc = (acc - imm) & 0xFF
            elif op == OPCODES["AND"]:
                acc &= imm
            elif op == OPCODES["OR"]:
                acc |= imm
            elif op == OPCODES["XOR"]:
                acc ^= imm
            elif op == OPCODES["SHL"]:
                acc = (acc << 1) & 0xFF
            elif op == OPCODES["SHR"]:
                acc >>= 1
            elif op == OPCODES["OUT"]:
                cpu["out"] = acc
            elif op == OPCODES["JMP"]:
                next_pc = imm
            elif op == OPCODES["JNZ"]:
                next_pc = imm if acc != 0 else next_pc
            elif op == OPCODES["HALT"]:
                cpu["halted"] = 1
                next_pc = cpu["pc"]
            pc_mask = (1 << module.port_by_name("pc_out").width) - 1
            cpu["acc"] = acc
            cpu["pc"] = next_pc & pc_mask
        return expected

    return IpBlock(
        name="tinycpu",
        module=module,
        params={"program_length": len(program),
                "reference_out": reference["out"]},
        testbench=Testbench(module, model, seed=23),
        collateral=Collateral(
            description=(
                "8-bit accumulator CPU with a 13-instruction ISA, two-pass "
                "assembler and cycle-accurate golden model; the program is "
                "baked into the synthesized ROM — the open-processor "
                "teaching vehicle in the spirit of the PULP cores."
            ),
            integration_notes=(
                "Hold run=1; poll halted_out. Regenerate with a new "
                "program via generate_cpu(assemble(src))."
            ),
            example_instantiation="generate_cpu(assemble('LDI 1\\nOUT\\nHALT'))",
            synthesis_hints={"registers": 18, "rom": "mux-chain"},
        ),
        verification=VerificationStatus.EXTENSIVE,
    )
