"""Open-source IP library with collaterals (Recommendation 5)."""

from .base import Collateral, IpBlock, VerificationStatus, quality_score
from .catalog import GENERATORS, catalogue, default_catalogue, generate
from .tinycpu import (
    AssemblerError,
    Instruction,
    OPCODES,
    assemble,
    generate_cpu,
    make_tinycpu,
    run_program,
)
from .digital import (
    ALU_OPS,
    make_alu,
    make_counter,
    make_fifo,
    make_fir,
    make_gray_counter,
    make_lfsr,
    make_multiplier,
    make_priority_encoder,
    make_pwm,
    make_seven_seg,
    make_shift_register,
    make_uart_tx,
)
from .soc import make_soc

__all__ = [
    "ALU_OPS",
    "AssemblerError",
    "Instruction",
    "OPCODES",
    "assemble",
    "generate_cpu",
    "make_tinycpu",
    "run_program",
    "Collateral",
    "GENERATORS",
    "IpBlock",
    "VerificationStatus",
    "catalogue",
    "default_catalogue",
    "generate",
    "make_alu",
    "make_counter",
    "make_fifo",
    "make_fir",
    "make_gray_counter",
    "make_lfsr",
    "make_multiplier",
    "make_priority_encoder",
    "make_pwm",
    "make_seven_seg",
    "make_shift_register",
    "make_soc",
    "make_uart_tx",
    "quality_score",
]
