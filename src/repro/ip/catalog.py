"""The IP catalogue: named generators with default parameterizations.

The hub (:mod:`repro.core.hub`) serves IP from this catalogue; the
benchmark suite verifies and quality-scores every entry.
"""

from __future__ import annotations

from typing import Callable

from .base import IpBlock
from .soc import make_soc
from .tinycpu import make_tinycpu
from .digital import (
    make_alu,
    make_counter,
    make_fifo,
    make_fir,
    make_gray_counter,
    make_lfsr,
    make_multiplier,
    make_priority_encoder,
    make_pwm,
    make_seven_seg,
    make_shift_register,
    make_uart_tx,
)

GENERATORS: dict[str, Callable[..., IpBlock]] = {
    "counter": make_counter,
    "shift_register": make_shift_register,
    "gray_counter": make_gray_counter,
    "lfsr": make_lfsr,
    "priority_encoder": make_priority_encoder,
    "seven_seg": make_seven_seg,
    "alu": make_alu,
    "pwm": make_pwm,
    "multiplier": make_multiplier,
    "fifo": make_fifo,
    "fir": make_fir,
    "uart_tx": make_uart_tx,
    "tinycpu": make_tinycpu,
    "soc": make_soc,
}


def generate(name: str, **params) -> IpBlock:
    """Instantiate a catalogue IP by name with generator parameters."""
    if name not in GENERATORS:
        raise KeyError(f"unknown IP {name!r}; available: {sorted(GENERATORS)}")
    return GENERATORS[name](**params)


def catalogue() -> list[str]:
    return sorted(GENERATORS)


def default_catalogue() -> list[IpBlock]:
    """All catalogue IPs at their default parameters."""
    return [GENERATORS[name]() for name in catalogue()]
