"""Campaign work queue: multi-tenant flow jobs awaiting dispatch.

A :class:`CampaignJob` is one tenant's request to run one design through
the flow — the unit the scheduler orders, the executor runs and the
result cache memoizes.  The queue itself is deliberately dumb: it
assigns ids in submission order and hands the pending set to a
:mod:`~repro.campaign.sched` policy; all ordering intelligence lives
there.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.options import FlowOptions
from ..hdl.ir import Module


def estimate_flow_minutes(module: Module) -> float:
    """Nominal flow runtime from RTL size, in simulated minutes.

    The campaign schedules *before* synthesis, so the cell count the
    cloud simulator bills from is not known yet; register bits plus
    assignment count is the cheap pre-synthesis proxy (calibrated to the
    same ~15 min base as :func:`~repro.core.cloud.estimate_job_minutes`).
    """
    stats = module.stats()
    work = stats["register_bits"] * 4 + stats["assigns"] + stats["wires"]
    return 15.0 + work / 4.0


@dataclass
class CampaignJob:
    """One design submission inside a campaign.

    The first block is the request (set at submission); the second is
    filled in by the scheduler, executor and simulated-schedule
    evaluation as the campaign runs.
    """

    job_id: int
    tenant: str
    module: Module
    pdk_name: str
    options: FlowOptions
    #: Lower runs first among one tenant's jobs (after deadlines).
    priority: int = 0
    #: Simulated minute the results are needed by, if any.
    deadline_min: float | None = None
    #: Estimated service time in simulated minutes (scheduling weight).
    est_minutes: float = 15.0

    # -- filled in by the campaign run --------------------------------------
    #: Content-hash result-cache key (assigned before execution).
    key: str | None = None
    #: Position in the dispatch order the scheduler chose.
    order: int | None = None
    #: ``pending`` → ``done`` | ``failed``.
    status: str = "pending"
    #: True when the result came from the cache (or an identical job
    #: already in flight) instead of a fresh flow execution.
    cache_hit: bool = False
    result: object = None  # FlowResult | None (kept loose for pickling)
    error: str | None = None
    #: Simulated dispatch timeline (see sched.evaluate_schedule).
    sim_start_min: float | None = None
    sim_finish_min: float | None = None

    @property
    def sim_wait_min(self) -> float:
        """Simulated queue latency: submission (t=0) to dispatch."""
        return self.sim_start_min if self.sim_start_min is not None else 0.0

    @property
    def missed_deadline(self) -> bool:
        if self.deadline_min is None:
            return False
        if self.sim_finish_min is None:
            return True
        return self.sim_finish_min > self.deadline_min


class CampaignQueue:
    """Submission-ordered job intake for one campaign."""

    def __init__(self):
        self._jobs: list[CampaignJob] = []

    def submit(self, tenant: str, module: Module, pdk_name: str,
               options: FlowOptions | None = None, priority: int = 0,
               deadline_min: float | None = None,
               est_minutes: float | None = None) -> CampaignJob:
        if options is None:
            options = FlowOptions()
        if est_minutes is None:
            est_minutes = estimate_flow_minutes(module)
        if est_minutes <= 0:
            raise ValueError("estimated minutes must be positive")
        job = CampaignJob(
            job_id=len(self._jobs),
            tenant=tenant,
            module=module,
            pdk_name=pdk_name,
            options=options,
            priority=priority,
            deadline_min=deadline_min,
            est_minutes=est_minutes,
        )
        self._jobs.append(job)
        return job

    def jobs(self) -> list[CampaignJob]:
        """All submitted jobs, in submission order."""
        return list(self._jobs)

    def pending(self) -> list[CampaignJob]:
        return [j for j in self._jobs if j.status == "pending"]

    def tenants(self) -> list[str]:
        """Distinct tenants, in first-submission order."""
        seen: dict[str, None] = {}
        for job in self._jobs:
            seen.setdefault(job.tenant, None)
        return list(seen)

    def __len__(self) -> int:
        return len(self._jobs)
