"""Campaign reporting: throughput, cache economics, queue latency.

One :class:`CampaignReport` per campaign run, in two halves:

* **deterministic** — dispatch order, cache hit/miss counts, the
  simulated-schedule latency numbers (p95 queue wait, makespan,
  deadline misses, per-tenant fairness).  ``render()`` prints exactly
  this half, so CI can diff two seeded runs byte-for-byte;
* **wall-clock** — elapsed seconds and jobs/second throughput, the
  numbers the BENCH trajectory tracks.  These live only in
  :meth:`as_dict` / :meth:`to_json`.

Everything is also pushed through the :mod:`repro.obs` metrics
registry (``campaign.*`` counters, the queue-wait histogram, the
throughput gauge), so a campaign shows up in the same observability
plane as individual flows and the cloud simulator.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..obs.metrics import MetricsRegistry
from .cache import ResultCache
from .queue import CampaignJob
from .sched import SimSchedule

#: Simulated queue-wait histogram bucket bounds (minutes).
_WAIT_BUCKETS = (0.5, 1, 2, 5, 10, 20, 60, 120, 480, 2400)


@dataclass
class CampaignReport:
    """Aggregate outcome of one campaign run."""

    scheduler: str
    workers: int
    seed: int
    jobs: int
    completed: int
    failed: int
    unique_designs: int
    cache_hits: int
    cache_misses: int
    sim: SimSchedule
    #: Wall-clock half (excluded from the deterministic render).
    elapsed_s: float = 0.0
    throughput_jobs_per_s: float = 0.0
    tenants: list[str] = field(default_factory=list)

    @property
    def hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "scheduler": self.scheduler,
            "workers": self.workers,
            "seed": self.seed,
            "jobs": self.jobs,
            "completed": self.completed,
            "failed": self.failed,
            "unique_designs": self.unique_designs,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": round(self.hit_rate, 4),
            "tenants": self.tenants,
            "sim": self.sim.as_dict(),
            "elapsed_s": round(self.elapsed_s, 3),
            "throughput_jobs_per_s": round(self.throughput_jobs_per_s, 2),
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    def render(self) -> str:
        """The deterministic summary block (no wall-clock numbers)."""
        lines = [
            f"campaign: {self.jobs} job(s), {len(self.tenants)} tenant(s), "
            f"scheduler={self.scheduler} workers={self.workers} "
            f"seed={self.seed}",
            f"results: completed={self.completed} failed={self.failed} "
            f"unique={self.unique_designs}",
            f"cache: hits={self.cache_hits} misses={self.cache_misses} "
            f"hit_rate={self.hit_rate:.4f}",
            f"latency(sim): p95_wait_min={self.sim.p95_wait_min:.3f} "
            f"mean_wait_min={self.sim.mean_wait_min:.3f} "
            f"makespan_min={self.sim.makespan_min:.3f} "
            f"deadline_misses={self.sim.deadline_misses}",
        ]
        for tenant in self.tenants:
            row = self.sim.per_tenant.get(tenant)
            if row is None:
                continue
            lines.append(
                f"tenant {tenant}: jobs={row['jobs']} "
                f"service_min={row['service_min']:.3f} "
                f"mean_wait_min={row['mean_wait_min']:.3f} "
                f"max_wait_min={row['max_wait_min']:.3f}"
            )
        return "\n".join(lines)


def build_report(jobs: list[CampaignJob], sim: SimSchedule,
                 cache: ResultCache, scheduler: str, workers: int, seed: int,
                 elapsed_s: float, metrics: MetricsRegistry) -> CampaignReport:
    """Assemble the report and emit it through the metrics registry."""
    completed = sum(1 for j in jobs if j.status == "done")
    failed = sum(1 for j in jobs if j.status == "failed")
    hits = sum(1 for j in jobs if j.cache_hit)
    misses = len(jobs) - hits
    unique = len({j.key for j in jobs if j.key is not None})
    tenants: dict[str, None] = {}
    for job in jobs:
        tenants.setdefault(job.tenant, None)

    wait_hist = metrics.histogram(
        "campaign.queue_wait_min", buckets=_WAIT_BUCKETS
    )
    for job in jobs:
        wait_hist.observe(job.sim_wait_min)
    throughput = len(jobs) / elapsed_s if elapsed_s > 0 else 0.0
    metrics.gauge("campaign.throughput_jobs_per_s").set(round(throughput, 2))
    metrics.gauge("campaign.cache_hit_rate").set(
        round(hits / len(jobs), 4) if jobs else 0.0
    )
    metrics.counter("campaign.deadline_misses").inc(sim.deadline_misses)
    metrics.counter("campaign.runs").inc()

    return CampaignReport(
        scheduler=scheduler,
        workers=workers,
        seed=seed,
        jobs=len(jobs),
        completed=completed,
        failed=failed,
        unique_designs=unique,
        cache_hits=hits,
        cache_misses=misses,
        sim=sim,
        elapsed_s=elapsed_s,
        throughput_jobs_per_s=throughput,
        tenants=list(tenants),
    )
