"""repro.campaign — the distributed multi-design campaign engine.

The paper's Recommendation 7 asks for centralized cloud execution of
university design flows; this package is the scheduler-and-cache layer
that turns the single-flow :class:`~repro.core.hub.EnablementHub` into
a multi-tenant campaign service:

* :mod:`~repro.campaign.queue` — :class:`CampaignJob` submissions with
  tenant, priority, deadline and an estimated service time;
* :mod:`~repro.campaign.sched` — :class:`FairShareScheduler`
  (fair-share across tenants, EDF tie-breaks, deterministic under a
  seed), the :class:`FifoScheduler` baseline, and the simulated-minutes
  schedule evaluator;
* :mod:`~repro.campaign.cache` — the global content-hash result cache
  (memory + directory backends, LRU-bounded) built on the *same*
  :func:`~repro.resil.cachekey.flow_cache_key` the checkpointer uses;
* :mod:`~repro.campaign.executor` — serial or process-pool execution
  with in-flight dedup of identical submissions;
* :mod:`~repro.campaign.report` — throughput, cache hit rate and p95
  queue latency through the :mod:`repro.obs` metrics registry;
* :mod:`~repro.campaign.engine` — :class:`Campaign`, the composition.

This package imports :mod:`repro.core` submodules (flow, options), so
:mod:`repro.core` must only import it lazily (the hub does).
"""

from .cache import (
    DirectoryResultCache,
    MemoryResultCache,
    ResultCache,
    result_cache_key,
    result_signature,
)
from .engine import Campaign, CampaignError
from .executor import CampaignExecutor
from .queue import CampaignJob, CampaignQueue, estimate_flow_minutes
from .report import CampaignReport, build_report
from .sched import (
    FairShareScheduler,
    FifoScheduler,
    Scheduler,
    SimSchedule,
    evaluate_schedule,
    nearest_rank_p95,
)

__all__ = [
    "Campaign",
    "CampaignError",
    "CampaignExecutor",
    "CampaignJob",
    "CampaignQueue",
    "CampaignReport",
    "DirectoryResultCache",
    "FairShareScheduler",
    "FifoScheduler",
    "MemoryResultCache",
    "ResultCache",
    "Scheduler",
    "SimSchedule",
    "build_report",
    "estimate_flow_minutes",
    "evaluate_schedule",
    "nearest_rank_p95",
    "result_cache_key",
    "result_signature",
]
