"""Campaign execution: serial in-process or a ProcessPoolExecutor.

The executor consumes the scheduler's dispatch order and settles every
job against the result cache:

* a key already in the cache is a **hit** — the job gets a private copy
  of the memoized :class:`~repro.core.flow.FlowResult`;
* a key already *in flight* (an identical design running right now in
  the pool) makes the job a **follower**: it waits for that execution
  and then reads the cache, so duplicate submissions never run twice
  even when they arrive faster than flows finish;
* everything else is a **miss** and runs :func:`~repro.core.flow.run_flow`
  — in-process when ``workers <= 1`` (the test-friendly serial mode),
  else on the process pool.

Accounting is mode-invariant by construction: a follower only counts
its cache hit after the owning execution completes, and a follower of a
*failed* execution is promoted to run (and count a miss) itself —
exactly the sequence the serial loop produces.  ``FlowOptions`` is
threaded through to ``run_flow`` unchanged; note the process-pool
boundary for its ``checkpoints`` store (DESIGN.md "Campaign
architecture"): an in-memory store pickled into a worker cannot
propagate writes back, a directory store works across processes.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

from ..core.flow import run_flow
from ..obs.metrics import MetricsRegistry, get_metrics
from ..pdk.pdks import get_pdk
from .cache import ResultCache
from .queue import CampaignJob

#: Execution-latency histogram bucket bounds (wall seconds).
_EXEC_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0)


def _run_one(payload):
    """Pool worker: run one flow and report its wall time.

    Top-level (picklable) so it works under any multiprocessing start
    method; the PDK travels by name and is resolved from the worker's
    own registry.
    """
    module, pdk_name, options = payload
    start = time.perf_counter()
    result = run_flow(module, get_pdk(pdk_name), options)
    return result, time.perf_counter() - start


class CampaignExecutor:
    """Runs a dispatch order against a result cache.

    ``workers <= 1`` executes serially in-process (deterministic,
    debuggable, no pickling); ``workers >= 2`` fans misses out to a
    ``ProcessPoolExecutor`` of that size.
    """

    def __init__(self, workers: int = 0,
                 metrics: MetricsRegistry | None = None):
        if workers < 0:
            raise ValueError("workers must be non-negative")
        self.workers = workers
        self.metrics = metrics if metrics is not None else get_metrics()

    @property
    def serial(self) -> bool:
        return self.workers <= 1

    def run(self, ordered: list[CampaignJob], cache: ResultCache) -> float:
        """Execute every job; returns elapsed wall seconds."""
        start = time.perf_counter()
        if self.serial:
            self._run_serial(ordered, cache)
        else:
            self._run_pool(ordered, cache)
        elapsed = time.perf_counter() - start
        for job in ordered:
            self.metrics.counter("campaign.jobs").inc()
            if job.status == "failed":
                self.metrics.counter("campaign.failures").inc()
            if job.cache_hit:
                self.metrics.counter("campaign.cache.hits").inc()
            else:
                self.metrics.counter("campaign.cache.misses").inc()
        return elapsed

    # -- shared settle helpers ----------------------------------------------

    def _settle_hit(self, job: CampaignJob, result) -> None:
        job.status = "done"
        job.cache_hit = True
        job.result = result

    def _settle_run(self, job: CampaignJob, cache: ResultCache,
                    result, exec_s: float) -> None:
        cache.put(job.key, result)
        job.status = "done"
        job.result = result
        self.metrics.histogram(
            "campaign.exec_seconds", buckets=_EXEC_BUCKETS
        ).observe(exec_s)

    def _settle_failure(self, job: CampaignJob, exc: BaseException) -> None:
        job.status = "failed"
        job.error = str(exc)

    # -- serial mode ---------------------------------------------------------

    def _run_serial(self, ordered, cache):
        for job in ordered:
            cached = cache.get(job.key)
            if cached is not None:
                self._settle_hit(job, cached)
                continue
            try:
                result, exec_s = _run_one(
                    (job.module, job.pdk_name, job.options)
                )
            except Exception as exc:  # FlowError, HdlError, ...
                self._settle_failure(job, exc)
                continue
            self._settle_run(job, cache, result, exec_s)

    # -- process-pool mode ----------------------------------------------------

    def _run_pool(self, ordered, cache):
        inflight: dict[str, object] = {}   # key -> Future
        owner_of: dict[object, CampaignJob] = {}
        followers: dict[str, deque[CampaignJob]] = {}

        with ProcessPoolExecutor(max_workers=self.workers) as pool:

            def submit_owner(job: CampaignJob) -> None:
                future = pool.submit(
                    _run_one, (job.module, job.pdk_name, job.options)
                )
                inflight[job.key] = future
                owner_of[future] = job

            for job in ordered:
                if job.key in inflight:
                    followers.setdefault(job.key, deque()).append(job)
                    continue
                cached = cache.get(job.key)
                if cached is not None:
                    self._settle_hit(job, cached)
                else:
                    submit_owner(job)

            while inflight:
                done, _ = wait(
                    set(inflight.values()), return_when=FIRST_COMPLETED
                )
                for future in done:
                    owner = owner_of.pop(future)
                    key = owner.key
                    del inflight[key]
                    waiting = followers.pop(key, deque())
                    try:
                        result, exec_s = future.result()
                    except Exception as exc:
                        self._settle_failure(owner, exc)
                        # A deterministic flow fails again if re-run, but
                        # the serial loop *does* re-run each duplicate (a
                        # failure is never cached) — promote the next
                        # follower so both modes count the same misses.
                        if waiting:
                            successor = waiting.popleft()
                            cached = cache.get(successor.key)
                            if cached is not None:
                                self._settle_hit(successor, cached)
                                for follower in waiting:
                                    self._settle_hit(
                                        follower, cache.get(key)
                                    )
                            else:
                                submit_owner(successor)
                                if waiting:
                                    followers[key] = waiting
                        continue
                    self._settle_run(owner, cache, result, exec_s)
                    for follower in waiting:
                        self._settle_hit(follower, cache.get(key))
