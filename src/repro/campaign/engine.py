"""The campaign engine: queue + scheduler + cache + executor, composed.

:class:`Campaign` is the multi-tenant front end the ROADMAP's first
open item asks for — the layer that turns the hub's one-flow-at-a-time
``run_design`` into a classroom-scale service.  Usage::

    campaign = Campaign(workers=4, seed=7)
    for student, module in submissions:
        campaign.submit(student, module, "edu130")
    report = campaign.run()
    print(report.render())

``run`` is a pure function of the submissions, the seed and the cache
contents: the scheduler's dispatch order, every cache hit/miss and the
simulated latency numbers reproduce exactly, while wall-clock
throughput reflects the machine it ran on.
"""

from __future__ import annotations

from ..obs.metrics import MetricsRegistry, get_metrics
from ..obs.trace import Tracer, get_tracer
from .cache import MemoryResultCache, ResultCache, result_cache_key
from .executor import CampaignExecutor
from .queue import CampaignJob, CampaignQueue
from .report import CampaignReport, build_report
from .sched import FairShareScheduler, Scheduler, evaluate_schedule


class CampaignError(Exception):
    """Raised on invalid campaign configuration or usage."""


class Campaign:
    """One schedulable batch of multi-tenant flow jobs.

    ``workers=0`` (or 1) executes serially in-process; higher values
    fan cache misses out to a process pool of that size.  ``cache``
    defaults to a fresh in-memory store — pass a shared
    :class:`~repro.campaign.cache.DirectoryResultCache` (or the hub's
    store) to memoize across campaigns.  ``cache_hit_minutes`` is the
    simulated service time a cache hit is billed in the latency model
    (serving a pickled result is not free, but it is not a flow run).
    """

    def __init__(self, scheduler: Scheduler | None = None,
                 cache: ResultCache | None = None, workers: int = 0,
                 seed: int = 1, cache_hit_minutes: float = 0.05,
                 tracer: Tracer | None = None,
                 metrics: MetricsRegistry | None = None):
        if cache_hit_minutes < 0:
            raise CampaignError("cache_hit_minutes must be non-negative")
        self.scheduler = (
            scheduler if scheduler is not None else FairShareScheduler()
        )
        self.cache = cache if cache is not None else MemoryResultCache()
        self.workers = workers
        self.seed = seed
        self.cache_hit_minutes = cache_hit_minutes
        self.tracer = tracer if tracer is not None else get_tracer()
        self.metrics = metrics if metrics is not None else get_metrics()
        self.queue = CampaignQueue()

    def submit(self, tenant: str, module, pdk_name: str = "edu130",
               options=None, priority: int = 0,
               deadline_min: float | None = None,
               est_minutes: float | None = None) -> CampaignJob:
        """Enqueue one design for this campaign."""
        return self.queue.submit(
            tenant, module, pdk_name, options=options, priority=priority,
            deadline_min=deadline_min, est_minutes=est_minutes,
        )

    def run(self) -> CampaignReport:
        """Schedule, execute and report every pending job."""
        pending = self.queue.pending()
        if not pending:
            raise CampaignError("campaign has no pending jobs")
        for job in pending:
            job.key = result_cache_key(job.module, job.pdk_name, job.options)

        with self.tracer.span(
            "campaign.run", jobs=len(pending),
            scheduler=self.scheduler.name, workers=self.workers,
            seed=self.seed,
        ) as span:
            ordered = self.scheduler.order(pending, seed=self.seed)
            for position, job in enumerate(ordered):
                job.order = position
            executor = CampaignExecutor(self.workers, metrics=self.metrics)
            elapsed = executor.run(ordered, self.cache)
            # The latency model replays the dispatch order with the
            # *observed* hit pattern, so memoization shows up in the
            # simulated p95 exactly where it saved a flow run.
            sim = evaluate_schedule(
                ordered, max(1, self.workers),
                cache_hit_minutes=self.cache_hit_minutes,
            )
            span.set(
                cache_hits=sum(1 for j in ordered if j.cache_hit),
                failed=sum(1 for j in ordered if j.status == "failed"),
            )
        return build_report(
            ordered, sim, self.cache, self.scheduler.name, self.workers,
            self.seed, elapsed, self.metrics,
        )
