"""Campaign scheduling policies: fair-share across tenants, EDF within.

The scheduler turns the pending set into a *dispatch order* — the
sequence the executor consumes.  Two policies ship:

* :class:`FifoScheduler` — global submission order, the baseline every
  fairness and deadline claim is measured against;
* :class:`FairShareScheduler` — repeatedly grants the next slot to the
  tenant with the least scheduled service time so far (weighted
  fair-share), breaking ties by the earliest deadline at the head of
  each tenant's queue and finally by a seeded per-tenant jitter, so the
  order is deterministic under a seed.  Within one tenant, jobs run
  earliest-deadline-first (EDF), then by priority, then submission
  order.

:func:`evaluate_schedule` replays a dispatch order through a
list-scheduling simulation over *simulated minutes* (the same clock the
cloud platform uses), yielding per-job start/finish times, queue waits
and deadline misses — the deterministic latency model the report and CI
diff against, independent of wall-clock noise.
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass, field

from .queue import CampaignJob

_NO_DEADLINE = float("inf")


def _edf_key(job: CampaignJob) -> tuple:
    deadline = job.deadline_min if job.deadline_min is not None else _NO_DEADLINE
    return (deadline, job.priority, job.job_id)


class Scheduler:
    """Order the pending jobs of one campaign into a dispatch sequence."""

    name = "base"

    def order(self, jobs: list[CampaignJob], seed: int = 0) -> list[CampaignJob]:
        raise NotImplementedError

    def __repr__(self):
        return f"{type(self).__name__}()"


class FifoScheduler(Scheduler):
    """Global first-come-first-served: submission order, nothing else."""

    name = "fifo"

    def order(self, jobs, seed=0):
        return sorted(jobs, key=lambda j: j.job_id)


class FairShareScheduler(Scheduler):
    """Fair-share across tenants with deadline-aware tie-breaking.

    Each grant goes to the tenant whose scheduled service time divided
    by its weight is smallest, so a tenant submitting 300 jobs cannot
    starve one submitting 3 — the small tenant's queue drains at the
    same *share* rate.  ``weights`` raises a tenant's share (weight 2.0
    receives twice the service time of weight 1.0).
    """

    name = "fair_share"

    def __init__(self, weights: dict[str, float] | None = None):
        self.weights = dict(weights or {})
        for tenant, weight in self.weights.items():
            if weight <= 0:
                raise ValueError(f"weight for {tenant!r} must be positive")

    def order(self, jobs, seed=0):
        rng = random.Random(seed)
        queues: dict[str, list[CampaignJob]] = {}
        for job in sorted(jobs, key=lambda j: j.job_id):
            queues.setdefault(job.tenant, []).append(job)
        for tenant_jobs in queues.values():
            tenant_jobs.sort(key=_edf_key)
        # Seeded jitter is the *last* tie-break: it only matters when two
        # tenants have identical consumed share and identical head
        # deadlines, and it makes that coin-flip reproducible.
        jitter = {tenant: rng.random() for tenant in sorted(queues)}
        consumed = {tenant: 0.0 for tenant in queues}
        heads = {tenant: 0 for tenant in queues}
        ordered: list[CampaignJob] = []

        def grant_key(tenant: str) -> tuple:
            head = queues[tenant][heads[tenant]]
            deadline = (
                head.deadline_min if head.deadline_min is not None
                else _NO_DEADLINE
            )
            share = consumed[tenant] / self.weights.get(tenant, 1.0)
            return (share, deadline, jitter[tenant], tenant)

        live = set(queues)
        while live:
            tenant = min(live, key=grant_key)
            job = queues[tenant][heads[tenant]]
            ordered.append(job)
            consumed[tenant] += job.est_minutes
            heads[tenant] += 1
            if heads[tenant] == len(queues[tenant]):
                live.discard(tenant)
        return ordered


@dataclass
class SimSchedule:
    """Deterministic replay of a dispatch order over simulated minutes."""

    workers: int
    makespan_min: float
    mean_wait_min: float
    p95_wait_min: float
    deadline_misses: int
    #: Per-tenant fairness view: jobs, scheduled service minutes, waits.
    per_tenant: dict[str, dict[str, float]] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "workers": self.workers,
            "makespan_min": self.makespan_min,
            "mean_wait_min": self.mean_wait_min,
            "p95_wait_min": self.p95_wait_min,
            "deadline_misses": self.deadline_misses,
            "per_tenant": self.per_tenant,
        }


def nearest_rank_p95(values: list[float]) -> float:
    """The ceil(0.95 n)-th smallest value (0.0 for an empty list)."""
    if not values:
        return 0.0
    ranked = sorted(values)
    rank = math.ceil(0.95 * len(ranked))
    return ranked[min(len(ranked) - 1, rank - 1)]


def evaluate_schedule(ordered: list[CampaignJob], workers: int,
                      cache_hit_minutes: float | None = None) -> SimSchedule:
    """List-schedule ``ordered`` onto ``workers`` identical servers.

    Every job is present at t=0 (a classroom submits a burst, not a
    trickle); the next job in the dispatch order starts on the earliest
    free worker.  A job's service time is its ``est_minutes`` — unless
    ``cache_hit_minutes`` is given and the job was a cache hit, in which
    case the hit cost applies, so the evaluated latency reflects what
    memoization actually saved.  Writes ``sim_start_min`` /
    ``sim_finish_min`` onto each job and returns the aggregate view.
    """
    if workers < 1:
        raise ValueError("need at least one worker")
    free_at = [0.0] * workers
    heapq.heapify(free_at)
    for job in ordered:
        minutes = job.est_minutes
        if cache_hit_minutes is not None and job.cache_hit:
            minutes = cache_hit_minutes
        start = heapq.heappop(free_at)
        job.sim_start_min = round(start, 6)
        job.sim_finish_min = round(start + minutes, 6)
        heapq.heappush(free_at, start + minutes)

    waits = [job.sim_wait_min for job in ordered]
    makespan = max((j.sim_finish_min for j in ordered), default=0.0)
    per_tenant: dict[str, dict[str, float]] = {}
    for job in ordered:
        row = per_tenant.setdefault(
            job.tenant, {"jobs": 0, "service_min": 0.0, "waits": []}
        )
        row["jobs"] += 1
        row["service_min"] += job.sim_finish_min - job.sim_start_min
        row["waits"].append(job.sim_wait_min)
    for row in per_tenant.values():
        row_waits = row.pop("waits")
        row["mean_wait_min"] = round(sum(row_waits) / len(row_waits), 3)
        row["max_wait_min"] = round(max(row_waits), 3)
        row["service_min"] = round(row["service_min"], 3)
    return SimSchedule(
        workers=workers,
        makespan_min=round(makespan, 3),
        mean_wait_min=round(sum(waits) / len(waits), 3) if waits else 0.0,
        p95_wait_min=round(nearest_rank_p95(waits), 3),
        deadline_misses=sum(1 for j in ordered if j.missed_deadline),
        per_tenant=per_tenant,
    )
