"""Global content-hash result cache: memoized whole-flow results.

This generalizes :mod:`repro.resil.checkpoint` from per-run stage
artifacts into a cross-tenant, cross-campaign memoization store: the
key (:func:`result_cache_key`) is the *same*
:func:`~repro.resil.cachekey.flow_cache_key` the checkpointer uses —
one implementation, no drift — extended with every remaining
result-affecting knob on :class:`~repro.core.options.FlowOptions`
(clock period, DRC/lint strictness, formal LEC, …).  At classroom
scale most submissions are byte-identical (the same assignment,
the same starter code), so a campaign's second copy of a design costs
one hash and one unpickle instead of a flow run.

Both backends store pickled :class:`~repro.core.flow.FlowResult` blobs
and evict least-recently-used entries once ``max_entries`` /
``max_bytes`` budgets are exceeded.  ``FlowResult`` is read-only
downstream of ``run_flow``, so the in-memory backend hands every hit
the *same* deserialized instance — a hit costs one dict lookup, not an
unpickle of the whole artifact graph.  Pass ``private_copies=True`` to
deserialize a fresh copy per ``get`` instead (defensive isolation when
callers might mutate results); the directory backend re-reads disk on
every ``get`` and therefore always returns private copies.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from collections import OrderedDict

from ..core.options import FlowOptions
from ..resil.cachekey import canonical, flow_cache_key

#: FlowOptions knobs beyond (preset, seed) that change the FlowResult.
#: ``checkpoints`` / ``inject`` / ``resume`` are deliberately absent:
#: they change how a run executes, never what it produces.
RESULT_KEY_FIELDS = (
    "clock_period_ps",
    "frequency_mhz",
    "strict_drc",
    "lint_waivers",
    "strict_lint",
    "formal_lec",
    "continue_on_error",
)


def result_cache_key(module, pdk_name: str, options: FlowOptions) -> str:
    """Content hash of one memoizable flow request.

    Base payload identical to the checkpoint key (RTL, PDK, preset,
    seed); the remaining result-affecting option knobs fold in through
    the shared key function's ``extra`` channel.
    """
    extra = {name: getattr(options, name) for name in RESULT_KEY_FIELDS}
    return flow_cache_key(
        module, pdk_name, options.preset, options.seed, extra=extra
    )


def result_signature(result) -> str:
    """Deterministic digest of what a flow run *produced*.

    Covers the artifacts (GDS bytes, PPA numbers, step verdicts, lint
    and failure counts) and excludes everything wall-clock (runtimes,
    spans), so serial and process-pool executions of the same request
    must produce the same signature — the bench's divergence gate.
    """
    payload = {
        "design": result.design_name,
        "pdk": result.pdk_name,
        "preset": canonical(result.preset),
        "clock_period_ps": result.clock_period_ps,
        "steps": [[s.step.value, s.ok] for s in result.steps],
        "gds": (
            hashlib.sha256(result.gds_bytes).hexdigest()
            if result.gds_bytes is not None else None
        ),
        "ppa": result.ppa.as_row() if result.ppa is not None else None,
        "lint": (
            [len(result.lint.errors), len(result.lint.warnings)]
            if result.lint is not None else None
        ),
        "failures": [[f.stage, f.kind] for f in result.failures],
    }
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:24]


class ResultCache:
    """Pickled FlowResult blobs keyed by content hash; LRU-bounded."""

    def __init__(self, max_entries: int | None = None,
                 max_bytes: int | None = None,
                 private_copies: bool = False):
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be at least 1")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.private_copies = private_copies
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- backend contract ----------------------------------------------------

    def _read(self, key: str) -> bytes | None:
        raise NotImplementedError

    def _write(self, key: str, data: bytes) -> None:
        raise NotImplementedError

    def keys(self) -> list[str]:
        """Stored keys, least-recently-used first."""
        raise NotImplementedError

    def total_bytes(self) -> int:
        raise NotImplementedError

    # -- public API ----------------------------------------------------------

    def get(self, key: str):
        """The cached FlowResult, or ``None`` on a miss.

        The result is to be treated as read-only unless the backend
        guarantees private copies (``private_copies=True``, or the
        directory backend which re-reads disk every time).
        """
        result = self._load(key)
        if result is None:
            self.misses += 1
            return None
        self.hits += 1
        return result

    def _load(self, key: str):
        data = self._read(key)
        if data is None:
            return None
        return pickle.loads(data)

    def put(self, key: str, result) -> None:
        self._write(key, pickle.dumps(result, protocol=4))

    def has(self, key: str) -> bool:
        """Presence probe; does not count as a hit/miss or touch recency."""
        return key in self.keys()

    def __len__(self) -> int:
        return len(self.keys())

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class MemoryResultCache(ResultCache):
    """In-process store: an OrderedDict in recency order.

    ``put`` pickles once (size accounting, and to decouple the cache
    from later mutations by the producer) and keeps one deserialized
    instance that every subsequent hit shares.
    """

    def __init__(self, max_entries: int | None = None,
                 max_bytes: int | None = None,
                 private_copies: bool = False):
        super().__init__(max_entries, max_bytes, private_copies)
        self._blobs: OrderedDict[str, bytes] = OrderedDict()
        self._objects: dict[str, object] = {}

    def _load(self, key):
        data = self._blobs.get(key)
        if data is None:
            return None
        self._blobs.move_to_end(key)
        if self.private_copies:
            return pickle.loads(data)
        return self._objects[key]

    def _write(self, key, data):
        self._blobs[key] = data
        self._blobs.move_to_end(key)
        self._objects[key] = pickle.loads(data)
        while len(self._blobs) > 1 and (
            (self.max_entries is not None
             and len(self._blobs) > self.max_entries)
            or (self.max_bytes is not None
                and sum(len(b) for b in self._blobs.values()) > self.max_bytes)
        ):
            evicted, _ = self._blobs.popitem(last=False)
            self._objects.pop(evicted, None)
            self.evictions += 1

    def keys(self):
        return list(self._blobs)

    def total_bytes(self):
        return sum(len(b) for b in self._blobs.values())


class DirectoryResultCache(ResultCache):
    """Filesystem store: ``root/<key>.res`` files, shared across
    processes and campaigns (the semester-long cache).  Every ``get``
    re-reads disk, so hits are always private copies regardless of
    ``private_copies``.

    Recency follows the same convention as
    :class:`~repro.resil.checkpoint.DirectoryCheckpointStore`: an
    in-process sequence number per path, with file mtime ordering
    entries inherited from earlier processes below anything touched in
    this one.
    """

    def __init__(self, root: str, max_entries: int | None = None,
                 max_bytes: int | None = None):
        super().__init__(max_entries, max_bytes)
        self.root = root
        self._seq = 0
        self._recency: dict[str, int] = {}

    def _path(self, key: str) -> str:
        return os.path.join(self.root, f"{key}.res")

    def _touch(self, key: str) -> None:
        self._seq += 1
        self._recency[key] = self._seq

    def _entries(self) -> list[tuple[str, int]]:
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        found = []
        for name in names:
            if not name.endswith(".res"):
                continue
            path = os.path.join(self.root, name)
            try:
                found.append((name[: -len(".res")], os.path.getsize(path)))
            except OSError:
                continue
        return found

    def _coldness(self, key: str):
        if key in self._recency:
            return (1, self._recency[key])
        try:
            return (0, os.path.getmtime(self._path(key)))
        except OSError:
            return (0, 0.0)

    def _read(self, key):
        try:
            with open(self._path(key), "rb") as handle:
                data = handle.read()
        except OSError:
            return None
        self._touch(key)
        return data

    def _write(self, key, data):
        os.makedirs(self.root, exist_ok=True)
        with open(self._path(key), "wb") as handle:
            handle.write(data)
        self._touch(key)
        entries = sorted(self._entries(), key=lambda e: self._coldness(e[0]))
        total = sum(size for _, size in entries)
        count = len(entries)
        for entry_key, size in entries:
            over = (
                (self.max_entries is not None and count > self.max_entries)
                or (self.max_bytes is not None and total > self.max_bytes)
            )
            if not over:
                break
            if entry_key == key:
                continue
            try:
                os.remove(self._path(entry_key))
            except OSError:
                continue
            self._recency.pop(entry_key, None)
            self.evictions += 1
            total -= size
            count -= 1

    def keys(self):
        return [k for k, _ in
                sorted(self._entries(), key=lambda e: self._coldness(e[0]))]

    def total_bytes(self):
        return sum(size for _, size in self._entries())
