"""LVS-lite: layout-vs-schematic consistency checking.

Full LVS extracts devices from polygons; at standard-cell abstraction the
equivalent signoff question is simpler but just as load-bearing: *does
the GDS actually contain the netlist?*  This check compares the chip-top
structure against the mapped netlist:

* every netlist cell has exactly one SREF placement (and vice versa);
* every placed SREF references a master structure that exists;
* every top-level port has a pin label, and no label is orphaned;
* the die outline exists.

It would have caught the classic student accident — streaming out a
stale layout after an ECO — which is why it is part of the signoff
checklist story.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..pnr.physical import PhysicalDesign
from .gds import GdsLibrary


@dataclass
class LvsReport:
    mismatches: list[str] = field(default_factory=list)
    cells_checked: int = 0
    pins_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        status = "CLEAN" if self.clean else f"{len(self.mismatches)} mismatches"
        return (
            f"LVS {status} ({self.cells_checked} cells, "
            f"{self.pins_checked} pins)"
        )


def check_lvs(library: GdsLibrary, design: PhysicalDesign) -> LvsReport:
    """Compare the GDS against the physical design's netlist view."""
    report = LvsReport()
    top_name = design.mapped.name
    try:
        top = library.struct(top_name)
    except KeyError:
        report.mismatches.append(f"top structure {top_name!r} missing")
        return report

    # Cell placements: netlist cell-kind census vs SREF census.
    netlist_census = Counter(
        inst.cell.name for inst in design.mapped.cells
    )
    layout_census = Counter(ref.struct_name for ref in top.srefs)
    report.cells_checked = sum(netlist_census.values())
    for master, expected in sorted(netlist_census.items()):
        placed = layout_census.get(master, 0)
        if placed != expected:
            report.mismatches.append(
                f"cell {master}: netlist has {expected}, layout has {placed}"
            )
    for master in sorted(set(layout_census) - set(netlist_census)):
        report.mismatches.append(
            f"layout places unknown cell {master} "
            f"({layout_census[master]}x)"
        )

    # Master structures must exist for every placement.
    known_structs = {struct.name for struct in library.structs}
    for master in sorted(set(layout_census)):
        if master not in known_structs:
            report.mismatches.append(
                f"SREF references missing structure {master!r}"
            )

    # Pin labels vs floorplan IO pins.
    expected_pins = {pin.name for pin in design.floorplan.io_pins}
    label_texts = {text.text for text in top.texts}
    report.pins_checked = len(expected_pins)
    for pin in sorted(expected_pins - label_texts):
        report.mismatches.append(f"port {pin} has no pin label")
    cell_names = {inst.cell.name for inst in design.mapped.cells}
    for label in sorted(label_texts - expected_pins - cell_names):
        report.mismatches.append(f"orphan label {label!r} in layout")

    # Die outline present on the outline layer.
    outline_layer = design.pdk.layers.outline.gds_layer
    if not any(b.layer == outline_layer for b in top.boundaries):
        report.mismatches.append("die outline missing")
    return report
