"""LVS: layout-vs-schematic checking, census and connectivity grades.

Two grades share one report type:

* **Census** (:func:`census_check` / the :func:`check_lvs` wrapper) is
  the fast pre-check: *does the GDS contain the netlist's cells, pin
  labels and outline?*  It counts; it does not trace wires.  It would
  have caught the classic student accident — streaming out a stale
  layout after an ECO.
* **Connectivity** (LVS v2, :func:`repro.extract.run_lvs`) re-extracts
  the netlist from mask geometry alone and compares it net by net,
  then hands the extracted netlist to the formal LEC miter.  It embeds
  the census pass as its first step, with struct names routed through
  the geometric identification map so renamed masters do not
  false-fail.

:class:`LvsReport` round-trips through JSON so flow artifacts and CI
gates can persist it.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable

from ..pnr.physical import PhysicalDesign
from ..synth.mapped import MappedNetlist
from .gds import GdsLibrary


@dataclass
class LvsReport:
    """Unified result for both LVS grades.

    ``mode`` is ``"census"`` or ``"connectivity"``; the connectivity
    fields (``nets_checked``, ``cells_matched``, ``lec_equivalent``)
    stay at their defaults for census-only runs.  ``lec_equivalent`` is
    ``None`` when the LEC step did not run.
    """

    mismatches: list[str] = field(default_factory=list)
    cells_checked: int = 0
    pins_checked: int = 0
    nets_checked: int = 0
    cells_matched: int = 0
    mode: str = "census"
    source: str = ""
    lec_equivalent: bool | None = None

    @property
    def clean(self) -> bool:
        return not self.mismatches and self.lec_equivalent is not False

    def summary(self) -> str:
        status = "CLEAN" if self.clean else f"{len(self.mismatches)} mismatches"
        extra = ""
        if self.mode == "connectivity":
            extra = f", {self.nets_checked} nets"
            if self.lec_equivalent is not None:
                extra += ", LEC " + (
                    "equivalent" if self.lec_equivalent else "NOT equivalent"
                )
        return (
            f"LVS {status} ({self.cells_checked} cells, "
            f"{self.pins_checked} pins{extra})"
        )

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "source": self.source,
            "clean": self.clean,
            "mismatches": list(self.mismatches),
            "cells_checked": self.cells_checked,
            "pins_checked": self.pins_checked,
            "nets_checked": self.nets_checked,
            "cells_matched": self.cells_matched,
            "lec_equivalent": self.lec_equivalent,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LvsReport":
        return cls(
            mismatches=list(payload.get("mismatches", [])),
            cells_checked=payload.get("cells_checked", 0),
            pins_checked=payload.get("pins_checked", 0),
            nets_checked=payload.get("nets_checked", 0),
            cells_matched=payload.get("cells_matched", 0),
            mode=payload.get("mode", "census"),
            source=payload.get("source", ""),
            lec_equivalent=payload.get("lec_equivalent"),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "LvsReport":
        return cls.from_dict(json.loads(text))


def census_check(
    library: GdsLibrary,
    mapped: MappedNetlist,
    top_name: str,
    expected_pins: Iterable[str],
    outline_layer: int,
    rename: dict[str, str] | None = None,
) -> LvsReport:
    """The census grade against any mapped netlist.

    ``rename`` maps layout struct names to library cell names (the
    geometric identification result), so a stream with scrambled struct
    names is censused by what its masters *are*, not what they are
    called.
    """
    rename = rename or {}
    report = LvsReport(source=mapped.name)
    try:
        top = library.struct(top_name)
    except KeyError:
        report.mismatches.append(f"top structure {top_name!r} missing")
        return report

    # Cell placements: netlist cell-kind census vs SREF census.
    netlist_census = Counter(inst.cell.name for inst in mapped.cells)
    layout_census = Counter(
        rename.get(ref.struct_name, ref.struct_name) for ref in top.srefs
    )
    report.cells_checked = sum(netlist_census.values())
    for master, expected in sorted(netlist_census.items()):
        placed = layout_census.get(master, 0)
        if placed != expected:
            report.mismatches.append(
                f"cell {master}: netlist has {expected}, layout has {placed}"
            )
    for master in sorted(set(layout_census) - set(netlist_census)):
        report.mismatches.append(
            f"layout places unknown cell {master} "
            f"({layout_census[master]}x)"
        )

    # Master structures must exist for every placement.
    known_structs = {struct.name for struct in library.structs}
    for master in sorted(
        {ref.struct_name for ref in top.srefs} - known_structs
    ):
        report.mismatches.append(
            f"SREF references missing structure {master!r}"
        )

    # Pin labels vs the expected port bits.
    expected_pins = set(expected_pins)
    label_texts = {text.text for text in top.texts}
    report.pins_checked = len(expected_pins)
    for pin in sorted(expected_pins - label_texts):
        report.mismatches.append(f"port {pin} has no pin label")
    cell_names = {inst.cell.name for inst in mapped.cells}
    for label in sorted(label_texts - expected_pins - cell_names):
        report.mismatches.append(f"orphan label {label!r} in layout")

    # Die outline present on the outline layer.
    if not any(b.layer == outline_layer for b in top.boundaries):
        report.mismatches.append("die outline missing")
    return report


def check_lvs(library: GdsLibrary, design: PhysicalDesign) -> LvsReport:
    """Census check against a physical design (the historical entry
    point, kept for existing callers and as the signoff fallback)."""
    return census_check(
        library,
        design.mapped,
        design.mapped.name,
        {pin.name for pin in design.floorplan.io_pins},
        design.pdk.layers.outline.gds_layer,
    )
