"""Chip layout assembly: physical design → GDSII library.

Builds the final mask database: one abstract structure per standard-cell
variant (outline on ``active``, gate stripe on ``poly``, label), SREF
placements for every cell, merged routing wires on ``met1``/``met2`` with
vias, pin labels, and the die outline.  Nets sharing a routing grid cell
are drawn on distinct tracks at DRC-legal spacing (the router's capacity
is pre-capped by :func:`repro.pnr.route.drc_clean_capacity`).
"""

from __future__ import annotations

from ..pdk.pdks import Pdk
from ..pnr.physical import PhysicalDesign
from .gds import GdsLibrary, GdsSRef, GdsStruct, GdsText, to_db


def _cell_struct(cell_name: str, width: float, height: float, pdk: Pdk) -> GdsStruct:
    """Abstract layout for one standard-cell variant."""
    struct = GdsStruct(name=cell_name)
    active = pdk.layers.by_name("active")
    poly = pdk.layers.by_name("poly")
    f_um = pdk.node.feature_nm / 1000.0
    struct.add_rect_um(active.gds_layer, active.gds_datatype,
                       0.0, 0.0, width, height)
    # A representative poly gate stripe, inset one feature from each edge.
    if width > 4 * f_um:
        x = width / 2.0
        struct.add_rect_um(poly.gds_layer, poly.gds_datatype,
                           x - f_um / 2.0, f_um, x + f_um / 2.0,
                           height - f_um)
    label = pdk.layers.by_name("label")
    struct.texts.append(
        GdsText(label.gds_layer, cell_name, (to_db(width / 2), to_db(height / 2)))
    )
    return struct


def build_chip_gds(design: PhysicalDesign, top_name: str | None = None) -> GdsLibrary:
    """Assemble the full-chip GDSII library for ``design``."""
    pdk = design.pdk
    library = GdsLibrary(name=f"{design.mapped.name}_{pdk.name}")
    top = GdsStruct(name=top_name or design.mapped.name)

    # Cell masters, one per (cell variant, width) actually used.
    masters: dict[str, GdsStruct] = {}
    cell_of = {inst.name: inst.cell for inst in design.mapped.cells}
    for name, placed in design.placement.cells.items():
        cell = cell_of[name]
        key = cell.name
        if key not in masters:
            masters[key] = library.add(
                _cell_struct(key, placed.width, placed.height, pdk)
            )
        top.srefs.append(
            GdsSRef(key, (to_db(placed.x), to_db(placed.y)))
        )

    # Routing: one wire rect per occupied grid-cell step.  Each net gets a
    # deterministic track slot inside every grid cell it crosses, so
    # parallel nets sit ``pitch / tracks`` apart, which the capacity cap
    # guarantees to satisfy width+spacing rules.
    from ..pnr.route import drc_clean_capacity

    met1 = pdk.layers.by_name("met1")
    met2 = pdk.layers.by_name("met2")
    via1 = pdk.layers.by_name("via1")
    pitch = design.routing.grid_pitch_um
    tracks = drc_clean_capacity(pdk.node, pdk.layers)
    cell_tracks: dict[tuple[int, int, int], dict[int, int]] = {}

    def offset_for(cell: tuple[int, int, int], net: int) -> float:
        nets_here = cell_tracks.setdefault(cell, {})
        if net not in nets_here:
            nets_here[net] = len(nets_here)
        slot = nets_here[net] % tracks
        return (slot - (tracks - 1) / 2.0) * (pitch / tracks)

    for net, routed in design.routing.nets.items():
        cells = set(routed.cells)
        for cell in routed.cells:
            col, row, layer = cell
            x = col * pitch
            y = row * pitch
            if layer == 0:
                if (col + 1, row, 0) in cells:
                    yc = y + offset_for(cell, net)
                    half = met1.min_width_um / 2.0
                    top.add_rect_um(
                        met1.gds_layer, met1.gds_datatype,
                        x, yc - half, x + pitch, yc + half,
                    )
                if (col, row, 1) in cells:
                    off_h = offset_for(cell, net)
                    off_v = offset_for((col, row, 1), net)
                    # Vias are drawn at met1 width: it is >= the via rule
                    # and an exact number of database units, so rounding
                    # can never shave the rect below minimum width.
                    half = met1.min_width_um / 2.0
                    top.add_rect_um(
                        via1.gds_layer, via1.gds_datatype,
                        x + off_v - half, y + off_h - half,
                        x + off_v + half, y + off_h + half,
                    )
            else:
                if (col, row + 1, 1) in cells:
                    xc = x + offset_for(cell, net)
                    half = met2.min_width_um / 2.0
                    top.add_rect_um(
                        met2.gds_layer, met2.gds_datatype,
                        xc - half, y, xc + half, y + pitch,
                    )

    # Pin labels and the die outline.
    label = pdk.layers.by_name("label")
    for pin in design.floorplan.io_pins:
        top.texts.append(
            GdsText(label.gds_layer, pin.name, (to_db(pin.x), to_db(pin.y)))
        )
    outline = pdk.layers.outline
    top.add_rect_um(
        outline.gds_layer, outline.gds_datatype,
        0.0, 0.0,
        design.floorplan.die_width, design.floorplan.die_height,
    )

    library.add(top)
    return library
