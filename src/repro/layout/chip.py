"""Chip layout assembly: physical design → GDSII library.

Builds the final mask database: one abstract structure per standard-cell
variant (outline on ``active``, gate stripes on ``poly``, per-pin li
geometry, pin labels), SREF placements for every cell, merged routing
wires on ``met1``/``met2`` with vias, pin labels, and the die outline.
Nets sharing a routing grid cell are drawn on distinct tracks at
DRC-legal spacing (the router's capacity is pre-capped by
:func:`repro.pnr.route.drc_clean_capacity`).

Two mask purposes coexist per layer (see
:data:`repro.pdk.layers.NET_DATATYPE`):

* **drawing** (datatype 0) — the DRC-checked wire picture above;
* **net** (datatype 1) — an electrically exact per-net fabric drawn by
  :func:`repro.layout.fabric.draw_net_fabric`, which netlist extraction
  (:mod:`repro.extract`) reads back without any knowledge of how the
  layout was produced.

Cell masters are self-describing: every pin has a li pad on the net
purpose plus a ``met1``-layer text label, and each cell variant carries
an identifying poly stripe so geometric fingerprinting can tell apart
variants with identical footprints even when struct names are stripped.
"""

from __future__ import annotations

from ..pdk.cells import StandardCell
from ..pdk.layers import NET_DATATYPE
from ..pdk.node import ProcessNode
from ..pdk.pdks import Pdk
from ..pnr.physical import PhysicalDesign
from .gds import GdsBoundary, GdsLibrary, GdsSRef, GdsStruct, GdsText, to_db


def master_footprint(cell: StandardCell, node: ProcessNode) -> tuple[float, float]:
    """(width, height) in um of a cell master — the legalizers' formula.

    Both placers size cells as ``area / row_height`` rounded to whole
    placement sites, so masters built here line up exactly with placed
    instances.
    """
    row_h = node.row_height_um
    site = max(row_h / 10.0, 1e-3)
    width = cell.area_um2 / row_h
    width = max(site, round(width / site) * site)
    return width, row_h


def master_pin_offsets(
    cell: StandardCell, node: ProcessNode
) -> dict[str, tuple[int, int]]:
    """Pin-pad centre offsets within the master, in database units (nm).

    Pins (inputs then output) are spread evenly across the cell width at
    mid row height.
    """
    width, height = master_footprint(cell, node)
    pins = list(cell.inputs) + ([cell.output] if cell.output else [])
    width_nm = to_db(width)
    y_nm = to_db(height) // 2
    count = len(pins)
    return {
        pin: (round(width_nm * (i + 1) / (count + 1)), y_nm)
        for i, pin in enumerate(pins)
    }


#: Half-size (nm) of the square li pin pads inside cell masters.
PIN_PAD_HALF_NM = 7


def cell_master_struct(cell: StandardCell, pdk: Pdk) -> GdsStruct:
    """Self-describing abstract layout for one standard-cell variant.

    Reconstructible from the PDK alone, which is what lets extraction
    fingerprint-match master structures that were renamed in the stream.
    """
    struct = GdsStruct(name=cell.name)
    width, height = master_footprint(cell, pdk.node)
    active = pdk.layers.by_name("active")
    poly = pdk.layers.by_name("poly")
    li = pdk.layers.by_name("li")
    met1 = pdk.layers.by_name("met1")
    f_um = pdk.node.feature_nm / 1000.0
    struct.add_rect_um(active.gds_layer, active.gds_datatype,
                       0.0, 0.0, width, height)
    # A representative poly gate stripe, inset one feature from each edge.
    if width > 4 * f_um:
        x = width / 2.0
        struct.add_rect_um(poly.gds_layer, poly.gds_datatype,
                           x - f_um / 2.0, f_um, x + f_um / 2.0,
                           height - f_um)
    # Identity stripe: a second poly stripe at a per-variant x position,
    # so cell variants sharing a footprint (NAND2/NOR2/AND2...) remain
    # geometrically distinguishable after struct names are stripped.
    names = sorted(pdk.library.cells)
    idx = names.index(cell.name)
    x_id = width * (0.1 + 0.8 * (idx + 1) / (len(names) + 1))
    struct.add_rect_um(poly.gds_layer, poly.gds_datatype,
                       x_id - f_um / 4.0, f_um, x_id + f_um / 4.0,
                       height - f_um)
    # Pin geometry: one li pad (net purpose) + met1-layer name label per
    # pin.  The net fabric lands li stubs on these pads at the top level.
    half = PIN_PAD_HALF_NM
    for pin, (px, py) in master_pin_offsets(cell, pdk.node).items():
        struct.boundaries.append(
            GdsBoundary(li.gds_layer, NET_DATATYPE, [
                (px - half, py - half), (px + half, py - half),
                (px + half, py + half), (px - half, py + half),
                (px - half, py - half),
            ])
        )
        struct.texts.append(GdsText(met1.gds_layer, pin, (px, py)))
    label = pdk.layers.by_name("label")
    struct.texts.append(
        GdsText(label.gds_layer, cell.name,
                (to_db(width / 2), to_db(height / 2)))
    )
    return struct


def build_chip_gds(design: PhysicalDesign, top_name: str | None = None) -> GdsLibrary:
    """Assemble the full-chip GDSII library for ``design``."""
    pdk = design.pdk
    library = GdsLibrary(name=f"{design.mapped.name}_{pdk.name}")
    top = GdsStruct(name=top_name or design.mapped.name)

    # Cell masters, one per cell variant actually used.
    masters: dict[str, GdsStruct] = {}
    cell_of = {inst.name: inst.cell for inst in design.mapped.cells}
    for name, placed in design.placement.cells.items():
        cell = cell_of[name]
        key = cell.name
        if key not in masters:
            masters[key] = library.add(cell_master_struct(cell, pdk))
        top.srefs.append(
            GdsSRef(key, (to_db(placed.x), to_db(placed.y)))
        )

    # Routing: one wire rect per occupied grid-cell step.  Each net gets a
    # deterministic track slot inside every grid cell it crosses, so
    # parallel nets sit ``pitch / tracks`` apart, which the capacity cap
    # guarantees to satisfy width+spacing rules.
    from ..pnr.route import drc_clean_capacity

    met1 = pdk.layers.by_name("met1")
    met2 = pdk.layers.by_name("met2")
    via1 = pdk.layers.by_name("via1")
    pitch = design.routing.grid_pitch_um
    tracks = drc_clean_capacity(pdk.node, pdk.layers)
    cell_tracks: dict[tuple[int, int, int], dict[int, int]] = {}

    def offset_for(cell: tuple[int, int, int], net: int) -> float:
        nets_here = cell_tracks.setdefault(cell, {})
        if net not in nets_here:
            nets_here[net] = len(nets_here)
        slot = nets_here[net] % tracks
        return (slot - (tracks - 1) / 2.0) * (pitch / tracks)

    for net, routed in design.routing.nets.items():
        cells = set(routed.cells)
        for cell in routed.cells:
            col, row, layer = cell
            x = col * pitch
            y = row * pitch
            if layer == 0:
                if (col + 1, row, 0) in cells:
                    yc = y + offset_for(cell, net)
                    half = met1.min_width_um / 2.0
                    top.add_rect_um(
                        met1.gds_layer, met1.gds_datatype,
                        x, yc - half, x + pitch, yc + half,
                    )
                if (col, row, 1) in cells:
                    off_h = offset_for(cell, net)
                    off_v = offset_for((col, row, 1), net)
                    # Vias are drawn at met1 width: it is >= the via rule
                    # and an exact number of database units, so rounding
                    # can never shave the rect below minimum width.
                    half = met1.min_width_um / 2.0
                    top.add_rect_um(
                        via1.gds_layer, via1.gds_datatype,
                        x + off_v - half, y + off_h - half,
                        x + off_v + half, y + off_h + half,
                    )
            else:
                if (col, row + 1, 1) in cells:
                    xc = x + offset_for(cell, net)
                    half = met2.min_width_um / 2.0
                    top.add_rect_um(
                        met2.gds_layer, met2.gds_datatype,
                        xc - half, y, xc + half, y + pitch,
                    )

    # The electrically exact net-purpose fabric extraction reads back.
    from .fabric import draw_net_fabric

    draw_net_fabric(top, design)

    # Pin labels and the die outline.
    label = pdk.layers.by_name("label")
    for pin in design.floorplan.io_pins:
        top.texts.append(
            GdsText(label.gds_layer, pin.name, (to_db(pin.x), to_db(pin.y)))
        )
    outline = pdk.layers.outline
    top.add_rect_um(
        outline.gds_layer, outline.gds_datatype,
        0.0, 0.0,
        design.floorplan.die_width, design.floorplan.die_height,
    )

    library.add(top)
    return library
