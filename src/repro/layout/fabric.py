"""Net-purpose fabric: electrically exact per-net geometry.

The drawing-purpose wires (:mod:`repro.layout.chip`, datatype 0) show a
DRC-legal picture of the routing, but nets sharing a grid cell are drawn
on a handful of shared track slots — fine for mask rules, useless for
reading connectivity back.  This module draws a second, thin copy of
every net on the **net purpose** (:data:`repro.pdk.layers.NET_DATATYPE`)
whose touch graph *is* the netlist:

* every horizontal route segment becomes one ``met1`` backbone on its
  own lattice line inside the grid row's band;
* every vertical segment becomes one ``met2`` backbone in the grid
  column's band;
* layer transitions get ``via1`` cuts; pins get a short ``li`` stub off
  their master pad, a ``lic`` cut, a ``met1`` spur and (when the tap
  target is a horizontal backbone) a ``met2`` drop.

Geometry is integer nanometres on a ``Q`` = 4 nm lattice with 1 nm
half-width shapes, so shapes on *different* lattice lines are always
>= 2 nm apart and never touch under the extractor's closed-interval
touch test, while shapes of one net share lines and always do.  Each
band hands out every lattice line at most once across **all** nets,
which rules out shorts by construction; the per-net capacity question of
the drawing purpose never arises because fabric wires are two orders of
magnitude thinner than the pitch.
"""

from __future__ import annotations

from collections import defaultdict

from ..pdk.layers import NET_DATATYPE
from ..pnr.physical import PhysicalDesign
from .gds import GdsBoundary, GdsStruct, to_db

#: Lattice quantum in nm.  Lines are multiples of Q; with HALF-width
#: shapes, distinct lines keep a >= Q - 2*HALF = 2 nm clearance.
Q = 4
#: Half-width of fabric wires/cuts in nm (2 nm wide shapes).
HALF = 1
#: Half-size of li pin pads (matches chip.PIN_PAD_HALF_NM).
PAD_HALF = 7


class FabricError(RuntimeError):
    """A net-purpose shape could not be placed without a short."""


class _Band:
    """Exclusive lattice-line allocator for one grid row or column."""

    __slots__ = ("lo", "hi", "used")

    def __init__(self, lo: int, hi: int):
        self.lo = -(-lo // Q) * Q
        self.hi = (hi // Q) * Q
        self.used: set[int] = set()

    def alloc(self, preferred: int) -> int:
        if self.lo > self.hi:
            raise FabricError("lattice band is empty")
        want = min(max(preferred, self.lo), self.hi)
        want = (want + Q // 2) // Q * Q
        want = min(max(want, self.lo), self.hi)
        span = (self.hi - self.lo) // Q + 1
        for k in range(span + 1):
            for cand in ((want,) if k == 0 else (want + k * Q, want - k * Q)):
                if self.lo <= cand <= self.hi and cand not in self.used:
                    self.used.add(cand)
                    return cand
        raise FabricError(
            f"lattice band [{self.lo}, {self.hi}] exhausted "
            f"({len(self.used)} lines in use)"
        )


class _Run:
    """One backbone: a lattice line plus the interval it spans."""

    __slots__ = ("line", "lo", "hi")

    def __init__(self, line: int, lo: int, hi: int):
        self.line = line
        self.lo = lo
        self.hi = hi

    def cover(self, v: int) -> None:
        if v < self.lo:
            self.lo = v
        if v > self.hi:
            self.hi = v


class _LiIndex:
    """Bucketed collision index for li shapes (pads and stubs)."""

    BUCKET = 1024  # nm

    def __init__(self):
        self.buckets: dict[int, list[tuple[int, int, int, int, int]]] = (
            defaultdict(list)
        )

    def add(self, x0: int, y0: int, x1: int, y1: int, net: int) -> None:
        for b in range(x0 // self.BUCKET, x1 // self.BUCKET + 1):
            self.buckets[b].append((x0, y0, x1, y1, net))

    def conflict(self, x0: int, y0: int, x1: int, y1: int, net: int) -> bool:
        for b in range(x0 // self.BUCKET, x1 // self.BUCKET + 1):
            for ax0, ay0, ax1, ay1, other in self.buckets.get(b, ()):
                if other != net and (
                    ax0 <= x1 and x0 <= ax1 and ay0 <= y1 and y0 <= ay1
                ):
                    return True
        return False


def _ranges(values: list[int]) -> list[tuple[int, int]]:
    """Maximal runs of consecutive integers in a sorted list."""
    out: list[tuple[int, int]] = []
    for v in values:
        if out and v == out[-1][1] + 1:
            out[-1] = (out[-1][0], v)
        else:
            out.append((v, v))
    return out


def draw_net_fabric(top: GdsStruct, design: PhysicalDesign) -> None:
    """Draw the net-purpose fabric for every net into ``top``.

    Consumes the placement, floorplan and routing of ``design``; master
    pin pads are part of the cell structures (drawn by
    :func:`repro.layout.chip.cell_master_struct`), IO pads are drawn
    here.  Raises :class:`FabricError` if any shape cannot be placed
    shorts-free — loud failure beats silently wrong mask data.
    """
    pdk = design.pdk
    mapped = design.mapped
    fp = design.floorplan
    li = pdk.layers.by_name("li").gds_layer
    lic = pdk.layers.by_name("lic").gds_layer
    met1 = pdk.layers.by_name("met1").gds_layer
    via1 = pdk.layers.by_name("via1").gds_layer
    met2 = pdk.layers.by_name("met2").gds_layer

    pitch_um = design.routing.grid_pitch_um
    p = to_db(pitch_um)
    cols = max(2, int(fp.die_width / pitch_um) + 1)
    rows = max(2, int(fp.die_height / pitch_um) + 1)

    def snap(x_um: float, y_um: float) -> tuple[int, int]:
        # Mirrors GridRouter._snap exactly.
        col = min(cols - 1, max(0, int(round(x_um / pitch_um))))
        row = min(rows - 1, max(0, int(round(y_um / pitch_um))))
        return col, row

    def rect(layer: int, x0: int, y0: int, x1: int, y1: int) -> None:
        top.boundaries.append(
            GdsBoundary(layer, NET_DATATYPE,
                        [(x0, y0), (x1, y0), (x1, y1), (x0, y1), (x0, y0)])
        )

    def cut(x: int, y: int) -> None:
        rect(via1, x - HALF, y - HALF, x + HALF, y + HALF)

    row_bands: dict[int, _Band] = {}
    col_bands: dict[int, _Band] = {}

    def row_band(r: int) -> _Band:
        band = row_bands.get(r)
        if band is None:
            band = row_bands[r] = _Band(
                r * p - p // 2 + 2 * Q, r * p + p // 2 - 2 * Q
            )
        return band

    def col_band(c: int) -> _Band:
        band = col_bands.get(c)
        if band is None:
            band = col_bands[c] = _Band(
                c * p - p // 2 + 2 * Q, c * p + p // 2 - 2 * Q
            )
        return band

    # Pass 1 — collect pins per net and register every li pad, so stub
    # placement can see all pads before the first stub is chosen.
    from .chip import master_pin_offsets

    pins_by_net: dict[int, list[tuple[int, int, int, int]]] = defaultdict(list)
    li_index = _LiIndex()
    offsets_cache: dict[str, dict[str, tuple[int, int]]] = {}
    for inst in mapped.cells:
        placed = design.placement.cells[inst.name]
        offs = offsets_cache.get(inst.cell.name)
        if offs is None:
            offs = offsets_cache[inst.cell.name] = master_pin_offsets(
                inst.cell, pdk.node
            )
        ox, oy = to_db(placed.x), to_db(placed.y)
        node = snap(placed.cx, placed.cy)
        pin_names = list(inst.cell.inputs)
        if inst.cell.output:
            pin_names.append(inst.cell.output)
        for pin in pin_names:
            net = inst.pins[pin]
            px, py = ox + offs[pin][0], oy + offs[pin][1]
            pins_by_net[net].append((px, py, node[0], node[1]))
            li_index.add(px - PAD_HALF, py - PAD_HALF,
                         px + PAD_HALF, py + PAD_HALF, net)
    for io in fp.io_pins:
        px, py = to_db(io.x), to_db(io.y)
        node = snap(io.x, io.y)
        pins_by_net[io.net].append((px, py, node[0], node[1]))
        li_index.add(px - PAD_HALF, py - PAD_HALF,
                     px + PAD_HALF, py + PAD_HALF, io.net)
        # IO pads are top-level geometry (cell pads live in the masters).
        rect(li, px - PAD_HALF, py - PAD_HALF, px + PAD_HALF, py + PAD_HALF)

    # Pass 2 — per net: backbones from the route tree, then pin taps.
    for net in sorted(pins_by_net):
        routed = design.routing.nets.get(net)
        hruns: list[_Run] = []
        vruns: list[_Run] = []
        hcover: dict[tuple[int, int], _Run] = {}
        vcover: dict[tuple[int, int], _Run] = {}

        if routed is not None:
            by_row: dict[int, list[int]] = defaultdict(list)
            by_col: dict[int, list[int]] = defaultdict(list)
            for col, row, layer in routed.cells:
                if layer == 0:
                    by_row[row].append(col)
                else:
                    by_col[col].append(row)
            for row in sorted(by_row):
                for c0, c1 in _ranges(sorted(by_row[row])):
                    run = _Run(row_band(row).alloc(row * p), c0 * p, c1 * p)
                    hruns.append(run)
                    for col in range(c0, c1 + 1):
                        hcover[(col, row)] = run
            for col in sorted(by_col):
                for r0, r1 in _ranges(sorted(by_col[col])):
                    run = _Run(col_band(col).alloc(col * p), r0 * p, r1 * p)
                    vruns.append(run)
                    for row in range(r0, r1 + 1):
                        vcover[(col, row)] = run

        # Layer-transition cuts at nodes the route uses on both layers.
        for node in sorted(set(hcover) & set(vcover)):
            h, v = hcover[node], vcover[node]
            cut(v.line, h.line)
            h.cover(v.line)
            v.cover(h.line)

        def bridge_h(h_a: _Run, h_b: _Run, col: int) -> None:
            """Join two met1 backbones with a met2 jumper in ``col``."""
            xb = col_band(col).alloc(col * p)
            lo, hi = sorted((h_a.line, h_b.line))
            rect(met2, xb - HALF, lo - HALF, xb + HALF, hi + HALF)
            cut(xb, h_a.line)
            cut(xb, h_b.line)
            h_a.cover(xb)
            h_b.cover(xb)

        def join(c: int, r: int, c2: int, r2: int) -> None:
            """Connect uncovered node (c, r) to covered node (c2, r2)."""
            leg = _Run(row_band(r).alloc(r * p),
                       min(c, c2) * p, max(c, c2) * p)
            hruns.append(leg)
            for col in range(min(c, c2), max(c, c2) + 1):
                hcover.setdefault((col, r), leg)
            if r != r2:
                vleg = _Run(col_band(c2).alloc(c2 * p),
                            min(r, r2) * p, max(r, r2) * p)
                vruns.append(vleg)
                for row in range(min(r, r2), max(r, r2) + 1):
                    vcover.setdefault((c2, row), vleg)
                cut(vleg.line, leg.line)
                leg.cover(vleg.line)
                vleg.cover(leg.line)
                target_h = hcover.get((c2, r2))
                if target_h is not None:
                    cut(vleg.line, target_h.line)
                    vleg.cover(target_h.line)
                    target_h.cover(vleg.line)
                else:
                    target_v = vcover[(c2, r2)]
                    if target_v is not vleg:
                        yb = row_band(r2).alloc(r2 * p)
                        lo, hi = sorted((vleg.line, target_v.line))
                        hruns.append(_Run(yb, lo, hi))
                        cut(vleg.line, yb)
                        cut(target_v.line, yb)
                        vleg.cover(yb)
                        target_v.cover(yb)
            else:
                target_v = vcover.get((c2, r2))
                if target_v is not None:
                    cut(target_v.line, leg.line)
                    leg.cover(target_v.line)
                    target_v.cover(leg.line)
                else:
                    target_h = hcover[(c2, r2)]
                    if target_h is not leg:
                        bridge_h(leg, target_h, c2)

        for px, py, c, r in pins_by_net[net]:
            if (c, r) not in hcover and (c, r) not in vcover:
                if not hcover and not vcover:
                    # Single-node net: all pins share one grid node.
                    run = _Run(row_band(r).alloc(r * p), c * p, c * p)
                    hruns.append(run)
                    hcover[(c, r)] = run
                else:
                    # A pin node the router never targeted (e.g. the
                    # second IO pin of a feedthrough net): L-connect it
                    # to the nearest covered node.
                    _, c2, r2 = min(
                        (abs(cc - c) + abs(rr - r), cc, rr)
                        for cc, rr in set(hcover) | set(vcover)
                    )
                    join(c, r, c2, r2)

            # Spur line in this grid row's band, as close to the pin as
            # the band allows (stubs stay short).
            ys = row_band(r).alloc(py)
            stub_lo, stub_hi = min(py, ys), max(py, ys)
            want = (px + Q // 2) // Q * Q
            for cand in (want, want + Q, want - Q):
                if not li_index.conflict(cand - HALF, stub_lo - HALF,
                                         cand + HALF, stub_hi + HALF, net):
                    x_stub = cand
                    break
            else:
                raise FabricError(
                    f"no shorts-free li stub position for net {net} "
                    f"pin at ({px}, {py}) nm"
                )
            li_index.add(x_stub - HALF, stub_lo - HALF,
                         x_stub + HALF, stub_hi + HALF, net)
            rect(li, x_stub - HALF, stub_lo - HALF,
                 x_stub + HALF, stub_hi + HALF)
            rect(lic, x_stub - HALF, ys - HALF, x_stub + HALF, ys + HALF)

            v = vcover.get((c, r))
            if v is not None:
                cut(v.line, ys)
                v.cover(ys)
                x_end = v.line
            else:
                h = hcover[(c, r)]
                xd = col_band(c).alloc(px)
                cut(xd, ys)
                drop_lo, drop_hi = sorted((ys, h.line))
                rect(met2, xd - HALF, drop_lo - HALF,
                     xd + HALF, drop_hi + HALF)
                cut(xd, h.line)
                h.cover(xd)
                x_end = xd
            spur_lo, spur_hi = sorted((x_stub, x_end))
            rect(met1, spur_lo - HALF, ys - HALF, spur_hi + HALF, ys + HALF)

        # Backbones last: taps may have extended their spans.
        for run in hruns:
            rect(met1, run.lo - HALF, run.line - HALF,
                 run.hi + HALF, run.line + HALF)
        for run in vruns:
            rect(met2, run.line - HALF, run.lo - HALF,
                 run.line + HALF, run.hi + HALF)
