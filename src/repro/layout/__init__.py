"""Layout: geometry, GDSII codec, chip assembly, DRC."""

from .chip import build_chip_gds
from .defio import DefComponent, DefDesign, DefPin, from_physical, read_def, write_def
from .drc import DrcReport, DrcViolation, check_drc, flatten_rects
from .gds import (
    GdsBoundary,
    GdsLibrary,
    GdsSRef,
    GdsStruct,
    GdsText,
    from_db,
    read_gds,
    to_db,
    write_gds,
)
from .geometry import Rect, bounding_box, wire_rect
from .lvs import LvsReport, check_lvs

__all__ = [
    "DefComponent",
    "DefDesign",
    "DefPin",
    "DrcReport",
    "DrcViolation",
    "GdsBoundary",
    "GdsLibrary",
    "GdsSRef",
    "GdsStruct",
    "GdsText",
    "LvsReport",
    "Rect",
    "bounding_box",
    "build_chip_gds",
    "check_drc",
    "check_lvs",
    "from_physical",
    "flatten_rects",
    "from_db",
    "read_def",
    "read_gds",
    "to_db",
    "wire_rect",
    "write_def",
    "write_gds",
]
