"""GDSII stream format: binary writer and reader.

The paper defines backend completion as "culminating in the creation of a
GDSII file" (Section III-B), so the toolkit writes the real binary format,
not a stand-in.  Supported records cover what a standard-cell chip needs:
``BOUNDARY`` polygons, ``SREF`` cell placements and ``TEXT`` labels.  The
reader parses files the writer produces (round-trip tested) and any other
GDSII limited to those record types.

Format reference: the GDSII stream is a sequence of records, each with a
2-byte big-endian length, a record type byte and a data type byte.
Coordinates are 4-byte signed integers in database units (1 nm here);
reals use the GDSII 8-byte excess-64 floating point encoding.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

# Record types (subset).
HEADER = 0x00
BGNLIB = 0x01
LIBNAME = 0x02
UNITS = 0x03
ENDLIB = 0x04
BGNSTR = 0x05
STRNAME = 0x06
ENDSTR = 0x07
BOUNDARY = 0x08
SREF = 0x0A
TEXT = 0x0C
LAYER = 0x0D
DATATYPE = 0x0E
XY = 0x10
ENDEL = 0x11
SNAME = 0x12
STRING = 0x19
TEXTTYPE = 0x16

# Data types.
DT_NONE = 0x00
DT_INT16 = 0x02
DT_INT32 = 0x03
DT_REAL8 = 0x05
DT_ASCII = 0x06

#: Database unit: 1 nm expressed in metres / in user units (um).
DB_UNIT_IN_UM = 0.001
DB_UNIT_IN_M = 1e-9


@dataclass
class GdsBoundary:
    """A filled polygon on one layer (rectangles use 5 closed points)."""

    layer: int
    datatype: int
    points: list[tuple[int, int]]  # database units, closed ring


@dataclass
class GdsText:
    layer: int
    text: str
    position: tuple[int, int]


@dataclass
class GdsSRef:
    """A placement of another structure."""

    struct_name: str
    position: tuple[int, int]


@dataclass
class GdsStruct:
    name: str
    boundaries: list[GdsBoundary] = field(default_factory=list)
    srefs: list[GdsSRef] = field(default_factory=list)
    texts: list[GdsText] = field(default_factory=list)

    def add_rect_um(self, layer: int, datatype: int, x0: float, y0: float,
                    x1: float, y1: float) -> None:
        """Convenience: add a rectangle given in micrometres."""
        pts = [
            (to_db(x0), to_db(y0)),
            (to_db(x1), to_db(y0)),
            (to_db(x1), to_db(y1)),
            (to_db(x0), to_db(y1)),
            (to_db(x0), to_db(y0)),
        ]
        self.boundaries.append(GdsBoundary(layer, datatype, pts))


@dataclass
class GdsLibrary:
    name: str
    structs: list[GdsStruct] = field(default_factory=list)

    def struct(self, name: str) -> GdsStruct:
        for s in self.structs:
            if s.name == name:
                return s
        raise KeyError(f"no structure {name!r}")

    def add(self, struct: GdsStruct) -> GdsStruct:
        self.structs.append(struct)
        return struct


def to_db(um: float) -> int:
    """Micrometres to database units (nm)."""
    return int(round(um / DB_UNIT_IN_UM))


def from_db(db: int) -> float:
    """Database units to micrometres."""
    return db * DB_UNIT_IN_UM


# -- low-level encoding --------------------------------------------------------


def _record(rtype: int, dtype: int, payload: bytes = b"") -> bytes:
    length = 4 + len(payload)
    return struct.pack(">HBB", length, rtype, dtype) + payload


def _ascii(text: str) -> bytes:
    data = text.encode("ascii")
    if len(data) % 2:
        data += b"\x00"
    return data


def _real8(value: float) -> bytes:
    """GDSII 8-byte excess-64 real."""
    if value == 0:
        return b"\x00" * 8
    sign = 0
    if value < 0:
        sign = 0x80
        value = -value
    exponent = 64
    while value >= 1.0:
        value /= 16.0
        exponent += 1
    while value < 1.0 / 16.0:
        value *= 16.0
        exponent -= 1
    mantissa = int(value * (1 << 56))
    return struct.pack(">BB", sign | exponent, (mantissa >> 48) & 0xFF) + struct.pack(
        ">HI", (mantissa >> 32) & 0xFFFF, mantissa & 0xFFFFFFFF
    )


def _parse_real8(data: bytes) -> float:
    byte0 = data[0]
    sign = -1.0 if byte0 & 0x80 else 1.0
    exponent = (byte0 & 0x7F) - 64
    mantissa = int.from_bytes(data[1:8], "big") / float(1 << 56)
    return sign * mantissa * (16.0**exponent)


_TIMESTAMP = struct.pack(">12H", 2025, 1, 1, 0, 0, 0, 2025, 1, 1, 0, 0, 0)


def write_gds(library: GdsLibrary) -> bytes:
    """Serialize a library to GDSII stream bytes."""
    out = bytearray()
    out += _record(HEADER, DT_INT16, struct.pack(">h", 600))
    out += _record(BGNLIB, DT_INT16, _TIMESTAMP)
    out += _record(LIBNAME, DT_ASCII, _ascii(library.name))
    out += _record(
        UNITS, DT_REAL8, _real8(DB_UNIT_IN_UM) + _real8(DB_UNIT_IN_M)
    )
    for struct_def in library.structs:
        out += _record(BGNSTR, DT_INT16, _TIMESTAMP)
        out += _record(STRNAME, DT_ASCII, _ascii(struct_def.name))
        for boundary in struct_def.boundaries:
            out += _record(BOUNDARY, DT_NONE)
            out += _record(LAYER, DT_INT16, struct.pack(">h", boundary.layer))
            out += _record(
                DATATYPE, DT_INT16, struct.pack(">h", boundary.datatype)
            )
            xy = b"".join(
                struct.pack(">ii", x, y) for x, y in boundary.points
            )
            out += _record(XY, DT_INT32, xy)
            out += _record(ENDEL, DT_NONE)
        for sref in struct_def.srefs:
            out += _record(SREF, DT_NONE)
            out += _record(SNAME, DT_ASCII, _ascii(sref.struct_name))
            out += _record(
                XY, DT_INT32, struct.pack(">ii", *sref.position)
            )
            out += _record(ENDEL, DT_NONE)
        for text in struct_def.texts:
            out += _record(TEXT, DT_NONE)
            out += _record(LAYER, DT_INT16, struct.pack(">h", text.layer))
            out += _record(TEXTTYPE, DT_INT16, struct.pack(">h", 0))
            out += _record(XY, DT_INT32, struct.pack(">ii", *text.position))
            out += _record(STRING, DT_ASCII, _ascii(text.text))
            out += _record(ENDEL, DT_NONE)
        out += _record(ENDSTR, DT_NONE)
    out += _record(ENDLIB, DT_NONE)
    return bytes(out)


def read_gds(data: bytes) -> GdsLibrary:
    """Parse GDSII stream bytes (records written by :func:`write_gds`).

    Malformed input raises :class:`ValueError` carrying the byte offset
    of the offending record — never :class:`IndexError` or
    :class:`struct.error` — so callers can treat any non-``ValueError``
    as a parser bug rather than a bad file.
    """
    offset = 0
    library = GdsLibrary(name="")
    current: GdsStruct | None = None
    element: dict | None = None

    def short(record: int, payload: bytes, expected: int, name: str) -> bytes:
        if len(payload) < expected:
            raise ValueError(
                f"{name} record at offset {record} truncated: "
                f"{len(payload)} payload bytes, need {expected}"
            )
        return payload

    while offset < len(data):
        record_offset = offset
        if offset + 4 > len(data):
            raise ValueError(
                f"truncated GDSII record header at offset {offset}"
            )
        length, rtype, dtype = struct.unpack_from(">HBB", data, offset)
        if length < 4:
            raise ValueError(
                f"invalid record length {length} at offset {offset}"
            )
        if offset + length > len(data):
            raise ValueError(
                f"record at offset {offset} overruns the stream "
                f"({length} bytes declared, {len(data) - offset} left)"
            )
        payload = data[offset + 4 : offset + length]
        offset += length

        if rtype == LIBNAME:
            library.name = payload.rstrip(b"\x00").decode("ascii")
        elif rtype == UNITS:
            short(record_offset, payload, 16, "UNITS")
            db_in_user = _parse_real8(payload[0:8])
            db_in_m = _parse_real8(payload[8:16])
            if (
                abs(db_in_user - DB_UNIT_IN_UM) > 1e-9 * DB_UNIT_IN_UM
                or abs(db_in_m - DB_UNIT_IN_M) > 1e-9 * DB_UNIT_IN_M
            ):
                raise ValueError(
                    f"unsupported UNITS at offset {record_offset}: "
                    f"db unit {db_in_user} user / {db_in_m} m "
                    f"(expected {DB_UNIT_IN_UM} / {DB_UNIT_IN_M})"
                )
        elif rtype == BGNSTR:
            current = GdsStruct(name="")
        elif rtype == STRNAME and current is not None:
            current.name = payload.rstrip(b"\x00").decode("ascii")
        elif rtype == ENDSTR:
            # A bare ENDSTR (no preceding BGNSTR) closes nothing; skip it
            # rather than recording a phantom structure.
            if current is not None:
                library.structs.append(current)
            current = None
        elif rtype in (BOUNDARY, SREF, TEXT):
            element = {"kind": rtype, "layer": 0, "datatype": 0,
                       "points": [], "name": "", "text": ""}
        elif rtype == LAYER and element is not None:
            short(record_offset, payload, 2, "LAYER")
            element["layer"] = struct.unpack_from(">h", payload)[0]
        elif rtype == DATATYPE and element is not None:
            short(record_offset, payload, 2, "DATATYPE")
            element["datatype"] = struct.unpack_from(">h", payload)[0]
        elif rtype == SNAME and element is not None:
            element["name"] = payload.rstrip(b"\x00").decode("ascii")
        elif rtype == STRING and element is not None:
            element["text"] = payload.rstrip(b"\x00").decode("ascii")
        elif rtype == XY and element is not None:
            if len(payload) % 8:
                raise ValueError(
                    f"XY record at offset {record_offset} has "
                    f"{len(payload)} payload bytes (not a multiple of 8)"
                )
            count = len(payload) // 8
            element["points"] = [
                struct.unpack_from(">ii", payload, i * 8) for i in range(count)
            ]
            element["xy_offset"] = record_offset
        elif rtype == ENDEL and element is not None and current is not None:
            kind = element["kind"]
            if kind == BOUNDARY:
                current.boundaries.append(
                    GdsBoundary(element["layer"], element["datatype"],
                                [tuple(p) for p in element["points"]])
                )
            elif kind == SREF:
                if not element["points"]:
                    raise ValueError(
                        f"SREF element ending at offset {record_offset} "
                        "has no XY coordinates"
                    )
                current.srefs.append(
                    GdsSRef(element["name"], tuple(element["points"][0]))
                )
            elif kind == TEXT:
                if not element["points"]:
                    raise ValueError(
                        f"TEXT element ending at offset {record_offset} "
                        "has no XY coordinates"
                    )
                current.texts.append(
                    GdsText(element["layer"], element["text"],
                            tuple(element["points"][0]))
                )
            element = None
        elif rtype == ENDLIB:
            break
    return library
