"""Design-rule checking over GDSII layouts.

Checks the two rule classes every introductory PDK course starts with:

* **minimum width** — no rectangle thinner than the layer's rule;
* **minimum spacing** — no two disjoint rectangles on the same layer
  closer than the layer's rule (overlapping/touching shapes are treated
  as merged geometry, i.e. same-net, and are not spacing violations).

The checker flattens SREF placements, bins rectangles into a spatial grid
and only compares neighbours — the standard sweep optimisation, keeping
the check near-linear for our layout sizes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from ..obs.trace import get_tracer
from ..pdk.layers import LayerStack
from .gds import GdsLibrary, from_db
from .geometry import Rect


@dataclass(frozen=True)
class DrcViolation:
    rule: str  # "min_width" or "min_spacing"
    layer: str
    detail: str
    rect: Rect


@dataclass
class DrcReport:
    checked_rects: int
    violations: list[DrcViolation] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return counts

    def summary(self) -> str:
        status = "CLEAN" if self.clean else f"{len(self.violations)} violations"
        return f"DRC {status} ({self.checked_rects} rects checked)"


def flatten_rects(
    library: GdsLibrary, top_name: str
) -> dict[int, list[Rect]]:
    """Rectangles per GDS layer with SREFs resolved (one level deep is
    enough for our two-level cell/top hierarchy, applied recursively)."""
    by_name = {s.name: s for s in library.structs}
    rects: dict[int, list[Rect]] = defaultdict(list)

    def emit(struct_name: str, dx: float, dy: float, depth: int) -> None:
        if depth > 8:
            raise ValueError("SREF nesting too deep (cycle?)")
        struct = by_name[struct_name]
        for boundary in struct.boundaries:
            xs = [from_db(p[0]) for p in boundary.points]
            ys = [from_db(p[1]) for p in boundary.points]
            rects[boundary.layer].append(
                Rect(min(xs) + dx, min(ys) + dy, max(xs) + dx, max(ys) + dy)
            )
        for sref in struct.srefs:
            emit(
                sref.struct_name,
                dx + from_db(sref.position[0]),
                dy + from_db(sref.position[1]),
                depth + 1,
            )

    emit(top_name, 0.0, 0.0, 0)
    return dict(rects)


def _flatten_coords(
    library: GdsLibrary, top_name: str
) -> dict[tuple[int, int], np.ndarray]:
    """Per-(layer, datatype) ``(n, 4)`` coordinate arrays with SREFs
    resolved.

    Same DFS emission order as :func:`flatten_rects`, but each struct's
    local boundaries are converted to one array once and placements
    merely translate it — the checker never materializes per-rect
    objects for the (overwhelmingly clean) common case.  Keying by
    datatype keeps mask purposes apart: DRC checks a layer's drawing
    purpose without mixing in net-purpose fabric shapes.
    """
    by_name = {s.name: s for s in library.structs}
    local: dict[str, dict[tuple[int, int], np.ndarray]] = {}
    parts: dict[tuple[int, int], list[np.ndarray]] = defaultdict(list)

    def struct_local(name: str) -> dict[tuple[int, int], np.ndarray]:
        cached = local.get(name)
        if cached is None:
            per_layer: dict[tuple[int, int], list] = defaultdict(list)
            for boundary in by_name[name].boundaries:
                xs = [from_db(p[0]) for p in boundary.points]
                ys = [from_db(p[1]) for p in boundary.points]
                per_layer[(boundary.layer, boundary.datatype)].append(
                    (min(xs), min(ys), max(xs), max(ys))
                )
            cached = local[name] = {
                key: np.array(rows, dtype=np.float64)
                for key, rows in per_layer.items()
            }
        return cached

    def emit(struct_name: str, dx: float, dy: float, depth: int) -> None:
        if depth > 8:
            raise ValueError("SREF nesting too deep (cycle?)")
        for key, rows in struct_local(struct_name).items():
            parts[key].append(rows + np.array((dx, dy, dx, dy)))
        for sref in by_name[struct_name].srefs:
            emit(
                sref.struct_name,
                dx + from_db(sref.position[0]),
                dy + from_db(sref.position[1]),
                depth + 1,
            )

    emit(top_name, 0.0, 0.0, 0)
    return {key: np.concatenate(p) for key, p in parts.items()}


def check_drc(
    library: GdsLibrary,
    layers: LayerStack,
    top_name: str,
    check_layers: list[str] | None = None,
    max_violations: int = 100,
    tracer=None,
) -> DrcReport:
    """Run width and spacing checks; stops after ``max_violations``.

    Each checked layer is one ``drc.layer`` span on ``tracer`` (no-op by
    default), so traces show which layer dominates check time.
    """
    if tracer is None:
        tracer = get_tracer()
    with tracer.span("drc.flatten") as sp:
        coords_by_gds = _flatten_coords(library, top_name)
        sp.set(structs=len(library.structs))
    names = check_layers or [
        l.name for l in layers.layers if l.purpose in ("routing", "via")
    ]
    report = DrcReport(checked_rects=0)

    for name in names:
        with tracer.span("drc.layer", layer=name) as sp:
            layer = layers.by_name(name)
            coords = coords_by_gds.get((layer.gds_layer, layer.gds_datatype))
            count = 0 if coords is None else len(coords)
            report.checked_rects += count
            if count:
                _check_layer(report, layer, coords, max_violations)
            sp.set(rects=count, violations=len(report.violations))
        if len(report.violations) >= max_violations:
            break
    return report


def _check_layer(
    report, layer, coords: np.ndarray, max_violations: int
) -> None:
    eps = 1e-9

    def rect_at(index: int) -> Rect:
        x0, y0, x1, y1 = coords[index]
        return Rect(float(x0), float(y0), float(x1), float(y1))

    min_dims = np.minimum(
        coords[:, 2] - coords[:, 0], coords[:, 3] - coords[:, 1]
    )
    for index in np.nonzero(min_dims + eps < layer.min_width_um)[0]:
        report.violations.append(
            DrcViolation(
                "min_width",
                layer.name,
                f"{float(min_dims[index]):.4f} < {layer.min_width_um}",
                rect_at(index),
            )
        )
        if len(report.violations) >= max_violations:
            return

    # Spatial binning for the spacing check.
    spacing = layer.min_spacing_um
    if spacing <= 0 or len(coords) < 2:
        return
    bin_size = max(spacing * 8.0, 1e-3)
    bins: dict[tuple[int, int], list[int]] = defaultdict(list)
    for index, (x0, y0, x1, y1) in enumerate(coords.tolist()):
        for bx in range(
            int((x0 - spacing) // bin_size),
            int((x1 + spacing) // bin_size) + 1,
        ):
            for by in range(
                int((y0 - spacing) // bin_size),
                int((y1 + spacing) // bin_size) + 1,
            ):
                bins[(bx, by)].append(index)

    # Candidate pairs from all bins are evaluated in one vectorized
    # pass.  Every float op mirrors Rect.distance/.intersects bit for
    # bit (same operand order, and np.sqrt is correctly rounded exactly
    # like ``** 0.5``), and violations are emitted in the original scan
    # order: bins in creation order, then the row-major i<j upper
    # triangle.  A pair sharing several bins appears several times in
    # the candidate list but is only *emitted* once (at its first
    # occurrence); re-evaluating duplicates is output-equivalent to the
    # old evaluate-once skip because evaluation is pure.
    triu_cache: dict[int, tuple[np.ndarray, np.ndarray]] = {}
    pair_a: list[np.ndarray] = []
    pair_b: list[np.ndarray] = []
    for members in bins.values():
        count = len(members)
        if count < 2:
            continue
        upper = triu_cache.get(count)
        if upper is None:
            upper = triu_cache[count] = np.triu_indices(count, 1)
        idx = np.fromiter(members, dtype=np.int64, count=count)
        pair_a.append(idx[upper[0]])
        pair_b.append(idx[upper[1]])
    if not pair_a:
        return
    first = np.concatenate(pair_a)
    second = np.concatenate(pair_b)
    ra, rb = coords[first], coords[second]
    gap_x = np.maximum(
        0.0, np.maximum(ra[:, 0], rb[:, 0]) - np.minimum(ra[:, 2], rb[:, 2])
    )
    gap_y = np.maximum(
        0.0, np.maximum(ra[:, 1], rb[:, 1]) - np.minimum(ra[:, 3], rb[:, 3])
    )
    distance = np.sqrt(gap_x * gap_x + gap_y * gap_y)
    overlapping = (
        (ra[:, 0] < rb[:, 2])
        & (rb[:, 0] < ra[:, 2])
        & (ra[:, 1] < rb[:, 3])
        & (rb[:, 1] < ra[:, 3])
    )
    violating = ~overlapping & (distance > eps) & (distance < spacing - eps)
    seen_pairs: set[tuple[int, int]] = set()
    for hit in np.nonzero(violating)[0]:
        a = int(first[hit])
        b = int(second[hit])
        pair = (a, b) if a < b else (b, a)
        if pair in seen_pairs:
            continue
        seen_pairs.add(pair)
        report.violations.append(
            DrcViolation(
                "min_spacing",
                layer.name,
                f"{float(distance[hit]):.4f} < {spacing}",
                rect_at(a),
            )
        )
        if len(report.violations) >= max_violations:
            return
