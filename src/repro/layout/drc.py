"""Design-rule checking over GDSII layouts.

Checks the two rule classes every introductory PDK course starts with:

* **minimum width** — no rectangle thinner than the layer's rule;
* **minimum spacing** — no two disjoint rectangles on the same layer
  closer than the layer's rule (overlapping/touching shapes are treated
  as merged geometry, i.e. same-net, and are not spacing violations).

The checker flattens SREF placements, bins rectangles into a spatial grid
and only compares neighbours — the standard sweep optimisation, keeping
the check near-linear for our layout sizes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..obs.trace import get_tracer
from ..pdk.layers import LayerStack
from .gds import GdsLibrary, from_db
from .geometry import Rect


@dataclass(frozen=True)
class DrcViolation:
    rule: str  # "min_width" or "min_spacing"
    layer: str
    detail: str
    rect: Rect


@dataclass
class DrcReport:
    checked_rects: int
    violations: list[DrcViolation] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule] = counts.get(violation.rule, 0) + 1
        return counts

    def summary(self) -> str:
        status = "CLEAN" if self.clean else f"{len(self.violations)} violations"
        return f"DRC {status} ({self.checked_rects} rects checked)"


def flatten_rects(
    library: GdsLibrary, top_name: str
) -> dict[int, list[Rect]]:
    """Rectangles per GDS layer with SREFs resolved (one level deep is
    enough for our two-level cell/top hierarchy, applied recursively)."""
    by_name = {s.name: s for s in library.structs}
    rects: dict[int, list[Rect]] = defaultdict(list)

    def emit(struct_name: str, dx: float, dy: float, depth: int) -> None:
        if depth > 8:
            raise ValueError("SREF nesting too deep (cycle?)")
        struct = by_name[struct_name]
        for boundary in struct.boundaries:
            xs = [from_db(p[0]) for p in boundary.points]
            ys = [from_db(p[1]) for p in boundary.points]
            rects[boundary.layer].append(
                Rect(min(xs) + dx, min(ys) + dy, max(xs) + dx, max(ys) + dy)
            )
        for sref in struct.srefs:
            emit(
                sref.struct_name,
                dx + from_db(sref.position[0]),
                dy + from_db(sref.position[1]),
                depth + 1,
            )

    emit(top_name, 0.0, 0.0, 0)
    return dict(rects)


def check_drc(
    library: GdsLibrary,
    layers: LayerStack,
    top_name: str,
    check_layers: list[str] | None = None,
    max_violations: int = 100,
    tracer=None,
) -> DrcReport:
    """Run width and spacing checks; stops after ``max_violations``.

    Each checked layer is one ``drc.layer`` span on ``tracer`` (no-op by
    default), so traces show which layer dominates check time.
    """
    if tracer is None:
        tracer = get_tracer()
    with tracer.span("drc.flatten") as sp:
        rects_by_gds = flatten_rects(library, top_name)
        sp.set(structs=len(library.structs))
    names = check_layers or [
        l.name for l in layers.layers if l.purpose in ("routing", "via")
    ]
    report = DrcReport(checked_rects=0)

    for name in names:
        with tracer.span("drc.layer", layer=name) as sp:
            layer = layers.by_name(name)
            rects = rects_by_gds.get(layer.gds_layer, [])
            report.checked_rects += len(rects)
            _check_layer(report, layer, rects, max_violations)
            sp.set(rects=len(rects), violations=len(report.violations))
        if len(report.violations) >= max_violations:
            break
    return report


def _check_layer(report, layer, rects: list[Rect], max_violations: int) -> None:
    eps = 1e-9
    for rect in rects:
        if rect.min_dimension + eps < layer.min_width_um:
            report.violations.append(
                DrcViolation(
                    "min_width",
                    layer.name,
                    f"{rect.min_dimension:.4f} < {layer.min_width_um}",
                    rect,
                )
            )
            if len(report.violations) >= max_violations:
                return

    # Spatial binning for the spacing check.
    spacing = layer.min_spacing_um
    if spacing <= 0 or len(rects) < 2:
        return
    bin_size = max(spacing * 8.0, 1e-3)
    bins: dict[tuple[int, int], list[int]] = defaultdict(list)
    for index, rect in enumerate(rects):
        grown = rect.grown(spacing)
        for bx in range(int(grown.x0 // bin_size), int(grown.x1 // bin_size) + 1):
            for by in range(int(grown.y0 // bin_size), int(grown.y1 // bin_size) + 1):
                bins[(bx, by)].append(index)

    seen_pairs: set[tuple[int, int]] = set()
    for members in bins.values():
        for i in range(len(members)):
            for j in range(i + 1, len(members)):
                a, b = members[i], members[j]
                pair = (a, b) if a < b else (b, a)
                if pair in seen_pairs:
                    continue
                seen_pairs.add(pair)
                ra, rb = rects[a], rects[b]
                if ra.intersects(rb):
                    continue  # merged geometry: same-net abutment
                distance = ra.distance(rb)
                if eps < distance < spacing - eps:
                    report.violations.append(
                        DrcViolation(
                            "min_spacing",
                            layer.name,
                            f"{distance:.4f} < {spacing}",
                            ra,
                        )
                    )
                    if len(report.violations) >= max_violations:
                        return
