"""Simplified DEF (Design Exchange Format) writer and reader.

The DEF file is the flow's placement/routing hand-off artifact: it lets a
placed design travel between tools — in teaching terms, it is the file a
student inspects to see *where everything went* without opening the full
GDSII.  This implementation covers the subset the toolkit produces:
DESIGN/UNITS/DIEAREA, COMPONENTS with placed locations, PINS, and a
summary NETS section, using the real DEF syntax so files open in
standard viewers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..pnr.physical import PhysicalDesign

#: DEF distance units per micron.
DEF_DBU = 1000


@dataclass
class DefComponent:
    name: str
    cell: str
    x: int
    y: int
    status: str = "PLACED"


@dataclass
class DefPin:
    name: str
    net: int
    direction: str
    x: int
    y: int


@dataclass
class DefDesign:
    """Parsed (or to-be-written) DEF content."""

    name: str
    die: tuple[int, int, int, int]
    components: list[DefComponent] = field(default_factory=list)
    pins: list[DefPin] = field(default_factory=list)
    nets: dict[int, list[str]] = field(default_factory=dict)


def _dbu(um: float) -> int:
    return int(round(um * DEF_DBU))


def from_physical(design: PhysicalDesign) -> DefDesign:
    """Extract the DEF view of a completed physical design."""
    fp = design.floorplan
    out = DefDesign(
        name=design.mapped.name,
        die=(0, 0, _dbu(fp.die_width), _dbu(fp.die_height)),
    )
    cell_of = {inst.name: inst.cell.name for inst in design.mapped.cells}
    for name, placed in design.placement.cells.items():
        out.components.append(
            DefComponent(name, cell_of[name], _dbu(placed.x), _dbu(placed.y))
        )
    for pin in fp.io_pins:
        direction = "INPUT" if pin.side == "west" else "OUTPUT"
        out.pins.append(
            DefPin(pin.name, pin.net, direction, _dbu(pin.x), _dbu(pin.y))
        )
    loads = design.mapped.net_loads()
    driver = design.mapped.net_driver()
    for net in sorted(design.routing.nets):
        members = []
        if net in driver:
            members.append(driver[net].name)
        members.extend(sink.name for sink, _pin in loads.get(net, ()))
        out.nets[net] = members
    return out


def write_def(design: DefDesign) -> str:
    """Serialize to DEF 5.8 text."""
    lines = [
        "VERSION 5.8 ;",
        f'DESIGN {design.name} ;',
        f"UNITS DISTANCE MICRONS {DEF_DBU} ;",
        "DIEAREA ( {} {} ) ( {} {} ) ;".format(*design.die),
        "",
        f"COMPONENTS {len(design.components)} ;",
    ]
    for comp in design.components:
        lines.append(
            f"- {comp.name} {comp.cell} + {comp.status} "
            f"( {comp.x} {comp.y} ) N ;"
        )
    lines.append("END COMPONENTS")
    lines.append("")
    lines.append(f"PINS {len(design.pins)} ;")
    for pin in design.pins:
        lines.append(
            f"- {pin.name} + NET n{pin.net} + DIRECTION {pin.direction} "
            f"+ PLACED ( {pin.x} {pin.y} ) N ;"
        )
    lines.append("END PINS")
    lines.append("")
    lines.append(f"NETS {len(design.nets)} ;")
    for net, members in design.nets.items():
        pins = " ".join(f"( {m} PIN )" for m in members)
        lines.append(f"- n{net} {pins} ;")
    lines.append("END NETS")
    lines.append("")
    lines.append("END DESIGN")
    return "\n".join(lines) + "\n"


def read_def(text: str) -> DefDesign:
    """Parse DEF text produced by :func:`write_def`."""
    design = DefDesign(name="", die=(0, 0, 0, 0))
    section = None
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("DESIGN ") and section is None:
            design.name = line.split()[1]
        elif line.startswith("DIEAREA"):
            tokens = [t for t in line.replace("(", " ").replace(")", " ").split()
                      if t.lstrip("-").isdigit()]
            design.die = tuple(int(t) for t in tokens[:4])
        elif line.startswith("COMPONENTS"):
            section = "components"
        elif line.startswith("PINS"):
            section = "pins"
        elif line.startswith("NETS"):
            section = "nets"
        elif line.startswith("END "):
            section = None
        elif line.startswith("- ") and section == "components":
            # - <name> <cell> + PLACED ( <x> <y> ) N ;
            tokens = line.split()
            x, y = int(tokens[6]), int(tokens[7])
            design.components.append(
                DefComponent(tokens[1], tokens[2], x, y, tokens[4])
            )
        elif line.startswith("- ") and section == "pins":
            # - <name> + NET n<id> + DIRECTION <dir> + PLACED ( <x> <y> ) N ;
            tokens = line.split()
            net = int(tokens[4][1:])
            direction = tokens[7]
            x, y = int(tokens[11]), int(tokens[12])
            design.pins.append(DefPin(tokens[1], net, direction, x, y))
        elif line.startswith("- ") and section == "nets":
            tokens = line.split()
            net = int(tokens[1][1:])
            members = [
                tokens[i + 1] for i, t in enumerate(tokens) if t == "("
            ]
            design.nets[net] = members
    return design
