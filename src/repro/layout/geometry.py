"""Planar geometry primitives for layout and DRC."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle; coordinates in micrometres."""

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self):
        if self.x1 < self.x0 or self.y1 < self.y0:
            raise ValueError(f"malformed rect {self}")

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def min_dimension(self) -> float:
        return min(self.width, self.height)

    @property
    def center(self) -> tuple[float, float]:
        return ((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)

    def intersects(self, other: "Rect") -> bool:
        """True when the interiors overlap (touching edges do not count)."""
        return (
            self.x0 < other.x1
            and other.x0 < self.x1
            and self.y0 < other.y1
            and other.y0 < self.y1
        )

    def distance(self, other: "Rect") -> float:
        """Euclidean gap between rectangles (0 when touching/overlapping)."""
        dx = max(0.0, max(self.x0, other.x0) - min(self.x1, other.x1))
        dy = max(0.0, max(self.y0, other.y0) - min(self.y1, other.y1))
        return (dx * dx + dy * dy) ** 0.5

    def grown(self, margin: float) -> "Rect":
        return Rect(
            self.x0 - margin, self.y0 - margin,
            self.x1 + margin, self.y1 + margin,
        )

    def translated(self, dx: float, dy: float) -> "Rect":
        return Rect(self.x0 + dx, self.y0 + dy, self.x1 + dx, self.y1 + dy)

    def union_bbox(self, other: "Rect") -> "Rect":
        return Rect(
            min(self.x0, other.x0), min(self.y0, other.y0),
            max(self.x1, other.x1), max(self.y1, other.y1),
        )


def bounding_box(rects: list[Rect]) -> Rect:
    """Tight bounding box of a non-empty rectangle list."""
    if not rects:
        raise ValueError("bounding box of no rectangles")
    return Rect(
        min(r.x0 for r in rects),
        min(r.y0 for r in rects),
        max(r.x1 for r in rects),
        max(r.y1 for r in rects),
    )


def wire_rect(x0: float, y0: float, x1: float, y1: float, width: float) -> Rect:
    """Rectangle for a wire segment centred on the given endpoints.

    Segments must be horizontal or vertical; ``width`` is the wire width.
    """
    half = width / 2.0
    if abs(x1 - x0) < 1e-9:  # vertical
        lo, hi = min(y0, y1), max(y0, y1)
        return Rect(x0 - half, lo - half, x0 + half, hi + half)
    if abs(y1 - y0) < 1e-9:  # horizontal
        lo, hi = min(x0, x1), max(x0, x1)
        return Rect(lo - half, y0 - half, hi + half, y0 + half)
    raise ValueError("wire segments must be axis-aligned")
