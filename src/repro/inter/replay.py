"""Verified-replay routing: reuse recorded maze paths, provably safely.

Routing dominates flow runtime, but the maze router's A* search for one
net only ever *reads* the usage/history of the grid cells it explores.
:class:`ReplayRouter` exploits that: every live route records the set of
cells whose cost was queried (the *explored set*).  On the next run it
walks the merged, sorted sequence of old and new nets while maintaining
the exact signed *divergence delta* — per grid cell, warm-run usage
minus recorded-run usage at this point of the sequence, plus the same
delta for congestion-history bumps:

* a net present in both runs with identical pins whose explored set
  contains no cell with a non-zero delta would see the exact cost
  landscape the recorded search saw, so its recorded path (or recorded
  failure) is substituted verbatim;
* otherwise the net routes live; every apply/unapply of a route charges
  the delta (+1 for warm events, -1 for the recorded run's events at
  the same sequence point), so cells where the two runs agree cancel
  to zero and leave the divergence.

The cancellation is what makes replay survive a congested design: a
live reroute that lands on the recorded path zeroes its own delta, so
one edited module perturbs the landscape only transiently instead of
poisoning every later explored-set test.

This is a proof, not a heuristic: the delta is exactly the usage
difference the two searches would observe, so a substituted net is one
the cold router would have routed identically, and warm and cold runs
produce the same :class:`~repro.pnr.route.RoutingResult` byte for byte
— including the insertion order of the routed-net dict, which
downstream GDS track assignment depends on.  A baseline recorded under
different grid parameters is discarded wholesale.

Rip-up rounds replay under the same argument: both runs bump history on
their congested cells at the top of each round (charged +1/-1 into the
history delta, cancelling where the congested sets agree), and a
victim's unapply charges the warm route out and the recorded run's
current route in.  Control flow — overflow checks, congested sets,
victim lists — is always computed live from true warm state, so round
counts and victim order match a cold run by construction; the recorded
rounds are consulted only to substitute individual reroutes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..pdk.node import ProcessNode
from ..pnr.placement import Placement
from ..pnr.route import GridRouter, RoutedNet, RoutingResult
from ..synth.mapped import MappedNetlist

Cell = tuple[int, int, int]


@dataclass
class NetRecord:
    """One net's initial-pass routing outcome plus its explored set."""

    pins: tuple[tuple[float, float], ...]
    explored: frozenset[Cell]
    #: Path cells (sorted) when routing succeeded, else None.
    cells: tuple[Cell, ...] | None
    pin_cells: frozenset[tuple[int, int]] = frozenset()
    wirelength_um: float = 0.0
    vias: int = 0

    def applied(self) -> set[Cell]:
        """Cells whose usage this net's route incremented."""
        if self.cells is None:
            return set()
        return {
            cell
            for cell in self.cells
            if (cell[0], cell[1]) not in self.pin_cells
        }


@dataclass
class RoundRecord:
    """One rip-up round: its congested set and per-victim reroutes."""

    congested: frozenset[Cell]
    records: dict[int, NetRecord] = field(default_factory=dict)


@dataclass
class RouteBaseline:
    """Full recording of one routing run, keyed for validity."""

    params: tuple
    records: dict[int, NetRecord] = field(default_factory=dict)
    rounds: list[RoundRecord] = field(default_factory=list)


@dataclass
class ReplayStats:
    replayed: int = 0
    routed: int = 0


class _Divergence:
    """Signed per-cell deltas between the warm and the recorded run.

    ``usage[cell]`` is warm usage minus recorded usage at the current
    point of the merged net sequence; ``hist`` the same for congestion
    -history bumps.  ``cells`` caches the union of non-zero keys so the
    per-net disjointness test is one set intersection.
    """

    def __init__(self) -> None:
        self.usage: dict[Cell, int] = {}
        self.hist: dict[Cell, int] = {}
        self.cells: set[Cell] = set()

    def _charge(self, table: dict[Cell, int], cells, sign: int) -> None:
        other = self.hist if table is self.usage else self.usage
        for cell in cells:
            value = table.get(cell, 0) + sign
            if value:
                table[cell] = value
                self.cells.add(cell)
            else:
                table.pop(cell, None)
                if cell not in other:
                    self.cells.discard(cell)

    def charge_usage(self, cells, sign: int) -> None:
        self._charge(self.usage, cells, sign)

    def charge_hist(self, cells, sign: int) -> None:
        self._charge(self.hist, cells, sign)

    def clean(self, explored: frozenset[Cell]) -> bool:
        return explored.isdisjoint(self.cells)


def _applied_cells(routed: RoutedNet) -> set[Cell]:
    """Cells whose usage ``routed`` increments (non-pin path cells)."""
    return {
        cell
        for cell in routed.cells
        if (cell[0], cell[1]) not in routed.pin_cells
    }


class ReplayRouter(GridRouter):
    """A :class:`GridRouter` that records and verifiably replays runs."""

    _tracking: set[Cell] | None = None

    def _cell_cost(self, cell: Cell) -> float:
        if self._tracking is not None:
            self._tracking.add(cell)
        return super()._cell_cost(cell)

    def _params(self, max_iterations: int, rip_up: bool) -> tuple:
        return (
            self.pitch, self.cols, self.rows, self.capacity,
            max_iterations, rip_up,
        )

    def route_with_baseline(
        self,
        baseline: RouteBaseline | None,
        max_iterations: int = 3,
        rip_up: bool = True,
    ) -> tuple[RoutingResult, RouteBaseline, ReplayStats]:
        """Route, substituting verified baseline paths where possible."""
        params = self._params(max_iterations, rip_up)
        old: dict[int, NetRecord] = {}
        if baseline is not None and baseline.params == params:
            old = baseline.records
        new_baseline = RouteBaseline(params=params)
        stats = ReplayStats()

        multi = {
            net: pins
            for net, pins in self.pins_by_net.items()
            if len(pins) >= 2
        }

        routed: dict[int, RoutedNet] = {}
        failed: list[int] = []
        div = _Divergence()
        with self.tracer.span("route.initial") as sp:
            for net in sorted(set(multi) | set(old)):
                record = old.get(net)
                if net not in multi:
                    # Net gone: the recorded run applied it here, the
                    # warm run never will.
                    if record is not None:
                        div.charge_usage(record.applied(), -1)
                    continue
                pins = tuple(multi[net])
                if (
                    record is not None
                    and record.pins == pins
                    and div.clean(record.explored)
                ):
                    # Cost landscape identical on every cell the recorded
                    # search touched: the cold router would do the same.
                    # Both runs apply the same route — delta unchanged.
                    stats.replayed += 1
                    new_baseline.records[net] = record
                    if record.cells is None:
                        failed.append(net)
                        continue
                    replayed = RoutedNet(
                        net=net,
                        cells=list(record.cells),
                        pin_cells=record.pin_cells,
                        wirelength_um=record.wirelength_um,
                        vias=record.vias,
                    )
                    routed[net] = replayed
                    self._apply_usage(replayed, +1)
                    continue
                self._tracking = explored = set()
                result = self._route_net(multi[net])
                self._tracking = None
                stats.routed += 1
                if record is not None:
                    div.charge_usage(record.applied(), -1)
                if result is None:
                    failed.append(net)
                    new_baseline.records[net] = NetRecord(
                        pins=pins, explored=frozenset(explored), cells=None,
                    )
                    continue
                result.net = net
                routed[net] = result
                self._apply_usage(result, +1)
                new_baseline.records[net] = NetRecord(
                    pins=pins,
                    explored=frozenset(explored),
                    cells=tuple(result.cells),
                    pin_cells=result.pin_cells,
                    wirelength_um=result.wirelength_um,
                    vias=result.vias,
                )
                div.charge_usage(new_baseline.records[net].applied(), +1)
            if self.tracer.enabled:
                sp.set(nets=len(routed), failed=len(failed),
                       overflow=self._overflow(),
                       replayed=stats.replayed, fresh=stats.routed)

        iterations = 1
        #: The baseline run's current route per net, evolved round by
        #: round alongside the warm run (used to charge the divergence
        #: set for rounds the warm run skips a victim in).
        base_current: dict[int, NetRecord] = dict(old)
        base_rounds = (
            baseline.rounds
            if baseline is not None and baseline.params == params
            else []
        )
        if rip_up:
            for round_idx in range(max_iterations - 1):
                if self._overflow() == 0:
                    break
                base_round = (
                    base_rounds[round_idx]
                    if round_idx < len(base_rounds)
                    else None
                )
                with self.tracer.span("route.rip_up") as sp:
                    congested = {
                        cell
                        for cell, used in self.usage.items()
                        if used > self.capacity
                    }
                    # Both runs bump history on their own congested set;
                    # the deltas cancel wherever the sets agree.
                    div.charge_hist(congested, +1)
                    if base_round is not None:
                        div.charge_hist(base_round.congested, -1)
                    for cell in congested:
                        self.history[cell] = self.history.get(cell, 0.0) + 2.0
                    victims = [
                        net
                        for net, rn in routed.items()
                        if any(cell in congested for cell in rn.cells)
                    ]
                    victim_set = set(victims)
                    victims_b = (
                        set(base_round.records)
                        if base_round is not None
                        else set()
                    )
                    new_round = RoundRecord(congested=frozenset(congested))
                    round_replayed = round_live = 0
                    for net in sorted(victim_set | victims_b):
                        brec = (
                            base_round.records.get(net)
                            if base_round is not None
                            else None
                        )
                        if net not in victim_set:
                            # Baseline ripped this net, the warm run did
                            # not: charge its unapply and reroute.
                            prev = base_current.get(net)
                            if prev is not None:
                                div.charge_usage(prev.applied(), +1)
                            div.charge_usage(brec.applied(), -1)
                            base_current[net] = brec
                            continue
                        pins = tuple(multi[net])
                        old_routed = routed[net]
                        self._apply_usage(old_routed, -1)
                        div.charge_usage(_applied_cells(old_routed), -1)
                        if brec is not None:
                            # The recorded run unapplied its own current
                            # route before searching this victim.
                            prev = base_current.get(net)
                            if prev is not None:
                                div.charge_usage(prev.applied(), +1)
                        if (
                            brec is not None
                            and brec.pins == pins
                            and div.clean(brec.explored)
                        ):
                            round_replayed += 1
                            stats.replayed += 1
                            new_round.records[net] = brec
                            base_current[net] = brec
                            # Both runs now apply brec — delta unchanged.
                            if brec.cells is None:
                                failed.append(net)
                                del routed[net]
                                continue
                            replayed = RoutedNet(
                                net=net,
                                cells=list(brec.cells),
                                pin_cells=brec.pin_cells,
                                wirelength_um=brec.wirelength_um,
                                vias=brec.vias,
                            )
                            routed[net] = replayed
                            self._apply_usage(replayed, +1)
                            continue
                        round_live += 1
                        stats.routed += 1
                        self._tracking = explored = set()
                        result = self._route_net(multi[net])
                        self._tracking = None
                        if result is None:
                            rec = NetRecord(
                                pins=pins,
                                explored=frozenset(explored),
                                cells=None,
                            )
                            failed.append(net)
                            del routed[net]
                        else:
                            result.net = net
                            rec = NetRecord(
                                pins=pins,
                                explored=frozenset(explored),
                                cells=tuple(result.cells),
                                pin_cells=result.pin_cells,
                                wirelength_um=result.wirelength_um,
                                vias=result.vias,
                            )
                            routed[net] = result
                            self._apply_usage(result, +1)
                        new_round.records[net] = rec
                        div.charge_usage(rec.applied(), +1)
                        if brec is not None:
                            div.charge_usage(brec.applied(), -1)
                            base_current[net] = brec
                    new_baseline.rounds.append(new_round)
                    iterations += 1
                    if self.tracer.enabled:
                        sp.set(iteration=iterations, victims=len(victims),
                               overflow=self._overflow(),
                               replayed=round_replayed, fresh=round_live)

        result = RoutingResult(
            nets=routed,
            grid_pitch_um=self.pitch,
            overflow=self._overflow(),
            iterations=iterations,
            failed_nets=failed,
        )
        return result, new_baseline, stats


def replay_route(
    mapped: MappedNetlist,
    placement: Placement,
    node: ProcessNode,
    baseline: RouteBaseline | None,
    rip_up: bool = True,
    max_iterations: int = 3,
    capacity: int = 4,
    tracer=None,
) -> tuple[RoutingResult, RouteBaseline, ReplayStats]:
    """Route ``mapped`` with baseline replay; returns the new baseline."""
    router = ReplayRouter(
        mapped, placement, node, capacity=capacity, tracer=tracer
    )
    return router.route_with_baseline(
        baseline, max_iterations=max_iterations, rip_up=rip_up
    )
