"""The Workspace session API: sub-second edit → re-verify loops.

:meth:`Workspace.open` runs one full flow over a design and keeps the
per-module content keys, the warm :class:`~repro.inter.session.EcoSession`
memos and the last :class:`~repro.core.flow.FlowResult`.
:meth:`Workspace.edit` then takes one module's new RTL text and:

1. parses it against the known module table and rebuilds the design
   tree, cloning only the ancestors of the edited module;
2. diffs the ripple-aware module keys (:mod:`repro.inter.hashes`) into
   a dirty set — a comment or formatting edit canonicalizes to an
   empty dirty set and returns the previous result untouched;
3. re-runs the flow through the warm session: clean modules hit the
   synthesis memo, the stitched netlist patches only the dirty shards'
   net blocks, untouched regions keep seed-stable placements, and the
   verified-replay router substitutes every recorded path whose cost
   landscape provably did not change;
4. proves the patch with a cone-limited LEC miter over the *dirty
   cones* — the forward taint closure of the dirty shards' cells.  The
   shard boundary makes the taint sound: a shard sees its children's
   signals as symbolic pseudo inputs, so per-shard synthesis can never
   optimize a cross-module dependency away, and the stitched netlist's
   structural dependencies are a superset of the design's functional
   ones.  Register state is a cut (correspondence is always checked in
   full), so taint stops at DFFs and dirty flops contribute their
   ``next(...)`` cones instead.

Any structural anomaly — an :class:`~repro.inter.hashes.InterError`
from the stitcher, a failed flow, a refuted or inconclusive cone proof
— falls back to a full rebuild on a fresh session, with a full LEC.
Because every eco engine is deterministic-modulo-memo, the incremental
result and the fallback rebuild are byte-identical either way.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.flow import FlowError, FlowResult, run_flow
from ..core.options import FlowOptions
from ..core.presets import FlowPreset
from ..formal.lec import LecResult, check_lec
from ..hdl.elaborate import _clone_expr
from ..hdl.ir import Module, Register, Signal
from ..hdl.verilog_parser import parse_verilog
from ..obs.metrics import MetricsRegistry, get_metrics
from ..obs.trace import Tracer, get_tracer
from ..pdk.pdks import Pdk
from ..pnr.hier import cell_region
from ..synth.mapped import MappedNetlist
from .hashes import InterError, dirty_modules, module_keys, module_table
from .session import EcoSession
from .stitch import instance_paths


@dataclass
class EditReport:
    """What one :meth:`Workspace.edit` call did and produced."""

    #: The module name the edit targeted.
    module: str
    #: Module names whose ripple-aware key changed (sorted).
    dirty: tuple[str, ...]
    #: True when the edit canonicalized to no logic change at all; the
    #: previous result is returned untouched and nothing re-ran.
    clean: bool
    result: FlowResult
    #: Cone-limited proof of the patch (None for clean edits).
    lec: LecResult | None
    #: Cone names the LEC miter actually proved.
    cones: tuple[str, ...] = ()
    #: Why the incremental path was abandoned (None when it held).
    fallback: str | None = None


def substitute_module(
    top: Module, target: str, replacement: Module
) -> Module:
    """The design tree with module ``target`` swapped for ``replacement``.

    Only ancestors of the target are cloned; every untouched subtree is
    shared with the old tree, so clean modules keep identical objects
    (and identical memo keys).
    """
    memo: dict[str, Module] = {}

    def rebuild(module: Module) -> Module:
        if module.name == target:
            return replacement
        cached = memo.get(module.name)
        if cached is not None:
            return cached
        children = [(inst, rebuild(inst.module)) for inst in module.instances]
        if all(new is inst.module for inst, new in children):
            memo[module.name] = module
            return module
        clone = Module(module.name)
        mapping: dict[Signal, Signal] = {}
        for sig in module.inputs:
            mapping[sig] = clone.add_input(sig.name, sig.width)
        for sig in module.outputs:
            mapping[sig] = clone.add_output(sig.name, sig.width)
        for sig in module.wires:
            mapping[sig] = clone.add_wire(sig.name, sig.width)
        for sig, expr in module.assigns.items():
            clone.assign(mapping[sig], _clone_expr(expr, mapping))
        for reg in module.registers:
            clone.registers.append(
                Register(
                    mapping[reg.signal],
                    _clone_expr(reg.next, mapping),
                    reg.reset_value,
                )
            )
        for inst, new_child in children:
            clone.add_instance(
                inst.name,
                new_child,
                {p: mapping[s] for p, s in inst.connections.items()},
            )
        memo[module.name] = clone
        return clone

    return rebuild(top)


def dirty_cones(
    top: Module, mapped: MappedNetlist, dirty: set[str]
) -> set[str]:
    """LEC cone names affected by the dirty modules (taint closure).

    Seeds are the combinational cells of every dirty instance's shard;
    taint propagates forward through combinational cells and stops at
    flops.  Affected cones: output ports whose nets are tainted, plus
    ``next(...)`` of every flop that sits in a dirty shard or whose
    input pins read a tainted net.
    """
    dirty_paths = {
        path
        for path, module in instance_paths(top)
        if module.name in dirty
    }
    dirty_cells = {
        inst.name
        for inst in mapped.cells
        if cell_region(inst.name) in dirty_paths
    }

    driver = mapped.net_driver()
    loads = mapped.net_loads()
    driven_by: dict[str, list[int]] = {}
    for net, inst in driver.items():
        driven_by.setdefault(inst.name, []).append(net)

    tainted: set[int] = set()
    work: list[int] = []
    for inst in mapped.comb_cells:
        if inst.name in dirty_cells:
            for net in driven_by.get(inst.name, ()):
                if net not in tainted:
                    tainted.add(net)
                    work.append(net)
    while work:
        net = work.pop()
        for sink, _pin in loads.get(net, ()):
            if sink.cell.is_sequential:
                continue
            for out_net in driven_by.get(sink.name, ()):
                if out_net not in tainted:
                    tainted.add(out_net)
                    work.append(out_net)

    cones: set[str] = set()
    for name, nets in mapped.outputs.items():
        if any(net in tainted for net in nets):
            cones.add(name)
    for inst in mapped.seq_cells:
        if inst.name in dirty_cells or any(
            inst.pins[pin] in tainted for pin in inst.cell.inputs
        ):
            cones.add(f"next({inst.tag.rpartition('[')[0]})")
    return cones


class Workspace:
    """One open design under interactive editing.  Use :meth:`open`."""

    def __init__(
        self,
        design: Module,
        pdk: Pdk,
        opts: FlowOptions,
        session: EcoSession,
        result: FlowResult,
        cache=None,
        cache_hit: bool = False,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ):
        self.pdk = pdk
        self.opts = opts
        self.cache = cache
        #: Whether :meth:`open` was served from the campaign result cache.
        self.cache_hit = cache_hit
        self.tracer = tracer if tracer is not None else get_tracer()
        self.metrics = metrics if metrics is not None else get_metrics()
        self._session = session
        self._top = design
        self._table = module_table(design)
        self._keys = module_keys(design)
        self._result = result
        self.edits = 0
        self.fallbacks = 0

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def open(
        cls,
        design: Module,
        pdk: Pdk,
        options: FlowOptions | FlowPreset | str | None = None,
        cache=None,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> "Workspace":
        """Run one full flow over ``design`` and keep the session warm.

        ``options`` follows :func:`~repro.core.run_flow` conventions (a
        :class:`FlowOptions`, a preset, a preset name, or ``None``); the
        preset's placer is overridden to the region-stable ``"hier"``
        placer, which both incremental and fallback rebuilds share.
        ``cache`` (a :class:`~repro.campaign.cache.ResultCache`) serves
        the opening flow from the campaign's memo when it already holds
        an identical request.
        """
        if options is None:
            opts = FlowOptions()
        elif isinstance(options, FlowOptions):
            opts = options
        else:
            opts = FlowOptions(preset=options)
        if opts.formal_lec:
            raise ValueError(
                "Workspace cannot run formal_lec flows: eco synthesis "
                "produces no flat gate netlist; edits are proved by the "
                "workspace's own cone-limited LEC instead"
            )
        if opts.eco is not None:
            raise ValueError("options already carry an eco session")
        tracer = tracer if tracer is not None else get_tracer()
        metrics = metrics if metrics is not None else get_metrics()
        session = EcoSession(metrics)
        opts = opts.replace(
            preset=replace(opts.preset, placer="hier"), eco=session
        )

        with tracer.span("inter.open", design=design.name) as sp:
            cache_key = None
            result = None
            cache_hit = False
            if cache is not None:
                from ..campaign.cache import result_cache_key

                cache_key = result_cache_key(design, pdk.name, opts)
                result = cache.get(cache_key)
                cache_hit = result is not None
            if result is None:
                result = run_flow(
                    design, pdk, options=opts, tracer=tracer,
                    metrics=metrics,
                )
                if cache is not None and cache_key is not None:
                    cache.put(cache_key, result)
            if tracer.enabled:
                sp.set(cache_hit=cache_hit, ok=result.ok)
        metrics.counter("inter.opens").inc()
        return cls(
            design, pdk, opts, session, result,
            cache=cache, cache_hit=cache_hit,
            tracer=tracer, metrics=metrics,
        )

    @property
    def result(self) -> FlowResult:
        """The last committed flow result."""
        return self._result

    @property
    def design(self) -> Module:
        """The current design tree."""
        return self._top

    def rtl_of(self, module_name: str) -> str:
        """Canonical Verilog of one current module (instances included)."""
        from ..hdl.verilog import to_verilog

        return to_verilog(self._table[module_name])

    # -- the edit loop -------------------------------------------------------

    def edit(self, module_name: str, new_rtl: str) -> EditReport:
        """Apply one module's new RTL text; returns the re-verified result.

        ``new_rtl`` may reference any other module of the design by name
        (they are pre-registered with the parser); it may also rename
        the module, which dirties every instantiating parent.
        """
        if module_name not in self._table:
            raise KeyError(
                f"no module named {module_name!r} in design "
                f"{self._top.name!r}"
            )
        known = {
            name: module
            for name, module in self._table.items()
            if name != module_name
        }
        edited = parse_verilog(new_rtl, known=known)
        self.edits += 1
        self.metrics.counter("inter.edits").inc()

        with self.tracer.span(
            "inter.edit", design=self._top.name, module=module_name
        ) as sp:
            new_top = substitute_module(self._top, module_name, edited)
            with self.tracer.span("inter.dirty_set") as dirty_sp:
                new_keys = module_keys(new_top)
                dirty = dirty_modules(self._keys, new_keys)
                if self.tracer.enabled:
                    dirty_sp.set(dirty=len(dirty))
            if not dirty:
                if self.tracer.enabled:
                    sp.set(clean=True, dirty=0)
                return EditReport(
                    module=module_name, dirty=(), clean=True,
                    result=self._result, lec=None,
                )

            try:
                result = run_flow(
                    new_top, self.pdk, options=self.opts,
                    tracer=self.tracer, metrics=self.metrics,
                )
                if result.synthesis is None:
                    raise InterError("incremental flow produced no netlist")
                cones = dirty_cones(new_top, result.synthesis.mapped, dirty)
                with self.tracer.span(
                    "inter.lec", cones=len(cones)
                ) as lec_sp:
                    lec = check_lec(
                        new_top, result.synthesis.mapped, cones=cones,
                        tracer=self.tracer, metrics=self.metrics,
                    )
                    if self.tracer.enabled:
                        lec_sp.set(equivalent=lec.equivalent)
                if not lec.equivalent or lec.inconclusive:
                    raise InterError(
                        "cone-limited LEC did not prove the patch: "
                        + "; ".join(
                            str(cx) for cx in lec.counterexamples[:2]
                        )
                    )
            except (InterError, FlowError) as exc:
                return self._fallback(
                    new_top, new_keys, module_name, dirty, str(exc), sp
                )

            self._commit(new_top, new_keys, result)
            if self.tracer.enabled:
                sp.set(clean=False, dirty=len(dirty), cones=len(cones))
            return EditReport(
                module=module_name,
                dirty=tuple(sorted(dirty)),
                clean=False,
                result=result,
                lec=lec,
                cones=tuple(sorted(cones)),
            )

    # -- internals -----------------------------------------------------------

    def _fallback(
        self,
        new_top: Module,
        new_keys: dict[str, str],
        module_name: str,
        dirty: set[str],
        reason: str,
        edit_span,
    ) -> EditReport:
        """Full rebuild on a fresh session, with an unrestricted LEC."""
        self.fallbacks += 1
        self.metrics.counter("inter.fallbacks").inc()
        with self.tracer.span("inter.fallback", module=module_name) as sp:
            session = EcoSession(self.metrics)
            opts = self.opts.replace(eco=session)
            result = run_flow(
                new_top, self.pdk, options=opts,
                tracer=self.tracer, metrics=self.metrics,
            )
            lec = None
            if result.synthesis is not None:
                lec = check_lec(
                    new_top, result.synthesis.mapped,
                    tracer=self.tracer, metrics=self.metrics,
                )
                if not lec.equivalent:
                    raise FlowError(
                        f"full LEC failed after fallback rebuild of "
                        f"{new_top.name!r}: "
                        + "; ".join(
                            str(cx) for cx in lec.counterexamples[:2]
                        )
                    )
            self._session = session
            self.opts = opts
            self._commit(new_top, new_keys, result)
            if self.tracer.enabled:
                sp.set(reason=reason[:200])
        if self.tracer.enabled:
            edit_span.set(clean=False, dirty=len(dirty), fallback=True)
        return EditReport(
            module=module_name,
            dirty=tuple(sorted(dirty)),
            clean=False,
            result=result,
            lec=lec,
            fallback=reason,
        )

    def _commit(
        self, new_top: Module, new_keys: dict[str, str], result: FlowResult
    ) -> None:
        self._top = new_top
        self._table = module_table(new_top)
        self._keys = new_keys
        self._result = result
