"""The incremental-compilation engine behind a :class:`Workspace`.

An :class:`EcoSession` is handed to :func:`repro.core.run_flow` through
``FlowOptions.eco`` and replaces three stages with memoizing engines:

* **lint** — the top-module RTL report is memoized on the module's
  content hash (the flow lints the top module; a clean top is a memo
  hit);
* **synthesis** — every unique module is synthesized once on its
  stripped form and the full mapped netlist is stitched from shards
  (:mod:`repro.inter.stitch`);
* **routing** — the verified-replay router substitutes recorded paths
  whose cost landscape provably did not change
  (:mod:`repro.inter.replay`).

All three are deterministic-modulo-memo: a memo hit returns exactly
what a recompute would, so a warm session and a fresh cold one produce
byte-identical flow results.  The session itself carries no design
state besides memos — the :class:`~repro.inter.workspace.Workspace`
owns the edit loop.
"""

from __future__ import annotations

import hashlib

from ..hdl.ir import Module
from ..hdl.verilog import count_rtl_lines
from ..lint import LintReport, Waiver, lint_module
from ..obs.metrics import MetricsRegistry, get_metrics
from ..obs.trace import Tracer, get_tracer
from ..pdk.cells import Library
from ..pdk.node import ProcessNode
from ..pnr.placement import Placement
from ..pnr.route import RoutingResult
from ..resil.cachekey import canonical
from ..synth.mapped import MappedNetlist
from ..synth.mapper import MapStats
from ..synth.opt import OptStats
from ..synth.sizing import SizingStats
from ..synth.synthesize import SynthesisResult
from ..synth.verify import check_equivalence
from .hashes import content_hash, module_table
from .replay import ReplayRouter, RouteBaseline
from .stitch import Shard, instance_paths, shard_memo_key, stitch, \
    synthesize_shard


#: Rip-up iteration ceiling for session routing.  The classic flow caps
#: at 8 rounds and accepts residual overflow; an edit session instead
#: routes to convergence, because rounds that end (overflow 0) are
#: rounds a warm rerun can replay instead of churning through live.
ECO_ROUTE_ITERATIONS = 32


class EcoSession:
    """Memo stores plus the three stage engines of one edit session."""

    def __init__(self, metrics: MetricsRegistry | None = None):
        self.metrics = metrics if metrics is not None else get_metrics()
        self._shards: dict[str, Shard] = {}
        self._lint_memo: dict[str, LintReport] = {}
        self._route_baseline: RouteBaseline | None = None

    # -- lint ----------------------------------------------------------------

    def lint_rtl(
        self,
        module: Module,
        waivers: tuple[Waiver, ...],
        tracer: Tracer | None = None,
    ) -> LintReport:
        """Top-module RTL lint, memoized on content hash + waivers."""
        tracer = get_tracer() if tracer is None else tracer
        payload = {
            "content": content_hash(module),
            "waivers": [w.to_dict() for w in waivers],
        }
        key = hashlib.sha256(
            repr(canonical(payload)).encode("utf-8")
        ).hexdigest()[:24]
        report = self._lint_memo.get(key)
        if report is not None:
            self.metrics.counter("inter.lint.memo_hits").inc()
            with tracer.span("inter.lint.memo", target=module.name):
                pass
            return report
        self.metrics.counter("inter.lint.memo_misses").inc()
        report = lint_module(module, waivers=waivers, tracer=tracer)
        self._lint_memo[key] = report
        return report

    # -- synthesis -----------------------------------------------------------

    def synthesize(
        self,
        module: Module,
        library: Library,
        preset,
        seed: int,
        tracer: Tracer | None = None,
    ) -> SynthesisResult:
        """Per-module memoized synthesis, stitched to one mapped netlist.

        Mirrors :func:`repro.synth.synthesize`'s span structure
        (``step.synthesis`` / ``step.technology_mapping`` /
        ``step.equivalence_check``) so the flow runner's step reports
        read the same attributes either way.  ``netlist`` is ``None`` in
        the returned result: there is no flat gate netlist to expose, so
        flows that need one (``formal_lec``) cannot run eco-style.
        """
        tracer = get_tracer() if tracer is None else tracer
        rtl_lines = count_rtl_lines(module)
        table = module_table(module)
        paths = instance_paths(module)

        with tracer.span("step.synthesis", module=module.name) as synth_span:
            shards: dict[str, Shard] = {}
            hits = misses = 0
            for name in sorted(table):
                key = shard_memo_key(table[name], library, preset)
                shard = self._shards.get(key)
                if shard is None:
                    misses += 1
                    with tracer.span("inter.shard", module=name) as sp:
                        shard = synthesize_shard(table[name], library, preset)
                        if tracer.enabled:
                            sp.set(cells=len(shard.mapped.cells))
                    self._shards[key] = shard
                else:
                    hits += 1
                shards[name] = shard
            self.metrics.counter("inter.synth.memo_hits").inc(hits)
            self.metrics.counter("inter.synth.memo_misses").inc(misses)

            # Stats aggregate over instance paths: a module used twice
            # contributes twice, like it would in a flat elaboration.
            opt = OptStats()
            patterns: dict[str, int] = {}
            sizing = SizingStats() if preset.gate_sizing else None
            for _path, m in paths:
                shard = shards[m.name]
                opt.gates_before += shard.opt_stats.gates_before
                opt.gates_after += shard.opt_stats.gates_after
                opt.iterations = max(
                    opt.iterations, shard.opt_stats.iterations
                )
                for rule, n in shard.opt_stats.rules.items():
                    opt.rules[rule] = opt.rules.get(rule, 0) + n
                for pattern, n in shard.map_stats.patterns.items():
                    patterns[pattern] = patterns.get(pattern, 0) + n
                if sizing is not None and shard.sizing_stats is not None:
                    sizing.upsized += shard.sizing_stats.upsized
                    sizing.examined += shard.sizing_stats.examined
            if tracer.enabled:
                synth_span.set(
                    gates_raw=opt.gates_before,
                    gates_optimized=opt.gates_after,
                    memo_hits=hits, memo_misses=misses,
                )

        with tracer.span("step.technology_mapping") as map_span:
            with tracer.span("inter.stitch", shards=len(shards)):
                mapped = stitch(module, shards, library)
            if tracer.enabled:
                map_span.set(cells=len(mapped.cells))

        with tracer.span(
            "step.equivalence_check", checked=preset.run_equivalence
        ) as sp:
            equivalence = (
                check_equivalence(
                    module, mapped, cycles=preset.equivalence_cycles,
                    seed=seed, tracer=tracer,
                )
                if preset.run_equivalence
                else None
            )
            if equivalence is not None and tracer.enabled:
                sp.set(passed=equivalence.passed,
                       cycles=preset.equivalence_cycles)

        return SynthesisResult(
            module=module,
            netlist=None,
            mapped=mapped,
            opt_stats=opt,
            map_stats=MapStats(patterns=patterns),
            sizing_stats=sizing,
            equivalence=equivalence,
            rtl_lines=rtl_lines,
        )

    # -- routing -------------------------------------------------------------

    def route(
        self,
        mapped: MappedNetlist,
        placement: Placement,
        node: ProcessNode,
        rip_up: bool = True,
        capacity: int = 4,
        max_iterations: int = 8,
        tracer: Tracer | None = None,
    ) -> RoutingResult:
        """Route with verified replay against the session baseline."""
        router = ReplayRouter(
            mapped, placement, node, capacity=capacity, tracer=tracer
        )
        result, baseline, stats = router.route_with_baseline(
            self._route_baseline,
            max_iterations=max(max_iterations, ECO_ROUTE_ITERATIONS),
            rip_up=rip_up,
        )
        self._route_baseline = baseline
        self.metrics.counter("inter.route.replayed").inc(stats.replayed)
        self.metrics.counter("inter.route.routed").inc(stats.routed)
        return result
