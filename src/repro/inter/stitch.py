"""Hierarchical shard synthesis and deterministic netlist stitching.

Each unique module is synthesized once on its stripped form (instances
removed, boundary signals promoted to pseudo ports) and memoized by
content hash.  :func:`stitch` then assembles one flat
:class:`~repro.synth.mapped.MappedNetlist` for the whole design through
the netlist mutation API:

* every instance path gets its own net-id block with power-of-two
  headroom, so net ids are a function of the *current* design shape and
  small edits keep every clean instance's ids;
* port bonds (child port net ↔ parent signal net) are resolved by
  union-find down to the smallest id in each electrical class;
* cell names are ``{path}.{local}`` and DFF tags ``{path}.{reg}[i]`` —
  identical to the names :func:`~repro.hdl.elaborate.elaborate` gives
  flat signals, so register correspondence in equivalence checking and
  the ``*_DFF`` clock-tree sink filter keep working unchanged.

Everything here is deterministic-modulo-memo: a memo hit returns the
object a recompute would rebuild, so stitching a warm session and a
cold one produce byte-identical netlists.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hdl.ir import Module
from ..obs.trace import Tracer
from ..pdk.cells import Library
from ..resil.cachekey import canonical
from ..synth.mapped import MappedNetlist
from ..synth.synthesize import synthesize
from .hashes import InterError, content_hash, strip_module

import hashlib


@dataclass
class Shard:
    """One module's synthesized stripped form plus its stats."""

    module_name: str
    mapped: MappedNetlist
    opt_stats: object
    map_stats: object
    sizing_stats: object | None


def shard_memo_key(module: Module, library: Library, preset) -> str:
    """Memo key: stripped content plus every synthesis-affecting knob."""
    payload = {
        "content": content_hash(module),
        "library": library.name,
        "objective": preset.mapping_objective,
        "opt_passes": canonical(preset.opt_passes),
        "sizing": preset.gate_sizing,
        "max_load": preset.max_load_per_drive_ff,
    }
    return hashlib.sha256(
        repr(canonical(payload)).encode("utf-8")
    ).hexdigest()[:24]


def synthesize_shard(module: Module, library: Library, preset) -> Shard:
    """Synthesize one module's stripped form.

    Runs on a private tracer: shard spans would otherwise shadow the
    flow-level ``step.*`` spans the step reports are derived from.
    """
    result = synthesize(
        strip_module(module),
        library,
        objective=preset.mapping_objective,
        opt_passes=preset.opt_passes,
        sizing=preset.gate_sizing,
        max_load_per_drive_ff=preset.max_load_per_drive_ff,
        verify=False,
        tracer=Tracer(),
    )
    return Shard(
        module_name=module.name,
        mapped=result.mapped,
        opt_stats=result.opt_stats,
        map_stats=result.map_stats,
        sizing_stats=result.sizing_stats,
    )


def instance_paths(top: Module) -> list[tuple[str, Module]]:
    """Every instance path of the design tree, parents before children.

    The top module is path ``""``; a child of ``u_cpu`` at instance name
    ``u_alu`` is ``u_cpu.u_alu``.  Raises on duplicate paths.
    """
    paths: list[tuple[str, Module]] = [("", top)]
    seen = {""}

    def walk(prefix: str, module: Module) -> None:
        for inst in module.instances:
            path = f"{prefix}.{inst.name}" if prefix else inst.name
            if path in seen:
                raise InterError(f"duplicate instance path {path!r}")
            seen.add(path)
            paths.append((path, inst.module))
            walk(path, inst.module)

    walk("", top)
    return paths


def _block_size(n_nets: int) -> int:
    """Power-of-two block covering ``n_nets`` ids with >=2x headroom."""
    return 1 << max(5, (2 * max(1, n_nets)).bit_length())


def stitch(
    top: Module, shards: dict[str, Shard], library: Library
) -> MappedNetlist:
    """Assemble the full-design mapped netlist from per-module shards."""
    paths = instance_paths(top)
    for _, module in paths:
        if module.name not in shards:
            raise InterError(f"no shard for module {module.name!r}")

    bases: dict[str, int] = {}
    cursor = 0
    for path, module in paths:
        bases[path] = cursor
        cursor += _block_size(shards[module.name].mapped.n_nets)

    # Union-find over preliminary global ids; the class representative
    # is the smallest id, which belongs to the earliest path in DFS
    # order (parents come first, the top's real ports win).
    parent: dict[int, int] = {}

    def find(g: int) -> int:
        root = g
        while parent.get(root, root) != root:
            root = parent[root]
        while parent.get(g, g) != g:
            parent[g], g = root, parent[g]
        return root

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            lo, hi = (ra, rb) if ra < rb else (rb, ra)
            parent[hi] = lo

    def port_nets(path: str, module: Module, name: str, width: int) -> list[int]:
        mapped = shards[module.name].mapped
        nets = mapped.inputs.get(name)
        if nets is None:
            nets = mapped.outputs.get(name)
        if nets is None:
            raise InterError(
                f"shard {module.name!r} exposes no port {name!r}"
            )
        if len(nets) != width:
            raise InterError(
                f"shard {module.name!r} port {name!r} is {len(nets)} bits, "
                f"expected {width}"
            )
        base = bases[path]
        return [base + net for net in nets]

    for path, module in paths:
        for inst in module.instances:
            child_path = f"{path}.{inst.name}" if path else inst.name
            child = inst.module
            port_widths = {
                p.name: p.width for p in (*child.inputs, *child.outputs)
            }
            for port_name in sorted(inst.connections):
                signal = inst.connections[port_name]
                width = port_widths.get(port_name)
                if width is None:
                    raise InterError(
                        f"{child.name!r} has no port {port_name!r}"
                    )
                if signal.width != width:
                    raise InterError(
                        f"connection {path or top.name}.{inst.name}."
                        f"{port_name}: {signal.width} bits vs {width}"
                    )
                for a, b in zip(
                    port_nets(path, module, signal.name, signal.width),
                    port_nets(child_path, child, port_name, width),
                ):
                    union(a, b)

    stitched = MappedNetlist(top.name, library)
    for path, module in paths:
        shard = shards[module.name].mapped
        prefix = f"{path}." if path else ""
        base = bases[path]
        for inst in shard.cells:
            stitched.add_cell(
                inst.cell,
                {pin: find(base + net) for pin, net in inst.pins.items()},
                reset_value=inst.reset_value,
                tag=f"{prefix}{inst.tag}" if inst.tag else "",
                name=f"{prefix}{inst.name}",
            )

    for direction, ports in (("input", top.inputs), ("output", top.outputs)):
        for sig in ports:
            stitched.set_port(
                direction,
                sig.name,
                [
                    find(net)
                    for net in port_nets("", top, sig.name, sig.width)
                ],
            )
    stitched.n_nets = cursor
    return stitched
