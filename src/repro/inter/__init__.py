"""Interactive edit loops: incremental recompilation for the full flow.

The paper's enablement gap is as much about *iteration latency* as about
access: a student who waits minutes per edit runs out of lab time long
before running out of ideas.  This package closes the loop to sub-second
scale without giving up any signoff guarantee:

* :mod:`~repro.inter.hashes` — per-module content hashing and the
  ripple-aware dirty set;
* :mod:`~repro.inter.stitch` — memoized per-module synthesis and the
  deterministic netlist stitcher;
* :mod:`~repro.inter.replay` — verified-replay routing (recorded maze
  paths substituted only when provably unaffected);
* :mod:`~repro.inter.session` — the :class:`EcoSession` engine bundle
  injected into :func:`~repro.core.run_flow` via ``FlowOptions.eco``;
* :mod:`~repro.inter.workspace` — the :class:`Workspace` session API:
  ``open`` once, ``edit`` in a loop, every patch proved by a
  cone-limited LEC miter with a full-rebuild fallback.

Everything is deterministic-modulo-memo: an incremental run and a
from-scratch rebuild of the same design produce byte-identical flow
results and GDS.
"""

from .hashes import (
    InterError,
    content_hash,
    dirty_modules,
    module_keys,
    module_table,
    strip_module,
)
from .replay import ReplayRouter, RouteBaseline, replay_route
from .session import EcoSession
from .stitch import Shard, instance_paths, shard_memo_key, stitch, \
    synthesize_shard
from .workspace import EditReport, Workspace, dirty_cones, substitute_module

__all__ = [
    "EcoSession",
    "EditReport",
    "InterError",
    "ReplayRouter",
    "RouteBaseline",
    "Shard",
    "Workspace",
    "content_hash",
    "dirty_cones",
    "dirty_modules",
    "instance_paths",
    "module_keys",
    "module_table",
    "replay_route",
    "shard_memo_key",
    "stitch",
    "strip_module",
    "substitute_module",
    "synthesize_shard",
]
