"""Per-module content hashing: the dirty-set oracle for edit loops.

Each module of a hierarchical design gets two digests:

* :func:`content_hash` — a hash of the module's *own* logic only.  The
  module is stripped of its instances (connection signals become pseudo
  ports) and re-emitted as canonical Verilog, so formatting, comments
  and declaration noise never perturb it.  This is the memo key for
  per-module synthesis and the unit of "this logic changed".
* :func:`module_key` — the content hash folded with each child
  instance's name, module name and module key, recursively.  Any change
  below a module — a rename, a parameter that alters child logic, a
  port-width change — ripples up through this key, which is what the
  dirty set is diffed on.

Both reuse :func:`repro.resil.cachekey.canonical` for knob payloads so
the whole toolkit hashes values one way.
"""

from __future__ import annotations

import hashlib

from ..hdl.elaborate import _clone_expr
from ..hdl.ir import Module, Ref, Signal
from ..hdl.verilog import to_verilog
from ..resil.cachekey import canonical


class InterError(Exception):
    """A structural anomaly in the incremental engine.

    The workspace treats any of these as "fall back to a full rebuild";
    they are never user errors.
    """


def module_table(top: Module) -> dict[str, Module]:
    """Unique modules of the design tree, keyed by name.

    Raises :class:`InterError` when two distinct module objects share a
    name — the hierarchy would be ambiguous to rebuild.
    """
    table: dict[str, Module] = {}

    def walk(module: Module) -> None:
        seen = table.get(module.name)
        if seen is module:
            return
        if seen is not None:
            raise InterError(
                f"two different modules are both named {module.name!r}"
            )
        table[module.name] = module
        for inst in module.instances:
            walk(inst.module)

    walk(top)
    return table


def strip_module(module: Module) -> Module:
    """A clone of ``module`` with its instances removed.

    Connection signals are promoted to pseudo ports so the stripped
    module stays a valid, synthesizable unit whose mapped shard exposes
    every boundary net:

    * a signal *driven by* a child instance becomes an input (demoting a
      real output if necessary — the stitcher re-exports it);
    * a signal the parent drives *into* a child becomes an output
      (unless it already is a port).

    The result is a pure function of the module's own logic plus its
    boundary shape, which is exactly what per-module synthesis may
    depend on.
    """
    instance_driven: set[Signal] = set()
    child_fed: set[Signal] = set()
    for inst in module.instances:
        child = inst.module
        child_inputs = {port.name for port in child.inputs}
        for port_name, signal in inst.connections.items():
            if port_name in child_inputs:
                child_fed.add(signal)
            else:
                instance_driven.add(signal)

    stripped = Module(module.name)
    mapping: dict[Signal, Signal] = {}
    for sig in module.signals:  # declaration order: deterministic
        if sig in instance_driven:
            mapping[sig] = stripped.add_input(sig.name, sig.width)
        elif sig in module.inputs:
            mapping[sig] = stripped.add_input(sig.name, sig.width)
        elif sig in module.outputs or sig in child_fed:
            mapping[sig] = stripped.add_output(sig.name, sig.width)
        else:
            mapping[sig] = stripped.add_wire(sig.name, sig.width)

    for target, expr in module.assigns.items():
        stripped.assign(mapping[target], _clone_expr(expr, mapping))
    for reg in module.registers:
        stripped.registers.append(
            type(reg)(
                mapping[reg.signal],
                _clone_expr(reg.next, mapping),
                reg.reset_value,
            )
        )
    return stripped


def content_hash(module: Module) -> str:
    """Digest of the module's own logic, canonicalized.

    Parsing the edited text into IR and re-emitting it collapses
    comments, whitespace and declaration ordering noise, so an edit that
    does not change the logic hashes identically.
    """
    text = to_verilog(strip_module(module))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:24]


def module_keys(top: Module) -> dict[str, str]:
    """Ripple-aware digest per module name (see module docstring)."""
    keys: dict[str, str] = {}

    def key_of(module: Module) -> str:
        cached = keys.get(module.name)
        if cached is not None:
            return cached
        payload = {
            "content": content_hash(module),
            "children": [
                [inst.name, inst.module.name, key_of(inst.module)]
                for inst in module.instances
            ],
        }
        digest = hashlib.sha256(
            repr(canonical(payload)).encode("utf-8")
        ).hexdigest()[:24]
        keys[module.name] = digest
        return digest

    key_of(top)
    return keys


def dirty_modules(
    old_keys: dict[str, str], new_keys: dict[str, str]
) -> set[str]:
    """Module names whose ripple-aware key changed (or appeared)."""
    return {
        name
        for name, key in new_keys.items()
        if old_keys.get(name) != key
    }
