"""A tiny software stack: expression compiler + stack virtual machine.

The paper's introduction contrasts productivity regimes: "a single line
of Python code can generate thousands of assembly instructions", while a
line of RTL yields 5–20 gates.  To make that contrast measurable inside
one repository, this module compiles a small expression language (plus
vector intrinsics) to a stack machine and counts the emitted
instructions; :mod:`repro.analytics.productivity` compares the counts
against gates-per-RTL-line from synthesis (experiment E2).

Supported source: one assignment or expression per line over integer
scalars, and the vector intrinsics ``vadd/vsub/vmul(dst, a, b, n)`` which
expand (like an unrolled memcpy-style kernel) into ``4 n`` instructions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field


class CompileError(Exception):
    """Raised for source outside the supported expression subset."""


@dataclass(frozen=True)
class Instruction:
    op: str
    arg: object | None = None

    def __str__(self) -> str:
        return self.op if self.arg is None else f"{self.op} {self.arg}"


_BINOPS = {
    ast.Add: "ADD",
    ast.Sub: "SUB",
    ast.Mult: "MUL",
    ast.FloorDiv: "DIV",
    ast.Mod: "MOD",
    ast.BitAnd: "AND",
    ast.BitOr: "OR",
    ast.BitXor: "XOR",
    ast.LShift: "SHL",
    ast.RShift: "SHR",
}

_VECTOR_OPS = {"vadd": "ADD", "vsub": "SUB", "vmul": "MUL"}


@dataclass
class Program:
    """Compiled program plus per-source-line instruction attribution."""

    instructions: list[Instruction] = field(default_factory=list)
    per_line: dict[int, int] = field(default_factory=dict)
    source_lines: int = 0

    @property
    def instruction_count(self) -> int:
        return len(self.instructions)

    def instructions_per_line(self) -> float:
        if self.source_lines == 0:
            return 0.0
        return self.instruction_count / self.source_lines

    def max_expansion(self) -> int:
        """Largest number of instructions emitted by any single line."""
        return max(self.per_line.values(), default=0)

    def listing(self) -> str:
        return "\n".join(str(i) for i in self.instructions)


class Compiler:
    """Compiles source text line by line."""

    def compile(self, source: str) -> Program:
        program = Program()
        lines = [
            (number, line)
            for number, line in enumerate(source.splitlines(), start=1)
            if line.strip() and not line.strip().startswith("#")
        ]
        program.source_lines = len(lines)
        for number, line in lines:
            before = len(program.instructions)
            self._compile_line(line.strip(), program)
            program.per_line[number] = len(program.instructions) - before
        return program

    def _compile_line(self, line: str, program: Program) -> None:
        try:
            tree = ast.parse(line)
        except SyntaxError as exc:
            raise CompileError(f"syntax error: {line!r}") from exc
        if len(tree.body) != 1:
            raise CompileError("one statement per line")
        stmt = tree.body[0]
        emit = program.instructions.append

        if isinstance(stmt, ast.Assign):
            if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], ast.Name):
                raise CompileError("only simple assignments supported")
            self._expr(stmt.value, emit)
            emit(Instruction("STORE", stmt.targets[0].id))
            return
        if isinstance(stmt, ast.Expr):
            value = stmt.value
            if (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in _VECTOR_OPS
            ):
                self._vector(value, emit)
                return
            self._expr(value, emit)
            return
        raise CompileError(f"unsupported statement {type(stmt).__name__}")

    def _vector(self, call: ast.Call, emit) -> None:
        """vadd(dst, a, b, n): unrolled element-wise kernel, 4n instrs."""
        op = _VECTOR_OPS[call.func.id]
        if len(call.args) != 4:
            raise CompileError(f"{call.func.id} takes (dst, a, b, n)")
        dst, a, b, n = call.args
        for arg in (dst, a, b):
            if not isinstance(arg, ast.Name):
                raise CompileError("vector operands must be names")
        if not (isinstance(n, ast.Constant) and isinstance(n.value, int)):
            raise CompileError("vector length must be a constant")
        for i in range(n.value):
            emit(Instruction("LOAD", f"{a.id}[{i}]"))
            emit(Instruction("LOAD", f"{b.id}[{i}]"))
            emit(Instruction(op))
            emit(Instruction("STORE", f"{dst.id}[{i}]"))

    def _expr(self, node: ast.expr, emit) -> None:
        if isinstance(node, ast.Constant):
            if not isinstance(node.value, int):
                raise CompileError("only integer constants")
            emit(Instruction("PUSH", node.value))
            return
        if isinstance(node, ast.Name):
            emit(Instruction("LOAD", node.id))
            return
        if isinstance(node, ast.BinOp):
            if type(node.op) not in _BINOPS:
                raise CompileError(
                    f"unsupported operator {type(node.op).__name__}"
                )
            self._expr(node.left, emit)
            self._expr(node.right, emit)
            emit(Instruction(_BINOPS[type(node.op)]))
            return
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            self._expr(node.operand, emit)
            emit(Instruction("NEG"))
            return
        raise CompileError(f"unsupported expression {type(node).__name__}")


class StackVm:
    """Executes compiled programs (scalar and vector memory)."""

    def __init__(self):
        self.variables: dict[str, int] = {}
        self.stack: list[int] = []

    def run(self, program: Program) -> dict[str, int]:
        binops = {
            "ADD": lambda a, b: a + b,
            "SUB": lambda a, b: a - b,
            "MUL": lambda a, b: a * b,
            "DIV": lambda a, b: a // b,
            "MOD": lambda a, b: a % b,
            "AND": lambda a, b: a & b,
            "OR": lambda a, b: a | b,
            "XOR": lambda a, b: a ^ b,
            "SHL": lambda a, b: a << b,
            "SHR": lambda a, b: a >> b,
        }
        for instruction in program.instructions:
            op, arg = instruction.op, instruction.arg
            if op == "PUSH":
                self.stack.append(arg)
            elif op == "LOAD":
                self.stack.append(self.variables.get(arg, 0))
            elif op == "STORE":
                self.variables[arg] = self.stack.pop()
            elif op == "NEG":
                self.stack.append(-self.stack.pop())
            elif op in binops:
                b = self.stack.pop()
                a = self.stack.pop()
                self.stack.append(binops[op](a, b))
            else:
                raise CompileError(f"unknown instruction {op!r}")
        return dict(self.variables)


def compile_source(source: str) -> Program:
    """Convenience wrapper around :class:`Compiler`."""
    return Compiler().compile(source)
