"""Software-productivity substrate: expression compiler + stack VM."""

from .vm import CompileError, Compiler, Instruction, Program, StackVm, compile_source

__all__ = [
    "CompileError",
    "Compiler",
    "Instruction",
    "Program",
    "StackVm",
    "compile_source",
]
