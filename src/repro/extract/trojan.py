"""Seeded GDS trojan injection: the must-fail half of layout signoff.

A verification flow that has never caught a bad layout proves nothing,
so — mirroring :func:`repro.formal.lec.mutate_netlist` — this module
plants one deterministic, seeded defect in an otherwise-good GDSII
stream and the CI gate asserts LVS v2 (or the downstream LEC miter)
rejects every mutant.  The four classes cover the classic hardware
trojan taxonomy at mask level:

``rogue_gate``
    An extra cell placement overlapping an existing one — its pin pads
    short onto live nets.  Caught by the cell census and by
    connectivity compare.
``reroute``
    One net-purpose ``met1`` wire nudged off its lattice line — opens
    the original net and may short a neighbour.  Census-invisible;
    caught by connectivity compare / floating-geometry detection.
``delete_via``
    One ``via1`` cut removed — a silent open.  Census-invisible.
``swap_cells``
    Two placements of *different* masters trade positions.  Cell counts
    are identical, so the census pass stays green by construction; only
    connectivity compare or the LEC miter can object.

Not every class applies to every layout (a single-row design may route
without ``via1`` cuts); inapplicable kinds raise :class:`ValueError`
and callers skip or pick another seed.
"""

from __future__ import annotations

import random

from ..layout.gds import GdsSRef, read_gds, write_gds
from ..pdk.layers import NET_DATATYPE
from .identify import infer_top

#: All trojan classes, in the order ``seed % len`` cycles through.
TROJAN_KINDS = ("rogue_gate", "reroute", "delete_via", "swap_cells")

# The gds layer numbers are uniform across the educational PDKs
# (repro.pdk.layers.make_layer_stack), so mutation does not need a Pdk.
_LI = 3
_MET1 = 10
_VIA1 = 30


def _net_rects(top, layer: int) -> list[int]:
    """Indexes into ``top.boundaries`` of net-purpose rects on a layer."""
    return [
        index for index, b in enumerate(top.boundaries)
        if b.layer == layer and b.datatype == NET_DATATYPE
    ]


def mutate_gds(
    data: bytes, seed: int = 0, kind: str | None = None
) -> tuple[bytes, str]:
    """A copy of the stream with exactly one seeded trojan planted.

    ``kind`` picks the trojan class (default: ``seed`` cycles through
    :data:`TROJAN_KINDS`).  Returns ``(mutant_bytes, description)``;
    raises :class:`ValueError` when the class has nothing to attack in
    this layout.  Parsing re-serializes the stream, so the mutant is a
    plausible tool output, not a byte-patched original.
    """
    if kind is None:
        kind = TROJAN_KINDS[seed % len(TROJAN_KINDS)]
    if kind not in TROJAN_KINDS:
        raise ValueError(f"unknown trojan kind {kind!r}")
    rng = random.Random((seed, kind).__repr__())
    library = read_gds(data)
    top = infer_top(library)

    if kind == "rogue_gate":
        if not top.srefs:
            raise ValueError("no placements to duplicate")
        victim = rng.choice(top.srefs)
        x, y = victim.position
        top.srefs.append(GdsSRef(victim.struct_name, (x + 2, y + 2)))
        description = (
            f"rogue {victim.struct_name} placed at ({x + 2}, {y + 2}) nm, "
            f"pads shorting the instance at ({x}, {y})"
        )
    elif kind == "reroute":
        candidates = _net_rects(top, _MET1)
        if not candidates:
            raise ValueError("no net-purpose met1 wires to reroute")
        boundary = top.boundaries[rng.choice(candidates)]
        # Two lattice steps: off the original line, possibly onto a
        # neighbouring net's — an open either way, sometimes a short.
        boundary.points = [(x, y + 8) for x, y in boundary.points]
        x0 = min(p[0] for p in boundary.points)
        y0 = min(p[1] for p in boundary.points)
        description = f"rerouted met1 wire near ({x0}, {y0}) nm by +8 nm"
    elif kind == "delete_via":
        candidates = _net_rects(top, _VIA1)
        if not candidates:
            raise ValueError("no via1 cuts to delete")
        index = rng.choice(candidates)
        boundary = top.boundaries.pop(index)
        x0 = min(p[0] for p in boundary.points)
        y0 = min(p[1] for p in boundary.points)
        description = f"deleted via1 cut at ({x0}, {y0}) nm"
    else:  # swap_cells
        by_master: dict[str, list[int]] = {}
        for index, sref in enumerate(top.srefs):
            by_master.setdefault(sref.struct_name, []).append(index)
        if len(by_master) < 2:
            raise ValueError("fewer than two distinct masters placed")
        name_a, name_b = rng.sample(sorted(by_master), 2)
        a = top.srefs[rng.choice(by_master[name_a])]
        b = top.srefs[rng.choice(by_master[name_b])]
        pos_a, pos_b = a.position, b.position
        a.position, b.position = pos_b, pos_a
        description = (
            f"swapped {name_a} at {pos_a} with {name_b} at {pos_b} "
            f"(cell census unchanged)"
        )
    return write_gds(library), f"{kind}: {description}"
