"""Geometric primitives for netlist extraction.

Everything operates on axis-aligned integer rectangles in database units
(nm), as ``(x0, y0, x1, y1)`` with ``x0 <= x1``, ``y0 <= y1``.  Touch is
the **closed-interval** test: rectangles sharing only an edge or corner
count as connected — the same convention the fabric generator
(:mod:`repro.layout.fabric`) uses when it guarantees foreign nets stay
>= 2 nm apart.
"""

from __future__ import annotations

from collections import defaultdict

Rect = tuple[int, int, int, int]


def touches(a: Rect, b: Rect) -> bool:
    """Closed-interval intersection (edge/corner contact connects)."""
    return (
        a[0] <= b[2] and b[0] <= a[2] and a[1] <= b[3] and b[1] <= a[3]
    )


def contains_point(rect: Rect, x: int, y: int) -> bool:
    return rect[0] <= x <= rect[2] and rect[1] <= y <= rect[3]


class UnionFind:
    """Disjoint sets over ``range(n)`` with path halving."""

    __slots__ = ("parent",)

    def __init__(self, n: int):
        self.parent = list(range(n))

    def find(self, a: int) -> int:
        parent = self.parent
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


class RectIndex:
    """Spatial grid over rectangles for near-linear touch queries."""

    def __init__(self, bucket: int = 4096):
        self.bucket = bucket
        self.cells: dict[tuple[int, int], list[int]] = defaultdict(list)
        self.rects: list[Rect] = []
        self.ids: list[int] = []

    def add(self, shape_id: int, rect: Rect) -> None:
        index = len(self.rects)
        self.rects.append(rect)
        self.ids.append(shape_id)
        b = self.bucket
        for bx in range(rect[0] // b, rect[2] // b + 1):
            for by in range(rect[1] // b, rect[3] // b + 1):
                self.cells[(bx, by)].append(index)

    def touching(self, rect: Rect):
        """Yield ``(shape_id, rect)`` of every indexed rect touching
        ``rect`` (deduplicated)."""
        b = self.bucket
        seen: set[int] = set()
        for bx in range(rect[0] // b, rect[2] // b + 1):
            for by in range(rect[1] // b, rect[3] // b + 1):
                for index in self.cells.get((bx, by), ()):
                    if index in seen:
                        continue
                    seen.add(index)
                    other = self.rects[index]
                    if touches(rect, other):
                        yield self.ids[index], other

    def at_point(self, x: int, y: int):
        """Yield shape ids of rects containing the point."""
        for index in self.cells.get((x // self.bucket, y // self.bucket), ()):
            if contains_point(self.rects[index], x, y):
                yield self.ids[index]


def connect_touching(
    uf: UnionFind,
    shapes_a: list[tuple[int, Rect]],
    index_b: RectIndex,
) -> None:
    """Union every shape in ``shapes_a`` with every touching shape of
    ``index_b`` (shape ids are union-find element ids)."""
    for sid, rect in shapes_a:
        for other_id, _ in index_b.touching(rect):
            if other_id != sid:
                uf.union(sid, other_id)
