"""Connectivity LVS v2: extracted netlist vs mapped netlist.

The census check (:mod:`repro.layout.lvs`) counts cells; this module
compares *wiring*.  Both netlists are reduced to anonymous views — cells
as ``(variant, {pin: net})``, nets as the multiset of ``(port label)``
and ``(cell signature, pin)`` attachments — and refined with a
Weisfeiler–Lehman-style iteration: each round hashes every cell from its
pins' net signatures and every net from its attached cell signatures
(``hashlib`` digests, deliberately not :func:`hash`, so runs are
reproducible across interpreter seeds).  Equal signature multisets mean
the two netlists are attachment-by-attachment indistinguishable;
signature groups then pair extracted instances with mapped instances,
which carries the mapped side's register tags and reset values onto the
extracted netlist so the formal LEC miter (:mod:`repro.formal.lec`) can
prove full GDS-vs-RTL equivalence.  Pairing inside a group is arbitrary
— members of one signature class are interchangeable by construction,
and the LEC proof is over the *extracted* connectivity either way.
"""

from __future__ import annotations

import hashlib
from collections import Counter

from ..layout.gds import GdsLibrary, read_gds
from ..layout.lvs import LvsReport, census_check
from ..obs.metrics import get_metrics
from ..obs.trace import get_tracer
from ..pdk.pdks import Pdk
from ..synth.mapped import CellInst, MappedNetlist
from .identify import infer_top
from .netlist import ExtractedInstance, ExtractionResult, extract_netlist

#: Refinement stops when signature classes stabilize, or here at latest.
MAX_ROUNDS = 64


def _digest(payload: object) -> bytes:
    return hashlib.md5(repr(payload).encode()).digest()


def _port_map(mapped: MappedNetlist) -> dict[str, int]:
    """Flat ``port[bit] -> net`` map over both port directions."""
    flat: dict[str, int] = {}
    for direction, ports in (("in", mapped.inputs), ("out", mapped.outputs)):
        for port, nets in ports.items():
            for bit, net in enumerate(nets):
                flat[f"{port}[{bit}]"] = net
    return flat


def _extracted_port_map(extraction: ExtractionResult) -> dict[str, int]:
    return {
        f"{base}[{bit}]": net
        for base, nets in extraction.ports.items()
        for bit, net in enumerate(nets)
    }


class _View:
    """One side of the comparison in anonymous, refinable form."""

    def __init__(self, cells: list[tuple[str, dict[str, int]]],
                 ports: dict[str, int]):
        self.cells = cells
        self.nets: set[int] = set(ports.values())
        for _, pins in cells:
            self.nets.update(pins.values())
        port_refs: dict[int, list[str]] = {}
        for label, net in ports.items():
            port_refs.setdefault(net, []).append(label)
        self.port_refs = {
            net: tuple(sorted(labels)) for net, labels in port_refs.items()
        }
        self.net_sig: dict[int, bytes] = {}
        self.cell_sig: list[bytes] = []

    def refine_round(self) -> None:
        self.cell_sig = [
            _digest((kind, tuple(sorted(
                (pin, self.net_sig[net]) for pin, net in pins.items()
            ))))
            for kind, pins in self.cells
        ]
        touch: dict[int, list[tuple[bytes, str]]] = {
            net: [] for net in self.nets
        }
        for sig, (_, pins) in zip(self.cell_sig, self.cells):
            for pin, net in pins.items():
                touch[net].append((sig, pin))
        self.net_sig = {
            net: _digest((self.net_sig[net], tuple(sorted(touch[net]))))
            for net in self.nets
        }

    def refine(self) -> None:
        self.net_sig = {
            net: _digest(("net", self.port_refs.get(net, ())))
            for net in self.nets
        }
        classes = 0
        for _ in range(MAX_ROUNDS):
            self.refine_round()
            now = len(set(self.net_sig.values())) + len(set(self.cell_sig))
            if now == classes:
                break
            classes = now

    def describe_net(self, net: int) -> str:
        """Human-readable attachment list for mismatch messages."""
        refs = list(self.port_refs.get(net, ()))
        for index, (kind, pins) in enumerate(self.cells):
            for pin, pin_net in pins.items():
                if pin_net == net:
                    refs.append(f"{kind}#{index}.{pin}")
        return "{" + ", ".join(sorted(refs)) + "}"


def compare_netlists(
    extraction: ExtractionResult, mapped: MappedNetlist,
    max_messages: int = 20,
) -> tuple[list[str], list[tuple[ExtractedInstance, CellInst]]]:
    """Net-by-net comparison of extracted vs mapped connectivity.

    Returns ``(mismatches, pairing)``; the pairing (one mapped instance
    per extracted instance, matched by signature class) is complete only
    when there are no mismatches.
    """
    mismatches: list[str] = []

    ref_ports = _port_map(mapped)
    ext_ports = _extracted_port_map(extraction)
    for name in sorted(set(ref_ports) - set(ext_ports)):
        mismatches.append(f"port {name} missing from the layout")
    for name in sorted(set(ext_ports) - set(ref_ports)):
        mismatches.append(f"layout has unexpected port {name}")

    ext_view = _View(
        [(inst.cell.name, inst.pins) for inst in extraction.instances],
        ext_ports,
    )
    ref_view = _View(
        [(inst.cell.name, dict(inst.pins)) for inst in mapped.cells],
        ref_ports,
    )
    ext_view.refine()
    ref_view.refine()

    ext_net_counts = Counter(ext_view.net_sig.values())
    ref_net_counts = Counter(ref_view.net_sig.values())
    if ext_net_counts != ref_net_counts:
        # Describe nets whose signature class sizes differ, each side.
        shown = 0
        for sig in sorted(ref_net_counts, key=lambda s: s.hex()):
            deficit = ref_net_counts[sig] - ext_net_counts.get(sig, 0)
            if deficit <= 0:
                continue
            example = min(
                net for net, s in ref_view.net_sig.items() if s == sig
            )
            mismatches.append(
                f"netlist net {example} {ref_view.describe_net(example)} "
                f"has no matching layout net ({deficit}x)"
            )
            shown += 1
            if shown >= max_messages:
                break
        for sig in sorted(ext_net_counts, key=lambda s: s.hex()):
            surplus = ext_net_counts[sig] - ref_net_counts.get(sig, 0)
            if surplus <= 0:
                continue
            example = min(
                net for net, s in ext_view.net_sig.items() if s == sig
            )
            mismatches.append(
                f"layout net {example} {ext_view.describe_net(example)} "
                f"matches no netlist net ({surplus}x)"
            )
            shown += 1
            if shown >= max_messages:
                break

    ext_cell_counts = Counter(ext_view.cell_sig)
    ref_cell_counts = Counter(ref_view.cell_sig)
    if ext_cell_counts != ref_cell_counts:
        ext_kinds = Counter(
            inst.cell.name for inst in extraction.instances
        )
        ref_kinds = Counter(inst.cell.name for inst in mapped.cells)
        if ext_kinds == ref_kinds:
            mismatches.append(
                "cell census matches but cell connectivity does not "
                "(same cells, different wiring)"
            )
        shown = 0
        for sig in sorted(ref_cell_counts, key=lambda s: s.hex()):
            deficit = ref_cell_counts[sig] - ext_cell_counts.get(sig, 0)
            if deficit <= 0:
                continue
            index = ref_view.cell_sig.index(sig)
            inst = mapped.cells[index]
            mismatches.append(
                f"netlist cell {inst.name} ({inst.cell.name}) has no "
                f"connectivity-equivalent layout cell ({deficit}x)"
            )
            shown += 1
            if shown >= max_messages:
                break

    pairing: list[tuple[ExtractedInstance, CellInst]] = []
    if not mismatches:
        ext_groups: dict[bytes, list[int]] = {}
        for index, sig in enumerate(ext_view.cell_sig):
            ext_groups.setdefault(sig, []).append(index)
        ref_groups: dict[bytes, list[int]] = {}
        for index, sig in enumerate(ref_view.cell_sig):
            ref_groups.setdefault(sig, []).append(index)
        for sig in sorted(ext_groups, key=lambda s: s.hex()):
            for ext_index, ref_index in zip(
                ext_groups[sig], ref_groups[sig]
            ):
                pairing.append((
                    extraction.instances[ext_index],
                    mapped.cells[ref_index],
                ))
    return mismatches, pairing


def to_mapped(
    extraction: ExtractionResult,
    mapped: MappedNetlist,
    pairing: list[tuple[ExtractedInstance, CellInst]],
) -> MappedNetlist:
    """The extracted netlist as a :class:`MappedNetlist` ready for LEC.

    Connectivity (pins, nets, port bindings) is purely extracted;
    register tags and reset values — names, not wiring — transfer from
    the paired mapped instances so the LEC register correspondence
    lines up.
    """
    partner = {id(ext): ref for ext, ref in pairing}
    result = MappedNetlist(mapped.name, mapped.library)
    for inst in extraction.instances:
        ref = partner[id(inst)]
        result.add_cell(
            inst.cell, inst.pins,
            reset_value=ref.reset_value, tag=ref.tag, name=inst.name,
        )
    result.n_nets = extraction.n_nets
    result.inputs = {
        port: list(extraction.ports[port]) for port in mapped.inputs
    }
    result.outputs = {
        port: list(extraction.ports[port]) for port in mapped.outputs
    }
    result.invalidate()
    return result


def run_lvs(
    source: bytes | GdsLibrary,
    mapped: MappedNetlist,
    pdk: Pdk,
    *,
    top_name: str | None = None,
    expected_pins: set[str] | None = None,
    lec: bool = True,
    max_conflicts: int = 100_000,
    tracer=None,
    metrics=None,
) -> LvsReport:
    """Connectivity LVS v2: GDSII bytes in, unified report out.

    Parses the stream, extracts the netlist from geometry alone, runs
    the census pre-check (with struct names routed through geometric
    identification), compares connectivity, and — when everything else
    is clean and ``lec`` is set — proves the extracted netlist
    equivalent to the mapped reference with the formal LEC miter.
    """
    from ..formal.lec import LecError, check_lec

    if tracer is None:
        tracer = get_tracer()
    if metrics is None:
        metrics = get_metrics()
    report = LvsReport(mode="connectivity", source=mapped.name)
    with tracer.span("extract.lvs", design=mapped.name) as sp:
        try:
            library = (
                read_gds(bytes(source))
                if isinstance(source, (bytes, bytearray))
                else source
            )
            if top_name is not None:
                top = library.struct(top_name)
            else:
                top = infer_top(library)
        except (ValueError, KeyError) as error:
            report.mismatches.append(f"unreadable GDSII stream: {error}")
            return report

        extraction = extract_netlist(library, pdk, top.name, tracer)
        metrics.counter("extract.instances").inc(len(extraction.instances))
        metrics.counter("extract.nets").inc(extraction.n_nets)
        metrics.counter("extract.shapes").inc(extraction.shapes)

        if expected_pins is None:
            expected_pins = set(_port_map(mapped))
        rename = {
            name: cell.name for name, cell in extraction.master_map.items()
        }
        census = census_check(
            library, mapped, top.name, expected_pins,
            pdk.layers.outline.gds_layer, rename=rename,
        )
        report.cells_checked = census.cells_checked
        report.pins_checked = census.pins_checked
        report.mismatches.extend(census.mismatches)
        report.mismatches.extend(extraction.mismatches)
        report.nets_checked = extraction.n_nets

        with tracer.span("extract.compare"):
            compare_mismatches, pairing = compare_netlists(extraction, mapped)
        report.mismatches.extend(compare_mismatches)
        report.cells_matched = len(pairing)

        if lec and not report.mismatches:
            with tracer.span("extract.lec"):
                extracted = to_mapped(extraction, mapped, pairing)
                try:
                    lec_result = check_lec(
                        mapped, extracted,
                        max_conflicts=max_conflicts,
                        tracer=tracer, metrics=metrics,
                    )
                except LecError as error:
                    report.mismatches.append(f"LEC refused the miter: {error}")
                else:
                    if lec_result.inconclusive:
                        report.mismatches.append(
                            "LEC inconclusive on the extracted netlist"
                        )
                    else:
                        report.lec_equivalent = lec_result.equivalent
                    if not lec_result.equivalent:
                        report.mismatches.append(
                            "extracted netlist is NOT logically equivalent "
                            "to the mapped netlist"
                        )
        metrics.counter("extract.lvs.runs").inc()
        if not report.clean:
            metrics.counter("extract.lvs.failures").inc()
        if tracer.enabled:
            sp.set(
                clean=report.clean,
                mismatches=len(report.mismatches),
                nets=report.nets_checked,
            )
    return report
