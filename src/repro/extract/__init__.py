"""GDS-in signoff: netlist extraction, connectivity LVS, trojan drills.

The package answers the question the census check cannot: *is the mask
geometry the circuit we signed off?*  :func:`extract_netlist` recovers a
gate-level netlist from GDSII bytes using only the PDK as reference;
:func:`run_lvs` compares it net-by-net against the mapped netlist and
proves equivalence with the formal LEC miter; :func:`mutate_gds` plants
seeded layout trojans that the CI gate asserts are caught.
"""

from .compare import compare_netlists, run_lvs, to_mapped
from .geom import Rect, RectIndex, UnionFind, touches
from .identify import (
    identify_masters,
    infer_top,
    master_fingerprint,
    reference_fingerprints,
)
from .netlist import ExtractedInstance, ExtractionResult, extract_netlist
from .trojan import TROJAN_KINDS, mutate_gds

__all__ = [
    "ExtractedInstance",
    "ExtractionResult",
    "Rect",
    "RectIndex",
    "TROJAN_KINDS",
    "UnionFind",
    "compare_netlists",
    "extract_netlist",
    "identify_masters",
    "infer_top",
    "master_fingerprint",
    "mutate_gds",
    "reference_fingerprints",
    "run_lvs",
    "to_mapped",
    "touches",
]
