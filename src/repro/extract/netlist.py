"""Netlist extraction from GDSII bytes.

The pipeline, given nothing but a stream and a PDK:

1. parse the stream and infer the chip-top structure;
2. identify every master structure against the PDK cell library
   (:mod:`repro.extract.identify` — name match validated by geometry,
   fingerprint fallback for renamed structs);
3. flatten all net-purpose shapes
   (:data:`repro.pdk.layers.NET_DATATYPE`) — instance pin pads carry
   their ``(instance, pin)`` owner, resolved through the master's
   ``met1``-layer pin labels;
4. union-find over the touch graph: same-layer contact merges, ``lic``
   joins ``li``/``met1``, ``via1`` joins ``met1``/``met2``; crossings
   without a cut stay separate;
5. connected components become nets; top-level port labels bind to the
   li pad under them; geometry attached to no pin or port is flagged as
   floating (legitimate fabric is always attached by construction).

The output is a gate-level view — instances with per-pin net ids plus
port bit vectors — that :mod:`repro.extract.compare` checks against the
mapped netlist and hands to the formal LEC miter.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..layout.gds import GdsLibrary, read_gds
from ..obs.trace import get_tracer
from ..pdk.cells import StandardCell
from ..pdk.layers import NET_DATATYPE
from ..pdk.pdks import Pdk
from .geom import Rect, RectIndex, UnionFind, connect_touching
from .identify import identify_masters, infer_top

_PORT_RE = re.compile(r"^(.+)\[(\d+)\]$")


@dataclass
class ExtractedInstance:
    """One recognized cell placement with extracted pin connectivity."""

    name: str
    cell: StandardCell
    pins: dict[str, int] = field(default_factory=dict)
    position: tuple[int, int] = (0, 0)

    def __repr__(self) -> str:
        return f"ExtractedInstance({self.name}:{self.cell.name})"


@dataclass
class ExtractionResult:
    """A netlist recovered from mask geometry alone."""

    top: str
    instances: list[ExtractedInstance] = field(default_factory=list)
    n_nets: int = 0
    #: Port base name -> net ids in bit order.
    ports: dict[str, list[int]] = field(default_factory=dict)
    mismatches: list[str] = field(default_factory=list)
    shapes: int = 0
    #: Struct name -> identified library cell (for census re-checks).
    master_map: dict[str, StandardCell] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        status = ("ok" if self.clean
                  else f"{len(self.mismatches)} anomalies")
        return (
            f"extracted {len(self.instances)} cells / {self.n_nets} nets "
            f"from {self.shapes} shapes ({status})"
        )


def _master_pads(
    struct, cell: StandardCell, li_layer: int, met1_layer: int,
    mismatches: list[str],
) -> list[tuple[Rect, str]]:
    """(pad rect, pin name) within one master, via its met1 pin labels."""
    pads = [
        (
            min(p[0] for p in b.points), min(p[1] for p in b.points),
            max(p[0] for p in b.points), max(p[1] for p in b.points),
        )
        for b in struct.boundaries
        if b.layer == li_layer and b.datatype == NET_DATATYPE
    ]
    labels = [
        (t.text, t.position) for t in struct.texts if t.layer == met1_layer
    ]
    resolved: list[tuple[Rect, str]] = []
    claimed: set[int] = set()
    for pin, (x, y) in labels:
        hit = None
        for index, rect in enumerate(pads):
            if rect[0] <= x <= rect[2] and rect[1] <= y <= rect[3]:
                hit = index
                break
        if hit is None:
            mismatches.append(
                f"master {struct.name!r}: pin label {pin!r} sits on no pad"
            )
            continue
        claimed.add(hit)
        resolved.append((pads[hit], pin))
    if len(claimed) != len(pads):
        mismatches.append(
            f"master {struct.name!r}: {len(pads) - len(claimed)} "
            f"unlabeled pin pads"
        )
    expected = set(cell.inputs) | ({cell.output} if cell.output else set())
    found = {pin for _, pin in resolved}
    if found != expected:
        mismatches.append(
            f"master {struct.name!r}: pins {sorted(found)} do not match "
            f"cell {cell.name} pins {sorted(expected)}"
        )
    return resolved


def extract_netlist(
    source: bytes | GdsLibrary,
    pdk: Pdk,
    top_name: str | None = None,
    tracer=None,
) -> ExtractionResult:
    """Recover a gate-level netlist from GDSII bytes (or a parsed
    library) using only the PDK as reference."""
    if tracer is None:
        tracer = get_tracer()
    library = (
        read_gds(bytes(source))
        if isinstance(source, (bytes, bytearray))
        else source
    )
    if top_name is not None:
        top = library.struct(top_name)
    else:
        top = infer_top(library)
    result = ExtractionResult(top=top.name)

    li = pdk.layers.by_name("li").gds_layer
    lic = pdk.layers.by_name("lic").gds_layer
    met1 = pdk.layers.by_name("met1").gds_layer
    via1 = pdk.layers.by_name("via1").gds_layer
    met2 = pdk.layers.by_name("met2").gds_layer
    label = pdk.layers.by_name("label").gds_layer

    with tracer.span("extract.identify") as sp:
        mapping, mismatches = identify_masters(library, top, pdk)
        result.master_map = mapping
        result.mismatches.extend(mismatches)
        if tracer.enabled:
            sp.set(masters=len(mapping), anomalies=len(mismatches))

    pads_of: dict[str, list[tuple[Rect, str]]] = {}
    for struct in library.structs:
        if struct is top or struct.name not in mapping:
            continue
        pads_of[struct.name] = _master_pads(
            struct, mapping[struct.name], li, met1, result.mismatches
        )

    # Flatten every net-purpose shape; pads remember their owner pin.
    with tracer.span("extract.flatten") as sp:
        by_layer: dict[int, list[tuple[int, Rect]]] = {
            li: [], lic: [], met1: [], via1: [], met2: [],
        }
        owner: dict[int, tuple[int, str]] = {}
        next_id = 0

        def add(layer: int, rect: Rect) -> int:
            nonlocal next_id
            sid = next_id
            next_id += 1
            by_layer[layer].append((sid, rect))
            return sid

        for index, sref in enumerate(top.srefs):
            if sref.struct_name not in mapping:
                result.mismatches.append(
                    f"placement #{index} references unidentified "
                    f"structure {sref.struct_name!r}"
                )
                result.instances.append(None)  # keep indexes aligned
                continue
            cell = mapping[sref.struct_name]
            result.instances.append(ExtractedInstance(
                name=f"x{index}", cell=cell, position=sref.position,
            ))
            dx, dy = sref.position
            for (x0, y0, x1, y1), pin in pads_of[sref.struct_name]:
                sid = add(li, (x0 + dx, y0 + dy, x1 + dx, y1 + dy))
                owner[sid] = (index, pin)
        for b in top.boundaries:
            if b.datatype != NET_DATATYPE or b.layer not in by_layer:
                continue
            add(b.layer, (
                min(p[0] for p in b.points), min(p[1] for p in b.points),
                max(p[0] for p in b.points), max(p[1] for p in b.points),
            ))
        result.shapes = next_id
        if tracer.enabled:
            sp.set(shapes=next_id, placements=len(top.srefs))

    # Touch-graph connectivity.
    with tracer.span("extract.connect") as sp:
        uf = UnionFind(next_id)
        indexes: dict[int, RectIndex] = {}
        for layer in (li, met1, met2):
            index = indexes[layer] = RectIndex()
            for sid, rect in by_layer[layer]:
                index.add(sid, rect)
        # Same-layer contact merges...
        for layer in (li, met1, met2):
            connect_touching(uf, by_layer[layer], indexes[layer])
        # ...and cut layers join their two neighbours.
        for cut_layer, joined in ((lic, (li, met1)), (via1, (met1, met2))):
            for target in joined:
                connect_touching(uf, by_layer[cut_layer], indexes[target])

        net_of_root: dict[int, int] = {}
        net_of: list[int] = [0] * next_id
        for sid in range(next_id):
            root = uf.find(sid)
            net = net_of_root.get(root)
            if net is None:
                net = net_of_root[root] = len(net_of_root)
            net_of[sid] = net
        result.n_nets = len(net_of_root)
        if tracer.enabled:
            sp.set(nets=result.n_nets)

    # Instance pins from pad components.
    for sid, (index, pin) in owner.items():
        result.instances[index].pins[pin] = net_of[sid]
    attached: set[int] = {net_of[sid] for sid in owner}
    for index, inst in enumerate(result.instances):
        if inst is None:
            continue
        expected = set(inst.cell.inputs)
        if inst.cell.output:
            expected.add(inst.cell.output)
        missing = expected - set(inst.pins)
        if missing:
            result.mismatches.append(
                f"instance {inst.name} ({inst.cell.name}): pins "
                f"{sorted(missing)} have no extracted net"
            )

    # Port labels bind to the li pad underneath them.
    li_index = indexes[li]
    port_bits: dict[str, dict[int, int]] = {}
    for text in top.texts:
        if text.layer != label:
            continue
        match = _PORT_RE.match(text.text)
        if match is None:
            continue
        base, bit = match.group(1), int(match.group(2))
        hits = {net_of[sid] for sid in li_index.at_point(*text.position)}
        if not hits:
            result.mismatches.append(
                f"port label {text.text} sits on no net geometry"
            )
            continue
        if len(hits) > 1:
            result.mismatches.append(
                f"port label {text.text} touches {len(hits)} distinct nets"
            )
            continue
        bits = port_bits.setdefault(base, {})
        if bit in bits:
            result.mismatches.append(f"duplicate port label {text.text}")
            continue
        net = hits.pop()
        bits[bit] = net
        attached.add(net)
    for base in sorted(port_bits):
        bits = port_bits[base]
        if sorted(bits) != list(range(len(bits))):
            result.mismatches.append(
                f"port {base}: non-contiguous bits {sorted(bits)}"
            )
            continue
        result.ports[base] = [bits[i] for i in range(len(bits))]

    # Anything not reachable from a pin or port is foreign geometry.
    floating_shapes = sum(
        1 for sid in range(next_id) if net_of[sid] not in attached
    )
    if floating_shapes:
        islands = len(
            {net_of[sid] for sid in range(next_id)
             if net_of[sid] not in attached}
        )
        result.mismatches.append(
            f"{floating_shapes} floating net shapes in {islands} "
            f"disconnected islands"
        )

    # Drop placeholder slots for unidentified placements.
    result.instances = [i for i in result.instances if i is not None]
    return result
