"""Cell-master identification: name matching with fingerprint fallback.

ChipSuite-style: a master structure is identified by *what it looks
like*, not what it is called.  Every library cell's reference master is
reconstructible from the PDK alone
(:func:`repro.layout.chip.cell_master_struct`), so its canonical
geometry — boundary rectangles per (layer, datatype) plus pin labels,
all relative to the structure's min corner — forms a fingerprint.  A
struct whose name matches a library cell must also match that cell's
fingerprint (a renamed or tampered master is an anomaly either way);
an unknown name is looked up by fingerprint, which is what keeps
extraction working on streams whose struct names were stripped or
scrambled.
"""

from __future__ import annotations

from ..layout.gds import GdsLibrary, GdsStruct
from ..pdk.cells import StandardCell
from ..pdk.pdks import Pdk

Fingerprint = tuple


def master_fingerprint(
    struct: GdsStruct, exclude_text_layers: frozenset[int] = frozenset()
) -> Fingerprint:
    """Canonical geometry signature of a structure.

    Boundary bboxes and text labels relative to the min corner of all
    boundary points; texts on ``exclude_text_layers`` (the annotation
    label layer, which carries the — renamable — cell name) are ignored.
    """
    points = [p for b in struct.boundaries for p in b.points]
    if points:
        min_x = min(p[0] for p in points)
        min_y = min(p[1] for p in points)
    else:
        min_x = min_y = 0
    rects = sorted(
        (
            b.layer,
            b.datatype,
            min(p[0] for p in b.points) - min_x,
            min(p[1] for p in b.points) - min_y,
            max(p[0] for p in b.points) - min_x,
            max(p[1] for p in b.points) - min_y,
        )
        for b in struct.boundaries
    )
    texts = sorted(
        (t.layer, t.text, t.position[0] - min_x, t.position[1] - min_y)
        for t in struct.texts
        if t.layer not in exclude_text_layers
    )
    # Reference masters are leaf cells; any nested placement makes a
    # struct un-matchable rather than silently hiding geometry.
    srefs = sorted(
        (s.struct_name, s.position[0] - min_x, s.position[1] - min_y)
        for s in struct.srefs
    )
    return (tuple(rects), tuple(texts), tuple(srefs))


def reference_fingerprints(pdk: Pdk) -> dict[Fingerprint, StandardCell]:
    """Fingerprint → library cell for every cell in the PDK.

    Raises :class:`RuntimeError` on a collision: the identity stripes in
    :func:`~repro.layout.chip.cell_master_struct` are meant to make all
    masters geometrically distinct, and a silent collision would make
    identification ambiguous.
    """
    from ..layout.chip import cell_master_struct

    label = pdk.layers.by_name("label").gds_layer
    table: dict[Fingerprint, StandardCell] = {}
    for name in sorted(pdk.library.cells):
        cell = pdk.library.cells[name]
        fp = master_fingerprint(
            cell_master_struct(cell, pdk), frozenset((label,))
        )
        if fp in table:
            raise RuntimeError(
                f"fingerprint collision: {table[fp].name} vs {cell.name}"
            )
        table[fp] = cell
    return table


def infer_top(library: GdsLibrary) -> GdsStruct:
    """The chip-top structure: referenced by no SREF, placing others."""
    referenced = {
        sref.struct_name for s in library.structs for sref in s.srefs
    }
    candidates = [s for s in library.structs if s.name not in referenced]
    if len(candidates) > 1:
        candidates = [s for s in candidates if s.srefs]
    if len(candidates) == 1:
        return candidates[0]
    raise ValueError(
        f"cannot infer top structure: {len(candidates)} candidates "
        f"among {len(library.structs)} structs"
    )


def identify_masters(
    library: GdsLibrary, top: GdsStruct, pdk: Pdk
) -> tuple[dict[str, StandardCell], list[str]]:
    """Map every non-top structure to a library cell.

    Returns ``(mapping, mismatches)``: structures that match a library
    cell (by consistent name or by fingerprint) land in ``mapping``;
    tampered or unidentifiable masters produce mismatch messages.
    """
    label = pdk.layers.by_name("label").gds_layer
    exclude = frozenset((label,))
    references = reference_fingerprints(pdk)
    by_cell_name = {cell.name: fp for fp, cell in references.items()}

    mapping: dict[str, StandardCell] = {}
    mismatches: list[str] = []
    for struct in library.structs:
        if struct is top:
            continue
        fp = master_fingerprint(struct, exclude)
        if struct.name in pdk.library.cells:
            if fp == by_cell_name[struct.name]:
                mapping[struct.name] = pdk.library.cells[struct.name]
            else:
                mismatches.append(
                    f"master {struct.name!r} does not match the library "
                    f"cell's geometry (tampered master)"
                )
        else:
            cell = references.get(fp)
            if cell is not None:
                mapping[struct.name] = cell
            else:
                mismatches.append(
                    f"unidentifiable master structure {struct.name!r}"
                )
    return mapping, mismatches
