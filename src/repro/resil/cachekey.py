"""The one content-hash key both checkpointing and memoization share.

:func:`flow_cache_key` answers "is this the same flow request?" for two
consumers with different lifetimes:

* :class:`~repro.resil.checkpoint.StageCheckpointer` — per-run stage
  artifacts, so a retried or resumed flow skips completed stages;
* the campaign result cache (:mod:`repro.campaign.cache`) — whole
  :class:`~repro.core.flow.FlowResult` objects memoized *across* runs
  and tenants, so identical student submissions return cached results.

Keeping the implementation in one module is the contract: the two paths
can never drift, because there is only one path.  The base payload is
(canonical RTL, PDK name, preset knobs, seed) — exactly what the stage
artifacts depend on; a consumer whose artifact depends on more (the
result cache also keys on clock period, DRC strictness, …) folds the
surplus in through ``extra`` without disturbing base-key compatibility.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json


def canonical(value):
    """A JSON-stable view of preset-like values (sorted sets, dataclasses)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, (set, frozenset)):
        return sorted(str(v) for v in value)
    if isinstance(value, (list, tuple)):
        return [canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): canonical(v) for k, v in sorted(value.items())}
    return value


def flow_cache_key(module, pdk_name: str, preset, seed: int,
                   extra: dict | None = None) -> str:
    """Content hash of one flow request.

    The module contributes its canonical Verilog text (not its object
    identity), so two builds of the same RTL share checkpoints and any
    edit — however small — misses.  With ``extra=None`` the key is
    byte-compatible with the historical checkpoint key; a non-empty
    ``extra`` dict mixes additional request knobs into the hash.
    """
    from ..hdl.verilog import to_verilog

    payload = {
        "rtl": to_verilog(module),
        "pdk": pdk_name,
        "preset": canonical(preset),
        "seed": seed,
    }
    if extra:
        payload["extra"] = canonical(extra)
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:24]
