"""Per-stage flow checkpoints keyed by a content hash of the request.

The same shape as training-job checkpointing: a long flow serializes its
expensive intermediate artifacts (synthesis result, floorplan, placement,
clock tree, routing) under a key derived from *what was asked for* — the
RTL's canonical Verilog, the PDK, the preset knobs and the seed — so a
retried or resumed run skips every stage that already completed, and a
request whose inputs changed in any way misses cleanly.

Two stores share one pickle-based contract: :class:`MemoryCheckpointStore`
(per-process; used by the hub's retry loop) and
:class:`DirectoryCheckpointStore` (survives the process; used by the CLI
``--checkpoint-dir``).  Both round-trip through ``pickle.dumps`` even in
memory, so a loaded artifact is always a private copy — a resumed flow
can never mutate the checkpointed bytes of an earlier one.
"""

from __future__ import annotations

import itertools
import os
import pickle
from dataclasses import dataclass

# The key implementation is shared with the campaign result cache
# (repro.campaign.cache) — one function, so the checkpoint and
# memoization paths can never drift.  Re-exported here for its
# historical import site.
from .cachekey import flow_cache_key  # noqa: F401

#: Stage names a full flow run checkpoints, in order.
CHECKPOINT_STAGES = (
    "synthesis", "floorplan", "placement", "clock_tree", "routing",
)


class CheckpointStore:
    """Pickle-serialized stage artifacts; subclasses supply the backend."""

    def __init__(self):
        self.hits = 0
        self.misses = 0

    # -- backend contract --------------------------------------------------

    def _read(self, key: str, stage: str) -> bytes | None:
        raise NotImplementedError

    def _write(self, key: str, stage: str, data: bytes) -> None:
        raise NotImplementedError

    def stages(self, key: str) -> list[str]:
        """Checkpointed stage names for ``key`` (canonical order first)."""
        raise NotImplementedError

    # -- public API --------------------------------------------------------

    def save(self, key: str, stage: str, obj) -> None:
        self._write(key, stage, pickle.dumps(obj, protocol=4))

    def load(self, key: str, stage: str):
        """The checkpointed artifact, or ``None`` on a miss."""
        data = self._read(key, stage)
        if data is None:
            self.misses += 1
            return None
        self.hits += 1
        return pickle.loads(data)

    def has(self, key: str, stage: str) -> bool:
        return self._read(key, stage) is not None


class MemoryCheckpointStore(CheckpointStore):
    """In-process store: a dict of pickled blobs."""

    def __init__(self):
        super().__init__()
        self._blobs: dict[tuple[str, str], bytes] = {}

    def _read(self, key, stage):
        return self._blobs.get((key, stage))

    def _write(self, key, stage, data):
        self._blobs[(key, stage)] = data

    def stages(self, key):
        found = {s for k, s in self._blobs if k == key}
        ordered = [s for s in CHECKPOINT_STAGES if s in found]
        return ordered + sorted(found.difference(CHECKPOINT_STAGES))


class DirectoryCheckpointStore(CheckpointStore):
    """Filesystem store: ``root/<key>/<stage>.ckpt`` files.

    By default the store grows without bound — fine for one run's
    ``--checkpoint-dir``, wrong for a semester-long shared cache.
    ``max_entries`` / ``max_bytes`` cap it with least-recently-used
    eviction: each load or save refreshes a file's recency, and a save
    that pushes the store over budget deletes the coldest ``.ckpt``
    files (never the one just written) until it fits again.  Recency is
    tracked in-process with a monotonic sequence and falls back to file
    mtime for entries inherited from an earlier process, so eviction
    order is deterministic within a run.
    """

    def __init__(self, root: str, max_entries: int | None = None,
                 max_bytes: int | None = None):
        super().__init__()
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be at least 1")
        if max_bytes is not None and max_bytes < 1:
            raise ValueError("max_bytes must be at least 1")
        self.root = root
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.evictions = 0
        self._seq = itertools.count()
        self._recency: dict[str, int] = {}

    def _path(self, key: str, stage: str) -> str:
        return os.path.join(self.root, key, f"{stage}.ckpt")

    def _touch(self, path: str) -> None:
        self._recency[path] = next(self._seq)

    def _entries(self) -> list[tuple[str, int]]:
        """Every ``(path, size)`` currently in the store."""
        found = []
        try:
            keys = os.listdir(self.root)
        except OSError:
            return found
        for key in keys:
            key_dir = os.path.join(self.root, key)
            try:
                names = os.listdir(key_dir)
            except OSError:
                continue
            for name in names:
                if not name.endswith(".ckpt"):
                    continue
                path = os.path.join(key_dir, name)
                try:
                    found.append((path, os.path.getsize(path)))
                except OSError:
                    continue
        return found

    def _evict(self, keep: str) -> None:
        """Delete cold entries until the store fits its budget."""
        if self.max_entries is None and self.max_bytes is None:
            return
        entries = self._entries()

        def coldness(entry):
            path, _ = entry
            if path in self._recency:
                return (1, self._recency[path])
            # Inherited from an earlier process: colder than anything
            # this process touched, ordered among themselves by mtime.
            try:
                return (0, os.path.getmtime(path))
            except OSError:
                return (0, 0.0)

        entries.sort(key=coldness)
        total = sum(size for _, size in entries)
        count = len(entries)
        for path, size in entries:
            over = (
                (self.max_entries is not None and count > self.max_entries)
                or (self.max_bytes is not None and total > self.max_bytes)
            )
            if not over:
                break
            if path == keep:
                continue
            try:
                os.remove(path)
            except OSError:
                continue
            self._recency.pop(path, None)
            self.evictions += 1
            total -= size
            count -= 1
            key_dir = os.path.dirname(path)
            try:
                if not os.listdir(key_dir):
                    os.rmdir(key_dir)
            except OSError:
                pass

    def _read(self, key, stage):
        path = self._path(key, stage)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            return None
        self._touch(path)
        return data

    def _write(self, key, stage, data):
        os.makedirs(os.path.join(self.root, key), exist_ok=True)
        path = self._path(key, stage)
        with open(path, "wb") as handle:
            handle.write(data)
        self._touch(path)
        self._evict(keep=path)

    def stages(self, key):
        try:
            found = {
                name[: -len(".ckpt")]
                for name in os.listdir(os.path.join(self.root, key))
                if name.endswith(".ckpt")
            }
        except OSError:
            return []
        ordered = [s for s in CHECKPOINT_STAGES if s in found]
        return ordered + sorted(found.difference(CHECKPOINT_STAGES))


@dataclass
class StageCheckpointer:
    """A store bound to one flow request's key.

    The flow runner and the backend orchestrator share this object:
    ``load`` returns ``None`` when resuming is disabled, so callers need
    no resume conditionals of their own.
    """

    store: CheckpointStore
    key: str
    resume: bool = True

    def load(self, stage: str):
        if not self.resume:
            return None
        return self.store.load(self.key, stage)

    def save(self, stage: str, obj) -> None:
        self.store.save(self.key, stage, obj)
