"""Per-stage flow checkpoints keyed by a content hash of the request.

The same shape as training-job checkpointing: a long flow serializes its
expensive intermediate artifacts (synthesis result, floorplan, placement,
clock tree, routing) under a key derived from *what was asked for* — the
RTL's canonical Verilog, the PDK, the preset knobs and the seed — so a
retried or resumed run skips every stage that already completed, and a
request whose inputs changed in any way misses cleanly.

Two stores share one pickle-based contract: :class:`MemoryCheckpointStore`
(per-process; used by the hub's retry loop) and
:class:`DirectoryCheckpointStore` (survives the process; used by the CLI
``--checkpoint-dir``).  Both round-trip through ``pickle.dumps`` even in
memory, so a loaded artifact is always a private copy — a resumed flow
can never mutate the checkpointed bytes of an earlier one.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
from dataclasses import dataclass

#: Stage names a full flow run checkpoints, in order.
CHECKPOINT_STAGES = (
    "synthesis", "floorplan", "placement", "clock_tree", "routing",
)


def _canonical(value):
    """A JSON-stable view of preset-like values (sorted sets, dataclasses)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, (set, frozenset)):
        return sorted(str(v) for v in value)
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    return value


def flow_cache_key(module, pdk_name: str, preset, seed: int) -> str:
    """Content hash of one flow request.

    The module contributes its canonical Verilog text (not its object
    identity), so two builds of the same RTL share checkpoints and any
    edit — however small — misses.
    """
    from ..hdl.verilog import to_verilog

    payload = json.dumps(
        {
            "rtl": to_verilog(module),
            "pdk": pdk_name,
            "preset": _canonical(preset),
            "seed": seed,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]


class CheckpointStore:
    """Pickle-serialized stage artifacts; subclasses supply the backend."""

    def __init__(self):
        self.hits = 0
        self.misses = 0

    # -- backend contract --------------------------------------------------

    def _read(self, key: str, stage: str) -> bytes | None:
        raise NotImplementedError

    def _write(self, key: str, stage: str, data: bytes) -> None:
        raise NotImplementedError

    def stages(self, key: str) -> list[str]:
        """Checkpointed stage names for ``key`` (canonical order first)."""
        raise NotImplementedError

    # -- public API --------------------------------------------------------

    def save(self, key: str, stage: str, obj) -> None:
        self._write(key, stage, pickle.dumps(obj, protocol=4))

    def load(self, key: str, stage: str):
        """The checkpointed artifact, or ``None`` on a miss."""
        data = self._read(key, stage)
        if data is None:
            self.misses += 1
            return None
        self.hits += 1
        return pickle.loads(data)

    def has(self, key: str, stage: str) -> bool:
        return self._read(key, stage) is not None


class MemoryCheckpointStore(CheckpointStore):
    """In-process store: a dict of pickled blobs."""

    def __init__(self):
        super().__init__()
        self._blobs: dict[tuple[str, str], bytes] = {}

    def _read(self, key, stage):
        return self._blobs.get((key, stage))

    def _write(self, key, stage, data):
        self._blobs[(key, stage)] = data

    def stages(self, key):
        found = {s for k, s in self._blobs if k == key}
        ordered = [s for s in CHECKPOINT_STAGES if s in found]
        return ordered + sorted(found.difference(CHECKPOINT_STAGES))


class DirectoryCheckpointStore(CheckpointStore):
    """Filesystem store: ``root/<key>/<stage>.ckpt`` files."""

    def __init__(self, root: str):
        super().__init__()
        self.root = root

    def _path(self, key: str, stage: str) -> str:
        return os.path.join(self.root, key, f"{stage}.ckpt")

    def _read(self, key, stage):
        try:
            with open(self._path(key, stage), "rb") as handle:
                return handle.read()
        except OSError:
            return None

    def _write(self, key, stage, data):
        os.makedirs(os.path.join(self.root, key), exist_ok=True)
        with open(self._path(key, stage), "wb") as handle:
            handle.write(data)

    def stages(self, key):
        try:
            found = {
                name[: -len(".ckpt")]
                for name in os.listdir(os.path.join(self.root, key))
                if name.endswith(".ckpt")
            }
        except OSError:
            return []
        ordered = [s for s in CHECKPOINT_STAGES if s in found]
        return ordered + sorted(found.difference(CHECKPOINT_STAGES))


@dataclass
class StageCheckpointer:
    """A store bound to one flow request's key.

    The flow runner and the backend orchestrator share this object:
    ``load`` returns ``None`` when resuming is disabled, so callers need
    no resume conditionals of their own.
    """

    store: CheckpointStore
    key: str
    resume: bool = True

    def load(self, stage: str):
        if not self.resume:
            return None
        return self.store.load(self.key, stage)

    def save(self, stage: str, obj) -> None:
        self.store.save(self.key, stage, obj)
