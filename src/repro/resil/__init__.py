"""repro.resil — fault tolerance for the enablement platform.

Real shared university compute (the paper's Recommendation 7
infrastructure) has preempted jobs, failed nodes and course deadlines.
This package is the robustness layer threaded through the cloud
simulator and the flow runner:

* :mod:`~repro.resil.faults` — seeded :class:`FaultModel` (MTBF/MTTR,
  preemption, transient vs fatal) for the discrete-event simulator, and
  the deterministic :class:`FaultInjector` drill for flow stages;
* :mod:`~repro.resil.retry` — pluggable :class:`RetryPolicy` with
  :class:`ExponentialBackoff` (jitter, caps, deadline-aware give-up),
  budgeted in simulated minutes;
* :mod:`~repro.resil.checkpoint` — content-hash-keyed per-stage flow
  checkpoints so a retried or resumed flow skips completed stages;
* :mod:`~repro.resil.failure` — structured :class:`FlowFailure` records
  for graceful degradation and the :class:`InjectedFault` drill
  exception.

Nothing here imports :mod:`repro.core`; the core engines import this
package, never the other way around.
"""

from .cachekey import canonical, flow_cache_key
from .checkpoint import (
    CHECKPOINT_STAGES,
    CheckpointStore,
    DirectoryCheckpointStore,
    MemoryCheckpointStore,
    StageCheckpointer,
)
from .failure import FAILURE_KINDS, FlowFailure, InjectedFault
from .faults import FaultInjector, FaultModel, FaultSampler
from .retry import ExponentialBackoff, RetryPolicy

__all__ = [
    "CHECKPOINT_STAGES",
    "CheckpointStore",
    "DirectoryCheckpointStore",
    "ExponentialBackoff",
    "FAILURE_KINDS",
    "FaultInjector",
    "FaultModel",
    "FaultSampler",
    "FlowFailure",
    "InjectedFault",
    "MemoryCheckpointStore",
    "RetryPolicy",
    "StageCheckpointer",
    "canonical",
    "flow_cache_key",
]
