"""Seeded failure models: stochastic infrastructure faults and drills.

Real shared academic compute — the centralized platform of the paper's
Recommendation 7 — has preempted jobs, failed nodes and repair windows.
:class:`FaultModel` parameterizes that reality for the cloud simulator:
server MTBF/MTTR, a per-execution preemption probability, and the split
between transient faults (retryable) and fatal ones (the job is lost).
All randomness flows through one :class:`FaultSampler` built from the
model's seed, so a simulation with faults is exactly as deterministic as
one without: same seed, same schedule, same statistics.

:class:`FaultInjector` is the deterministic counterpart for *flows*: a
drill that fails named stages the first N times they run, used to test
``continue_on_error`` degradation and checkpoint resume without
monkeypatching engines.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from .failure import InjectedFault


@dataclass(frozen=True)
class FaultModel:
    """Stochastic fault parameters for a pool of identical servers.

    ``mtbf_min`` is the mean simulated time between server faults while a
    job is executing (exponential inter-fault times); ``mttr_min`` is how
    long a faulted server stays down.  ``preemption_prob`` is the chance
    a given execution is preempted (resource reclaimed — the server is
    immediately reusable).  A server fault is fatal to the *job* with
    probability ``fatal_prob``; otherwise it is transient and the job may
    retry.
    """

    seed: int = 0
    mtbf_min: float = math.inf
    mttr_min: float = 30.0
    preemption_prob: float = 0.0
    fatal_prob: float = 0.0

    def __post_init__(self):
        if self.mtbf_min <= 0:
            raise ValueError("MTBF must be positive")
        if self.mttr_min < 0:
            raise ValueError("MTTR cannot be negative")
        for name in ("preemption_prob", "fatal_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be a probability, got {p}")

    def sampler(self) -> "FaultSampler":
        """A fresh seeded sampler; one per simulation run."""
        return FaultSampler(self)


class FaultSampler:
    """Draws per-execution fault outcomes from a :class:`FaultModel`.

    Owns the run's single :class:`random.Random`; retry-backoff jitter
    shares it (via :attr:`rng`) so the entire schedule is reproducible
    from the model seed alone.
    """

    def __init__(self, model: FaultModel):
        self.model = model
        self.rng = random.Random(model.seed)

    def draw(self, duration_min: float) -> tuple[str, float]:
        """Outcome of one execution attempt of ``duration_min`` minutes.

        Returns ``(kind, fraction)`` where ``kind`` is one of ``"ok"``,
        ``"preempt"``, ``"transient"`` or ``"fatal"`` and ``fraction`` is
        how far through the execution the fault struck (1.0 for ok).
        """
        model, rng = self.model, self.rng
        if model.preemption_prob > 0 and rng.random() < model.preemption_prob:
            return "preempt", rng.random()
        if math.isfinite(model.mtbf_min):
            strike_min = rng.expovariate(1.0 / model.mtbf_min)
            if strike_min < duration_min:
                fatal = model.fatal_prob > 0 and rng.random() < model.fatal_prob
                return ("fatal" if fatal else "transient",
                        strike_min / duration_min)
        return "ok", 1.0


class FaultInjector:
    """Deterministic fault drills for flow stages.

    ``FaultInjector("routing")`` fails the routing stage the first time
    it runs and then stands down, so a retried (or checkpoint-resumed)
    flow succeeds — the shape of a transient infrastructure fault.
    ``times`` raises the per-stage budget for permanent-failure drills.
    """

    def __init__(self, *stages: str, times: int = 1):
        if times < 1:
            raise ValueError("fault budget must be at least 1")
        self._budget: dict[str, int] = {stage: times for stage in stages}

    def trip(self, stage: str) -> bool:
        """Consume one fault from ``stage``'s budget; True if it fires."""
        left = self._budget.get(stage, 0)
        if left <= 0:
            return False
        self._budget[stage] = left - 1
        return True

    def check(self, stage: str) -> None:
        """Raise :class:`InjectedFault` if the drill fires for ``stage``."""
        if self.trip(stage):
            raise InjectedFault(stage)

    @property
    def armed(self) -> bool:
        return any(left > 0 for left in self._budget.values())
