"""Retry policies: when and how a failed job re-enters the queue.

Backoff is budgeted in *simulated minutes* — the cloud simulator's clock
— so capacity-planning questions ("how many servers to hit the deadline
at p95 given 2% node failures") account for retry pressure the same way
they account for queueing.  Policies are deadline-aware: retrying a job
that can no longer finish before its deadline only burns server time a
classmate needs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


class RetryPolicy:
    """Base contract; subclass to plug in a different schedule.

    ``backoff_min(attempt, rng)`` is the delay before re-queueing after
    the given (1-based) failed attempt; ``gives_up(attempt)`` is checked
    after each failure; ``deadline_aware`` lets schedulers cancel retries
    that cannot finish before a job's deadline.
    """

    max_attempts: int = 1
    deadline_aware: bool = True

    def backoff_min(self, attempt: int,
                    rng: random.Random | None = None) -> float:
        raise NotImplementedError

    def gives_up(self, attempt: int) -> bool:
        return attempt >= self.max_attempts


@dataclass(frozen=True)
class ExponentialBackoff(RetryPolicy):
    """Exponential backoff with bounded multiplicative jitter.

    The un-jittered delay for failed attempt *k* (1-based) is
    ``min(base_min * factor**(k-1), max_backoff_min)``; with an ``rng``
    the delay is scaled by a factor uniform in ``[1-jitter, 1+jitter]``,
    so every delay lies within those bounds — testable, and budgeted in
    simulated minutes.
    """

    base_min: float = 1.0
    factor: float = 2.0
    max_backoff_min: float = 60.0
    jitter: float = 0.1
    max_attempts: int = 4
    deadline_aware: bool = True

    def __post_init__(self):
        if self.base_min <= 0 or self.factor < 1.0:
            raise ValueError("backoff needs base_min > 0 and factor >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must lie in [0, 1)")
        if self.max_attempts < 1:
            raise ValueError("need at least one attempt")

    def raw_backoff_min(self, attempt: int) -> float:
        """The capped, un-jittered delay for failed attempt ``attempt``."""
        return min(self.base_min * self.factor ** max(0, attempt - 1),
                   self.max_backoff_min)

    def backoff_min(self, attempt: int,
                    rng: random.Random | None = None) -> float:
        raw = self.raw_backoff_min(attempt)
        if rng is None or self.jitter <= 0:
            return raw
        return raw * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))
