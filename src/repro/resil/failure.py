"""Structured flow-failure records and the injected-fault exception.

A shared university platform cannot present a stack trace as the outcome
of a student's flow run.  :class:`FlowFailure` is the structured record a
degraded flow produces instead: which stage failed, why, and whether the
failure was a quality *gate* (DRC, equivalence, strict lint), an engine
*crash*, or a deliberately *injected* drill fault.  The flow runner
collects these on ``FlowResult.failures`` when running with
``continue_on_error``; the hub and CLI render them per stage.

:class:`InjectedFault` is the exception a fault drill raises inside an
instrumented stage (see :class:`~repro.resil.faults.FaultInjector`).  It
deliberately does *not* subclass ``FlowError``: an injected fault models
infrastructure failure (a preempted node, an OOM kill), not a design
quality gate, and retry policies treat the two identically anyway.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The failure taxonomy: a design-quality gate that did not pass, an
#: engine exception, or a deliberately injected drill fault.
FAILURE_KINDS = ("gate", "crash", "injected")


@dataclass(frozen=True)
class FlowFailure:
    """One stage failure recorded by a degraded (partial) flow run."""

    #: Stage name — a ``FlowStep.value`` such as ``"design_rule_check"``,
    #: or ``"lint"`` for the strict-lint gate (which has no FlowStep).
    stage: str
    message: str
    kind: str = "gate"

    def __post_init__(self):
        if self.kind not in FAILURE_KINDS:
            raise ValueError(
                f"unknown failure kind {self.kind!r}; "
                f"expected one of {FAILURE_KINDS}"
            )

    def __str__(self) -> str:
        return f"[{self.kind}] {self.stage}: {self.message}"


class InjectedFault(RuntimeError):
    """Raised by a :class:`~repro.resil.faults.FaultInjector` drill."""

    def __init__(self, stage: str):
        super().__init__(f"injected fault at stage {stage!r}")
        self.stage = stage
