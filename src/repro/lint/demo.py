"""Deliberately-defective demo designs for the lint walkthrough.

``python -m repro lint --demo`` runs the linter over these two designs.
Together they trip well over eight distinct rule ids across the RTL and
netlist scopes — the classroom tour of what the analysis layer catches
that :meth:`Module.validate` would only report one exception at a time
(or not at all).

The RTL module is intentionally *not* validate()-clean; the linter is
tolerant by design.  The gate netlist is hand-built because a defective
module cannot be lowered.
"""

from __future__ import annotations

from ..hdl.ir import BinOp, Const, Module, Mux, Ref, Slice
from ..synth.netlist import Gate, GateNetlist


def make_defective_module() -> Module:
    """An RTL module tripping most of the ``rtl.*`` rules."""
    m = Module("lint_demo")
    a = m.add_input("a", 8)
    unused_in = m.add_input("unused_in", 4)  # rtl.unused-input
    m.add_input("sel", 1)                    # rtl.unused-input
    y = m.add_output("y", 8)
    m.add_output("ghost", 4)                 # rtl.undriven

    wide = m.add_wire("wide", 16)
    m.assign(wide, Ref(a))                   # rtl.implicit-extension

    narrow = m.add_wire("narrow", 4)
    # Reads only the zero-extension of `wide`: rtl.unreachable-slice.
    m.assign(narrow, Slice(Ref(wide), 15, 12))
    # `narrow` itself is read by nothing: rtl.unused-wire.

    dead = m.add_wire("deadcalc", 8)
    # No signal inputs: rtl.const-expr (and the wire is unused).
    m.assign(dead, BinOp("add", Const(1, 8), Const(2, 8)))

    big = m.add_wire("bigconst", 64)
    m.assign(big, Const(3, 64))              # rtl.oversized-const

    # Constant select + identical arms: rtl.dead-mux-arm, rtl.mux-same-arms.
    m.assign(y, Mux(Const(1, 1), Ref(a), Ref(a)))

    # Default next-value is the register itself: rtl.self-assign, and
    # nothing observes it: rtl.unread-register.
    m.add_register("frozen", 8)

    # A register *and* an assignment drive the same signal:
    # rtl.multi-driven.
    doubly = m.add_register("doubly", 4)
    m.assign(doubly.signal, Ref(unused_in))

    # Two wires assigned to each other: rtl.comb-loop.
    loop_a = m.add_wire("loop_a", 2)
    loop_b = m.add_wire("loop_b", 2)
    m.assign(loop_a, Ref(loop_b))
    m.assign(loop_b, Ref(loop_a))
    return m


def make_defective_netlist() -> GateNetlist:
    """A gate netlist tripping most of the ``net.*`` rules."""
    n = GateNetlist("lint_demo_net")
    a = n.add_input("a", 2)

    # Input net never driven by anything: net.floating-input.
    floater = n.new_net()
    hang = n.add_gate("AND", a[0], floater)

    # Same function twice (commutative inputs): net.duplicate-gate.
    dup1 = n.add_gate("AND", a[0], a[1])
    dup2 = n.add_gate("AND", a[1], a[0])

    # Constant input: net.const-gate.
    folded = n.add_gate("OR", dup1, n.const0())

    # Output of this gate goes nowhere: net.dangling.
    n.add_gate("XOR", a[0], a[1])

    # One net with more sinks than the threshold: net.high-fanout.
    # (Each sink pairs `fan` with a distinct net so none are duplicates.)
    fan = n.add_gate("BUF", a[0])
    taps, prev = [], a[1]
    for _ in range(20):
        prev = n.add_gate("AND", fan, prev)
        taps.append(prev)
    n.set_output("taps", taps)

    # State that never reaches an output: net.unreachable-register.
    n.add_dff(d=dup2)

    # Output bit on a net nothing drives: net.undriven-output.
    n.set_output("ghost", [n.new_net()])

    # Two drivers for one net: net.multi-driver (appended directly —
    # the construction API refuses to build this).
    n.gates.append(Gate("BUF", (a[1],), hang))

    n.set_output("y", [folded])
    return n
