"""Netlist lint: structural analysis over gate and mapped netlists.

Two scopes share one rule vocabulary:

* ``netlist`` — :class:`~repro.synth.netlist.GateNetlist`, the primitive
  gate level between lowering and technology mapping;
* ``mapped`` — :class:`~repro.synth.mapped.MappedNetlist`, standard
  cells, where library electrical data turns the fanout rule into a
  PDK-derived load check.

Both contexts compute their shared indexes exactly once.  The mapped
context deliberately goes through the netlist's *memoized* connectivity
indexes (``net_driver`` / ``net_loads`` / ``nets`` / ``seq_cells``) so a
lint run after placement or STA reuses the indexes those engines already
built instead of recomputing per rule.
"""

from __future__ import annotations

from typing import Iterable

from ..synth.mapped import CellInst, MappedNetlist
from ..synth.netlist import GateNetlist
from .core import Context, Finding, LintOptions, rule

#: Gate ops whose input order is irrelevant for duplicate detection.
_COMMUTATIVE_OPS = frozenset({"AND", "OR", "XOR"})
_COMMUTATIVE_KINDS = frozenset(
    {"AND2", "OR2", "XOR2", "NAND2", "NOR2", "XNOR2"}
)


class NetlistContext(Context):
    """Shared indexes over one :class:`GateNetlist`."""

    scope = "netlist"

    def __init__(self, netlist: GateNetlist, options: LintOptions):
        super().__init__(netlist.name, options)
        self.netlist = netlist
        self.const_nets = set(netlist.const_nets)

        #: net -> list of driver descriptions ("g3(AND)", "ff1").
        self.drivers: dict[int, list[str]] = {}
        #: net -> the driving gate/flip-flop object (first driver wins).
        self.driver_obj: dict[int, object] = {}
        for index, gate in enumerate(netlist.gates):
            self.drivers.setdefault(gate.output, []).append(
                f"g{index}({gate.op})"
            )
            self.driver_obj.setdefault(gate.output, gate)
        for index, ff in enumerate(netlist.dffs):
            self.drivers.setdefault(ff.q, []).append(f"ff{index}")
            self.driver_obj.setdefault(ff.q, ff)

        self.input_nets: set[int] = set()
        for nets in netlist.inputs.values():
            self.input_nets.update(nets)
        self.output_nets: set[int] = set()
        for nets in netlist.outputs.values():
            self.output_nets.update(nets)

        #: Computed once; every fanout-shaped rule reads this dict.
        self.fanout = netlist.fanout()

    def is_driven(self, net: int) -> bool:
        return (net in self.drivers or net in self.input_nets
                or net in self.const_nets)


@rule("net.floating-input", "error", "netlist")
def check_floating_input(ctx: NetlistContext) -> Iterable[Finding]:
    """Gate or flip-flop input connected to a net nothing drives."""
    for index, gate in enumerate(ctx.netlist.gates):
        for pin, net in enumerate(gate.inputs):
            if not ctx.is_driven(net):
                yield ctx.finding(
                    "net.floating-input", f"g{index}({gate.op}).in{pin}",
                    f"{gate.op} gate input {pin} floats on net {net}",
                    fix_hint="connect the input or remove the gate",
                )
    for index, ff in enumerate(ctx.netlist.dffs):
        if not ctx.is_driven(ff.d):
            yield ctx.finding(
                "net.floating-input", f"ff{index}.d",
                f"flip-flop D input floats on net {ff.d}",
                fix_hint="connect the D input",
            )


@rule("net.undriven-output", "error", "netlist")
def check_undriven_output(ctx: NetlistContext) -> Iterable[Finding]:
    """Output port bit connected to a net nothing drives."""
    for name, nets in ctx.netlist.outputs.items():
        for bit, net in enumerate(nets):
            if not ctx.is_driven(net):
                yield ctx.finding(
                    "net.undriven-output", f"{name}[{bit}]",
                    f"output {name}[{bit}] floats on net {net}",
                    fix_hint="drive the output bit",
                )


@rule("net.multi-driver", "error", "netlist")
def check_multi_driver(ctx: NetlistContext) -> Iterable[Finding]:
    """Net driven by more than one gate / flip-flop / input."""
    for net, drivers in ctx.drivers.items():
        extra = list(drivers)
        if net in ctx.input_nets:
            extra.append("input")
        if net in ctx.const_nets:
            extra.append("const")
        if len(extra) > 1:
            yield ctx.finding(
                "net.multi-driver", f"net{net}",
                f"net {net} has {len(extra)} drivers "
                f"({', '.join(extra)})",
                fix_hint="give the net exactly one driver",
            )


@rule("net.dangling", "warning", "netlist")
def check_dangling(ctx: NetlistContext) -> Iterable[Finding]:
    """Gate output that reaches no gate, flip-flop or output port."""
    for index, gate in enumerate(ctx.netlist.gates):
        if ctx.fanout.get(gate.output, 0) == 0:
            yield ctx.finding(
                "net.dangling", f"g{index}({gate.op})",
                f"{gate.op} gate output (net {gate.output}) drives nothing",
                fix_hint="run dead-code elimination",
            )


@rule("net.duplicate-gate", "warning", "netlist")
def check_duplicate_gate(ctx: NetlistContext) -> Iterable[Finding]:
    """Structurally identical gates computing the same function twice."""
    seen: dict[tuple, int] = {}
    for index, gate in enumerate(ctx.netlist.gates):
        inputs = (tuple(sorted(gate.inputs))
                  if gate.op in _COMMUTATIVE_OPS else gate.inputs)
        key = (gate.op, inputs)
        if key in seen:
            yield ctx.finding(
                "net.duplicate-gate", f"g{index}({gate.op})",
                f"structurally identical to g{seen[key]}; both compute "
                f"{gate.op}{tuple(gate.inputs)}",
                fix_hint=f"share the output of g{seen[key]}",
            )
        else:
            seen[key] = index


@rule("net.const-gate", "warning", "netlist")
def check_const_gate(ctx: NetlistContext) -> Iterable[Finding]:
    """Gate with a constant input (should be folded away)."""
    for index, gate in enumerate(ctx.netlist.gates):
        const_pins = [net for net in gate.inputs if net in ctx.const_nets]
        if const_pins:
            yield ctx.finding(
                "net.const-gate", f"g{index}({gate.op})",
                f"{gate.op} gate has a constant input (net "
                f"{const_pins[0]}); it folds to a simpler form",
                fix_hint="run constant propagation",
            )


@rule("net.high-fanout", "warning", "netlist")
def check_high_fanout(ctx: NetlistContext) -> Iterable[Finding]:
    """Net with more sinks than the fanout threshold."""
    limit = ctx.options.max_fanout
    for net, count in sorted(ctx.fanout.items()):
        if count <= limit:
            continue
        driver = ctx.drivers.get(net)
        location = driver[0] if driver else f"net{net}"
        yield ctx.finding(
            "net.high-fanout", location,
            f"net {net} fans out to {count} sinks (threshold {limit})",
            fix_hint="buffer the net or duplicate its driver",
        )


@rule("net.unreachable-register", "warning", "netlist")
def check_unreachable_register(ctx: NetlistContext) -> Iterable[Finding]:
    """Flip-flop with no combinational path to any output port."""
    visited: set[int] = set()
    stack = list(ctx.output_nets)
    while stack:
        net = stack.pop()
        if net in visited:
            continue
        visited.add(net)
        driver = ctx.driver_obj.get(net)
        if driver is None:
            continue
        if hasattr(driver, "inputs"):  # Gate
            stack.extend(driver.inputs)
        else:  # FlipFlop
            stack.append(driver.d)
    for index, ff in enumerate(ctx.netlist.dffs):
        if ff.q not in visited:
            yield ctx.finding(
                "net.unreachable-register", f"ff{index}",
                f"flip-flop q (net {ff.q}) never reaches an output port",
                fix_hint="expose the state or delete the register",
            )


# -- mapped netlist ---------------------------------------------------------


class MappedContext(Context):
    """Shared indexes over one :class:`MappedNetlist`.

    Connectivity comes from the netlist's own memoized indexes
    (:meth:`MappedNetlist.net_driver` and friends), so linting after any
    engine that already walked the design costs no index rebuild.  The
    driver index raises on multiple drivers; that hard malformation is
    reported as a ``net.multi-driver`` error via a tolerant fallback.
    """

    scope = "mapped"

    def __init__(self, mapped: MappedNetlist, options: LintOptions):
        super().__init__(mapped.name, options)
        self.mapped = mapped
        self.multi_driver_nets: dict[int, list[str]] = {}
        try:
            self.driver = dict(mapped.net_driver())
        except ValueError:
            # Tolerant rebuild: remember every contested net.
            self.driver = {}
            claims: dict[int, list[str]] = {}
            for inst in mapped.cells:
                net = inst.output_net
                if net is None:
                    continue
                claims.setdefault(net, []).append(inst.name)
                self.driver.setdefault(net, inst)
            self.multi_driver_nets = {
                net: names for net, names in claims.items()
                if len(names) > 1
            }
        self.loads = mapped.net_loads()
        self.all_nets = mapped.nets()

        self.input_nets: set[int] = set()
        for nets in mapped.inputs.values():
            self.input_nets.update(nets)
        self.output_nets: set[int] = set()
        for nets in mapped.outputs.values():
            self.output_nets.update(nets)

    def is_driven(self, net: int) -> bool:
        return net in self.driver or net in self.input_nets


@rule("net.floating-input", "error", "mapped")
def check_mapped_floating_input(ctx: MappedContext) -> Iterable[Finding]:
    """Cell input pin connected to a net nothing drives."""
    for inst in ctx.mapped.cells:
        for pin in inst.cell.inputs:
            net = inst.pins[pin]
            if not ctx.is_driven(net):
                yield ctx.finding(
                    "net.floating-input", f"{inst.name}.{pin}",
                    f"pin {pin} of {inst.cell.name} floats on net {net}",
                    fix_hint="connect the pin or remove the cell",
                )


@rule("net.undriven-output", "error", "mapped")
def check_mapped_undriven_output(ctx: MappedContext) -> Iterable[Finding]:
    """Output port bit connected to a net nothing drives."""
    for name, nets in ctx.mapped.outputs.items():
        for bit, net in enumerate(nets):
            if not ctx.is_driven(net):
                yield ctx.finding(
                    "net.undriven-output", f"{name}[{bit}]",
                    f"output {name}[{bit}] floats on net {net}",
                    fix_hint="drive the output bit",
                )


@rule("net.multi-driver", "error", "mapped")
def check_mapped_multi_driver(ctx: MappedContext) -> Iterable[Finding]:
    """Net driven by more than one cell output."""
    for net, names in sorted(ctx.multi_driver_nets.items()):
        yield ctx.finding(
            "net.multi-driver", f"net{net}",
            f"net {net} is driven by {len(names)} cells "
            f"({', '.join(names)})",
            fix_hint="give the net exactly one driver",
        )


@rule("net.dangling", "warning", "mapped")
def check_mapped_dangling(ctx: MappedContext) -> Iterable[Finding]:
    """Combinational cell output that reaches no pin or output port."""
    for inst in ctx.mapped.comb_cells:
        net = inst.output_net
        if net is None:
            continue
        if not ctx.loads.get(net) and net not in ctx.output_nets:
            yield ctx.finding(
                "net.dangling", inst.name,
                f"{inst.cell.name} output (net {net}) drives nothing",
                fix_hint="remove the dead cell",
            )


@rule("net.duplicate-gate", "warning", "mapped")
def check_mapped_duplicate_cell(ctx: MappedContext) -> Iterable[Finding]:
    """Structurally identical cells computing the same function twice."""
    seen: dict[tuple, CellInst] = {}
    for inst in ctx.mapped.comb_cells:
        if not inst.cell.inputs:
            continue  # tie cells legitimately repeat
        nets = tuple(inst.pins[p] for p in inst.cell.inputs)
        if inst.cell.kind in _COMMUTATIVE_KINDS:
            nets = tuple(sorted(nets))
        key = (inst.cell.kind, nets)
        if key in seen:
            yield ctx.finding(
                "net.duplicate-gate", inst.name,
                f"structurally identical to {seen[key].name}; both are "
                f"{inst.cell.kind} over nets {nets}",
                fix_hint=f"share the output of {seen[key].name}",
            )
        else:
            seen[key] = inst


@rule("net.const-gate", "warning", "mapped")
def check_mapped_const_cell(ctx: MappedContext) -> Iterable[Finding]:
    """Cell fed by a tie cell (constant input; should be folded away)."""
    for inst in ctx.mapped.comb_cells:
        for pin in inst.cell.inputs:
            driver = ctx.driver.get(inst.pins[pin])
            if driver is not None and driver.cell.kind.startswith("TIE"):
                yield ctx.finding(
                    "net.const-gate", f"{inst.name}.{pin}",
                    f"pin {pin} of {inst.cell.name} is tied constant by "
                    f"{driver.name}; the cell folds away",
                    fix_hint="run constant propagation before mapping",
                )
                break


@rule("net.high-fanout", "warning", "mapped")
def check_mapped_high_fanout(ctx: MappedContext) -> Iterable[Finding]:
    """Net whose pin load exceeds the PDK-derived per-drive budget."""
    budget_per_drive = ctx.options.max_load_per_drive_ff
    for net, sinks in sorted(ctx.loads.items()):
        load_ff = sum(inst.cell.input_cap_ff for inst, _pin in sinks)
        driver = ctx.driver.get(net)
        drive = driver.cell.drive if driver is not None else 1
        limit_ff = budget_per_drive * drive
        if load_ff > limit_ff:
            location = driver.name if driver is not None else f"net{net}"
            yield ctx.finding(
                "net.high-fanout", location,
                f"net {net} carries {load_ff:.1f} fF of pin load against "
                f"a budget of {limit_ff:.1f} fF (drive {drive})",
                fix_hint="upsize the driver or buffer the net",
            )


@rule("net.unreachable-register", "warning", "mapped")
def check_mapped_unreachable_register(
    ctx: MappedContext,
) -> Iterable[Finding]:
    """Sequential cell with no path to any output port."""
    visited: set[int] = set()
    stack = list(ctx.output_nets)
    while stack:
        net = stack.pop()
        if net in visited:
            continue
        visited.add(net)
        driver = ctx.driver.get(net)
        if driver is not None:
            stack.extend(driver.input_nets())
    for inst in ctx.mapped.seq_cells:
        net = inst.output_net
        if net is not None and net not in visited:
            yield ctx.finding(
                "net.unreachable-register", inst.name,
                f"{inst.cell.name} output (net {net}) never reaches an "
                "output port",
                fix_hint="expose the state or delete the register",
            )
