"""repro.lint — rule-based RTL and netlist static analysis.

The advisory quality gate in front of the flow (the SpyGlass-class
"lint first" discipline commercial enablement ships with): a rule
framework with severities, locations and fix hints, a waiver mechanism
mirroring signoff, and two analysis targets — word-level RTL modules
and gate/mapped netlists.  Reports serialize to JSON and gate CI and
tapeout signoff on unwaived ``error`` findings.
"""

from .core import (
    DEFAULT_OPTIONS,
    RULES,
    SEVERITIES,
    Finding,
    LintError,
    LintOptions,
    LintReport,
    Rule,
    Waiver,
    load_waiver_file,
    rule,
    rules_for,
)
from .demo import make_defective_module, make_defective_netlist
from .engine import lint_design, lint_gate_netlist, lint_mapped, lint_module
from .netlist import MappedContext, NetlistContext
from .rtl import RtlContext, expr_equal

__all__ = [
    "DEFAULT_OPTIONS",
    "Finding",
    "LintError",
    "LintOptions",
    "LintReport",
    "MappedContext",
    "NetlistContext",
    "RULES",
    "RtlContext",
    "Rule",
    "SEVERITIES",
    "Waiver",
    "expr_equal",
    "lint_design",
    "lint_gate_netlist",
    "lint_mapped",
    "lint_module",
    "load_waiver_file",
    "make_defective_module",
    "make_defective_netlist",
    "rule",
    "rules_for",
]
