"""RTL lint: advisory structural analysis over :class:`~repro.hdl.ir.Module`.

The IR's own :meth:`Module.validate` *raises* on hard malformations
(multiple drivers, undriven signals, combinational loops); these passes
report the same defects — plus the merely-suspicious ones validate
accepts — as :class:`~repro.lint.core.Finding` objects, so a student sees
every problem at once instead of one exception at a time.

All shared indexes (driver map, reader map, expression roots) are
computed once in :class:`RtlContext` and reused by every rule.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..hdl.ir import (
    BinOp,
    Cat,
    Const,
    Expr,
    Mux,
    Ref,
    Register,
    Signal,
    Slice,
    UnaryOp,
    eval_expr,
)
from .core import Context, Finding, LintOptions, rule


def expr_equal(a: Expr, b: Expr) -> bool:
    """Structural equality of expression trees (signals by identity)."""
    if a is b:
        return True
    if type(a) is not type(b):
        return False
    if isinstance(a, Const):
        return a.value == b.value and a.width == b.width
    if isinstance(a, Ref):
        return a.signal is b.signal
    if isinstance(a, UnaryOp):
        return a.op == b.op and expr_equal(a.operand, b.operand)
    if isinstance(a, BinOp):
        return a.op == b.op and expr_equal(a.a, b.a) and expr_equal(a.b, b.b)
    if isinstance(a, Mux):
        return (expr_equal(a.sel, b.sel)
                and expr_equal(a.if_true, b.if_true)
                and expr_equal(a.if_false, b.if_false))
    if isinstance(a, Cat):
        return len(a.parts) == len(b.parts) and all(
            expr_equal(x, y) for x, y in zip(a.parts, b.parts)
        )
    if isinstance(a, Slice):
        return a.hi == b.hi and a.lo == b.lo and expr_equal(a.value, b.value)
    return False


class RtlContext(Context):
    """Shared analyses over one module, computed once for all rules.

    Unlike :meth:`Module.drivers`, the driver map here is *tolerant*: a
    signal may map to several drivers (that is exactly what
    ``rtl.multi-driven`` reports) and nothing raises.
    """

    scope = "rtl"

    def __init__(self, module, options: LintOptions):
        super().__init__(module.name, options)
        self.module = module
        self.output_set = set(module.outputs)
        self.input_set = set(module.inputs)
        self.register_of: dict[Signal, Register] = {
            reg.signal: reg for reg in module.registers
        }

        #: signal -> list of ("assign" | "register" | "instance", driver).
        self.drivers: dict[Signal, list[tuple[str, object]]] = {}
        for sig, expr in module.assigns.items():
            self.drivers.setdefault(sig, []).append(("assign", expr))
        for reg in module.registers:
            self.drivers.setdefault(reg.signal, []).append(("register", reg))
        for inst in module.instances:
            child_outputs = {p.name for p in inst.module.outputs}
            for port, parent in inst.connections.items():
                if port in child_outputs:
                    self.drivers.setdefault(parent, []).append(
                        ("instance", inst)
                    )

        #: signal -> reader keys ("who reads this?").  A register's own
        #: next-expression is a distinguishable reader so the
        #: unread-register rule can exclude self-feedback.
        self.readers: dict[Signal, set[tuple[str, str]]] = {}

        def note_read(sig: Signal, reader: tuple[str, str]) -> None:
            self.readers.setdefault(sig, set()).add(reader)

        for sig, expr in module.assigns.items():
            for ref in expr.signals():
                note_read(ref, ("assign", sig.name))
        for reg in module.registers:
            for ref in reg.next.signals():
                note_read(ref, ("register", reg.signal.name))
        for inst in module.instances:
            child_inputs = {p.name for p in inst.module.inputs}
            for port, parent in inst.connections.items():
                if port in child_inputs:
                    note_read(parent, ("instance", inst.name))

        #: (location, root expression, target signal) for tree walks.
        self.expr_roots: list[tuple[str, Expr, Signal]] = [
            (sig.name, expr, sig) for sig, expr in module.assigns.items()
        ] + [
            (reg.signal.name, reg.next, reg.signal)
            for reg in module.registers
        ]

    def walk(self) -> Iterator[tuple[str, Expr]]:
        """Every (owner location, subtree node) across all expressions."""
        for location, root, _target in self.expr_roots:
            stack = [root]
            while stack:
                node = stack.pop()
                yield location, node
                stack.extend(node.children())

    def assign_expr_width(self, sig: Signal) -> int | None:
        """Width of ``sig``'s single combinational driver, if it has one."""
        entries = self.drivers.get(sig, [])
        if len(entries) == 1 and entries[0][0] == "assign":
            return entries[0][1].width
        return None

    def reads_of(self, sig: Signal) -> set[tuple[str, str]]:
        return self.readers.get(sig, set())


# -- driver discipline ------------------------------------------------------


@rule("rtl.undriven", "error", "rtl")
def check_undriven(ctx: RtlContext) -> Iterable[Finding]:
    """Output or internal wire with no driver."""
    for sig in [*ctx.module.outputs, *ctx.module.wires]:
        if sig not in ctx.drivers:
            kind = "output" if sig in ctx.output_set else "wire"
            yield ctx.finding(
                "rtl.undriven", sig.name,
                f"{kind} {sig.name!r} ({sig.width} bits) has no driver",
                fix_hint="assign it, register it, or delete it",
            )


@rule("rtl.multi-driven", "error", "rtl")
def check_multi_driven(ctx: RtlContext) -> Iterable[Finding]:
    """Signal with more than one driver (assign / register / instance)."""
    for sig, entries in ctx.drivers.items():
        if len(entries) > 1:
            kinds = ", ".join(kind for kind, _ in entries)
            yield ctx.finding(
                "rtl.multi-driven", sig.name,
                f"signal {sig.name!r} has {len(entries)} drivers ({kinds})",
                fix_hint="keep exactly one driver per signal",
            )


@rule("rtl.input-driven", "error", "rtl")
def check_input_driven(ctx: RtlContext) -> Iterable[Finding]:
    """Input port driven from inside the module."""
    for sig in ctx.module.inputs:
        if sig in ctx.drivers:
            yield ctx.finding(
                "rtl.input-driven", sig.name,
                f"input {sig.name!r} is driven inside the module",
                fix_hint="drive an output or wire instead",
            )


@rule("rtl.comb-loop", "error", "rtl")
def check_comb_loop(ctx: RtlContext) -> Iterable[Finding]:
    """Combinational assignments forming a cycle (Tarjan SCCs)."""
    assigns = ctx.module.assigns
    graph = {
        sig: [dep for dep in expr.signals() if dep in assigns]
        for sig, expr in assigns.items()
    }
    index: dict[Signal, int] = {}
    lowlink: dict[Signal, int] = {}
    on_stack: set[Signal] = set()
    stack: list[Signal] = []
    sccs: list[list[Signal]] = []
    counter = [0]

    def strongconnect(root: Signal) -> None:
        work = [(root, iter(graph[root]))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, deps = work[-1]
            advanced = False
            for dep in deps:
                if dep not in index:
                    index[dep] = lowlink[dep] = counter[0]
                    counter[0] += 1
                    stack.append(dep)
                    on_stack.add(dep)
                    work.append((dep, iter(graph[dep])))
                    advanced = True
                    break
                if dep in on_stack:
                    lowlink[node] = min(lowlink[node], index[dep])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member is node:
                        break
                sccs.append(scc)

    for sig in graph:
        if sig not in index:
            strongconnect(sig)

    for scc in sccs:
        if len(scc) == 1:
            sig = scc[0]
            # A pure buffer-of-itself is reported by rtl.self-assign.
            if sig not in graph[sig] or isinstance(assigns[sig], Ref):
                continue
        names = sorted(sig.name for sig in scc)
        yield ctx.finding(
            "rtl.comb-loop", names[0],
            f"combinational loop through {', '.join(names)}",
            fix_hint="break the cycle with a register",
        )


# -- liveness ---------------------------------------------------------------


@rule("rtl.unused-input", "warning", "rtl")
def check_unused_input(ctx: RtlContext) -> Iterable[Finding]:
    """Input port that nothing reads."""
    for sig in ctx.module.inputs:
        if not ctx.reads_of(sig):
            yield ctx.finding(
                "rtl.unused-input", sig.name,
                f"input {sig.name!r} ({sig.width} bits) is never read",
                fix_hint="remove the port or connect it",
            )


@rule("rtl.unused-wire", "warning", "rtl")
def check_unused_wire(ctx: RtlContext) -> Iterable[Finding]:
    """Internal wire that nothing reads (register outputs have their own rule)."""
    for sig in ctx.module.wires:
        if sig in ctx.register_of:
            continue
        if not ctx.reads_of(sig):
            yield ctx.finding(
                "rtl.unused-wire", sig.name,
                f"wire {sig.name!r} ({sig.width} bits) is never read",
                fix_hint="delete the wire and its driver",
            )


@rule("rtl.unread-register", "warning", "rtl")
def check_unread_register(ctx: RtlContext) -> Iterable[Finding]:
    """Register whose value is only read (if at all) by its own next-expression."""
    for reg in ctx.module.registers:
        readers = ctx.reads_of(reg.signal)
        external = readers - {("register", reg.signal.name)}
        if not external:
            yield ctx.finding(
                "rtl.unread-register", reg.signal.name,
                f"register {reg.signal.name!r} ({reg.signal.width} bits) "
                "is state nothing observes",
                fix_hint="expose it on an output or delete it",
            )


@rule("rtl.self-assign", "warning", "rtl")
def check_self_assign(ctx: RtlContext) -> Iterable[Finding]:
    """Signal driven by exactly itself (frozen register / buffer loop)."""
    for reg in ctx.module.registers:
        next_expr = reg.next
        if isinstance(next_expr, Ref) and next_expr.signal is reg.signal:
            yield ctx.finding(
                "rtl.self-assign", reg.signal.name,
                f"register {reg.signal.name!r} next-value is itself; it "
                f"never leaves its reset value {reg.reset_value}",
                fix_hint="give the register a real next-value expression",
            )
    for sig, expr in ctx.module.assigns.items():
        if isinstance(expr, Ref) and expr.signal is sig:
            yield ctx.finding(
                "rtl.self-assign", sig.name,
                f"signal {sig.name!r} is combinationally assigned to itself",
                fix_hint="drive it from a real source",
            )


# -- width discipline -------------------------------------------------------


@rule("rtl.width-truncation", "error", "rtl")
def check_width_truncation(ctx: RtlContext) -> Iterable[Finding]:
    """Driver expression wider than its target (silent truncation)."""
    for location, root, target in ctx.expr_roots:
        if root.width > target.width:
            yield ctx.finding(
                "rtl.width-truncation", location,
                f"{target.name!r} is {target.width} bits but its driver "
                f"is {root.width} bits; the top bits are dropped",
                fix_hint="slice the expression explicitly",
            )


@rule("rtl.implicit-extension", "info", "rtl")
def check_implicit_extension(ctx: RtlContext) -> Iterable[Finding]:
    """Driver expression narrower than its target (implicit zero-extension)."""
    for location, root, target in ctx.expr_roots:
        if root.width < target.width:
            yield ctx.finding(
                "rtl.implicit-extension", location,
                f"{target.name!r} is {target.width} bits but its driver "
                f"is {root.width} bits; zero-extended implicitly",
                fix_hint="make the extension explicit with zext()",
            )


# -- constant discipline ----------------------------------------------------


@rule("rtl.const-expr", "info", "rtl")
def check_const_expr(ctx: RtlContext) -> Iterable[Finding]:
    """Driver expression with no signal inputs (constant-foldable)."""
    for location, root, target in ctx.expr_roots:
        if isinstance(root, Const) or root.signals():
            continue
        value = eval_expr(root, {})
        yield ctx.finding(
            "rtl.const-expr", location,
            f"driver of {target.name!r} references no signals; it always "
            f"evaluates to {value}",
            fix_hint=f"replace the expression with Const({value}, "
                     f"{root.width})",
        )


@rule("rtl.oversized-const", "info", "rtl")
def check_oversized_const(ctx: RtlContext) -> Iterable[Finding]:
    """Constant declared far wider than its value needs."""
    threshold = ctx.options.min_const_waste_bits
    for location, node in ctx.walk():
        if not isinstance(node, Const):
            continue
        needed = max(1, node.value.bit_length())
        if node.width - needed >= threshold:
            yield ctx.finding(
                "rtl.oversized-const", location,
                f"constant {node.value} uses {node.width} bits where "
                f"{needed} suffice",
                fix_hint=f"declare it as Const({node.value}, {needed})",
            )


# -- selection discipline ---------------------------------------------------


@rule("rtl.dead-mux-arm", "warning", "rtl")
def check_dead_mux_arm(ctx: RtlContext) -> Iterable[Finding]:
    """Mux whose select is constant, making one arm unreachable."""
    for location, node in ctx.walk():
        if not isinstance(node, Mux) or node.sel.signals():
            continue
        sel = eval_expr(node.sel, {})
        dead = "if_false" if sel else "if_true"
        yield ctx.finding(
            "rtl.dead-mux-arm", location,
            f"mux select is constant {sel}; the {dead} arm is unreachable",
            fix_hint="drop the mux and keep the live arm",
        )


@rule("rtl.mux-same-arms", "info", "rtl")
def check_mux_same_arms(ctx: RtlContext) -> Iterable[Finding]:
    """Mux whose arms are structurally identical (select is irrelevant)."""
    for location, node in ctx.walk():
        if isinstance(node, Mux) and expr_equal(node.if_true, node.if_false):
            yield ctx.finding(
                "rtl.mux-same-arms", location,
                "both mux arms are identical; the select has no effect",
                fix_hint="replace the mux with either arm",
            )


@rule("rtl.unreachable-slice", "warning", "rtl")
def check_unreachable_slice(ctx: RtlContext) -> Iterable[Finding]:
    """Slice reading only bits that are zero by construction."""
    for location, node in ctx.walk():
        if not isinstance(node, Slice):
            continue
        value = node.value
        if isinstance(value, Ref):
            driven_width = ctx.assign_expr_width(value.signal)
            if driven_width is not None and node.lo >= driven_width:
                yield ctx.finding(
                    "rtl.unreachable-slice", location,
                    f"slice [{node.hi}:{node.lo}] of {value.signal.name!r} "
                    f"reads only the implicit zero-extension (driver is "
                    f"{driven_width} bits)",
                    fix_hint="slice inside the driven range or widen the "
                             "driver",
                )
        elif isinstance(value, Const):
            if node.lo >= max(1, value.value.bit_length()):
                yield ctx.finding(
                    "rtl.unreachable-slice", location,
                    f"slice [{node.hi}:{node.lo}] of constant {value.value} "
                    "is always zero",
                    fix_hint="fold the slice to Const(0, "
                             f"{node.width})",
                )
