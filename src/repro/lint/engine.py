"""The lint engine: run registered rules over a design, traced.

Entry points:

* :func:`lint_module` — RTL rules over a :class:`~repro.hdl.ir.Module`;
* :func:`lint_gate_netlist` — netlist rules over a
  :class:`~repro.synth.netlist.GateNetlist`;
* :func:`lint_mapped` — netlist rules over a
  :class:`~repro.synth.mapped.MappedNetlist` (PDK-aware fanout check);
* :func:`lint_design` — RTL plus whichever netlists are provided,
  merged into one report.

Every run opens a ``lint.<scope>`` span on the ambient (or supplied)
tracer with one child span per rule, and bumps the
``lint.findings.<severity>`` counters, so lint shows up in flow traces
exactly like synthesis or routing stages do.
"""

from __future__ import annotations

from ..hdl.ir import Module
from ..obs.metrics import get_metrics
from ..obs.trace import Tracer, get_tracer
from ..synth.mapped import MappedNetlist
from ..synth.netlist import GateNetlist
from .core import (
    DEFAULT_OPTIONS,
    Context,
    LintOptions,
    LintReport,
    Waiver,
    rules_for,
)
from .netlist import MappedContext, NetlistContext
from .rtl import RtlContext


def _run_scope(
    ctx: Context,
    waivers: tuple[Waiver, ...],
    tracer: Tracer,
) -> LintReport:
    findings = []
    with tracer.span(f"lint.{ctx.scope}", target=ctx.target) as scope_span:
        for registered in rules_for(ctx.scope):
            if registered.id in ctx.options.disabled:
                continue
            with tracer.span(f"lint.rule.{registered.id}") as rule_span:
                produced = list(registered.check(ctx))
                if produced and tracer.enabled:
                    rule_span.set(findings=len(produced))
            findings.extend(produced)
        findings.sort(key=lambda finding: finding.sort_key)
        report = LintReport(findings=findings, waivers=tuple(waivers))
        counts = report.counts()
        scope_span.set(findings=len(findings), errors=counts["error"],
                       warnings=counts["warning"], waived=len(report.waived))
    metrics = get_metrics()
    for severity, count in counts.items():
        if count:
            metrics.counter(f"lint.findings.{severity}").inc(count)
    metrics.counter("lint.runs").inc()
    return report


def lint_module(
    module: Module,
    waivers: tuple[Waiver, ...] = (),
    options: LintOptions = DEFAULT_OPTIONS,
    tracer: Tracer | None = None,
) -> LintReport:
    """Run the RTL rules over ``module`` (no validate() required)."""
    tracer = get_tracer() if tracer is None else tracer
    return _run_scope(RtlContext(module, options), tuple(waivers), tracer)


def lint_gate_netlist(
    netlist: GateNetlist,
    waivers: tuple[Waiver, ...] = (),
    options: LintOptions = DEFAULT_OPTIONS,
    tracer: Tracer | None = None,
) -> LintReport:
    """Run the netlist rules over a primitive gate netlist."""
    tracer = get_tracer() if tracer is None else tracer
    return _run_scope(NetlistContext(netlist, options), tuple(waivers),
                      tracer)


def lint_mapped(
    mapped: MappedNetlist,
    waivers: tuple[Waiver, ...] = (),
    options: LintOptions = DEFAULT_OPTIONS,
    tracer: Tracer | None = None,
) -> LintReport:
    """Run the netlist rules over a technology-mapped netlist."""
    tracer = get_tracer() if tracer is None else tracer
    return _run_scope(MappedContext(mapped, options), tuple(waivers), tracer)


def lint_design(
    module: Module,
    netlist: GateNetlist | None = None,
    mapped: MappedNetlist | None = None,
    waivers: tuple[Waiver, ...] = (),
    options: LintOptions = DEFAULT_OPTIONS,
    tracer: Tracer | None = None,
) -> LintReport:
    """Lint the RTL and whichever netlist representations are provided."""
    report = lint_module(module, waivers, options, tracer)
    if netlist is not None:
        report = report.merge(
            lint_gate_netlist(netlist, waivers, options, tracer)
        )
    if mapped is not None:
        report = report.merge(lint_mapped(mapped, waivers, options, tracer))
    return report
