"""Rule framework for the static-analysis engine.

Commercial flows put a lint tool (SpyGlass-class) in front of synthesis
as the first quality gate; this module is the framework that gate is
built from.  Everything is data:

* :class:`Finding` — one diagnostic: a rule id, a severity, a location
  inside a design, a message and an optional fix hint.
* :class:`Waiver` — a consciously-accepted finding pattern (rule and
  location globs plus a mandatory-by-convention reason), mirroring the
  named waivers of :mod:`repro.core.signoff`.
* :class:`LintReport` — findings plus waivers, with severity partitions,
  a human rendering and a JSON round trip (reports are artifacts, like
  traces and GDS).
* :class:`Rule` and :func:`rule` — the registry the analysis passes in
  :mod:`repro.lint.rtl` and :mod:`repro.lint.netlist` register into.

Severity semantics (the CLI exit-code contract builds on them):
``error`` findings gate CI and signoff unless waived; ``warning`` and
``info`` never gate, but ``--strict`` promotes warnings to errors.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from fnmatch import fnmatchcase
from typing import Callable, Iterable

#: Valid severities, most severe first.
SEVERITIES = ("error", "warning", "info")
_SEVERITY_RANK = {name: rank for rank, name in enumerate(SEVERITIES)}

#: Analysis scopes a rule can run under.
SCOPES = ("rtl", "netlist", "mapped")


class LintError(Exception):
    """Raised for malformed findings, waivers or report files."""


@dataclass(frozen=True)
class Finding:
    """One diagnostic produced by a rule."""

    rule: str
    severity: str
    target: str  # design / netlist name
    location: str  # signal, gate or cell path inside the target
    message: str
    fix_hint: str = ""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise LintError(
                f"finding {self.rule!r}: unknown severity {self.severity!r}"
            )

    @property
    def sort_key(self) -> tuple:
        return (_SEVERITY_RANK[self.severity], self.target, self.rule,
                self.location)

    def to_dict(self) -> dict[str, str]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "target": self.target,
            "location": self.location,
            "message": self.message,
            "fix_hint": self.fix_hint,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Finding":
        try:
            return cls(
                rule=data["rule"],
                severity=data["severity"],
                target=data["target"],
                location=data["location"],
                message=data["message"],
                fix_hint=data.get("fix_hint", ""),
            )
        except KeyError as exc:
            raise LintError(f"finding record is missing {exc}") from exc


@dataclass(frozen=True)
class Waiver:
    """A consciously-accepted finding pattern.

    ``rule`` and ``location`` are shell-style globs matched with
    :func:`fnmatch.fnmatchcase`; ``Waiver("net.high-fanout")`` waives the
    rule everywhere, ``Waiver("rtl.*", "demo.count")`` waives every RTL
    rule at one location.
    """

    rule: str
    location: str = "*"
    reason: str = ""

    def matches(self, finding: Finding) -> bool:
        return fnmatchcase(finding.rule, self.rule) and fnmatchcase(
            finding.location, self.location
        )

    @classmethod
    def parse(cls, spec: str, reason: str = "") -> "Waiver":
        """Parse the CLI form ``RULE[@LOCATION][#REASON]``."""
        spec, sep, comment = spec.partition("#")
        if sep and not reason:
            reason = comment.strip()
        spec = spec.strip()
        if not spec:
            raise LintError("empty waiver spec")
        rule, _, location = spec.partition("@")
        return cls(rule=rule.strip(), location=location.strip() or "*",
                   reason=reason)

    def to_dict(self) -> dict[str, str]:
        return {"rule": self.rule, "location": self.location,
                "reason": self.reason}

    @classmethod
    def from_dict(cls, data: dict) -> "Waiver":
        try:
            return cls(rule=data["rule"],
                       location=data.get("location", "*"),
                       reason=data.get("reason", ""))
        except KeyError as exc:
            raise LintError(f"waiver record is missing {exc}") from exc


def load_waiver_file(path: str) -> tuple[Waiver, ...]:
    """Read a waiver file: one ``RULE[@LOCATION][# reason]`` per line."""
    waivers = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            waivers.append(Waiver.parse(line))
    return tuple(waivers)


@dataclass
class LintReport:
    """Findings plus the waivers applied to them."""

    findings: list[Finding] = field(default_factory=list)
    waivers: tuple[Waiver, ...] = ()

    # -- waiver partitioning ----------------------------------------------

    def waiver_for(self, finding: Finding) -> Waiver | None:
        for waiver in self.waivers:
            if waiver.matches(finding):
                return waiver
        return None

    @property
    def active(self) -> list[Finding]:
        """Findings not covered by any waiver."""
        return [f for f in self.findings if self.waiver_for(f) is None]

    @property
    def waived(self) -> list[Finding]:
        return [f for f in self.findings if self.waiver_for(f) is not None]

    # -- severity partitions (of active findings) --------------------------

    @property
    def errors(self) -> list[Finding]:
        return [f for f in self.active if f.severity == "error"]

    @property
    def warnings(self) -> list[Finding]:
        return [f for f in self.active if f.severity == "warning"]

    @property
    def infos(self) -> list[Finding]:
        return [f for f in self.active if f.severity == "info"]

    @property
    def clean(self) -> bool:
        """No unwaived error findings (the CI / signoff gate)."""
        return not self.errors

    def rule_ids(self) -> set[str]:
        return {f.rule for f in self.findings}

    def counts(self) -> dict[str, int]:
        counts = {severity: 0 for severity in SEVERITIES}
        for finding in self.active:
            counts[finding.severity] += 1
        return counts

    # -- transformations ---------------------------------------------------

    def merge(self, other: "LintReport") -> "LintReport":
        """Concatenate findings; waivers are unioned (order-preserving)."""
        waivers = list(self.waivers)
        waivers.extend(w for w in other.waivers if w not in self.waivers)
        return LintReport(
            findings=sorted(self.findings + other.findings,
                            key=lambda f: f.sort_key),
            waivers=tuple(waivers),
        )

    def promote_warnings(self) -> "LintReport":
        """Strict mode: every warning becomes an error; info is untouched."""
        return LintReport(
            findings=[
                replace(f, severity="error") if f.severity == "warning" else f
                for f in self.findings
            ],
            waivers=self.waivers,
        )

    # -- rendering ---------------------------------------------------------

    def summary(self) -> str:
        counts = self.counts()
        status = "clean" if self.clean else "FAILING"
        return (
            f"lint {status}: {counts['error']} errors, "
            f"{counts['warning']} warnings, {counts['info']} info, "
            f"{len(self.waived)} waived, "
            f"{len(self.rule_ids())} distinct rules"
        )

    def render(self) -> str:
        """Human-readable finding table, most severe first."""
        lines = []
        for finding in sorted(self.findings, key=lambda f: f.sort_key):
            waiver = self.waiver_for(finding)
            tag = "waived" if waiver is not None else finding.severity
            line = (f"{tag:8s} {finding.rule:24s} "
                    f"{finding.target}.{finding.location}: {finding.message}")
            if finding.fix_hint:
                line += f" [hint: {finding.fix_hint}]"
            if waiver is not None and waiver.reason:
                line += f" (waived: {waiver.reason})"
            lines.append(line)
        lines.append(self.summary())
        return "\n".join(lines)

    # -- JSON round trip ---------------------------------------------------

    def to_json(self, indent: int | None = 2) -> str:
        counts = self.counts()
        return json.dumps(
            {
                "findings": [f.to_dict() for f in self.findings],
                "waivers": [w.to_dict() for w in self.waivers],
                "waived": [f.to_dict() for f in self.waived],
                "counts": counts,
                "clean": self.clean,
            },
            indent=indent,
        )

    @classmethod
    def from_json(cls, text: str) -> "LintReport":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise LintError(f"malformed lint report: {exc}") from exc
        if not isinstance(data, dict) or "findings" not in data:
            raise LintError("lint report has no 'findings' record")
        return cls(
            findings=[Finding.from_dict(f) for f in data["findings"]],
            waivers=tuple(Waiver.from_dict(w)
                          for w in data.get("waivers", ())),
        )


# -- rule registry ---------------------------------------------------------


@dataclass(frozen=True)
class Rule:
    """One registered analysis pass."""

    id: str
    severity: str
    scope: str
    doc: str
    check: Callable[[object], Iterable[Finding]]


#: All registered rules, keyed by (scope, id).  Rule ids are shared
#: across the netlist/mapped scopes when the concept is the same.
RULES: dict[tuple[str, str], Rule] = {}


def rule(rule_id: str, severity: str, scope: str):
    """Register an analysis pass; the docstring becomes the rule doc."""
    if severity not in SEVERITIES:
        raise LintError(f"rule {rule_id!r}: unknown severity {severity!r}")
    if scope not in SCOPES:
        raise LintError(f"rule {rule_id!r}: unknown scope {scope!r}")

    def decorator(fn):
        key = (scope, rule_id)
        if key in RULES:
            raise LintError(f"rule {rule_id!r} already registered for {scope}")
        RULES[key] = Rule(
            id=rule_id,
            severity=severity,
            scope=scope,
            doc=(fn.__doc__ or "").strip().split("\n")[0],
            check=fn,
        )
        return fn

    return decorator


def rules_for(scope: str) -> list[Rule]:
    """Rules of one scope, in stable id order."""
    return sorted(
        (rule for (rule_scope, _), rule in RULES.items()
         if rule_scope == scope),
        key=lambda rule: rule.id,
    )


class Context:
    """Base class for per-target analysis contexts.

    Subclasses precompute the shared indexes (driver maps, read counts,
    fanout) once so the rule passes never recompute them per rule, and
    set :attr:`scope` so :meth:`finding` can stamp each diagnostic with
    its rule's registered severity.
    """

    scope: str = ""

    def __init__(self, target: str, options: "LintOptions"):
        self.target = target
        self.options = options

    def finding(self, rule_id: str, location: str, message: str,
                fix_hint: str = "") -> Finding:
        registered = RULES[(self.scope, rule_id)]
        return Finding(
            rule=rule_id,
            severity=registered.severity,
            target=self.target,
            location=location,
            message=message,
            fix_hint=fix_hint,
        )


@dataclass(frozen=True)
class LintOptions:
    """Tunable thresholds for the analysis passes.

    ``max_load_per_drive_ff`` mirrors the sizing knob of
    :func:`repro.synth.sizing.size_for_load`: a mapped net is flagged
    when its input-pin load exceeds this many fF per unit of the
    driver's drive strength (the PDK-derived fanout threshold).
    ``max_fanout`` is the plain sink-count bound used at the primitive
    gate level, where no library electrical data exists yet.
    """

    max_fanout: int = 16
    max_load_per_drive_ff: float = 8.0
    min_const_waste_bits: int = 16
    disabled: frozenset[str] = frozenset()


DEFAULT_OPTIONS = LintOptions()
