"""Liberty (.lib) writer and reader for the standard-cell libraries.

The Liberty file is *the* enablement artifact of Section III-D: every
synthesis and STA tool is configured through it.  The writer emits the
classic linear-delay-model dialect (``intrinsic_rise`` +
``rise_resistance``), which matches the toolkit's one-segment delay model
exactly; the reader parses that dialect back into a
:class:`~repro.pdk.cells.Library`, round-trip tested.

Boolean functions use Liberty syntax: ``*`` AND (or juxtaposition),
``+`` OR, ``^`` XOR, ``!`` NOT.
"""

from __future__ import annotations

import re

from .cells import _CELL_SPECS, _DFF_SPEC, Library, StandardCell
from .node import ProcessNode

#: Liberty function strings per cell kind.
_FUNCTIONS = {
    "INV": "!a",
    "BUF": "a",
    "NAND2": "!(a*b)",
    "NOR2": "!(a+b)",
    "AND2": "(a*b)",
    "OR2": "(a+b)",
    "XOR2": "(a^b)",
    "XNOR2": "!(a^b)",
    "NAND3": "!(a*b*c)",
    "NOR3": "!(a+b+c)",
    "AOI21": "!((a*b)+c)",
    "OAI21": "!((a+b)*c)",
    "MUX2": "((a*!s)+(b*s))",
    "TIE0": "0",
    "TIE1": "1",
}


def write_liberty(library: Library) -> str:
    """Emit the library as Liberty text."""
    node = library.node
    lines = [
        f"library ({library.name}) {{",
        '  delay_model : "generic_cmos";',
        '  time_unit : "1ps";',
        '  capacitive_load_unit (1, "ff");',
        '  leakage_power_unit : "1nW";',
        f"  nom_voltage : {node.voltage_v};",
        f'  comment : "generated for {node.name} '
        f'({node.feature_nm:.0f} nm)";',
    ]
    for name in sorted(library.cells):
        cell = library.cells[name]
        lines.append(f"  cell ({cell.name}) {{")
        lines.append(f"    area : {cell.area_um2};")
        lines.append(f"    cell_leakage_power : {cell.leakage_nw};")
        if cell.is_sequential:
            lines.append(f'    ff ("IQ") {{ next_state : "d"; '
                         f'clocked_on : "clk"; }}')
        for pin in cell.inputs:
            lines.append(f"    pin ({pin}) {{")
            lines.append("      direction : input;")
            lines.append(f"      capacitance : {cell.input_cap_ff};")
            lines.append("    }")
        if cell.output:
            lines.append(f"    pin ({cell.output}) {{")
            lines.append("      direction : output;")
            function = (
                "IQ" if cell.is_sequential
                else _FUNCTIONS.get(cell.kind, "")
            )
            if function:
                lines.append(f'      function : "{function}";')
            related = ("clk",) if cell.is_sequential else cell.inputs
            for pin in related:
                lines.append("      timing () {")
                lines.append(f'        related_pin : "{pin}";')
                lines.append(f"        intrinsic_rise : {cell.intrinsic_ps};")
                lines.append(f"        intrinsic_fall : {cell.intrinsic_ps};")
                lines.append(f"        rise_resistance : {cell.resistance_kohm};")
                lines.append(f"        fall_resistance : {cell.resistance_kohm};")
                lines.append("      }")
            lines.append("    }")
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines) + "\n"


# -- reader ---------------------------------------------------------------------

_TOKEN = re.compile(r'[{}();:]|"[^"]*"|[^\s{}();:]+')


def _tokenize(text: str) -> list[str]:
    return _TOKEN.findall(text)


class _Parser:
    """Minimal recursive-descent parser for the emitted dialect."""

    def __init__(self, tokens: list[str]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> str:
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, token: str) -> None:
        got = self.next()
        if got != token:
            raise ValueError(f"liberty parse error: expected {token!r}, got {got!r}")

    def group(self) -> dict:
        """Parse ``name (args) { ... }`` after name/args were consumed."""
        body: dict = {"attributes": {}, "groups": []}
        self.expect("{")
        while self.peek() != "}":
            name = self.next()
            if self.peek() == ":":
                self.next()
                value_parts = []
                while self.peek() not in (";",):
                    value_parts.append(self.next())
                self.expect(";")
                body["attributes"][name] = " ".join(value_parts).strip('"')
            elif self.peek() == "(":
                self.next()
                args = []
                while self.peek() != ")":
                    args.append(self.next().strip('"'))
                self.expect(")")
                if self.peek() == "{":
                    child = self.group()
                    child["name"] = name
                    child["args"] = args
                    body["groups"].append(child)
                else:
                    self.expect(";")
                    body["attributes"][name] = args
            else:
                raise ValueError(f"liberty parse error near {name!r}")
        self.expect("}")
        return body


def parse_liberty(text: str) -> dict:
    """Parse Liberty text into a nested group dictionary."""
    parser = _Parser(_tokenize(text))
    name = parser.next()
    if name != "library":
        raise ValueError("liberty file must start with 'library'")
    parser.expect("(")
    lib_name = parser.next()
    parser.expect(")")
    root = parser.group()
    root["name"] = "library"
    root["args"] = [lib_name]
    return root


def read_liberty(text: str, node: ProcessNode) -> Library:
    """Reconstruct a :class:`Library` from emitted Liberty text.

    The node supplies nothing numeric — all values come from the file —
    but is carried so downstream consumers keep their wire models.
    """
    root = parse_liberty(text)
    spec_by_kind = {spec[0]: spec for spec in _CELL_SPECS}
    spec_by_kind[_DFF_SPEC[0]] = _DFF_SPEC

    library = Library(root["args"][0], node)
    for group in root["groups"]:
        if group["name"] != "cell":
            continue
        cell_name = group["args"][0]
        kind, _, drive_txt = cell_name.rpartition("_X")
        drive = int(drive_txt)
        spec = spec_by_kind[kind]
        function = spec[2]
        sequential = kind == "DFF"

        input_cap = 0.0
        intrinsic = 0.0
        resistance = 0.0
        inputs: list[str] = []
        output = ""
        for pin in group["groups"]:
            if pin["name"] == "ff":
                continue
            direction = pin["attributes"].get("direction")
            if direction == "input":
                inputs.append(pin["args"][0])
                input_cap = float(pin["attributes"]["capacitance"])
            elif direction == "output":
                output = pin["args"][0]
                for timing in pin["groups"]:
                    intrinsic = float(timing["attributes"]["intrinsic_rise"])
                    resistance = float(
                        timing["attributes"]["rise_resistance"]
                    )
        library.add(
            StandardCell(
                name=cell_name,
                kind=kind,
                drive=drive,
                inputs=tuple(inputs),
                output=output,
                function=function,
                area_um2=float(group["attributes"]["area"]),
                input_cap_ff=input_cap,
                intrinsic_ps=intrinsic,
                resistance_kohm=resistance,
                leakage_nw=float(group["attributes"]["cell_leakage_power"]),
                is_sequential=sequential,
            )
        )
    return library
