"""Process node models with internally consistent scaling.

The paper's cost and capability arguments (Sections III-C, III-D) hinge on
how electrical and economic parameters change across technology nodes.  We
derive every node parameter from the feature size through one documented
scaling law (:func:`scale_node`), anchored at a 130 nm reference — the node
class available through today's open PDKs.  The absolute values are
educational approximations; the *relative* behaviour across nodes (smaller
is faster, denser, leakier, with more resistive wires) is what the
experiments rely on.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Reference feature size for the scaling law, in nanometres.
REFERENCE_NM = 130.0


@dataclass(frozen=True)
class ProcessNode:
    """Electrical and geometric parameters of a fabrication node."""

    name: str
    feature_nm: float
    metal_layers: int
    voltage_v: float
    #: Placement site dimensions; cells are an integer number of sites wide.
    site_width_um: float
    row_height_um: float
    #: Unit wire parasitics for Elmore delay estimation.
    wire_res_ohm_per_um: float
    wire_cap_ff_per_um: float
    #: Base inverter characteristics all cell timing derives from.
    inv_intrinsic_ps: float
    inv_resistance_kohm: float
    inv_input_cap_ff: float
    inv_leakage_nw: float

    @property
    def fo4_delay_ps(self) -> float:
        """Fanout-of-4 inverter delay — the classic speed yardstick."""
        return self.inv_intrinsic_ps + self.inv_resistance_kohm * (
            4.0 * self.inv_input_cap_ff
        )


def scale_node(name: str, feature_nm: float, metal_layers: int) -> ProcessNode:
    """Create a :class:`ProcessNode` from the feature size alone.

    Scaling law, with ``s = feature / 130 nm``:

    * geometry shrinks linearly: site width ``2 f``, row height ``20 f``;
    * intrinsic gate delay scales ~linearly with feature size;
    * gate input capacitance scales with area (``~ s``);
    * drive resistance rises slowly as devices shrink (``~ s^-0.25``)
      — the classic reason delay does not improve as fast as area;
    * supply voltage follows a softened constant-field trend;
    * leakage per gate *grows* quadratically as features shrink — the
      post-90 nm leakage crisis;
    * wire resistance per micron grows as wires narrow (``~ 1/s``), wire
      capacitance per micron is nearly constant.
    """
    if feature_nm <= 0:
        raise ValueError(f"feature size must be positive, got {feature_nm}")
    s = feature_nm / REFERENCE_NM
    f_um = feature_nm / 1000.0
    return ProcessNode(
        name=name,
        feature_nm=feature_nm,
        metal_layers=metal_layers,
        voltage_v=round(min(1.8, max(0.7, 1.5 * s**0.45)), 2),
        site_width_um=round(2.0 * f_um, 4),
        row_height_um=round(20.0 * f_um, 4),
        wire_res_ohm_per_um=round(0.08 / s, 4),
        wire_cap_ff_per_um=round(0.20 * s**0.1, 4),
        inv_intrinsic_ps=round(18.0 * s, 3),
        inv_resistance_kohm=round(2.0 * s**-0.25 * s, 4),
        inv_input_cap_ff=round(2.0 * s, 4),
        inv_leakage_nw=round(0.1 / s**2, 5),
    )
