"""Layer stack and design-rule definitions.

Layers carry GDSII layer/datatype numbers (used by the writer) and the
width/spacing rules the DRC engine checks.  The stack is a simplified
planar CMOS stack: active, poly, local interconnect, then N metals.
"""

from __future__ import annotations

from dataclasses import dataclass

from .node import ProcessNode

#: GDSII datatype of the electrical "net purpose" fabric.  Drawing-purpose
#: shapes (datatype 0) are what DRC checks; net-purpose shapes carry the
#: exact per-net connectivity geometry (thin backbones, pin pads, contact
#: cuts) that netlist extraction reads back.  Real decks separate mask
#: purposes the same way (drawing/pin/net datatypes per layer).
NET_DATATYPE = 1


@dataclass(frozen=True)
class Layer:
    """One mask layer."""

    name: str
    gds_layer: int
    gds_datatype: int
    purpose: str  # "base", "routing", "via", "label"
    min_width_um: float
    min_spacing_um: float


@dataclass(frozen=True)
class LayerStack:
    """Ordered layer definitions for one node."""

    layers: tuple[Layer, ...]

    def by_name(self, name: str) -> Layer:
        for layer in self.layers:
            if layer.name == name:
                return layer
        raise KeyError(f"no layer named {name!r}")

    def routing_layers(self) -> list[Layer]:
        return [l for l in self.layers if l.purpose == "routing"]

    @property
    def outline(self) -> Layer:
        return self.by_name("outline")


def make_layer_stack(node: ProcessNode) -> LayerStack:
    """Build the layer stack with rules scaled from the feature size.

    Metal pitch (and hence min width/spacing) grows with the layer index —
    upper metals are fatter, as in every real stack.
    """
    f_um = node.feature_nm / 1000.0
    layers: list[Layer] = [
        Layer("outline", 0, 0, "base", f_um, 0.0),
        Layer("active", 1, 0, "base", 2 * f_um, 2 * f_um),
        Layer("poly", 2, 0, "base", f_um, 2 * f_um),
        Layer("li", 3, 0, "routing", 1.5 * f_um, 1.5 * f_um),
        # Local-interconnect contact: the cut layer joining li to met1.
        # Electrically a via level; li crossing met1 without a lic cut
        # does not connect, which is what makes pin-stub geometry safe
        # to draw under foreign met1 wires.
        Layer("lic", 4, 0, "via", 1.5 * f_um, 1.5 * f_um),
    ]
    for i in range(node.metal_layers):
        fat = 1.0 + 0.4 * i
        layers.append(
            Layer(
                f"met{i + 1}",
                10 + i,
                0,
                "routing",
                round(2 * f_um * fat, 4),
                round(2 * f_um * fat, 4),
            )
        )
        layers.append(
            Layer(
                f"via{i + 1}",
                30 + i,
                0,
                "via",
                round(1.5 * f_um * fat, 4),
                round(2 * f_um * fat, 4),
            )
        )
    layers.append(Layer("label", 60, 0, "label", 0.0, 0.0))
    return LayerStack(tuple(layers))
