"""The synthetic PDKs shipped with the toolkit.

Three nodes mirror the landscape Section III-C describes:

* ``edu180`` — an open 180 nm node (GF180MCU class): no NDA, cheap MPW.
* ``edu130`` — an open 130 nm node (SkyWater class): no NDA, modest MPW.
* ``edu045`` — a commercial 45 nm node: NDA + export control + prior
  tape-out requirements, expensive MPW — the access-barrier case study.

The access-term fields are consumed by :mod:`repro.core.licensing`, the
MPW fields by :mod:`repro.analytics.mpw` and :mod:`repro.core.shuttle`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cells import Library, make_library
from .layers import LayerStack, make_layer_stack
from .node import ProcessNode, scale_node


@dataclass(frozen=True)
class AccessTerms:
    """Legal and economic access conditions for a PDK (Section III-C)."""

    open_source: bool
    nda_required: bool
    export_controlled: bool
    #: Completed tape-outs in earlier nodes required before access.
    min_prior_tapeouts: int
    #: Requires a fixed project description with secured funding.
    requires_fixed_project: bool
    #: Requires an isolated IT environment on campus.
    requires_isolated_it: bool
    mpw_cost_per_mm2_eur: float
    mask_set_cost_eur: float
    fab_turnaround_days: int
    packaging_days: int

    @property
    def total_turnaround_days(self) -> int:
        return self.fab_turnaround_days + self.packaging_days


@dataclass(frozen=True)
class Pdk:
    """A process design kit: node + library + layers + access terms."""

    name: str
    node: ProcessNode
    library: Library
    layers: LayerStack
    terms: AccessTerms
    description: str = ""

    @property
    def is_open(self) -> bool:
        return self.terms.open_source

    def __repr__(self) -> str:
        return f"Pdk({self.name!r}, {self.node.feature_nm:.0f} nm)"


def make_edu180() -> Pdk:
    node = scale_node("edu180", 180.0, metal_layers=4)
    return Pdk(
        name="edu180",
        node=node,
        library=make_library(node),
        layers=make_layer_stack(node),
        terms=AccessTerms(
            open_source=True,
            nda_required=False,
            export_controlled=False,
            min_prior_tapeouts=0,
            requires_fixed_project=False,
            requires_isolated_it=False,
            mpw_cost_per_mm2_eur=650.0,
            mask_set_cost_eur=150_000.0,
            fab_turnaround_days=90,
            packaging_days=30,
        ),
        description="Open 180 nm node (GF180MCU class), beginner friendly.",
    )


def make_edu130() -> Pdk:
    node = scale_node("edu130", 130.0, metal_layers=5)
    return Pdk(
        name="edu130",
        node=node,
        library=make_library(node),
        layers=make_layer_stack(node),
        terms=AccessTerms(
            open_source=True,
            nda_required=False,
            export_controlled=False,
            min_prior_tapeouts=0,
            requires_fixed_project=False,
            requires_isolated_it=False,
            mpw_cost_per_mm2_eur=1_100.0,
            mask_set_cost_eur=250_000.0,
            fab_turnaround_days=100,
            packaging_days=30,
        ),
        description="Open 130 nm node (SkyWater class), the open-PDK workhorse.",
    )


def make_edu045() -> Pdk:
    node = scale_node("edu045", 45.0, metal_layers=7)
    return Pdk(
        name="edu045",
        node=node,
        library=make_library(node),
        layers=make_layer_stack(node),
        terms=AccessTerms(
            open_source=False,
            nda_required=True,
            export_controlled=True,
            min_prior_tapeouts=2,
            requires_fixed_project=True,
            requires_isolated_it=True,
            mpw_cost_per_mm2_eur=9_500.0,
            mask_set_cost_eur=2_500_000.0,
            fab_turnaround_days=130,
            packaging_days=40,
        ),
        description=(
            "Commercial 45 nm node: NDA, export control and prior tape-out "
            "requirements model the access barriers of Section III-C."
        ),
    )


_FACTORIES = {
    "edu180": make_edu180,
    "edu130": make_edu130,
    "edu045": make_edu045,
}
_CACHE: dict[str, Pdk] = {}


def get_pdk(name: str) -> Pdk:
    """Fetch a built-in PDK by name (instances are cached)."""
    if name not in _FACTORIES:
        raise KeyError(
            f"unknown PDK {name!r}; available: {sorted(_FACTORIES)}"
        )
    if name not in _CACHE:
        _CACHE[name] = _FACTORIES[name]()
    return _CACHE[name]


def list_pdks() -> list[str]:
    """Names of all built-in PDKs."""
    return sorted(_FACTORIES)
