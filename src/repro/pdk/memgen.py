"""Memory macro generator.

Section III-D lists "management of technology-specific databases such as
PDKs, libraries, IP blocks, and generators (e.g., memory generators)"
among the enablement tasks.  This module is that generator: given a
words x bits configuration it produces

* synthesizable register-file RTL (1R1W, synchronous write, asynchronous
  mux read) built on the toolkit's own IR, and
* a macro model (area/timing/leakage) scaled from the node parameters,
  the way a foundry memory compiler datasheet would report it.

Register-file RTL is the honest choice at educational scale: real SRAM
bit cells are analog; the macro model covers the "what would the compiled
SRAM cost" question for floorplanning exercises.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..hdl.hcl import ModuleBuilder, mux
from ..hdl.ir import Module
from .node import ProcessNode


@dataclass(frozen=True)
class MemoryMacro:
    """Compiled-memory datasheet entry for one configuration."""

    name: str
    words: int
    bits: int
    node_feature_nm: float
    area_um2: float
    access_time_ps: float
    cycle_time_ps: float
    leakage_nw: float
    dynamic_read_fj: float  # energy per read access

    @property
    def kilobits(self) -> float:
        return self.words * self.bits / 1024.0

    @property
    def bit_density_kb_per_mm2(self) -> float:
        return self.kilobits / (self.area_um2 * 1e-6)


def macro_model(node: ProcessNode, words: int, bits: int) -> MemoryMacro:
    """SRAM macro estimate from node geometry.

    A 6T bit cell occupies ~140 F^2; periphery (decoder, sense amps, IO)
    adds a size-dependent overhead; access time grows with the square
    root of the word count (wordline/bitline RC).
    """
    if words < 2 or bits < 1:
        raise ValueError("memory needs at least 2 words and 1 bit")
    f_um = node.feature_nm / 1000.0
    cell_area = 140.0 * f_um * f_um
    array_area = cell_area * words * bits
    periphery = array_area * (0.25 + 4.0 / math.sqrt(words * bits))
    access = node.inv_intrinsic_ps * (4.0 + 1.5 * math.sqrt(words / 16.0))
    return MemoryMacro(
        name=f"sram_{words}x{bits}",
        words=words,
        bits=bits,
        node_feature_nm=node.feature_nm,
        area_um2=round(array_area + periphery, 3),
        access_time_ps=round(access, 2),
        cycle_time_ps=round(1.6 * access, 2),
        leakage_nw=round(node.inv_leakage_nw * 0.25 * words * bits, 4),
        dynamic_read_fj=round(
            0.5 * bits * node.inv_input_cap_ff * node.voltage_v**2, 4
        ),
    )


def generate_register_file(words: int, bits: int,
                           name: str | None = None) -> Module:
    """Synthesizable 1R1W register file.

    Ports: ``waddr``, ``wdata``, ``wen`` (synchronous write) and
    ``raddr`` -> ``rdata`` (combinational read).  ``words`` must be a
    power of two so addresses cover the array exactly.
    """
    if words < 2 or words & (words - 1):
        raise ValueError(f"words must be a power of two >= 2, got {words}")
    if bits < 1:
        raise ValueError(f"bits must be >= 1, got {bits}")
    addr_width = words.bit_length() - 1

    b = ModuleBuilder(name or f"regfile_{words}x{bits}")
    waddr = b.input("waddr", addr_width)
    wdata = b.input("wdata", bits)
    wen = b.input("wen", 1)
    raddr = b.input("raddr", addr_width)

    rows = []
    for i in range(words):
        row = b.register(f"row{i}", bits)
        row.next = mux(wen & waddr.eq(i), wdata, row)
        rows.append(row)

    rdata = rows[0]
    for i in range(1, words):
        rdata = mux(raddr.eq(i), rows[i], rdata)
    b.output("rdata", rdata)
    return b.build()


def sweep_table(node: ProcessNode,
                configs: tuple[tuple[int, int], ...] = (
                    (16, 8), (64, 16), (256, 32), (1024, 32),
                )) -> list[MemoryMacro]:
    """Datasheet table across configurations (enablement collateral)."""
    return [macro_model(node, words, bits) for words, bits in configs]
