"""Process design kits: nodes, standard cells, layers, access terms."""

from .cells import DRIVE_STRENGTHS, Library, StandardCell, make_library
from .layers import Layer, LayerStack, make_layer_stack
from .memgen import MemoryMacro, generate_register_file, macro_model, sweep_table
from .node import REFERENCE_NM, ProcessNode, scale_node
from .pdks import (
    AccessTerms,
    Pdk,
    get_pdk,
    list_pdks,
    make_edu045,
    make_edu130,
    make_edu180,
)

__all__ = [
    "DRIVE_STRENGTHS",
    "AccessTerms",
    "Layer",
    "LayerStack",
    "Library",
    "MemoryMacro",
    "Pdk",
    "ProcessNode",
    "REFERENCE_NM",
    "StandardCell",
    "generate_register_file",
    "get_pdk",
    "list_pdks",
    "make_edu045",
    "make_edu130",
    "make_edu180",
    "make_layer_stack",
    "macro_model",
    "make_library",
    "scale_node",
    "sweep_table",
]
