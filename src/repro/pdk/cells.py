"""Standard-cell library model.

Cells carry everything the downstream flow needs:

* a boolean function (for gate-level simulation and equivalence checks),
* area in placement sites (for floorplanning and placement),
* a linear delay model ``delay = intrinsic + resistance * load`` per arc
  (an educational one-segment NLDM, used by STA),
* input pin capacitance and leakage power (used by STA and power).

Each logical cell exists in several drive strengths (X1/X2/X4...).  Gate
sizing — picking a stronger variant on heavily loaded nets — is one of the
optimizations the "commercial" flow preset enables, which feeds the paper's
open-vs-commercial PPA-gap experiment (E4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .node import ProcessNode


@dataclass(frozen=True)
class StandardCell:
    """One sized variant of a logic cell."""

    name: str
    kind: str  # e.g. "NAND2"; sizing variants share the kind
    drive: int  # relative drive strength (1, 2, 4, ...)
    inputs: tuple[str, ...]  # ordered input pin names
    output: str  # output pin name ("" for cells without one)
    function: Callable[..., int] | None  # bit-level function of the inputs
    area_um2: float
    input_cap_ff: float  # per input pin
    intrinsic_ps: float
    resistance_kohm: float  # delay slope vs load capacitance (ps/fF)
    leakage_nw: float
    is_sequential: bool = False

    @property
    def n_inputs(self) -> int:
        return len(self.inputs)

    def delay_ps(self, load_ff: float) -> float:
        """Pin-to-pin delay under ``load_ff`` of output load."""
        return self.intrinsic_ps + self.resistance_kohm * load_ff

    def __repr__(self) -> str:
        return f"StandardCell({self.name})"


# Cell boolean functions as module-level defs (not lambdas) so every
# StandardCell — and anything referencing one, like a checkpointed
# mapped netlist — pickles by function reference.
def _fn_inv(a): return a ^ 1
def _fn_buf(a): return a
def _fn_nand2(a, b): return (a & b) ^ 1
def _fn_nor2(a, b): return (a | b) ^ 1
def _fn_and2(a, b): return a & b
def _fn_or2(a, b): return a | b
def _fn_xor2(a, b): return a ^ b
def _fn_xnor2(a, b): return (a ^ b) ^ 1
def _fn_nand3(a, b, c): return (a & b & c) ^ 1
def _fn_nor3(a, b, c): return (a | b | c) ^ 1
def _fn_aoi21(a, b, c): return ((a & b) | c) ^ 1
def _fn_oai21(a, b, c): return ((a | b) & c) ^ 1
def _fn_mux2(a, b, s): return b if s else a
def _fn_tie0(): return 0
def _fn_tie1(): return 1


# (kind, inputs, function, sites, intrinsic factor, resistance factor,
#  relative leakage).  Factors are relative to the node's base inverter.
_CELL_SPECS: list[tuple] = [
    ("INV", ("a",), _fn_inv, 3, 1.0, 1.0, 1.0),
    ("BUF", ("a",), _fn_buf, 4, 1.6, 0.9, 1.2),
    ("NAND2", ("a", "b"), _fn_nand2, 4, 1.2, 1.1, 1.4),
    ("NOR2", ("a", "b"), _fn_nor2, 4, 1.4, 1.3, 1.4),
    ("AND2", ("a", "b"), _fn_and2, 5, 1.9, 1.0, 1.6),
    ("OR2", ("a", "b"), _fn_or2, 5, 2.1, 1.0, 1.6),
    ("XOR2", ("a", "b"), _fn_xor2, 8, 2.6, 1.4, 2.2),
    ("XNOR2", ("a", "b"), _fn_xnor2, 8, 2.6, 1.4, 2.2),
    ("NAND3", ("a", "b", "c"), _fn_nand3, 6, 1.6, 1.3, 1.9),
    ("NOR3", ("a", "b", "c"), _fn_nor3, 6, 2.0, 1.6, 1.9),
    ("AOI21", ("a", "b", "c"), _fn_aoi21, 6, 1.5, 1.3, 1.8),
    ("OAI21", ("a", "b", "c"), _fn_oai21, 6, 1.5, 1.3, 1.8),
    ("MUX2", ("a", "b", "s"), _fn_mux2, 9, 2.2, 1.2, 2.4),
    ("TIE0", (), _fn_tie0, 2, 0.0, 0.0, 0.3),
    ("TIE1", (), _fn_tie1, 2, 0.0, 0.0, 0.3),
]

#: The flip-flop is specified separately: its "function" is sequential.
_DFF_SPEC = ("DFF", ("d",), None, 16, 3.5, 1.0, 4.0)

#: Drive strengths generated for every combinational cell.
DRIVE_STRENGTHS = (1, 2, 4)


@dataclass
class Library:
    """A complete standard-cell library for one process node."""

    name: str
    node: ProcessNode
    cells: dict[str, StandardCell] = field(default_factory=dict)

    def add(self, cell: StandardCell) -> None:
        if cell.name in self.cells:
            raise ValueError(f"duplicate cell {cell.name!r}")
        self.cells[cell.name] = cell

    def get(self, name: str) -> StandardCell:
        return self.cells[name]

    def by_kind(self, kind: str, drive: int = 1) -> StandardCell:
        """The variant of ``kind`` at the given drive strength."""
        name = f"{kind}_X{drive}"
        if name not in self.cells:
            raise KeyError(f"library {self.name!r} has no cell {name!r}")
        return self.cells[name]

    def kinds(self) -> set[str]:
        return {cell.kind for cell in self.cells.values()}

    def drives_for(self, kind: str) -> list[int]:
        """Available drive strengths for a kind, ascending."""
        return sorted(
            cell.drive for cell in self.cells.values() if cell.kind == kind
        )

    def stronger_variant(self, cell: StandardCell) -> StandardCell | None:
        """The next drive strength up, or ``None`` at the top."""
        drives = self.drives_for(cell.kind)
        index = drives.index(cell.drive)
        if index + 1 >= len(drives):
            return None
        return self.by_kind(cell.kind, drives[index + 1])

    @property
    def dff(self) -> StandardCell:
        return self.by_kind("DFF")

    def __repr__(self) -> str:
        return f"Library({self.name!r}, {len(self.cells)} cells)"


def _sized(
    node: ProcessNode,
    kind: str,
    inputs: tuple[str, ...],
    function,
    sites: int,
    t_factor: float,
    r_factor: float,
    leak_factor: float,
    drive: int,
    sequential: bool = False,
) -> StandardCell:
    # Stronger cells: proportionally lower resistance, ~30% extra area per
    # doubling, higher leakage; input capacitance stays that of the input
    # stage (educational simplification).
    area_scale = 1.0 + 0.3 * (drive.bit_length() - 1)
    site_area = node.site_width_um * node.row_height_um
    return StandardCell(
        name=f"{kind}_X{drive}",
        kind=kind,
        drive=drive,
        inputs=inputs,
        output="q" if sequential else ("y" if function else ""),
        function=function,
        area_um2=round(sites * site_area * area_scale, 5),
        input_cap_ff=round(node.inv_input_cap_ff * (1.0 + 0.15 * (len(inputs) - 1)), 4)
        if inputs
        else 0.0,
        intrinsic_ps=round(node.inv_intrinsic_ps * t_factor, 4),
        resistance_kohm=round(node.inv_resistance_kohm * r_factor / drive, 5),
        leakage_nw=round(node.inv_leakage_nw * leak_factor * drive, 6),
        is_sequential=sequential,
    )


def make_library(node: ProcessNode, name: str | None = None) -> Library:
    """Generate the full standard-cell library for ``node``."""
    library = Library(name or f"{node.name}_stdcells", node)
    for kind, inputs, function, sites, tf, rf, lf in _CELL_SPECS:
        drives = (1,) if kind.startswith("TIE") else DRIVE_STRENGTHS
        for drive in drives:
            library.add(
                _sized(node, kind, inputs, function, sites, tf, rf, lf, drive)
            )
    kind, inputs, function, sites, tf, rf, lf = _DFF_SPEC
    for drive in DRIVE_STRENGTHS:
        library.add(
            _sized(
                node, kind, inputs, function, sites, tf, rf, lf, drive,
                sequential=True,
            )
        )
    return library
