"""LEF (Library Exchange Format) writer and reader for cell abstracts.

LEF is the physical sibling of Liberty: the placer and router learn cell
sizes, site geometry and pin locations from it.  The writer emits the
standard ``SITE``/``MACRO`` structure with one abstract pin rectangle per
port; the reader parses that subset back, round-trip tested.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cells import Library
from .node import ProcessNode


@dataclass
class LefPin:
    name: str
    direction: str  # INPUT / OUTPUT
    rect: tuple[float, float, float, float]


@dataclass
class LefMacro:
    name: str
    width: float
    height: float
    site: str
    pins: list[LefPin] = field(default_factory=list)


@dataclass
class LefLibrary:
    site_name: str
    site_width: float
    site_height: float
    macros: list[LefMacro] = field(default_factory=list)

    def macro(self, name: str) -> LefMacro:
        for macro in self.macros:
            if macro.name == name:
                return macro
        raise KeyError(f"no macro {name!r}")


def from_library(library: Library) -> LefLibrary:
    """Build the LEF view of a standard-cell library."""
    node = library.node
    site = f"{node.name}_site"
    lef = LefLibrary(site, node.site_width_um, node.row_height_um)
    pin_size = min(node.site_width_um, 0.4 * node.row_height_um)
    for name in sorted(library.cells):
        cell = library.cells[name]
        width = cell.area_um2 / node.row_height_um
        macro = LefMacro(cell.name, round(width, 4),
                         node.row_height_um, site)
        ports = list(cell.inputs) + ([cell.output] if cell.output else [])
        if cell.is_sequential:
            ports.append("clk")
        step = width / (len(ports) + 1) if ports else width
        for index, pin_name in enumerate(ports):
            x = (index + 1) * step
            direction = "OUTPUT" if pin_name == cell.output else "INPUT"
            macro.pins.append(
                LefPin(
                    pin_name,
                    direction,
                    (
                        round(x - pin_size / 2, 4),
                        round(0.1 * node.row_height_um, 4),
                        round(x + pin_size / 2, 4),
                        round(0.1 * node.row_height_um + pin_size, 4),
                    ),
                )
            )
        lef.macros.append(macro)
    return lef


def write_lef(lef: LefLibrary) -> str:
    """Serialize to LEF 5.8 text."""
    lines = [
        "VERSION 5.8 ;",
        "BUSBITCHARS \"[]\" ;",
        "DIVIDERCHAR \"/\" ;",
        "",
        f"SITE {lef.site_name}",
        "  CLASS CORE ;",
        f"  SIZE {lef.site_width} BY {lef.site_height} ;",
        f"END {lef.site_name}",
        "",
    ]
    for macro in lef.macros:
        lines.append(f"MACRO {macro.name}")
        lines.append("  CLASS CORE ;")
        lines.append(f"  SIZE {macro.width} BY {macro.height} ;")
        lines.append(f"  SITE {macro.site} ;")
        for pin in macro.pins:
            lines.append(f"  PIN {pin.name}")
            lines.append(f"    DIRECTION {pin.direction} ;")
            lines.append("    PORT")
            lines.append("      LAYER met1 ;")
            x0, y0, x1, y1 = pin.rect
            lines.append(f"      RECT {x0} {y0} {x1} {y1} ;")
            lines.append("    END")
            lines.append(f"  END {pin.name}")
        lines.append(f"END {macro.name}")
        lines.append("")
    lines.append("END LIBRARY")
    return "\n".join(lines) + "\n"


def read_lef(text: str) -> LefLibrary:
    """Parse LEF text produced by :func:`write_lef`."""
    lef = LefLibrary("", 0.0, 0.0)
    macro: LefMacro | None = None
    pin: LefPin | None = None
    in_site = False
    site_name = ""

    for raw in text.splitlines():
        tokens = raw.strip().rstrip(";").split()
        if not tokens:
            continue
        keyword = tokens[0]
        if keyword == "SITE" and macro is None and len(tokens) == 2:
            in_site = True
            site_name = tokens[1]
            lef.site_name = site_name
        elif keyword == "SIZE" and in_site:
            lef.site_width = float(tokens[1])
            lef.site_height = float(tokens[3])
        elif keyword == "MACRO":
            in_site = False
            macro = LefMacro(tokens[1], 0.0, 0.0, "")
        elif keyword == "SIZE" and macro is not None and pin is None:
            macro.width = float(tokens[1])
            macro.height = float(tokens[3])
        elif keyword == "SITE" and macro is not None:
            macro.site = tokens[1]
        elif keyword == "PIN" and macro is not None:
            pin = LefPin(tokens[1], "", (0, 0, 0, 0))
        elif keyword == "DIRECTION" and pin is not None:
            pin.direction = tokens[1]
        elif keyword == "RECT" and pin is not None:
            pin.rect = tuple(float(t) for t in tokens[1:5])
        elif keyword == "END" and len(tokens) > 1:
            if in_site and tokens[1] == site_name:
                in_site = False
            elif pin is not None and tokens[1] == pin.name:
                macro.pins.append(pin)
                pin = None
            elif macro is not None and tokens[1] == macro.name:
                lef.macros.append(macro)
                macro = None
    return lef


def write_library_lef(library: Library) -> str:
    """Convenience: library straight to LEF text."""
    return write_lef(from_library(library))
