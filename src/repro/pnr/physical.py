"""Physical implementation orchestration: floorplan → place → CTS → route.

:func:`implement` is the backend entry point used by the flow runner; the
returned :class:`PhysicalDesign` carries everything signoff needs (routed
wire lengths for STA/power, clock skew map, die geometry for GDS export).

Each backend stage is individually checkpointable: pass a
:class:`~repro.resil.checkpoint.StageCheckpointer` and every completed
stage is serialized immediately, so a flow interrupted after placement
resumes with the identical placement and only recomputes what is
missing.  ``inject`` accepts a :class:`~repro.resil.faults.FaultInjector`
drill that deterministically fails named stages.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs.metrics import MetricsRegistry, get_metrics
from ..obs.trace import Tracer, get_tracer
from ..pdk.pdks import Pdk
from ..resil.checkpoint import StageCheckpointer
from ..resil.faults import FaultInjector
from ..synth.mapped import MappedNetlist
from .cts import ClockTree, synthesize_clock_tree
from .floorplan import Floorplan, make_floorplan
from .hier import hier_place, hier_quantize_um2, hier_utilization
from .placement import Placement, place, random_place
from .route import RoutingResult, grid_capacity, route


@dataclass
class PhysicalDesign:
    """The output of the backend flow for one mapped netlist."""

    mapped: MappedNetlist
    pdk: Pdk
    floorplan: Floorplan
    placement: Placement
    clock_tree: ClockTree
    routing: RoutingResult

    @property
    def die_area_mm2(self) -> float:
        return self.floorplan.die_area_mm2

    def wire_lengths(self) -> dict[int, float]:
        return self.routing.wire_lengths()

    def report(self) -> dict[str, object]:
        return {
            "design": self.mapped.name,
            "pdk": self.pdk.name,
            "cells": len(self.mapped.cells),
            "die_area_mm2": round(self.die_area_mm2, 6),
            "hpwl_um": self.placement.hpwl_um,
            "routed_wirelength_um": round(
                self.routing.total_wirelength_um, 3
            ),
            "routing_overflow": self.routing.overflow,
            "clock_skew_ps": round(self.clock_tree.skew_ps, 3),
            "clock_buffers": len(self.clock_tree.buffers),
        }


def implement(
    mapped: MappedNetlist,
    pdk: Pdk,
    utilization: float = 0.7,
    aspect_ratio: float = 1.0,
    detailed_placement_passes: int = 0,
    cts_buffering: bool = True,
    router_rip_up: bool = True,
    placer: str = "quadratic",
    seed: int = 1,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    checkpoints: StageCheckpointer | None = None,
    inject: FaultInjector | None = None,
    eco: object | None = None,
) -> PhysicalDesign:
    """Run the full backend on ``mapped`` with the given knobs.

    The knobs correspond one-to-one to the preset differences (experiment
    E4) and the ablation benchmarks: detailed placement passes, CTS
    buffering, router rip-up and the placer algorithm itself.  ``tracer``
    (default: the process tracer) receives one span per backend flow step
    plus sub-spans for the inner phases; tracing never changes results.
    ``checkpoints`` loads completed stages and saves fresh ones as they
    finish; a loaded stage's span carries ``cached=True`` and takes
    effectively no time.  ``inject`` fails named stages on purpose
    (resilience drills) by raising
    :class:`~repro.resil.failure.InjectedFault`.

    ``placer="hier"`` selects the region-stable hierarchical placer
    (:mod:`repro.pnr.hier`): the floorplan is quantized so small netlist
    edits keep the die, and each instance subtree places inside its own
    region, so untouched logic keeps seed-stable positions across edits.
    ``eco`` (an :class:`repro.inter.EcoSession`) replaces the routing
    call with its verified-replay router — byte-identical to a cold
    route, but substituting recorded paths whose cost landscape provably
    did not change.
    """
    if tracer is None:
        tracer = get_tracer()
    if metrics is None:
        metrics = get_metrics()

    def restore(stage: str):
        """Checkpointed artifact for ``stage``, with hit/miss metering."""
        if checkpoints is None:
            return None
        artifact = checkpoints.load(stage)
        metrics.counter(
            f"resil.checkpoint.{'hit' if artifact is not None else 'miss'}"
        ).inc()
        return artifact

    def preserve(stage: str, artifact) -> None:
        if checkpoints is not None:
            checkpoints.save(stage, artifact)

    def drill(stage: str) -> None:
        if inject is not None:
            inject.check(stage)

    with tracer.span("step.floorplanning") as sp:
        drill("floorplanning")
        floorplan = restore("floorplan")
        if floorplan is None:
            floorplan = make_floorplan(
                mapped, pdk.node,
                utilization=(
                    hier_utilization(mapped, pdk.node, utilization)
                    if placer == "hier" else utilization
                ),
                aspect_ratio=aspect_ratio,
                quantize_um2=(
                    hier_quantize_um2(pdk.node) if placer == "hier" else None
                ),
            )
            preserve("floorplan", floorplan)
        else:
            sp.set(cached=True)
        sp.set(**floorplan.stats())
    with tracer.span("step.placement", placer=placer) as sp:
        drill("placement")
        placement = restore("placement")
        if placement is None:
            if placer == "quadratic":
                placement = place(
                    mapped, floorplan,
                    detailed_passes=detailed_placement_passes, seed=seed,
                    tracer=tracer,
                )
            elif placer == "hier":
                placement = hier_place(
                    mapped, floorplan, seed=seed, tracer=tracer
                )
            elif placer == "random":
                placement = random_place(mapped, floorplan, seed=seed)
            else:
                raise ValueError(f"unknown placer {placer!r}")
            preserve("placement", placement)
        else:
            sp.set(cached=True)
        sp.set(hpwl_um=placement.hpwl_um)
    with tracer.span("step.clock_tree_synthesis") as sp:
        drill("clock_tree_synthesis")
        clock_tree = restore("clock_tree")
        if clock_tree is None:
            clock_tree = synthesize_clock_tree(
                placement, mapped.library, pdk.node, buffering=cts_buffering,
                tracer=tracer,
            )
            preserve("clock_tree", clock_tree)
        else:
            sp.set(cached=True)
        sp.set(**clock_tree.stats())
    with tracer.span("step.routing") as sp:
        drill("routing")
        routing = restore("routing")
        if routing is None:
            capacity = grid_capacity(pdk.node, pdk.layers)
            if eco is not None:
                routing = eco.route(
                    mapped, placement, pdk.node, rip_up=router_rip_up,
                    capacity=capacity, max_iterations=8, tracer=tracer,
                )
            else:
                routing = route(
                    mapped, placement, pdk.node, rip_up=router_rip_up,
                    capacity=capacity, max_iterations=8, tracer=tracer,
                )
            preserve("routing", routing)
        else:
            sp.set(cached=True)
        sp.set(**routing.stats())
    metrics.counter("pnr.implementations").inc()
    return PhysicalDesign(
        mapped=mapped,
        pdk=pdk,
        floorplan=floorplan,
        placement=placement,
        clock_tree=clock_tree,
        routing=routing,
    )
