"""Physical implementation orchestration: floorplan → place → CTS → route.

:func:`implement` is the backend entry point used by the flow runner; the
returned :class:`PhysicalDesign` carries everything signoff needs (routed
wire lengths for STA/power, clock skew map, die geometry for GDS export).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..obs.trace import Tracer, get_tracer
from ..pdk.pdks import Pdk
from ..synth.mapped import MappedNetlist
from .cts import ClockTree, synthesize_clock_tree
from .floorplan import Floorplan, make_floorplan
from .placement import Placement, place, random_place
from .route import RoutingResult, grid_capacity, route


@dataclass
class PhysicalDesign:
    """The output of the backend flow for one mapped netlist."""

    mapped: MappedNetlist
    pdk: Pdk
    floorplan: Floorplan
    placement: Placement
    clock_tree: ClockTree
    routing: RoutingResult

    @property
    def die_area_mm2(self) -> float:
        return self.floorplan.die_area_mm2

    def wire_lengths(self) -> dict[int, float]:
        return self.routing.wire_lengths()

    def report(self) -> dict[str, object]:
        return {
            "design": self.mapped.name,
            "pdk": self.pdk.name,
            "cells": len(self.mapped.cells),
            "die_area_mm2": round(self.die_area_mm2, 6),
            "hpwl_um": self.placement.hpwl_um,
            "routed_wirelength_um": round(
                self.routing.total_wirelength_um, 3
            ),
            "routing_overflow": self.routing.overflow,
            "clock_skew_ps": round(self.clock_tree.skew_ps, 3),
            "clock_buffers": len(self.clock_tree.buffers),
        }


def implement(
    mapped: MappedNetlist,
    pdk: Pdk,
    utilization: float = 0.7,
    aspect_ratio: float = 1.0,
    detailed_placement_passes: int = 0,
    cts_buffering: bool = True,
    router_rip_up: bool = True,
    placer: str = "quadratic",
    seed: int = 1,
    tracer: Tracer | None = None,
) -> PhysicalDesign:
    """Run the full backend on ``mapped`` with the given knobs.

    The knobs correspond one-to-one to the preset differences (experiment
    E4) and the ablation benchmarks: detailed placement passes, CTS
    buffering, router rip-up and the placer algorithm itself.  ``tracer``
    (default: the process tracer) receives one span per backend flow step
    plus sub-spans for the inner phases; tracing never changes results.
    """
    if tracer is None:
        tracer = get_tracer()
    with tracer.span("step.floorplanning") as sp:
        floorplan = make_floorplan(
            mapped, pdk.node, utilization=utilization,
            aspect_ratio=aspect_ratio,
        )
        sp.set(**floorplan.stats())
    with tracer.span("step.placement", placer=placer) as sp:
        if placer == "quadratic":
            placement = place(
                mapped, floorplan,
                detailed_passes=detailed_placement_passes, seed=seed,
                tracer=tracer,
            )
        elif placer == "random":
            placement = random_place(mapped, floorplan, seed=seed)
        else:
            raise ValueError(f"unknown placer {placer!r}")
        sp.set(hpwl_um=placement.hpwl_um)
    with tracer.span("step.clock_tree_synthesis") as sp:
        clock_tree = synthesize_clock_tree(
            placement, mapped.library, pdk.node, buffering=cts_buffering,
            tracer=tracer,
        )
        sp.set(**clock_tree.stats())
    with tracer.span("step.routing") as sp:
        capacity = grid_capacity(pdk.node, pdk.layers)
        routing = route(
            mapped, placement, pdk.node, rip_up=router_rip_up,
            capacity=capacity, max_iterations=8, tracer=tracer,
        )
        sp.set(**routing.stats())
    return PhysicalDesign(
        mapped=mapped,
        pdk=pdk,
        floorplan=floorplan,
        placement=placement,
        clock_tree=clock_tree,
        routing=routing,
    )
