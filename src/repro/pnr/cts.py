"""Clock-tree synthesis: recursive geometric bisection with buffering.

Sequential cells are split recursively along the longer axis into a
balanced binary tree; each internal node sits at the centroid of its
subtree and (optionally) carries a clock buffer.  Latency per sink is the
sum of buffer delays and Elmore wire delays down its branch; the skew map
(latency differences) feeds STA, and clock wirelength/buffer count feed
the power and ablation reports.

Without buffering (the ablation case) the whole subtree capacitance loads
the root driver directly, producing visibly worse skew and latency — the
motivating example for CTS in any backend course.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs.trace import get_tracer
from ..pdk.cells import Library
from ..pdk.node import ProcessNode
from .placement import Placement


@dataclass
class ClockBuffer:
    name: str
    x: float
    y: float
    level: int


@dataclass
class ClockTree:
    """CTS result: per-sink latency plus tree statistics."""

    sink_latency_ps: dict[str, float]
    buffers: list[ClockBuffer] = field(default_factory=list)
    wirelength_um: float = 0.0

    @property
    def skew_ps(self) -> float:
        if not self.sink_latency_ps:
            return 0.0
        values = self.sink_latency_ps.values()
        return max(values) - min(values)

    @property
    def max_latency_ps(self) -> float:
        return max(self.sink_latency_ps.values(), default=0.0)

    def skew_map(self) -> dict[str, float]:
        """Per-sink arrival offsets relative to the earliest sink (for STA)."""
        if not self.sink_latency_ps:
            return {}
        earliest = min(self.sink_latency_ps.values())
        return {
            name: latency - earliest
            for name, latency in self.sink_latency_ps.items()
        }

    def stats(self) -> dict[str, float]:
        return {
            "sinks": len(self.sink_latency_ps),
            "buffers": len(self.buffers),
            "wirelength_um": round(self.wirelength_um, 3),
            "skew_ps": round(self.skew_ps, 3),
            "max_latency_ps": round(self.max_latency_ps, 3),
        }


def _manhattan(a: tuple[float, float], b: tuple[float, float]) -> float:
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def synthesize_clock_tree(
    placement: Placement,
    library: Library,
    node: ProcessNode,
    buffering: bool = True,
    max_sinks_per_leaf: int = 4,
    tracer=None,
) -> ClockTree:
    """Build the clock tree over all sequential cells in ``placement``.

    Only sequential cell positions are read; the tree is geometric, not
    routed (clock routing uses dedicated resources in real flows).  Each
    internal bisection is one ``cts.partition`` span on ``tracer``
    (no-op by default), so traces show the tree's level structure.
    """
    if tracer is None:
        tracer = get_tracer()
    dff_cap = library.dff.input_cap_ff
    buf = library.by_kind("BUF", 4)
    sinks = [
        (name, cell.cx, cell.cy)
        for name, cell in placement.cells.items()
        if name.split("_")[-1] == "DFF"
    ]
    tree = ClockTree(sink_latency_ps={})
    if not sinks:
        return tree

    root_x = sum(s[1] for s in sinks) / len(sinks)
    root_y = sum(s[2] for s in sinks) / len(sinks)

    def wire_delay(length_um: float, load_ff: float) -> float:
        r = length_um * node.wire_res_ohm_per_um / 1000.0  # kohm
        c = length_um * node.wire_cap_ff_per_um
        return r * (c / 2.0 + load_ff)

    def subtree_cap(group: list) -> float:
        return len(group) * dff_cap

    def recurse(group: list, x: float, y: float, latency: float,
                level: int) -> None:
        if len(group) <= max_sinks_per_leaf or not buffering:
            # Drive each sink directly from this tap point.
            drive_r = buf.resistance_kohm if buffering else (
                buf.resistance_kohm * (level + 1)
            )
            for name, sx, sy in group:
                length = _manhattan((x, y), (sx, sy))
                tree.wirelength_um += length
                delay = (
                    wire_delay(length, dff_cap) + drive_r * dff_cap
                )
                tree.sink_latency_ps[name] = latency + delay
            return
        # Split along the longer spread axis.  The span nests with the
        # recursion, so the trace mirrors the tree's level structure.
        with tracer.span("cts.partition", level=level, sinks=len(group)):
            xs = [s[1] for s in group]
            ys = [s[2] for s in group]
            axis = 1 if (max(xs) - min(xs)) >= (max(ys) - min(ys)) else 2
            ordered = sorted(group, key=lambda s: s[axis])
            half = len(ordered) // 2
            for part in (ordered[:half], ordered[half:]):
                px = sum(s[1] for s in part) / len(part)
                py = sum(s[2] for s in part) / len(part)
                length = _manhattan((x, y), (px, py))
                tree.wirelength_um += length
                buffer_delay = buf.intrinsic_ps + buf.resistance_kohm * (
                    subtree_cap(part) if not buffering
                    else buf.input_cap_ff * 2
                )
                segment = wire_delay(length, buf.input_cap_ff)
                child_latency = latency + segment + buffer_delay
                if buffering:
                    tree.buffers.append(
                        ClockBuffer(f"ckbuf_{len(tree.buffers)}", px, py,
                                    level + 1)
                    )
                recurse(part, px, py, child_latency, level + 1)

    recurse(sinks, root_x, root_y, 0.0, 0)
    return tree
