"""Floorplanning: die sizing, row creation and IO pin assignment.

The die is sized from total standard-cell area at a target utilization,
rows are cut at the node's row height, and top-level ports get fixed pin
positions on the die boundary (inputs west, outputs east) — the anchors
the quadratic placer pulls against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..pdk.node import ProcessNode
from ..synth.mapped import MappedNetlist


@dataclass
class Row:
    """One placement row; cells snap to ``y`` and to site-aligned x."""

    index: int
    y: float
    x0: float
    x1: float
    height: float

    @property
    def width(self) -> float:
        return self.x1 - self.x0


@dataclass
class IoPin:
    """A fixed top-level pin on the die edge."""

    name: str  # "port[bit]"
    port: str
    bit: int
    net: int
    x: float
    y: float
    side: str  # "west" or "east"


@dataclass
class Floorplan:
    die_width: float
    die_height: float
    core_margin: float
    rows: list[Row]
    io_pins: list[IoPin]
    utilization_target: float
    cell_area_um2: float

    @property
    def core_area_um2(self) -> float:
        return (self.die_width - 2 * self.core_margin) * (
            self.die_height - 2 * self.core_margin
        )

    @property
    def die_area_mm2(self) -> float:
        return self.die_width * self.die_height * 1e-6

    def pin_positions(self) -> dict[int, tuple[float, float]]:
        """Net id -> fixed pin position for every IO net."""
        return {pin.net: (pin.x, pin.y) for pin in self.io_pins}

    def stats(self) -> dict[str, float]:
        return {
            "die_width_um": round(self.die_width, 3),
            "die_height_um": round(self.die_height, 3),
            "die_area_mm2": round(self.die_area_mm2, 6),
            "rows": len(self.rows),
            "utilization_target": self.utilization_target,
            "cell_area_um2": round(self.cell_area_um2, 3),
        }


def make_floorplan(
    mapped: MappedNetlist,
    node: ProcessNode,
    utilization: float = 0.7,
    aspect_ratio: float = 1.0,
    core_margin_rows: float = 2.0,
    quantize_um2: float | None = None,
) -> Floorplan:
    """Size the die and place IO pins for ``mapped`` on ``node``.

    ``quantize_um2`` rounds the core area up to a multiple of that step
    before sizing.  The hierarchical placer uses it so that small netlist
    edits usually land in the same area bucket and the die (and with it
    every IO pin and row coordinate) stays put — die size becomes a step
    function of cell area instead of a continuous one.
    """
    if not 0.05 < utilization <= 1.0:
        raise ValueError(f"utilization {utilization} out of range")
    cell_area = mapped.area_um2()
    core_area = max(cell_area / utilization, node.row_height_um**2)
    if quantize_um2 and quantize_um2 > 0:
        core_area = math.ceil(core_area / quantize_um2) * quantize_um2
    core_height = math.sqrt(core_area / aspect_ratio)
    # Snap core height to a whole number of rows.
    n_rows = max(1, math.ceil(core_height / node.row_height_um))
    core_height = n_rows * node.row_height_um
    core_width = core_area / core_height

    margin = core_margin_rows * node.row_height_um
    die_width = core_width + 2 * margin
    die_height = core_height + 2 * margin

    rows = [
        Row(
            index=i,
            y=margin + i * node.row_height_um,
            x0=margin,
            x1=margin + core_width,
            height=node.row_height_um,
        )
        for i in range(n_rows)
    ]

    io_pins: list[IoPin] = []

    def spread(ports: dict[str, list[int]], x: float, side: str) -> None:
        total_bits = sum(len(nets) for nets in ports.values())
        if total_bits == 0:
            return
        step = die_height / (total_bits + 1)
        position = step
        for port in sorted(ports):
            for bit, net in enumerate(ports[port]):
                io_pins.append(
                    IoPin(f"{port}[{bit}]", port, bit, net, x, position, side)
                )
                position += step

    spread(mapped.inputs, 0.0, "west")
    spread(mapped.outputs, die_width, "east")

    return Floorplan(
        die_width=die_width,
        die_height=die_height,
        core_margin=margin,
        rows=rows,
        io_pins=io_pins,
        utilization_target=utilization,
        cell_area_um2=cell_area,
    )
