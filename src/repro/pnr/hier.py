"""Region-stable hierarchical placement for incremental edit loops.

The quadratic placer treats the whole netlist as one elastic system: any
edit anywhere moves every cell a little, which forfeits all incremental
reuse downstream.  ``hier_place`` trades a few percent of wirelength for
*stability*: cells are grouped by the instance path encoded in their
stitched names (``u_cpu.u_alu.u3_AND2`` → region ``u_cpu.u_alu``), each
region gets a square-ish rectangular block of the core sized from a
power-of-two bucket of its cell area (blocks are shelf-packed tallest
first), and each block is solved and legalized independently.
Cross-region nets pull against pure-geometry anchors (block centres, IO
pins) rather than against other regions' cells, so a region whose
subnetlist did not change re-derives exactly the same positions — the
property that lets the verified-replay router keep most of its recorded
paths.

Stability is a performance property, not a correctness one: the placer
is a deterministic function of the current netlist and floorplan alone,
so incremental and from-scratch runs agree byte for byte regardless of
how many regions moved.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.linalg import spsolve

from ..obs.trace import get_tracer
from ..pdk.node import ProcessNode
from ..synth.mapped import MappedNetlist
from .floorplan import Floorplan
from .placement import PlacedCell, Placement, hpwl, net_pin_positions

#: Nets with more members than this use a star model instead of a clique.
CLIQUE_LIMIT = 8

#: Core-area quantization step, in units of row_height².  Coarse enough
#: that a one-module edit almost always lands in the same area bucket
#: (same die, same IO ring, same rows), fine enough not to waste silicon.
QUANTIZE_ROWS2 = 64.0

#: Fraction of the core handed to region blocks; the rest is headroom
#: for shelf-packing waste (blocks of unequal heights on one shelf).
PACK_FILL = 0.9

#: Extra whitespace for hierarchical floorplans.  Region blocks
#: concentrate their cells' routing demand and the channels between
#: blocks carry all inter-region nets, so a hier die placed at the flat
#: preset's utilization congests the router into long rip-up tails —
#: and wide, congestion-driven searches are exactly what makes edit
#: -session replay fragile (every explored set grows to cover the hot
#: spots).  Derating utilization buys convergent routing and compact
#: explored sets for a modest area premium.
ROUTABILITY = 0.75


def hier_quantize_um2(node: ProcessNode) -> float:
    """Floorplan area quantization step used with ``placer="hier"``."""
    return QUANTIZE_ROWS2 * node.row_height_um**2


def hier_utilization(
    mapped: MappedNetlist, node: ProcessNode, utilization: float
) -> float:
    """Effective core utilization for the hierarchical placer.

    Sizes the core from the sum of the regions' power-of-two area
    buckets instead of the raw cell area, so that every region block
    can be packed at (at most) the preset's utilization internally.
    Without this, a region whose area sits just under its bucket would
    be crammed at up to twice the target density — a local congestion
    hot spot the router pays for on every edit.
    """
    if not mapped.cells:
        return utilization
    base = node.row_height_um**2
    areas: dict[str, float] = {}
    for inst in mapped.cells:
        key = cell_region(inst.name)
        areas[key] = areas.get(key, 0.0) + inst.cell.area_um2
    total_bucket = sum(_bucket(a, base) for a in areas.values())
    total_area = sum(areas.values())
    return ROUTABILITY * PACK_FILL * utilization * total_area / total_bucket


def cell_region(name: str) -> str:
    """Region key of a stitched cell name: its instance-path prefix.

    Top-level cells (``u3_NAND2``) map to the root region ``""``.
    """
    return name.rpartition(".")[0]


def _bucket(value: float, base: float) -> float:
    """Smallest ``base * 2**k`` that covers ``value`` (k >= 0).

    Power-of-two budget buckets keep every region's strip share — and
    with it the whole strip layout — fixed under small area changes.
    """
    if value <= base:
        return base
    return base * 2.0 ** math.ceil(math.log2(value / base))


def _solve_region(
    cells: list,
    nets: dict[int, tuple[list[int], tuple[float, float] | None]],
    center: tuple[float, float],
) -> dict[str, tuple[float, float]]:
    """Quadratic placement of one region's cells inside its strip.

    ``nets`` maps net id to (member cell indexes, optional fixed anchor
    point).  Anchors fold IO pins and the strip centres of the other
    regions on the net into a single fixed pull — pure geometry, never
    another region's cell positions.
    """
    n_cells = len(cells)
    live = {
        net: (idxs, anchor)
        for net, (idxs, anchor) in nets.items()
        if len(idxs) + (anchor is not None) >= 2
    }
    n_star = sum(
        1
        for idxs, anchor in live.values()
        if len(idxs) + (anchor is not None) > CLIQUE_LIMIT
    )
    size = n_cells + n_star
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    bx = np.zeros(size)
    by = np.zeros(size)

    def add_diag(i: int, w: float) -> None:
        rows.append(i)
        cols.append(i)
        vals.append(w)

    def add_edge(u, v, w: float) -> None:
        u_var = isinstance(u, int)
        v_var = isinstance(v, int)
        if u_var and v_var:
            add_diag(u, w)
            add_diag(v, w)
            rows.extend((u, v))
            cols.extend((v, u))
            vals.extend((-w, -w))
        elif u_var:
            add_diag(u, w)
            bx[u] += w * v[0]
            by[u] += w * v[1]
        elif v_var:
            add_edge(v, u, w)

    star_cursor = n_cells
    for net in sorted(live):
        idxs, anchor = live[net]
        members: list = list(idxs)
        if anchor is not None:
            members.append(anchor)
        p = len(members)
        if p <= CLIQUE_LIMIT:
            w = 2.0 / (p * (p - 1))
            for i in range(p):
                for j in range(i + 1, p):
                    add_edge(members[i], members[j], w)
        else:
            star = star_cursor
            star_cursor += 1
            w = 1.0 / p
            for member in members:
                add_edge(star, member, w)

    # Weak pull to the strip centre keeps isolated cells well-defined.
    for i in range(size):
        add_diag(i, 1e-6)
        bx[i] += 1e-6 * center[0]
        by[i] += 1e-6 * center[1]

    laplacian = coo_matrix((vals, (rows, cols)), shape=(size, size)).tocsr()
    xs = spsolve(laplacian, bx)
    ys = spsolve(laplacian, by)
    return {
        inst.name: (float(xs[i]), float(ys[i]))
        for i, inst in enumerate(cells)
    }


def hier_place(
    mapped: MappedNetlist,
    floorplan: Floorplan,
    seed: int = 1,
    tracer=None,
) -> Placement:
    """Place ``mapped`` with one independent strip per instance region.

    ``seed`` is accepted for placer-interface parity; the algorithm is
    fully deterministic and never consults it.
    """
    if tracer is None:
        tracer = get_tracer()
    if not mapped.cells:
        return Placement({}, floorplan, 0.0)

    groups: dict[str, list] = {}
    for inst in mapped.cells:
        groups.setdefault(cell_region(inst.name), []).append(inst)
    keys = sorted(groups)

    row0 = floorplan.rows[0]
    row_h = row0.height
    base = row_h * row_h
    budget = {
        key: _bucket(sum(i.cell.area_um2 for i in groups[key]), base)
        for key in keys
    }
    core_w = row0.width
    n_rows = len(floorplan.rows)
    core_area = core_w * n_rows * row_h

    # Square-ish blocks, shelf-packed tallest first.  Every dimension
    # derives from the pow-2 budgets and the (quantized) core alone, so
    # the whole layout is fixed under edits that stay in-bucket.  The
    # blocks share PACK_FILL of the core in proportion to their
    # budgets; with a :func:`hier_utilization` floorplan that caps each
    # block's internal density at the preset utilization.
    total_budget = sum(budget.values())
    dims: dict[str, tuple[float, int]] = {}
    for key in keys:
        area = PACK_FILL * core_area * budget[key] / total_budget
        h_rows = max(1, min(n_rows, round(math.sqrt(area) / row_h)))
        width = min(core_w, area / (h_rows * row_h))
        dims[key] = (width, h_rows)

    #: region -> (x0, x1, first row index, one-past-last row index)
    blocks: dict[str, tuple[float, float, int, int]] = {}
    shelf_r0, shelf_h, x_cur = 0, 0, row0.x0
    for key in sorted(keys, key=lambda k: (-dims[k][1], -dims[k][0], k)):
        width, h_rows = dims[key]
        if x_cur > row0.x0 and x_cur + width > row0.x0 + core_w + 1e-9:
            shelf_r0 += shelf_h
            shelf_h, x_cur = 0, row0.x0
        if shelf_r0 >= n_rows:  # packing overflow: reuse the last rows
            shelf_r0 = n_rows - 1
        h_rows = min(h_rows, n_rows - shelf_r0)
        shelf_h = max(shelf_h, h_rows)
        blocks[key] = (
            x_cur,
            min(x_cur + width, row0.x0 + core_w),
            shelf_r0,
            shelf_r0 + h_rows,
        )
        x_cur += width
    block_center = {
        key: (
            (x0 + x1) / 2.0,
            floorplan.rows[r0].y + (r1 - r0) * row_h / 2.0,
        )
        for key, (x0, x1, r0, r1) in blocks.items()
    }

    # Net membership: cells (by region) plus the fixed IO pin box.
    driver = mapped.net_driver()
    loads = mapped.net_loads()
    io_position = floorplan.pin_positions()
    net_cells: dict[int, list[str]] = {}
    for net in set(driver) | set(loads):
        names: list[str] = []
        if net in driver:
            names.append(driver[net].name)
        for sink, _pin in loads.get(net, ()):
            names.append(sink.name)
        net_cells[net] = names
    region_of = {
        inst.name: key for key in keys for inst in groups[key]
    }

    with tracer.span("place.hier") as sp:
        desired: dict[str, tuple[float, float]] = {}
        for key in keys:
            cells = groups[key]
            index = {inst.name: i for i, inst in enumerate(cells)}
            region_nets: dict[
                int, tuple[list[int], tuple[float, float] | None]
            ] = {}
            for net, names in net_cells.items():
                idxs = sorted(index[n] for n in names if n in index)
                if not idxs:
                    continue
                pulls: list[tuple[float, float]] = []
                if net in io_position:
                    pulls.append(io_position[net])
                foreign = sorted(
                    {
                        region_of[n]
                        for n in names
                        if region_of[n] != key
                    }
                )
                pulls.extend(block_center[r] for r in foreign)
                anchor = None
                if pulls:
                    anchor = (
                        sum(p[0] for p in pulls) / len(pulls),
                        sum(p[1] for p in pulls) / len(pulls),
                    )
                region_nets[net] = (idxs, anchor)
            desired.update(
                _solve_region(cells, region_nets, block_center[key])
            )

        # Block-by-block Tetris legalization over shared per-row
        # cursors, so a block that overflows its budget spills rightward
        # without ever overlapping a neighbour on the same shelf.
        site = max(row_h / 10.0, 1e-3)
        next_x = {row.index: row.x0 for row in floorplan.rows}
        placed: dict[str, PlacedCell] = {}
        for key in keys:
            bx0, bx1, r0, r1 = blocks[key]
            block_rows = floorplan.rows[r0:r1]
            order = sorted(
                groups[key],
                key=lambda inst: (desired[inst.name][0], inst.name),
            )
            for inst in order:
                x_want, y_want = desired[inst.name]
                width = inst.cell.area_um2 / row_h
                width = max(site, round(width / site) * site)
                best: tuple[float, int, float] | None = None
                for row in block_rows:
                    start = max(next_x[row.index], bx0)
                    x = max(start, min(x_want, bx1 - width))
                    if x + width > bx1 and start > bx0:
                        continue  # this row's block segment is full
                    cost = abs(x - x_want) + abs(row.y - y_want)
                    if best is None or cost < best[0]:
                        best = (cost, row.index, x)
                if best is None:  # block full: spill into emptiest row
                    row_idx = min(
                        (row.index for row in block_rows),
                        key=lambda i: (max(next_x[i], bx0), i),
                    )
                    best = (0.0, row_idx, max(next_x[row_idx], bx0))
                _, row_idx, x = best
                row = floorplan.rows[row_idx]
                placed[inst.name] = PlacedCell(
                    inst.name, x, row.y, width, row.height
                )
                next_x[row_idx] = x + width
        if tracer.enabled:
            sp.set(regions=len(keys), cells=len(placed))

    xy = {n: (c.cx, c.cy) for n, c in placed.items()}
    total = hpwl(net_pin_positions(mapped, xy, floorplan))
    return Placement(placed, floorplan, round(total, 3))
