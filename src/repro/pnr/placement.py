"""Placement: quadratic global placement + Tetris legalization + swaps.

The classic academic recipe:

1. **Global**: minimize quadratic wirelength.  Every net becomes a clique
   (small nets) or a star with an auxiliary node (large nets); fixed IO
   pins anchor the system.  The resulting sparse linear system is solved
   with :mod:`scipy.sparse`.
2. **Legalization**: Tetris — cells sorted by x are appended to the row
   that minimizes displacement.
3. **Detailed placement** (optional, the "commercial" preset): greedy
   equal-width cell swaps that reduce half-perimeter wirelength (HPWL).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.linalg import spsolve

from ..synth.mapped import MappedNetlist
from .floorplan import Floorplan

#: Nets with more pins than this use a star model instead of a clique.
CLIQUE_LIMIT = 8


@dataclass
class PlacedCell:
    name: str
    x: float  # lower-left corner
    y: float
    width: float
    height: float

    @property
    def cx(self) -> float:
        return self.x + self.width / 2.0

    @property
    def cy(self) -> float:
        return self.y + self.height / 2.0


@dataclass
class Placement:
    """Cell positions plus the wirelength metric."""

    cells: dict[str, PlacedCell]
    floorplan: Floorplan
    hpwl_um: float

    def position(self, name: str) -> tuple[float, float]:
        cell = self.cells[name]
        return (cell.cx, cell.cy)


def net_pin_positions(
    mapped: MappedNetlist,
    cell_xy: dict[str, tuple[float, float]],
    floorplan: Floorplan,
) -> dict[int, list[tuple[float, float]]]:
    """Pin positions per net, driver first.

    Cell pins are approximated at the cell centre (abstract cells have no
    internal pin geometry); IO pins sit at their boundary positions.
    """
    io_position = floorplan.pin_positions()
    pins: dict[int, list[tuple[float, float]]] = {}

    driver = mapped.net_driver()
    loads = mapped.net_loads()
    nets = set(driver) | set(loads) | set(io_position)
    for net in nets:
        plist: list[tuple[float, float]] = []
        if net in driver:
            plist.append(cell_xy[driver[net].name])
        elif net in io_position:
            plist.append(io_position[net])
        for sink, _pin in loads.get(net, ()):
            plist.append(cell_xy[sink.name])
        if net in io_position and net in driver:
            plist.append(io_position[net])
        pins[net] = plist
    return pins


def hpwl(pins_by_net: dict[int, list[tuple[float, float]]]) -> float:
    """Total half-perimeter wirelength over all multi-pin nets."""
    total = 0.0
    for pins in pins_by_net.values():
        if len(pins) < 2:
            continue
        xs = [p[0] for p in pins]
        ys = [p[1] for p in pins]
        total += (max(xs) - min(xs)) + (max(ys) - min(ys))
    return total


def _quadratic_positions(
    mapped: MappedNetlist, floorplan: Floorplan
) -> dict[str, tuple[float, float]]:
    """Solve the quadratic placement for all cell centres."""
    cells = mapped.cells
    index = {inst.name: i for i, inst in enumerate(cells)}
    n_cells = len(cells)
    io_position = floorplan.pin_positions()

    # Collect net pins as (variable index | fixed position) lists.
    net_members: dict[int, list] = {}
    driver = mapped.net_driver()
    loads = mapped.net_loads()
    for net in set(driver) | set(loads) | set(io_position):
        members: list = []
        if net in driver:
            members.append(index[driver[net].name])
        for sink, _pin in loads.get(net, ()):
            members.append(index[sink.name])
        if net in io_position:
            members.append(io_position[net])
        if len(members) >= 2:
            net_members[net] = members

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    n_star = sum(1 for m in net_members.values() if len(m) > CLIQUE_LIMIT)
    size = n_cells + n_star
    bx = np.zeros(size)
    by = np.zeros(size)

    def add_diag(i: int, w: float) -> None:
        rows.append(i)
        cols.append(i)
        vals.append(w)

    def add_edge(u, v, w: float) -> None:
        u_var = isinstance(u, int)
        v_var = isinstance(v, int)
        if u_var and v_var:
            add_diag(u, w)
            add_diag(v, w)
            rows.extend((u, v))
            cols.extend((v, u))
            vals.extend((-w, -w))
        elif u_var:
            add_diag(u, w)
            bx[u] += w * v[0]
            by[u] += w * v[1]
        elif v_var:
            add_edge(v, u, w)

    star_cursor = n_cells
    for members in net_members.values():
        p = len(members)
        if p <= CLIQUE_LIMIT:
            w = 2.0 / (p * (p - 1))
            for i in range(p):
                for j in range(i + 1, p):
                    add_edge(members[i], members[j], w)
        else:
            star = star_cursor
            star_cursor += 1
            w = 1.0 / p
            for member in members:
                add_edge(star, member, w)

    # Weak anchor to the core centre keeps isolated cells well-defined.
    center = (floorplan.die_width / 2.0, floorplan.die_height / 2.0)
    for i in range(size):
        add_diag(i, 1e-6)
        bx[i] += 1e-6 * center[0]
        by[i] += 1e-6 * center[1]

    laplacian = coo_matrix((vals, (rows, cols)), shape=(size, size)).tocsr()
    xs = spsolve(laplacian, bx)
    ys = spsolve(laplacian, by)
    return {
        inst.name: (float(xs[i]), float(ys[i]))
        for inst, i in ((c, index[c.name]) for c in cells)
    }


def _legalize(
    mapped: MappedNetlist,
    floorplan: Floorplan,
    desired: dict[str, tuple[float, float]],
) -> dict[str, PlacedCell]:
    """Tetris legalization: snap cells into rows without overlap."""
    site = max(floorplan.rows[0].height / 10.0, 1e-3)
    order = sorted(mapped.cells, key=lambda inst: desired[inst.name][0])
    next_x = {row.index: row.x0 for row in floorplan.rows}
    placed: dict[str, PlacedCell] = {}

    for inst in order:
        x_want, y_want = desired[inst.name]
        width = inst.cell.area_um2 / floorplan.rows[0].height
        width = max(site, round(width / site) * site)
        best: tuple[float, int, float] | None = None  # (cost, row idx, x)
        for row in floorplan.rows:
            x = max(next_x[row.index], min(x_want, row.x1 - width))
            if x + width > row.x1 and next_x[row.index] > row.x0:
                continue  # row is full
            cost = abs(x - x_want) + abs(row.y - y_want)
            if best is None or cost < best[0]:
                best = (cost, row.index, x)
        if best is None:  # every row "full": overflow into least-used row
            row_idx = min(next_x, key=next_x.get)
            best = (0.0, row_idx, next_x[row_idx])
        _, row_idx, x = best
        row = floorplan.rows[row_idx]
        placed[inst.name] = PlacedCell(inst.name, x, row.y, width, row.height)
        next_x[row_idx] = x + width
    return placed


def _swap_pass(
    mapped: MappedNetlist,
    placed: dict[str, PlacedCell],
    floorplan: Floorplan,
    passes: int,
    seed: int,
) -> None:
    """Greedy equal-width swap refinement (in place)."""
    rng = random.Random(seed)
    names = list(placed)
    by_width: dict[float, list[str]] = {}
    for name in names:
        by_width.setdefault(round(placed[name].width, 4), []).append(name)

    def current_hpwl() -> float:
        xy = {n: (c.cx, c.cy) for n, c in placed.items()}
        return hpwl(net_pin_positions(mapped, xy, floorplan))

    cost = current_hpwl()
    for _ in range(passes):
        for group in by_width.values():
            if len(group) < 2:
                continue
            for _ in range(len(group)):
                a, b = rng.sample(group, 2)
                ca, cb = placed[a], placed[b]
                ca.x, cb.x = cb.x, ca.x
                ca.y, cb.y = cb.y, ca.y
                new_cost = current_hpwl()
                if new_cost < cost:
                    cost = new_cost
                else:  # revert
                    ca.x, cb.x = cb.x, ca.x
                    ca.y, cb.y = cb.y, ca.y


def place(
    mapped: MappedNetlist,
    floorplan: Floorplan,
    detailed_passes: int = 0,
    seed: int = 1,
) -> Placement:
    """Run global placement, legalization and optional refinement."""
    if not mapped.cells:
        return Placement({}, floorplan, 0.0)
    desired = _quadratic_positions(mapped, floorplan)
    placed = _legalize(mapped, floorplan, desired)
    if detailed_passes > 0:
        _swap_pass(mapped, placed, floorplan, detailed_passes, seed)
    xy = {n: (c.cx, c.cy) for n, c in placed.items()}
    total = hpwl(net_pin_positions(mapped, xy, floorplan))
    return Placement(placed, floorplan, round(total, 3))


def random_place(
    mapped: MappedNetlist, floorplan: Floorplan, seed: int = 1
) -> Placement:
    """Random legal placement — the placer ablation baseline."""
    rng = random.Random(seed)
    desired = {
        inst.name: (
            rng.uniform(0, floorplan.die_width),
            rng.uniform(0, floorplan.die_height),
        )
        for inst in mapped.cells
    }
    placed = _legalize(mapped, floorplan, desired)
    xy = {n: (c.cx, c.cy) for n, c in placed.items()}
    total = hpwl(net_pin_positions(mapped, xy, floorplan))
    return Placement(placed, floorplan, round(total, 3))
