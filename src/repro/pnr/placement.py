"""Placement: quadratic global placement + Tetris legalization + swaps.

The classic academic recipe:

1. **Global**: minimize quadratic wirelength.  Every net becomes a clique
   (small nets) or a star with an auxiliary node (large nets); fixed IO
   pins anchor the system.  The resulting sparse linear system is solved
   with :mod:`scipy.sparse`.
2. **Legalization**: Tetris — cells sorted by x are appended to the row
   that minimizes displacement.
3. **Detailed placement** (optional, the "commercial" preset): greedy
   equal-width cell swaps that reduce half-perimeter wirelength (HPWL).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.linalg import spsolve

from ..obs.trace import get_tracer
from ..synth.mapped import MappedNetlist
from .floorplan import Floorplan

#: Nets with more pins than this use a star model instead of a clique.
CLIQUE_LIMIT = 8


@dataclass
class PlacedCell:
    name: str
    x: float  # lower-left corner
    y: float
    width: float
    height: float

    @property
    def cx(self) -> float:
        return self.x + self.width / 2.0

    @property
    def cy(self) -> float:
        return self.y + self.height / 2.0


@dataclass
class Placement:
    """Cell positions plus the wirelength metric."""

    cells: dict[str, PlacedCell]
    floorplan: Floorplan
    hpwl_um: float

    def position(self, name: str) -> tuple[float, float]:
        cell = self.cells[name]
        return (cell.cx, cell.cy)


def net_pin_templates(
    mapped: MappedNetlist, floorplan: Floorplan
) -> dict[int, list]:
    """Per-net pin template, driver first.

    Each entry is either a cell name (``str`` — the pin tracks that cell's
    centre) or a fixed ``(x, y)`` tuple (IO pins on the die boundary).
    :func:`net_pin_positions` resolves templates against one position map;
    :class:`IncrementalHpwl` re-resolves only the nets a move touches.
    """
    io_position = floorplan.pin_positions()
    templates: dict[int, list] = {}

    driver = mapped.net_driver()
    loads = mapped.net_loads()
    nets = set(driver) | set(loads) | set(io_position)
    for net in nets:
        entries: list = []
        if net in driver:
            entries.append(driver[net].name)
        elif net in io_position:
            entries.append(io_position[net])
        for sink, _pin in loads.get(net, ()):
            entries.append(sink.name)
        if net in io_position and net in driver:
            entries.append(io_position[net])
        templates[net] = entries
    return templates


def net_pin_positions(
    mapped: MappedNetlist,
    cell_xy: dict[str, tuple[float, float]],
    floorplan: Floorplan,
) -> dict[int, list[tuple[float, float]]]:
    """Pin positions per net, driver first.

    Cell pins are approximated at the cell centre (abstract cells have no
    internal pin geometry); IO pins sit at their boundary positions.
    """
    return {
        net: [
            cell_xy[entry] if isinstance(entry, str) else entry
            for entry in entries
        ]
        for net, entries in net_pin_templates(mapped, floorplan).items()
    }


def hpwl(pins_by_net: dict[int, list[tuple[float, float]]]) -> float:
    """Total half-perimeter wirelength over all multi-pin nets."""
    total = 0.0
    for pins in pins_by_net.values():
        if len(pins) < 2:
            continue
        xs = [p[0] for p in pins]
        ys = [p[1] for p in pins]
        total += (max(xs) - min(xs)) + (max(ys) - min(ys))
    return total


def _quadratic_positions(
    mapped: MappedNetlist, floorplan: Floorplan
) -> dict[str, tuple[float, float]]:
    """Solve the quadratic placement for all cell centres."""
    cells = mapped.cells
    index = {inst.name: i for i, inst in enumerate(cells)}
    n_cells = len(cells)
    io_position = floorplan.pin_positions()

    # Collect net pins as (variable index | fixed position) lists.
    net_members: dict[int, list] = {}
    driver = mapped.net_driver()
    loads = mapped.net_loads()
    for net in set(driver) | set(loads) | set(io_position):
        members: list = []
        if net in driver:
            members.append(index[driver[net].name])
        for sink, _pin in loads.get(net, ()):
            members.append(index[sink.name])
        if net in io_position:
            members.append(io_position[net])
        if len(members) >= 2:
            net_members[net] = members

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    n_star = sum(1 for m in net_members.values() if len(m) > CLIQUE_LIMIT)
    size = n_cells + n_star
    bx = np.zeros(size)
    by = np.zeros(size)

    def add_diag(i: int, w: float) -> None:
        rows.append(i)
        cols.append(i)
        vals.append(w)

    def add_edge(u, v, w: float) -> None:
        u_var = isinstance(u, int)
        v_var = isinstance(v, int)
        if u_var and v_var:
            add_diag(u, w)
            add_diag(v, w)
            rows.extend((u, v))
            cols.extend((v, u))
            vals.extend((-w, -w))
        elif u_var:
            add_diag(u, w)
            bx[u] += w * v[0]
            by[u] += w * v[1]
        elif v_var:
            add_edge(v, u, w)

    star_cursor = n_cells
    for members in net_members.values():
        p = len(members)
        if p <= CLIQUE_LIMIT:
            w = 2.0 / (p * (p - 1))
            for i in range(p):
                for j in range(i + 1, p):
                    add_edge(members[i], members[j], w)
        else:
            star = star_cursor
            star_cursor += 1
            w = 1.0 / p
            for member in members:
                add_edge(star, member, w)

    # Weak anchor to the core centre keeps isolated cells well-defined.
    center = (floorplan.die_width / 2.0, floorplan.die_height / 2.0)
    for i in range(size):
        add_diag(i, 1e-6)
        bx[i] += 1e-6 * center[0]
        by[i] += 1e-6 * center[1]

    laplacian = coo_matrix((vals, (rows, cols)), shape=(size, size)).tocsr()
    xs = spsolve(laplacian, bx)
    ys = spsolve(laplacian, by)
    return {
        inst.name: (float(xs[i]), float(ys[i]))
        for inst, i in ((c, index[c.name]) for c in cells)
    }


def _legalize(
    mapped: MappedNetlist,
    floorplan: Floorplan,
    desired: dict[str, tuple[float, float]],
) -> dict[str, PlacedCell]:
    """Tetris legalization: snap cells into rows without overlap."""
    site = max(floorplan.rows[0].height / 10.0, 1e-3)
    order = sorted(mapped.cells, key=lambda inst: desired[inst.name][0])
    next_x = {row.index: row.x0 for row in floorplan.rows}
    placed: dict[str, PlacedCell] = {}

    for inst in order:
        x_want, y_want = desired[inst.name]
        width = inst.cell.area_um2 / floorplan.rows[0].height
        width = max(site, round(width / site) * site)
        best: tuple[float, int, float] | None = None  # (cost, row idx, x)
        for row in floorplan.rows:
            x = max(next_x[row.index], min(x_want, row.x1 - width))
            if x + width > row.x1 and next_x[row.index] > row.x0:
                continue  # row is full
            cost = abs(x - x_want) + abs(row.y - y_want)
            if best is None or cost < best[0]:
                best = (cost, row.index, x)
        if best is None:  # every row "full": overflow into least-used row
            row_idx = min(next_x, key=next_x.get)
            best = (0.0, row_idx, next_x[row_idx])
        _, row_idx, x = best
        row = floorplan.rows[row_idx]
        placed[inst.name] = PlacedCell(inst.name, x, row.y, width, row.height)
        next_x[row_idx] = x + width
    return placed


class IncrementalHpwl:
    """Per-net bounding-box HPWL cache with O(nets touched) updates.

    The classic detailed-placement bookkeeping: net pin templates are
    resolved once, each net's half-perimeter cost is cached, and a
    cell→nets incidence index maps a candidate move to the only nets
    whose cost can change.  A candidate swap recomputes just those nets'
    costs — O(pins on the affected nets) instead of O(all pins) — and is
    either committed (cache refreshed) or reverted.

    Bit-exactness contract: per-net costs use exactly the same float
    operations (and pin order) as :func:`hpwl`, and totals are summed in
    the same net order as :func:`net_pin_positions` builds its dict.  A
    cached cost is always bitwise equal to a fresh recompute at the same
    positions, so :meth:`total`/:meth:`trial_total` reproduce a
    from-scratch ``hpwl(net_pin_positions(...))`` bit for bit — greedy
    accept/reject decisions (including exact ties) match the naive
    implementation float-for-float.
    """

    def __init__(
        self,
        mapped: MappedNetlist,
        cell_xy: dict[str, tuple[float, float]],
        floorplan: Floorplan,
    ):
        self.templates = net_pin_templates(mapped, floorplan)
        self.xy = dict(cell_xy)
        self.cost: dict[int, float] = {}
        self._pending: dict[int, float] = {}
        # Per multi-pin net: unique member cell names plus the bounding
        # box of its fixed IO pins.  max/min are exact and insensitive to
        # order and multiplicity, so deduplication and pre-folding the
        # fixed pins leave every cost bit-identical to hpwl()'s.
        self._members: dict[
            int, tuple[tuple[str, ...], tuple[float, float, float, float] | None]
        ] = {}
        incidence: dict[str, set[int]] = {}
        for net, entries in self.templates.items():
            if len(entries) < 2:
                self.cost[net] = 0.0  # single-pin nets cost 0 under any move
                continue
            names: list[str] = []
            seen: set[str] = set()
            fixed: list[float] | None = None
            for entry in entries:
                if isinstance(entry, str):
                    if entry not in seen:
                        seen.add(entry)
                        names.append(entry)
                else:
                    x, y = entry
                    if fixed is None:
                        fixed = [x, x, y, y]
                    else:
                        if x < fixed[0]:
                            fixed[0] = x
                        elif x > fixed[1]:
                            fixed[1] = x
                        if y < fixed[2]:
                            fixed[2] = y
                        elif y > fixed[3]:
                            fixed[3] = y
            self._members[net] = (
                tuple(names), tuple(fixed) if fixed is not None else None
            )
            self.cost[net] = self._net_cost(net)
            for name in names:
                incidence.setdefault(name, set()).add(net)
        self.cell_nets: dict[str, tuple[int, ...]] = {
            name: tuple(sorted(nets)) for name, nets in incidence.items()
        }

    def _net_cost(self, net: int) -> float:
        members = self._members.get(net)
        if members is None:
            return 0.0
        names, fixed = members
        xy = self.xy
        if fixed is None:
            min_x, min_y = max_x, max_y = xy[names[0]]
        else:
            min_x, max_x, min_y, max_y = fixed
        for name in names:
            x, y = xy[name]
            if x < min_x:
                min_x = x
            elif x > max_x:
                max_x = x
            if y < min_y:
                min_y = y
            elif y > max_y:
                max_y = y
        return (max_x - min_x) + (max_y - min_y)

    def affected(self, a: str, b: str) -> tuple[int, ...]:
        """Nets whose cost can change when cells ``a`` and ``b`` move."""
        nets_a = self.cell_nets.get(a, ())
        nets_b = self.cell_nets.get(b, ())
        if not nets_b:
            return nets_a
        if not nets_a:
            return nets_b
        seen = set(nets_a)
        extra = [n for n in nets_b if n not in seen]
        if not extra:
            return nets_a
        return nets_a + tuple(extra)

    def move(self, name: str, position: tuple[float, float]) -> None:
        """Update one cell's position (cost caches are refreshed on commit)."""
        self.xy[name] = position

    def cached(self, nets: tuple[int, ...]) -> float:
        """Cached cost sum over ``nets``."""
        cost = self.cost
        return sum(cost[n] for n in nets)

    def recompute(self, nets: tuple[int, ...]) -> float:
        """Fresh cost sum over ``nets`` at current positions (kept
        pending until :meth:`commit`)."""
        pending = self._pending
        pending.clear()
        total = 0.0
        for net in nets:
            pending[net] = value = self._net_cost(net)
            total += value
        return total

    def trial_total(self, nets: tuple[int, ...]) -> float:
        """Total HPWL with ``nets`` recomputed at the current positions.

        Only ``nets`` do per-pin work; the rest reuse cached costs.  The
        sum runs over every net in template order so the result is
        bit-identical to the naive full recompute.
        """
        self.recompute(nets)
        return self.pending_total()

    def pending_total(self) -> float:
        """Template-order total mixing pending values over cached ones."""
        pending = self._pending
        total = 0.0
        cost = self.cost
        for net in self.templates:
            value = pending.get(net)
            total += cost[net] if value is None else value
        return total

    def commit(self, nets: tuple[int, ...]) -> None:
        """Adopt the last :meth:`trial_total` values for ``nets``."""
        pending = self._pending
        for net in nets:
            self.cost[net] = pending[net]

    def total(self) -> float:
        """Total HPWL; bit-identical to ``hpwl(net_pin_positions(...))``."""
        return sum(self.cost[net] for net in self.templates)


def _swap_pass(
    mapped: MappedNetlist,
    placed: dict[str, PlacedCell],
    floorplan: Floorplan,
    passes: int,
    seed: int,
    tracer=None,
) -> float:
    """Greedy equal-width swap refinement (in place, incremental cost).

    Returns the final total HPWL (bit-identical to a full recompute).
    Each pass is one ``place.swap_pass`` span; spans never touch the RNG
    or the cost arithmetic, so placements stay byte-identical under
    tracing.
    """
    if tracer is None:
        tracer = get_tracer()
    rng = random.Random(seed)
    names = list(placed)
    by_width: dict[float, list[str]] = {}
    for name in names:
        by_width.setdefault(round(placed[name].width, 4), []).append(name)

    state = IncrementalHpwl(
        mapped, {n: (c.cx, c.cy) for n, c in placed.items()}, floorplan
    )
    # Deltas larger than this are decided by sign alone; anything closer
    # to a tie falls back to full template-order sums so accept/reject
    # matches the naive full-recompute comparison float-for-float.
    # Summation noise is bounded by ~n_nets * eps * total, orders of
    # magnitude below this threshold.
    tie_band = 1e-9 * (1.0 + state.total())
    for pass_index in range(passes):
        with tracer.span("place.swap_pass") as pass_span:
            accepted = 0
            for group in by_width.values():
                if len(group) < 2:
                    continue
                for _ in range(len(group)):
                    a, b = rng.sample(group, 2)
                    ca, cb = placed[a], placed[b]
                    nets = state.affected(a, b)
                    old_part = state.cached(nets)
                    ca.x, cb.x = cb.x, ca.x
                    ca.y, cb.y = cb.y, ca.y
                    state.move(a, (ca.cx, ca.cy))
                    state.move(b, (cb.cx, cb.cy))
                    delta = state.recompute(nets) - old_part
                    if delta <= -tie_band:
                        accept = True
                    elif delta >= tie_band:
                        accept = False
                    else:
                        accept = state.pending_total() < state.total()
                    if accept:
                        state.commit(nets)
                        accepted += 1
                    else:  # revert
                        ca.x, cb.x = cb.x, ca.x
                        ca.y, cb.y = cb.y, ca.y
                        state.move(a, (ca.cx, ca.cy))
                        state.move(b, (cb.cx, cb.cy))
            if tracer.enabled:
                pass_span.set(pass_index=pass_index, accepted=accepted,
                              hpwl_um=state.total())
    return state.total()


def place(
    mapped: MappedNetlist,
    floorplan: Floorplan,
    detailed_passes: int = 0,
    seed: int = 1,
    tracer=None,
) -> Placement:
    """Run global placement, legalization and optional refinement."""
    if tracer is None:
        tracer = get_tracer()
    if not mapped.cells:
        return Placement({}, floorplan, 0.0)
    with tracer.span("place.global") as sp:
        desired = _quadratic_positions(mapped, floorplan)
        sp.set(cells=len(desired))
    with tracer.span("place.legalize"):
        placed = _legalize(mapped, floorplan, desired)
    if detailed_passes > 0:
        total = _swap_pass(mapped, placed, floorplan, detailed_passes, seed,
                           tracer=tracer)
    else:
        xy = {n: (c.cx, c.cy) for n, c in placed.items()}
        total = hpwl(net_pin_positions(mapped, xy, floorplan))
    return Placement(placed, floorplan, round(total, 3))


def random_place(
    mapped: MappedNetlist, floorplan: Floorplan, seed: int = 1
) -> Placement:
    """Random legal placement — the placer ablation baseline."""
    rng = random.Random(seed)
    desired = {
        inst.name: (
            rng.uniform(0, floorplan.die_width),
            rng.uniform(0, floorplan.die_height),
        )
        for inst in mapped.cells
    }
    placed = _legalize(mapped, floorplan, desired)
    xy = {n: (c.cx, c.cy) for n, c in placed.items()}
    total = hpwl(net_pin_positions(mapped, xy, floorplan))
    return Placement(placed, floorplan, round(total, 3))
