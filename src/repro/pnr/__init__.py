"""Place & route: floorplan, placement, clock-tree synthesis, routing."""

from .cts import ClockBuffer, ClockTree, synthesize_clock_tree
from .floorplan import Floorplan, IoPin, Row, make_floorplan
from .physical import PhysicalDesign, implement
from .placement import (
    IncrementalHpwl,
    PlacedCell,
    Placement,
    hpwl,
    net_pin_positions,
    net_pin_templates,
    place,
    random_place,
)
from .route import (
    GridRouter,
    RoutedNet,
    RoutingResult,
    drc_clean_capacity,
    grid_capacity,
    route,
)

__all__ = [
    "ClockBuffer",
    "ClockTree",
    "Floorplan",
    "GridRouter",
    "IncrementalHpwl",
    "IoPin",
    "PhysicalDesign",
    "PlacedCell",
    "Placement",
    "RoutedNet",
    "RoutingResult",
    "Row",
    "drc_clean_capacity",
    "grid_capacity",
    "hpwl",
    "implement",
    "make_floorplan",
    "net_pin_positions",
    "net_pin_templates",
    "place",
    "random_place",
    "route",
    "synthesize_clock_tree",
]
