"""Global routing: two-layer grid maze router with rip-up and re-route.

The die is overlaid with a coarse routing grid (layer 0 horizontal,
layer 1 vertical, vias between).  Each net is routed with A* from its
driver to each sink in turn, reusing the net's own wires as free sources
(a cheap Steiner approximation).  Grid cells have a track capacity;
overflowed cells charge a growing history cost and overflowing nets are
ripped up and re-routed for a few rounds — the PathFinder recipe in
miniature.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from ..obs.trace import get_tracer
from ..pdk.node import ProcessNode
from ..synth.mapped import MappedNetlist
from .floorplan import Floorplan
from .placement import Placement, net_pin_positions


@dataclass
class RoutedNet:
    net: int
    #: Grid-space path cells: (col, row, layer).
    cells: list[tuple[int, int, int]] = field(default_factory=list)
    #: Grid columns/rows that contain this net's pins.  Pin access uses
    #: local-interconnect stubs, so these cells do not consume routing
    #: track capacity for this net.
    pin_cells: frozenset[tuple[int, int]] = frozenset()
    wirelength_um: float = 0.0
    vias: int = 0


@dataclass
class RoutingResult:
    nets: dict[int, RoutedNet]
    grid_pitch_um: float
    overflow: int
    iterations: int
    failed_nets: list[int] = field(default_factory=list)

    @property
    def total_wirelength_um(self) -> float:
        return sum(n.wirelength_um for n in self.nets.values())

    @property
    def total_vias(self) -> int:
        return sum(n.vias for n in self.nets.values())

    def wire_lengths(self) -> dict[int, float]:
        """Per-net routed length in um — the parasitics input for STA."""
        return {net: rn.wirelength_um for net, rn in self.nets.items()}

    def stats(self) -> dict[str, float]:
        return {
            "nets": len(self.nets),
            "wirelength_um": round(self.total_wirelength_um, 3),
            "vias": self.total_vias,
            "overflow": self.overflow,
            "iterations": self.iterations,
            "failed": len(self.failed_nets),
        }


class GridRouter:
    """Two-layer A* maze router over one placement."""

    def __init__(
        self,
        mapped: MappedNetlist,
        placement: Placement,
        node: ProcessNode,
        pitch_um: float | None = None,
        capacity: int = 4,
        tracer=None,
    ):
        self.mapped = mapped
        self.placement = placement
        self.node = node
        self.tracer = tracer if tracer is not None else get_tracer()
        fp = placement.floorplan
        self.pitch = pitch_um or default_pitch(node)
        self.cols = max(2, int(fp.die_width / self.pitch) + 1)
        self.rows = max(2, int(fp.die_height / self.pitch) + 1)
        self.capacity = capacity
        # usage[(col, row, layer)] -> number of nets using the cell
        self.usage: dict[tuple[int, int, int], int] = {}
        self.history: dict[tuple[int, int, int], float] = {}
        # Pin positions per net, resolved once against the placement; the
        # netlist connectivity behind them is memoized on MappedNetlist,
        # so this costs one template resolution, not an index rebuild.
        xy = {name: (c.cx, c.cy) for name, c in placement.cells.items()}
        self.pins_by_net = net_pin_positions(mapped, xy, placement.floorplan)

    # -- helpers ---------------------------------------------------------------

    def _snap(self, x: float, y: float) -> tuple[int, int]:
        col = min(self.cols - 1, max(0, int(round(x / self.pitch))))
        row = min(self.rows - 1, max(0, int(round(y / self.pitch))))
        return col, row

    def _neighbors(self, cell: tuple[int, int, int]):
        col, row, layer = cell
        if layer == 0:  # horizontal layer
            if col > 0:
                yield (col - 1, row, 0), 1.0
            if col < self.cols - 1:
                yield (col + 1, row, 0), 1.0
        else:  # vertical layer
            if row > 0:
                yield (col, row - 1, 1), 1.0
            if row < self.rows - 1:
                yield (col, row + 1, 1), 1.0
        yield (col, row, 1 - layer), 0.5  # via

    def _cell_cost(self, cell: tuple[int, int, int]) -> float:
        used = self.usage.get(cell, 0)
        congestion = 0.0
        if used >= self.capacity:
            congestion = 4.0 * (used - self.capacity + 1)
        return 1.0 + congestion + self.history.get(cell, 0.0)

    def _astar(
        self,
        sources: set[tuple[int, int, int]],
        target: tuple[int, int],
    ) -> list[tuple[int, int, int]] | None:
        """Cheapest path from any source to the target column/row."""

        def heuristic(cell) -> float:
            return abs(cell[0] - target[0]) + abs(cell[1] - target[1])

        open_heap: list[tuple[float, float, tuple[int, int, int]]] = []
        best: dict[tuple[int, int, int], float] = {}
        parent: dict[tuple[int, int, int], tuple[int, int, int]] = {}
        for source in sources:
            best[source] = 0.0
            heapq.heappush(open_heap, (heuristic(source), 0.0, source))

        while open_heap:
            _, cost, cell = heapq.heappop(open_heap)
            if cost > best.get(cell, float("inf")):
                continue
            if (cell[0], cell[1]) == target:
                path = [cell]
                while cell in parent:
                    cell = parent[cell]
                    path.append(cell)
                path.reverse()
                return path
            for neighbor, edge in self._neighbors(cell):
                new_cost = cost + edge * self._cell_cost(neighbor)
                if new_cost < best.get(neighbor, float("inf")):
                    best[neighbor] = new_cost
                    parent[neighbor] = cell
                    heapq.heappush(
                        open_heap,
                        (new_cost + heuristic(neighbor), new_cost, neighbor),
                    )
        return None

    # -- routing -------------------------------------------------------------

    def _route_net(self, pins: list[tuple[float, float]]) -> RoutedNet | None:
        start = self._snap(*pins[0])
        pin_cells = frozenset(self._snap(*pin) for pin in pins)
        tree: set[tuple[int, int, int]] = {(start[0], start[1], 0),
                                           (start[0], start[1], 1)}
        cells: set[tuple[int, int, int]] = set()
        for pin in pins[1:]:
            target = self._snap(*pin)
            if (target[0], target[1], 0) in tree or (
                target[0], target[1], 1
            ) in tree:
                continue
            path = self._astar(tree, target)
            if path is None:
                return None
            cells.update(path)
            for cell in path:
                tree.add(cell)
        routed = RoutedNet(net=-1, cells=sorted(cells), pin_cells=pin_cells)
        steps = 0
        vias = 0
        for cell in cells:
            # Count wire steps by adjacency within the path set.
            col, row, layer = cell
            if layer == 0 and (col + 1, row, 0) in cells:
                steps += 1
            if layer == 1 and (col, row + 1, 1) in cells:
                steps += 1
            if layer == 0 and (col, row, 1) in cells:
                vias += 1
        routed.wirelength_um = steps * self.pitch
        routed.vias = vias
        return routed

    def _apply_usage(self, routed: RoutedNet, delta: int) -> None:
        for cell in routed.cells:
            if (cell[0], cell[1]) in routed.pin_cells:
                continue
            self.usage[cell] = self.usage.get(cell, 0) + delta

    def _overflow(self) -> int:
        return sum(
            used - self.capacity
            for used in self.usage.values()
            if used > self.capacity
        )

    def route(self, max_iterations: int = 3, rip_up: bool = True) -> RoutingResult:
        multi = {
            net: pins
            for net, pins in self.pins_by_net.items()
            if len(pins) >= 2
        }

        routed: dict[int, RoutedNet] = {}
        failed: list[int] = []
        with self.tracer.span("route.initial") as sp:
            for net, pins in sorted(multi.items()):
                result = self._route_net(pins)
                if result is None:
                    failed.append(net)
                    continue
                result.net = net
                routed[net] = result
                self._apply_usage(result, +1)
            if self.tracer.enabled:
                sp.set(nets=len(routed), failed=len(failed),
                       overflow=self._overflow())

        iterations = 1
        if rip_up:
            for _ in range(max_iterations - 1):
                if self._overflow() == 0:
                    break
                with self.tracer.span("route.rip_up") as sp:
                    congested = {
                        cell
                        for cell, used in self.usage.items()
                        if used > self.capacity
                    }
                    for cell in congested:
                        self.history[cell] = self.history.get(cell, 0.0) + 2.0
                    victims = [
                        net
                        for net, rn in routed.items()
                        if any(cell in congested for cell in rn.cells)
                    ]
                    for net in victims:
                        self._apply_usage(routed[net], -1)
                        result = self._route_net(multi[net])
                        if result is None:
                            failed.append(net)
                            del routed[net]
                            continue
                        result.net = net
                        routed[net] = result
                        self._apply_usage(result, +1)
                    iterations += 1
                    if self.tracer.enabled:
                        sp.set(iteration=iterations, victims=len(victims),
                               overflow=self._overflow())

        return RoutingResult(
            nets=routed,
            grid_pitch_um=self.pitch,
            overflow=self._overflow(),
            iterations=iterations,
            failed_nets=failed,
        )


def route(
    mapped: MappedNetlist,
    placement: Placement,
    node: ProcessNode,
    rip_up: bool = True,
    max_iterations: int = 3,
    capacity: int = 4,
    tracer=None,
) -> RoutingResult:
    """Route all nets of ``mapped`` over ``placement``."""
    router = GridRouter(mapped, placement, node, capacity=capacity,
                        tracer=tracer)
    return router.route(max_iterations=max_iterations, rip_up=rip_up)


def default_pitch(node: ProcessNode) -> float:
    """Default routing grid pitch: three placement rows per grid cell."""
    return max(3.0 * node.row_height_um, 1e-3)


def drc_clean_capacity(node: ProcessNode, layers,
                       pitch_um: float | None = None) -> int:
    """Track capacity per grid cell that fits width+spacing rules.

    The GDS exporter draws each net in a grid cell on its own track at
    ``pitch / capacity`` spacing; capping capacity at what the metal rules
    allow makes the exported layout DRC-clean by construction.
    """
    pitch = pitch_um or default_pitch(node)
    tracks = []
    for name in ("met1", "met2"):
        layer = layers.by_name(name)
        tracks.append(
            int(pitch // (layer.min_width_um + layer.min_spacing_um))
        )
    return max(1, min(tracks))


def grid_capacity(node: ProcessNode, layers, pitch_um: float | None = None) -> int:
    """Routing capacity per grid cell, aggregated over the metal stack.

    The router models two logical layers (horizontal/vertical); a real
    stack alternates directions over ``metal_layers`` metals, so the
    capacity of a logical layer is the summed track count of all metals
    routing in that direction at this node.
    """
    pitch = pitch_um or default_pitch(node)
    per_layer = []
    for i in range(node.metal_layers):
        layer = layers.by_name(f"met{i + 1}")
        per_layer.append(
            int(pitch // (layer.min_width_um + layer.min_spacing_um))
        )
    horizontal = sum(per_layer[0::2])
    vertical = sum(per_layer[1::2])
    return max(1, min(horizontal, vertical))
