"""repro — a chip-design enablement toolkit in pure Python.

Reproduction artifact for *Improving Chip Design Enablement for
Universities in Europe — A Position Paper* (DATE 2025).  The package
implements an educational end-to-end digital ASIC flow (HDL → simulation →
synthesis → place & route → timing/power signoff → GDSII), the enablement
platform the paper advocates (tiered access, flow templates, cloud jobs,
MPW shuttles), and the economic/workforce models behind its argument.

Start at :mod:`repro.hdl` to describe hardware, :mod:`repro.core.flow` to
run the full flow, :mod:`repro.obs` to trace and profile it, and
:mod:`repro.analytics` for the paper's quantitative claims.
"""

__version__ = "1.0.0"
