"""Logic synthesis: lowering, optimization, technology mapping, checking."""

from .dft import (
    DftError,
    FaultSimReport,
    FaultSite,
    ScanReport,
    coverage_estimate,
    fault_sites,
    insert_scan_chain,
    simulate_faults,
)
from .lower import Lowerer, lower
from .mapped import CellInst, MappedNetlist, MappedSimulator
from .mapper import MapStats, tech_map
from .netlist import FlipFlop, Gate, GateNetlist, GateSimulator
from .opt import ALL_PASSES, OptStats, dead_code_elim, optimize
from .sizing import BufferStats, SizingStats, buffer_heavy_nets, size_for_load
from .synthesize import SynthesisResult, synthesize
from .verify import EquivalenceResult, check_equivalence

__all__ = [
    "ALL_PASSES",
    "BufferStats",
    "CellInst",
    "DftError",
    "EquivalenceResult",
    "FaultSimReport",
    "FaultSite",
    "FlipFlop",
    "Gate",
    "GateNetlist",
    "GateSimulator",
    "Lowerer",
    "MapStats",
    "MappedNetlist",
    "MappedSimulator",
    "OptStats",
    "ScanReport",
    "SizingStats",
    "SynthesisResult",
    "buffer_heavy_nets",
    "check_equivalence",
    "coverage_estimate",
    "dead_code_elim",
    "fault_sites",
    "insert_scan_chain",
    "simulate_faults",
    "lower",
    "optimize",
    "size_for_load",
    "synthesize",
    "tech_map",
]
