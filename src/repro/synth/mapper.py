"""Technology mapping: covering the gate netlist with standard cells.

A greedy pattern-folding mapper in two phases:

1. walk the optimized gate netlist in topological order and fold
   single-fanout gate clusters into complex cells (NAND2/NOR2/XNOR2,
   AOI21/OAI21, NAND3/NOR3, MUX2);
2. map every remaining gate one-to-one (AND2/OR2/XOR2/INV/BUF), flip-flops
   to DFF cells and constants to tie cells.

The ``objective`` knob changes the pattern set: ``"area"`` folds
aggressively into complex cells (fewer transistors), ``"delay"`` only uses
the inverting two-input cells that are faster than their AND/OR
equivalents.  The open-vs-commercial presets (experiment E4) and the
mapper ablation benchmark both exercise this knob.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..pdk.cells import Library
from .mapped import MappedNetlist
from .netlist import Gate, GateNetlist


@dataclass
class MapStats:
    """Pattern-folding counters."""

    patterns: dict[str, int]

    def total_folds(self) -> int:
        return sum(self.patterns.values())


def _pattern_folds(objective: str) -> bool:
    if objective not in ("area", "delay"):
        raise ValueError(f"unknown mapping objective {objective!r}")
    return objective == "area"


def tech_map(
    netlist: GateNetlist,
    library: Library,
    objective: str = "area",
) -> tuple[MappedNetlist, MapStats]:
    """Map ``netlist`` onto ``library`` cells.

    Returns the mapped netlist (same net id space) and fold statistics.
    """
    fold_complex = _pattern_folds(objective)
    mapped = MappedNetlist(netlist.name, library)
    mapped.n_nets = netlist.n_nets
    mapped.inputs = {k: list(v) for k, v in netlist.inputs.items()}
    mapped.outputs = {k: list(v) for k, v in netlist.outputs.items()}

    driver: dict[int, Gate] = {g.output: g for g in netlist.gates}
    fanout = netlist.fanout()
    consumed: set[int] = set()  # outputs of gates folded into a pattern
    stats = MapStats(patterns={})

    def inner(net: int, op: str) -> Gate | None:
        """The driving gate of ``net`` if it is a single-fanout ``op``."""
        gate = driver.get(net)
        if gate is not None and gate.op == op and fanout.get(net, 0) == 1:
            return gate
        return None

    def fold(name: str, *gates: Gate) -> None:
        for gate in gates:
            consumed.add(gate.output)
        stats.patterns[name] = stats.patterns.get(name, 0) + 1

    def emit(kind: str, pins: dict[str, int]) -> None:
        mapped.add_cell(library.by_kind(kind), pins)

    # Phase 1+2 combined: walk in reverse topological order so that a root
    # pattern claims its leaves before the leaves are visited.
    for gate in reversed(netlist.topo_gates()):
        if gate.output in consumed:
            continue
        out = gate.output

        if gate.op == "NOT":
            src = gate.inputs[0]
            and_gate = inner(src, "AND")
            or_gate = inner(src, "OR")
            xor_gate = inner(src, "XOR")
            if and_gate is not None:
                if fold_complex:
                    # NAND3: NOT(AND(AND(a,b),c))
                    for left, right in (
                        (and_gate.inputs[0], and_gate.inputs[1]),
                        (and_gate.inputs[1], and_gate.inputs[0]),
                    ):
                        deep = inner(left, "AND")
                        if deep is not None:
                            fold("NAND3", gate, and_gate, deep)
                            emit("NAND3", {
                                "a": deep.inputs[0],
                                "b": deep.inputs[1],
                                "c": right,
                                "y": out,
                            })
                            break
                    else:
                        fold("NAND2", gate, and_gate)
                        emit("NAND2", {
                            "a": and_gate.inputs[0],
                            "b": and_gate.inputs[1],
                            "y": out,
                        })
                    continue
                fold("NAND2", gate, and_gate)
                emit("NAND2", {
                    "a": and_gate.inputs[0],
                    "b": and_gate.inputs[1],
                    "y": out,
                })
                continue
            if or_gate is not None:
                if fold_complex:
                    # AOI21: NOT(OR(AND(a,b),c)); NOR3: NOT(OR(OR(a,b),c))
                    matched = False
                    for left, right in (
                        (or_gate.inputs[0], or_gate.inputs[1]),
                        (or_gate.inputs[1], or_gate.inputs[0]),
                    ):
                        and_in = inner(left, "AND")
                        if and_in is not None:
                            fold("AOI21", gate, or_gate, and_in)
                            emit("AOI21", {
                                "a": and_in.inputs[0],
                                "b": and_in.inputs[1],
                                "c": right,
                                "y": out,
                            })
                            matched = True
                            break
                        or_in = inner(left, "OR")
                        if or_in is not None:
                            fold("NOR3", gate, or_gate, or_in)
                            emit("NOR3", {
                                "a": or_in.inputs[0],
                                "b": or_in.inputs[1],
                                "c": right,
                                "y": out,
                            })
                            matched = True
                            break
                    if matched:
                        continue
                fold("NOR2", gate, or_gate)
                emit("NOR2", {
                    "a": or_gate.inputs[0],
                    "b": or_gate.inputs[1],
                    "y": out,
                })
                continue
            if xor_gate is not None:
                fold("XNOR2", gate, xor_gate)
                emit("XNOR2", {
                    "a": xor_gate.inputs[0],
                    "b": xor_gate.inputs[1],
                    "y": out,
                })
                continue
            emit("INV", {"a": src, "y": out})
            continue

        if gate.op == "OR" and fold_complex:
            # MUX2: OR(AND(s, b), AND(NOT(s), a)).  The select inverter may
            # be shared with other logic, so it is not consumed.
            and_t = inner(gate.inputs[0], "AND")
            and_f = inner(gate.inputs[1], "AND")
            matched = False
            for first, second in ((and_t, and_f), (and_f, and_t)):
                if first is None or second is None:
                    continue
                for sel_pos in (0, 1):
                    sel = first.inputs[sel_pos]
                    data_t = first.inputs[1 - sel_pos]
                    for nsel_pos in (0, 1):
                        maybe_not = driver.get(second.inputs[nsel_pos])
                        if (
                            maybe_not is not None
                            and maybe_not.op == "NOT"
                            and maybe_not.inputs[0] == sel
                        ):
                            data_f = second.inputs[1 - nsel_pos]
                            gates = [gate, first, second]
                            if fanout.get(maybe_not.output, 0) == 1:
                                gates.append(maybe_not)
                            fold("MUX2", *gates)
                            emit("MUX2", {
                                "a": data_f,
                                "b": data_t,
                                "s": sel,
                                "y": out,
                            })
                            matched = True
                            break
                    if matched:
                        break
                if matched:
                    break
            if matched:
                continue

        simple = {"AND": "AND2", "OR": "OR2", "XOR": "XOR2", "BUF": "BUF"}
        kind = simple[gate.op]
        if kind == "BUF":
            emit("BUF", {"a": gate.inputs[0], "y": out})
        else:
            emit(kind, {
                "a": gate.inputs[0],
                "b": gate.inputs[1],
                "y": out,
            })

    dff_cell = library.dff
    for ff in netlist.dffs:
        mapped.add_cell(dff_cell, {"d": ff.d, "q": ff.q},
                        reset_value=ff.reset_value, tag=ff.name)

    # Tie cells for constants that survived optimization.
    used: set[int] = set()
    for inst in mapped.cells:
        used.update(inst.input_nets())
    for nets in mapped.outputs.values():
        used.update(nets)
    for net, value in netlist.const_nets.items():
        if net in used:
            emit("TIE1" if value else "TIE0", {"y": net})

    return mapped, stats
