"""Technology-mapped netlist: standard-cell instances over nets.

This is the handoff object between synthesis and the physical flow:
placement arranges its cells, routing connects its nets, STA and power
read its timing/electrical data, and :class:`MappedSimulator` provides
gate-level semantics for post-mapping equivalence checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..pdk.cells import Library, StandardCell


@dataclass
class CellInst:
    """One placed-able standard-cell instance.

    ``pins`` maps pin name to net id and includes the output pin.
    Sequential cells store their reset value for simulation and a ``tag``
    naming the RTL register bit they implement (``reg[index]``), which is
    the register correspondence used by formal equivalence checking.
    """

    name: str
    cell: StandardCell
    pins: dict[str, int]
    reset_value: int = 0
    tag: str = ""

    @property
    def output_net(self) -> int | None:
        if self.cell.output:
            return self.pins.get(self.cell.output)
        return None

    def input_nets(self) -> list[int]:
        return [self.pins[p] for p in self.cell.inputs]

    def __repr__(self) -> str:
        return f"CellInst({self.name}:{self.cell.name})"


class MappedNetlist:
    """A netlist of standard cells from one library.

    The connectivity indexes (:meth:`net_driver`, :meth:`net_loads`,
    :meth:`topo_comb`, :meth:`nets`) are memoized: placement, routing,
    STA and power all walk them repeatedly, so they are computed once
    and invalidated on structural mutation.  Mutations made through the
    netlist API (:meth:`add_cell`, :meth:`rewire`, :meth:`set_port`)
    invalidate automatically; code that pokes ``cells``/``pins`` or the
    port dicts directly must call :meth:`invalidate` afterwards.
    Callers must treat the returned indexes as read-only.
    """

    def __init__(self, name: str, library: Library):
        self.name = name
        self.library = library
        self.cells: list[CellInst] = []
        self.n_nets = 0
        self.inputs: dict[str, list[int]] = {}
        self.outputs: dict[str, list[int]] = {}
        self._index_cache: dict[str, object] = {}
        #: Bumped on every invalidation; consumers holding derived data
        #: (e.g. placement pin templates) can compare versions for staleness.
        self.index_version = 0

    def add_cell(self, cell: StandardCell, pins: dict[str, int],
                 reset_value: int = 0, tag: str = "",
                 name: str | None = None) -> CellInst:
        """Append a cell.  ``name`` defaults to ``u{index}_{kind}``;
        callers that stitch netlists from pre-mapped shards pass explicit
        names so cell identity survives edits elsewhere in the design."""
        inst = CellInst(name or f"u{len(self.cells)}_{cell.kind}", cell,
                        dict(pins), reset_value, tag)
        self.cells.append(inst)
        self.invalidate()
        return inst

    # -- mutation ----------------------------------------------------------

    def invalidate(self) -> None:
        """Drop the memoized connectivity indexes after a mutation."""
        self._index_cache.clear()
        self.index_version += 1

    def new_net(self) -> int:
        """Allocate a fresh net id."""
        net = self.n_nets
        self.n_nets += 1
        return net

    def rewire(self, inst: CellInst, pin: str, net: int) -> None:
        """Reconnect one pin of ``inst`` to ``net``."""
        if pin not in inst.pins:
            raise KeyError(f"{inst.name} has no pin {pin!r}")
        inst.pins[pin] = net
        self.invalidate()

    def set_port(self, direction: str, name: str, nets: list[int]) -> None:
        """Declare or reconnect a top-level port (``input``/``output``)."""
        ports = {"input": self.inputs, "output": self.outputs}[direction]
        ports[name] = list(nets)
        self.invalidate()

    # -- connectivity ------------------------------------------------------

    def net_driver(self) -> dict[int, CellInst]:
        cached = self._index_cache.get("driver")
        if cached is None:
            drivers: dict[int, CellInst] = {}
            for inst in self.cells:
                net = inst.output_net
                if net is None:
                    continue
                if net in drivers:
                    raise ValueError(f"net {net} has multiple drivers")
                drivers[net] = inst
            cached = self._index_cache["driver"] = drivers
        return cached

    def net_loads(self) -> dict[int, list[tuple[CellInst, str]]]:
        cached = self._index_cache.get("loads")
        if cached is None:
            loads: dict[int, list[tuple[CellInst, str]]] = {}
            for inst in self.cells:
                for pin in inst.cell.inputs:
                    loads.setdefault(inst.pins[pin], []).append((inst, pin))
            cached = self._index_cache["loads"] = loads
        return cached

    def nets(self) -> set[int]:
        """All nets referenced by any pin or port."""
        cached = self._index_cache.get("nets")
        if cached is None:
            found: set[int] = set()
            for inst in self.cells:
                found.update(inst.pins.values())
            for nets in self.inputs.values():
                found.update(nets)
            for nets in self.outputs.values():
                found.update(nets)
            cached = self._index_cache["nets"] = found
        return cached

    @property
    def seq_cells(self) -> list[CellInst]:
        cached = self._index_cache.get("seq")
        if cached is None:
            cached = self._index_cache["seq"] = [
                c for c in self.cells if c.cell.is_sequential
            ]
        return cached

    @property
    def comb_cells(self) -> list[CellInst]:
        cached = self._index_cache.get("comb")
        if cached is None:
            cached = self._index_cache["comb"] = [
                c for c in self.cells if not c.cell.is_sequential
            ]
        return cached

    # -- metrics -------------------------------------------------------------

    def area_um2(self) -> float:
        return sum(inst.cell.area_um2 for inst in self.cells)

    def leakage_nw(self) -> float:
        return sum(inst.cell.leakage_nw for inst in self.cells)

    def stats(self) -> dict[str, float]:
        by_kind: dict[str, int] = {}
        for inst in self.cells:
            by_kind[inst.cell.kind] = by_kind.get(inst.cell.kind, 0) + 1
        return {
            "cells": len(self.cells),
            "sequential": len(self.seq_cells),
            "area_um2": round(self.area_um2(), 3),
            "leakage_nw": round(self.leakage_nw(), 4),
            **{f"kind_{k}": n for k, n in sorted(by_kind.items())},
        }

    def topo_comb(self) -> list[CellInst]:
        """Combinational cells in topological order (Kahn)."""
        cached = self._index_cache.get("topo")
        if cached is None:
            cached = self._index_cache["topo"] = self._topo_comb()
        return cached

    def _topo_comb(self) -> list[CellInst]:
        comb = self.comb_cells
        driven_by = {c.output_net: i for i, c in enumerate(comb)
                     if c.output_net is not None}
        pending = [0] * len(comb)
        consumers: dict[int, list[int]] = {}
        ready: list[int] = []
        for i, inst in enumerate(comb):
            for net in inst.input_nets():
                if net in driven_by:
                    pending[i] += 1
                    consumers.setdefault(net, []).append(i)
            if pending[i] == 0:
                ready.append(i)
        order: list[CellInst] = []
        head = 0
        while head < len(ready):
            inst = comb[ready[head]]
            head += 1
            order.append(inst)
            net = inst.output_net
            if net is None:
                continue
            for consumer in consumers.get(net, ()):
                pending[consumer] -= 1
                if pending[consumer] == 0:
                    ready.append(consumer)
        if len(order) != len(comb):
            raise ValueError("combinational loop in mapped netlist")
        return order

    def __repr__(self) -> str:
        return f"MappedNetlist({self.name!r}, cells={len(self.cells)})"


class MappedSimulator:
    """Gate-level simulator over a :class:`MappedNetlist`."""

    def __init__(self, mapped: MappedNetlist):
        self.mapped = mapped
        self._order = mapped.topo_comb()
        self._values: dict[int, int] = {n: 0 for n in mapped.nets()}
        self.reset()

    def reset(self) -> None:
        for inst in self.mapped.seq_cells:
            self._values[inst.pins[inst.cell.output]] = inst.reset_value
        self._settle()

    def _settle(self) -> None:
        values = self._values
        for inst in self._order:
            fn = inst.cell.function
            out = inst.pins[inst.cell.output]
            values[out] = fn(*(values[inst.pins[p]] for p in inst.cell.inputs))

    def _write_input(self, name: str, value: int) -> None:
        nets = self.mapped.inputs[name]
        if not 0 <= value < (1 << len(nets)):
            raise ValueError(f"value {value} too wide for {name!r}")
        for i, net in enumerate(nets):
            self._values[net] = (value >> i) & 1

    def set(self, name: str, value: int) -> None:
        self._write_input(name, value)
        self._settle()

    def set_many(self, values: dict[str, int]) -> None:
        """Drive several inputs, settling combinational logic once.

        Mirrors :meth:`repro.sim.Simulator.set_many` so lockstep
        drivers can batch a whole cycle's stimulus into one sweep.
        """
        for name, value in values.items():
            self._write_input(name, value)
        if values:
            self._settle()

    def get(self, name: str) -> int:
        nets = self.mapped.outputs[name]
        return sum(self._values[net] << i for i, net in enumerate(nets))

    def _state_words(self) -> dict[str, list[tuple[int, CellInst]]]:
        """DFF cells grouped into register words by the ``reg[i]`` tag."""
        words: dict[str, list[tuple[int, CellInst]]] = {}
        for index, inst in enumerate(self.mapped.seq_cells):
            label = inst.tag or f"dff{index}"
            base, _, rest = label.rpartition("[")
            if base and rest.endswith("]") and rest[:-1].isdigit():
                words.setdefault(base, []).append((int(rest[:-1]), inst))
            else:
                words.setdefault(label, []).append((0, inst))
        return words

    def load_state(self, state: dict[str, int]) -> None:
        """Force register words (by DFF tag) to the given values.

        Keys are RTL register names; DFF cells tagged ``reg[i]`` supply
        bit ``i`` of the word ``reg``.  Used to replay formal
        counterexamples from an arbitrary state.
        """
        words = self._state_words()
        for name, value in state.items():
            if name not in words:
                raise KeyError(f"no register named {name!r} in netlist")
            for bit_index, inst in words[name]:
                q = inst.pins[inst.cell.output]
                self._values[q] = (value >> bit_index) & 1
        self._settle()

    def get_register(self, name: str) -> int:
        """Current value of the register word ``name`` (DFF-tag grouping)."""
        words = self._state_words()
        if name not in words:
            raise KeyError(f"no register named {name!r} in netlist")
        return sum(
            self._values[inst.pins[inst.cell.output]] << bit_index
            for bit_index, inst in words[name]
        )

    def step(self, cycles: int = 1) -> None:
        for _ in range(cycles):
            sampled = [
                (inst, self._values[inst.pins["d"]])
                for inst in self.mapped.seq_cells
            ]
            for inst, value in sampled:
                self._values[inst.pins[inst.cell.output]] = value
            self._settle()
