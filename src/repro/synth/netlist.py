"""Bit-level gate netlist — the common currency of the backend flow.

Synthesis lowers the word-level IR into a :class:`GateNetlist` of 1/2-input
primitive gates plus D flip-flops.  Optimization rewrites it, technology
mapping covers it with standard cells, and the gate-level simulator
(:class:`GateSimulator`) provides the reference semantics that equivalence
checking compares against RTL simulation.

Nets are dense integer ids; multi-bit signals are lists of nets, LSB first.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Primitive gate operators.  NOT/BUF take one input, the rest take two.
GATE_OPS = frozenset({"AND", "OR", "XOR", "NOT", "BUF"})

_EVAL = {
    "AND": lambda a, b: a & b,
    "OR": lambda a, b: a | b,
    "XOR": lambda a, b: a ^ b,
    "NOT": lambda a: a ^ 1,
    "BUF": lambda a: a,
}


@dataclass(frozen=True)
class Gate:
    """A primitive combinational gate."""

    op: str
    inputs: tuple[int, ...]
    output: int

    def __post_init__(self):
        if self.op not in GATE_OPS:
            raise ValueError(f"unknown gate op {self.op!r}")
        expected = 1 if self.op in ("NOT", "BUF") else 2
        if len(self.inputs) != expected:
            raise ValueError(
                f"{self.op} gate takes {expected} inputs, got {len(self.inputs)}"
            )


@dataclass(frozen=True)
class FlipFlop:
    """A single-bit D flip-flop with a synchronous reset value.

    ``name`` records which RTL register bit this flop implements (the
    ``reg[index]`` convention), establishing the register correspondence
    that formal equivalence checking and state loading rely on.  It is
    purely an annotation: empty names are legal for hand-built netlists.
    """

    d: int
    q: int
    reset_value: int = 0
    name: str = ""


class GateNetlist:
    """A flat netlist of primitive gates and flip-flops."""

    def __init__(self, name: str):
        self.name = name
        self.n_nets = 0
        self.gates: list[Gate] = []
        self.dffs: list[FlipFlop] = []
        self.inputs: dict[str, list[int]] = {}
        self.outputs: dict[str, list[int]] = {}
        self._const0: int | None = None
        self._const1: int | None = None

    # -- construction -------------------------------------------------------

    def new_net(self) -> int:
        net = self.n_nets
        self.n_nets += 1
        return net

    def add_gate(self, op: str, *inputs: int) -> int:
        out = self.new_net()
        self.gates.append(Gate(op, tuple(inputs), out))
        return out

    def add_dff(self, d: int, reset_value: int = 0, name: str = "") -> int:
        q = self.new_net()
        self.dffs.append(FlipFlop(d, q, reset_value, name))
        return q

    def add_input(self, name: str, width: int) -> list[int]:
        if name in self.inputs:
            raise ValueError(f"duplicate input {name!r}")
        nets = [self.new_net() for _ in range(width)]
        self.inputs[name] = nets
        return nets

    def set_output(self, name: str, nets: list[int]) -> None:
        if name in self.outputs:
            raise ValueError(f"duplicate output {name!r}")
        self.outputs[name] = list(nets)

    def const0(self) -> int:
        if self._const0 is None:
            self._const0 = self.new_net()
        return self._const0

    def const1(self) -> int:
        if self._const1 is None:
            self._const1 = self.new_net()
        return self._const1

    @property
    def const_nets(self) -> dict[int, int]:
        """Map of constant net id -> constant value."""
        consts = {}
        if self._const0 is not None:
            consts[self._const0] = 0
        if self._const1 is not None:
            consts[self._const1] = 1
        return consts

    # -- analysis -------------------------------------------------------------

    def topo_gates(self) -> list[Gate]:
        """Gates in topological order (inputs/DFF-Q/constants are sources).

        Uses Kahn's algorithm; any gate left unordered sits on a
        combinational loop, which is an error.
        """
        gate_outputs = {g.output for g in self.gates}
        consumers: dict[int, list[int]] = {}
        pending = [0] * len(self.gates)
        ready: list[int] = []
        for index, gate in enumerate(self.gates):
            for net in gate.inputs:
                if net in gate_outputs:
                    pending[index] += 1
                    consumers.setdefault(net, []).append(index)
            if pending[index] == 0:
                ready.append(index)

        order: list[Gate] = []
        head = 0
        while head < len(ready):
            index = ready[head]
            head += 1
            gate = self.gates[index]
            order.append(gate)
            for consumer in consumers.get(gate.output, ()):
                pending[consumer] -= 1
                if pending[consumer] == 0:
                    ready.append(consumer)
        if len(order) != len(self.gates):
            raise ValueError(
                f"combinational loop: {len(self.gates) - len(order)} gates "
                "cannot be ordered"
            )
        return order

    def fanout(self) -> dict[int, int]:
        """Number of gate/DFF/output sinks per net."""
        counts: dict[int, int] = {}
        for gate in self.gates:
            for net in gate.inputs:
                counts[net] = counts.get(net, 0) + 1
        for ff in self.dffs:
            counts[ff.d] = counts.get(ff.d, 0) + 1
        for nets in self.outputs.values():
            for net in nets:
                counts[net] = counts.get(net, 0) + 1
        return counts

    def depth(self) -> int:
        """Maximum logic depth in gates (ignores BUF chains' semantics)."""
        level: dict[int, int] = {}
        deepest = 0
        for gate in self.topo_gates():
            lvl = 1 + max((level.get(net, 0) for net in gate.inputs), default=0)
            level[gate.output] = lvl
            deepest = max(deepest, lvl)
        return deepest

    def stats(self) -> dict[str, int]:
        by_op: dict[str, int] = {}
        for gate in self.gates:
            by_op[gate.op] = by_op.get(gate.op, 0) + 1
        return {
            "gates": len(self.gates),
            "dffs": len(self.dffs),
            "nets": self.n_nets,
            "depth": self.depth(),
            **{f"op_{op}": n for op, n in sorted(by_op.items())},
        }

    def __repr__(self) -> str:
        return (
            f"GateNetlist({self.name!r}, gates={len(self.gates)}, "
            f"dffs={len(self.dffs)})"
        )


def _flops_by_word(
    dffs: list[FlipFlop],
) -> dict[str, list[tuple[int, FlipFlop]]]:
    """Group flops into register words by the ``reg[i]`` name convention."""
    words: dict[str, list[tuple[int, FlipFlop]]] = {}
    for index, ff in enumerate(dffs):
        label = ff.name or f"dff{index}"
        base, _, rest = label.rpartition("[")
        if base and rest.endswith("]") and rest[:-1].isdigit():
            words.setdefault(base, []).append((int(rest[:-1]), ff))
        else:
            words.setdefault(label, []).append((0, ff))
    return words


class GateSimulator:
    """Cycle-accurate simulator over a :class:`GateNetlist`.

    Mirrors the :class:`repro.sim.Simulator` interface closely enough for
    the equivalence checker to drive both in lockstep.
    """

    def __init__(self, netlist: GateNetlist):
        self.netlist = netlist
        self._order = netlist.topo_gates()
        self._values: list[int] = [0] * netlist.n_nets
        self.reset()

    def reset(self) -> None:
        for net, value in self.netlist.const_nets.items():
            self._values[net] = value
        for ff in self.netlist.dffs:
            self._values[ff.q] = ff.reset_value
        self._settle()

    def _settle(self) -> None:
        values = self._values
        for gate in self._order:
            fn = _EVAL[gate.op]
            values[gate.output] = fn(*(values[n] for n in gate.inputs))

    def _write_input(self, name: str, value: int) -> None:
        nets = self.netlist.inputs[name]
        if not 0 <= value < (1 << len(nets)):
            raise ValueError(
                f"value {value} does not fit input {name!r} "
                f"({len(nets)} bits)"
            )
        for i, net in enumerate(nets):
            self._values[net] = (value >> i) & 1

    def set(self, name: str, value: int) -> None:
        self._write_input(name, value)
        self._settle()

    def set_many(self, values: dict[str, int]) -> None:
        """Drive several inputs, settling combinational logic once.

        Mirrors :meth:`repro.sim.Simulator.set_many` so lockstep
        drivers can batch a whole cycle's stimulus into one sweep.
        """
        for name, value in values.items():
            self._write_input(name, value)
        if values:
            self._settle()

    def load_state(self, state: dict[str, int]) -> None:
        """Force register words (by flop name) to the given values.

        Keys are RTL register names; flops named ``reg[i]`` supply bit
        ``i`` of the word ``reg``.  Used to replay formal counterexamples
        from an arbitrary reachable-or-not state.
        """
        flops = _flops_by_word(self.netlist.dffs)
        for name, value in state.items():
            if name not in flops:
                raise KeyError(f"no register named {name!r} in netlist")
            for bit_index, ff in flops[name]:
                self._values[ff.q] = (value >> bit_index) & 1
        self._settle()

    def get_register(self, name: str) -> int:
        """Current value of the register word ``name`` (flop-name grouping)."""
        flops = _flops_by_word(self.netlist.dffs)
        if name not in flops:
            raise KeyError(f"no register named {name!r} in netlist")
        return sum(
            self._values[ff.q] << bit_index for bit_index, ff in flops[name]
        )

    def get(self, name: str) -> int:
        nets = self.netlist.outputs[name]
        return sum(self._values[net] << i for i, net in enumerate(nets))

    def step(self, cycles: int = 1) -> None:
        for _ in range(cycles):
            next_values = [
                self._values[ff.d] for ff in self.netlist.dffs
            ]
            for ff, value in zip(self.netlist.dffs, next_values):
                self._values[ff.q] = value
            self._settle()
