"""Word-to-bit lowering (bit blasting).

Transforms an elaborated :class:`~repro.hdl.ir.Module` into a
:class:`~repro.synth.netlist.GateNetlist` of 1/2-input primitive gates.
Arithmetic uses textbook structures: ripple-carry adders, shift-and-add
multipliers, borrow-chain comparators and logarithmic barrel shifters.
The structures are deliberately simple — optimization and mapping improve
them — mirroring how elaboration works in real synthesis tools.

Bit lists are LSB first throughout.
"""

from __future__ import annotations

from ..hdl.elaborate import elaborate
from ..hdl.ir import (
    BinOp,
    Cat,
    Const,
    Expr,
    Module,
    Mux,
    Ref,
    Signal,
    Slice,
    UnaryOp,
)
from .netlist import FlipFlop, GateNetlist

Bits = list[int]


class Lowerer:
    """Stateful lowering of one flat module."""

    def __init__(self, module: Module):
        if module.instances:
            module = elaborate(module)
        module.validate()
        self.module = module
        self.netlist = GateNetlist(module.name)
        self.bits: dict[Signal, Bits] = {}

    # -- primitive helpers ----------------------------------------------------

    def _zero(self) -> int:
        return self.netlist.const0()

    def _one(self) -> int:
        return self.netlist.const1()

    def _gate(self, op: str, *ins: int) -> int:
        return self.netlist.add_gate(op, *ins)

    def _pad(self, bits: Bits, width: int) -> Bits:
        """Zero-extend (or reject over-width) to exactly ``width`` bits."""
        if len(bits) > width:
            raise ValueError(f"cannot narrow {len(bits)} bits to {width}")
        return bits + [self._zero()] * (width - len(bits))

    def _mux_bit(self, sel: int, if_true: int, if_false: int) -> int:
        not_sel = self._gate("NOT", sel)
        a = self._gate("AND", sel, if_true)
        b = self._gate("AND", not_sel, if_false)
        return self._gate("OR", a, b)

    def _full_adder(self, a: int, b: int, cin: int) -> tuple[int, int]:
        axb = self._gate("XOR", a, b)
        total = self._gate("XOR", axb, cin)
        carry = self._gate(
            "OR", self._gate("AND", a, b), self._gate("AND", axb, cin)
        )
        return total, carry

    def _ripple_add(self, a: Bits, b: Bits, cin: int) -> tuple[Bits, int]:
        """Equal-length ripple-carry addition; returns (sum bits, carry out)."""
        assert len(a) == len(b)
        out: Bits = []
        carry = cin
        for bit_a, bit_b in zip(a, b):
            total, carry = self._full_adder(bit_a, bit_b, carry)
            out.append(total)
        return out, carry

    def _invert(self, bits: Bits) -> Bits:
        return [self._gate("NOT", bit) for bit in bits]

    def _tree(self, op: str, nets: Bits) -> int:
        """Balanced reduction tree (keeps logic depth logarithmic)."""
        assert nets
        level = list(nets)
        while len(level) > 1:
            nxt: Bits = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(self._gate(op, level[i], level[i + 1]))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]

    # -- expression lowering -----------------------------------------------

    def lower_expr(self, expr: Expr) -> Bits:
        if isinstance(expr, Const):
            return [
                self._one() if (expr.value >> i) & 1 else self._zero()
                for i in range(expr.width)
            ]
        if isinstance(expr, Ref):
            return list(self.bits[expr.signal])
        if isinstance(expr, UnaryOp):
            return self._lower_unary(expr)
        if isinstance(expr, BinOp):
            return self._lower_binary(expr)
        if isinstance(expr, Mux):
            sel = self.lower_expr(expr.sel)[0]
            width = expr.width
            t = self._pad(self.lower_expr(expr.if_true), width)
            f = self._pad(self.lower_expr(expr.if_false), width)
            return [self._mux_bit(sel, ti, fi) for ti, fi in zip(t, f)]
        if isinstance(expr, Cat):
            bits: Bits = []
            for part in reversed(expr.parts):  # last part is the LSB side
                bits.extend(self.lower_expr(part))
            return bits
        if isinstance(expr, Slice):
            return self.lower_expr(expr.value)[expr.lo : expr.hi + 1]
        raise TypeError(f"cannot lower expression {expr!r}")

    def _lower_unary(self, expr: UnaryOp) -> Bits:
        operand = self.lower_expr(expr.operand)
        if expr.op == "not":
            return self._invert(operand)
        if expr.op == "neg":
            zero = [self._zero()] * len(operand)
            out, _ = self._ripple_add(self._invert(operand), zero, self._one())
            return out
        if expr.op == "rand":
            return [self._tree("AND", operand)]
        if expr.op == "ror":
            return [self._tree("OR", operand)]
        if expr.op == "rxor":
            return [self._tree("XOR", operand)]
        raise ValueError(f"unhandled unary op {expr.op!r}")

    def _lower_binary(self, expr: BinOp) -> Bits:
        op = expr.op
        if op in ("shl", "shr"):
            return self._lower_shift(expr)
        a = self.lower_expr(expr.a)
        b = self.lower_expr(expr.b)
        if op in ("and", "or", "xor"):
            width = expr.width
            a, b = self._pad(a, width), self._pad(b, width)
            return [
                self._gate(op.upper(), x, y) for x, y in zip(a, b)
            ]
        if op == "add":
            width = expr.width
            out, _ = self._ripple_add(
                self._pad(a, width), self._pad(b, width), self._zero()
            )
            return out
        if op == "sub":
            width = expr.width
            out, _ = self._ripple_add(
                self._pad(a, width),
                self._invert(self._pad(b, width)),
                self._one(),
            )
            return out
        if op == "mul":
            return self._lower_mul(a, b, expr.width)
        if op in ("eq", "ne"):
            width = max(len(a), len(b))
            a, b = self._pad(a, width), self._pad(b, width)
            diff = [self._gate("XOR", x, y) for x, y in zip(a, b)]
            any_diff = self._tree("OR", diff)
            return [any_diff if op == "ne" else self._gate("NOT", any_diff)]
        if op in ("lt", "le", "gt", "ge"):
            return [self._lower_compare(op, a, b)]
        raise ValueError(f"unhandled binary op {op!r}")

    def _lower_mul(self, a: Bits, b: Bits, width: int) -> Bits:
        """Shift-and-add multiplier producing the full-width product."""
        acc = [self._zero()] * width
        for j, b_bit in enumerate(b):
            partial = [self._zero()] * j
            partial += [self._gate("AND", a_bit, b_bit) for a_bit in a]
            partial = partial[:width]
            partial = self._pad(partial, width)
            acc, _ = self._ripple_add(acc, partial, self._zero())
        return acc

    def _lower_compare(self, op: str, a: Bits, b: Bits) -> int:
        """Unsigned comparison via the borrow chain of ``a - b``.

        The carry out of ``a + ~b + 1`` is 1 exactly when ``a >= b``.
        """
        if op == "gt":
            return self._lower_compare("lt", b, a)
        if op == "le":
            return self._lower_compare("ge", b, a)
        width = max(len(a), len(b))
        a, b = self._pad(a, width), self._pad(b, width)
        _, carry = self._ripple_add(a, self._invert(b), self._one())
        if op == "ge":
            return carry
        return self._gate("NOT", carry)  # lt

    def _lower_shift(self, expr: BinOp) -> Bits:
        a = self.lower_expr(expr.a)
        width = len(a)
        left = expr.op == "shl"
        if isinstance(expr.b, Const):
            amount = expr.b.value
            if amount >= width:
                return [self._zero()] * width
            if left:
                return [self._zero()] * amount + a[: width - amount]
            return a[amount:] + [self._zero()] * amount
        # Logarithmic barrel shifter: one mux stage per bit of the amount.
        amount_bits = self.lower_expr(expr.b)
        current = a
        for k, sel in enumerate(amount_bits):
            step = 1 << k
            if step >= width:
                # Shifting by this much clears everything when sel is set.
                zero = self._zero()
                current = [
                    self._mux_bit(sel, zero, bit) for bit in current
                ]
                continue
            if left:
                shifted = [self._zero()] * step + current[: width - step]
            else:
                shifted = current[step:] + [self._zero()] * step
            current = [
                self._mux_bit(sel, s, c) for s, c in zip(shifted, current)
            ]
        return current

    # -- module lowering -------------------------------------------------------

    def lower(self) -> GateNetlist:
        nl = self.netlist
        for sig in self.module.inputs:
            self.bits[sig] = nl.add_input(sig.name, sig.width)
        for reg in self.module.registers:
            self.bits[reg.signal] = [nl.new_net() for _ in range(reg.signal.width)]

        for sig in self.module.comb_order():
            expr_bits = self.lower_expr(self.module.assigns[sig])
            self.bits[sig] = self._pad(expr_bits, sig.width)

        for reg in self.module.registers:
            d_bits = self._pad(self.lower_expr(reg.next), reg.signal.width)
            for i, (d, q) in enumerate(zip(d_bits, self.bits[reg.signal])):
                nl.dffs.append(
                    FlipFlop(d, q, (reg.reset_value >> i) & 1,
                             name=f"{reg.signal.name}[{i}]")
                )

        for sig in self.module.outputs:
            nl.set_output(sig.name, self.bits[sig])
        return nl


def lower(module: Module) -> GateNetlist:
    """Bit-blast ``module`` (elaborating first if hierarchical)."""
    return Lowerer(module).lower()
