"""Logic optimization on gate netlists.

A fixed-point rewriting engine in the spirit of ABC's ``strash``-based
flows: each iteration walks the gates in topological order applying

* **constant folding** — gates with constant inputs collapse;
* **idempotence / annihilation** — ``AND(x, x) -> x``, ``XOR(x, x) -> 0`` …;
* **buffer and double-inverter elimination** — ``BUF(x) -> x``,
  ``NOT(NOT(x)) -> x``;
* **structural hashing** — gates with identical (op, inputs) merge;
* **inverter sharing via XOR-const rewriting** — ``XOR(x, 1) -> NOT(x)``.

A final mark-and-sweep removes logic that does not reach an output or a
flip-flop input.  Every rule fires counted, so ablation benchmarks can
report which rules matter (DESIGN.md ablation list).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs.trace import get_tracer
from .netlist import FlipFlop, Gate, GateNetlist


@dataclass
class OptStats:
    """Counters for the rewriting rules, plus before/after sizes."""

    gates_before: int = 0
    gates_after: int = 0
    iterations: int = 0
    rules: dict[str, int] = field(default_factory=dict)

    def bump(self, rule: str) -> None:
        self.rules[rule] = self.rules.get(rule, 0) + 1

    @property
    def removed(self) -> int:
        return self.gates_before - self.gates_after


class _Rewriter:
    """One optimization iteration over a netlist."""

    def __init__(self, netlist: GateNetlist, stats: OptStats,
                 enabled: set[str]):
        self.src = netlist
        self.stats = stats
        self.enabled = enabled
        self.alias: dict[int, int] = {}
        self.const_value: dict[int, int] = dict(netlist.const_nets)
        self.hash_table: dict[tuple, int] = {}
        self.driver: dict[int, Gate] = {}
        self.out = GateNetlist(netlist.name)
        # Preserve the net id space; only the gate list is rebuilt.
        self.out.n_nets = netlist.n_nets
        self.out.inputs = {k: list(v) for k, v in netlist.inputs.items()}
        self.out._const0 = netlist._const0
        self.out._const1 = netlist._const1

    def resolve(self, net: int) -> int:
        seen = []
        while net in self.alias:
            seen.append(net)
            net = self.alias[net]
        for s in seen:  # path compression
            self.alias[s] = net
        return net

    def _const_net(self, value: int) -> int:
        return self.out.const1() if value else self.out.const0()

    def _emit(self, gate: Gate, op: str, ins: tuple[int, ...]) -> None:
        if "strash" in self.enabled:
            key = (op, ins)
            existing = self.hash_table.get(key)
            if existing is not None:
                self.alias[gate.output] = existing
                self.stats.bump("strash")
                return
            self.hash_table[key] = gate.output
        new_gate = Gate(op, ins, gate.output)
        self.out.gates.append(new_gate)
        self.driver[gate.output] = new_gate

    def rewrite_gate(self, gate: Gate) -> None:
        ins = tuple(self.resolve(n) for n in gate.inputs)
        op = gate.op
        fold = "fold" in self.enabled

        if op == "BUF":
            if fold:
                self.alias[gate.output] = ins[0]
                self.stats.bump("buf_elim")
                return
            self._emit(gate, op, ins)
            return

        if op == "NOT":
            a = ins[0]
            if fold and a in self.const_value:
                value = self.const_value[a] ^ 1
                self.alias[gate.output] = self._const_net(value)
                self.const_value[gate.output] = value
                self.stats.bump("const_fold")
                return
            if fold:
                inner = self.driver.get(a)
                if inner is not None and inner.op == "NOT":
                    self.alias[gate.output] = inner.inputs[0]
                    self.stats.bump("double_not")
                    return
            self._emit(gate, op, ins)
            return

        # Binary gates: canonical input order for commutative ops.
        a, b = sorted(ins)
        if fold:
            known_a = self.const_value.get(a)
            known_b = self.const_value.get(b)
            if known_a is not None and known_b is not None:
                table = {"AND": known_a & known_b, "OR": known_a | known_b,
                         "XOR": known_a ^ known_b}
                value = table[op]
                self.alias[gate.output] = self._const_net(value)
                self.const_value[gate.output] = value
                self.stats.bump("const_fold")
                return
            # One constant input.
            for const_net, other in ((a, b), (b, a)):
                value = self.const_value.get(const_net)
                if value is None:
                    continue
                if op == "AND":
                    if value == 0:
                        self.alias[gate.output] = self._const_net(0)
                        self.const_value[gate.output] = 0
                    else:
                        self.alias[gate.output] = other
                    self.stats.bump("const_fold")
                    return
                if op == "OR":
                    if value == 1:
                        self.alias[gate.output] = self._const_net(1)
                        self.const_value[gate.output] = 1
                    else:
                        self.alias[gate.output] = other
                    self.stats.bump("const_fold")
                    return
                if op == "XOR":
                    if value == 0:
                        self.alias[gate.output] = other
                        self.stats.bump("const_fold")
                    else:
                        self._emit(gate, "NOT", (other,))
                        self.stats.bump("xor_to_not")
                    return
            if a == b:
                if op in ("AND", "OR"):
                    self.alias[gate.output] = a
                else:  # XOR(x, x) == 0
                    self.alias[gate.output] = self._const_net(0)
                    self.const_value[gate.output] = 0
                self.stats.bump("idempotent")
                return
        self._emit(gate, op, (a, b))

    def run(self) -> GateNetlist:
        for gate in self.src.topo_gates():
            self.rewrite_gate(gate)
        for ff in self.src.dffs:
            self.out.dffs.append(
                FlipFlop(self.resolve(ff.d), ff.q, ff.reset_value, ff.name)
            )
        for name, nets in self.src.outputs.items():
            self.out.set_output(name, [self.resolve(n) for n in nets])
        return self.out


def dead_code_elim(netlist: GateNetlist, stats: OptStats | None = None) -> GateNetlist:
    """Remove gates that reach neither an output nor a flip-flop input."""
    driver: dict[int, Gate] = {g.output: g for g in netlist.gates}
    live: set[int] = set()
    work: list[int] = []
    for nets in netlist.outputs.values():
        work.extend(nets)
    for ff in netlist.dffs:
        work.append(ff.d)
    while work:
        net = work.pop()
        if net in live:
            continue
        live.add(net)
        gate = driver.get(net)
        if gate is not None:
            work.extend(gate.inputs)

    out = GateNetlist(netlist.name)
    out.n_nets = netlist.n_nets
    out.inputs = {k: list(v) for k, v in netlist.inputs.items()}
    out.outputs = {k: list(v) for k, v in netlist.outputs.items()}
    out._const0 = netlist._const0
    out._const1 = netlist._const1
    out.dffs = list(netlist.dffs)
    removed = 0
    for gate in netlist.gates:
        if gate.output in live:
            out.gates.append(gate)
        else:
            removed += 1
    if stats is not None and removed:
        stats.rules["dce"] = stats.rules.get("dce", 0) + removed
    return out


#: All rewriting rule groups; pass a subset to ablate.
ALL_PASSES = frozenset({"fold", "strash", "dce"})


def optimize(
    netlist: GateNetlist,
    passes: set[str] | frozenset[str] = ALL_PASSES,
    max_iterations: int = 10,
    tracer=None,
) -> tuple[GateNetlist, OptStats]:
    """Optimize to a fixed point (bounded by ``max_iterations``).

    ``passes`` selects rule groups (``fold``, ``strash``, ``dce``) so the
    ablation benchmarks can switch individual groups off.  Each iteration
    is one ``synth.opt_iter`` span on ``tracer`` (no-op by default).
    """
    if tracer is None:
        tracer = get_tracer()
    stats = OptStats(gates_before=len(netlist.gates))
    current = netlist
    for _ in range(max_iterations):
        stats.iterations += 1
        before = len(current.gates)
        with tracer.span("synth.opt_iter") as sp:
            current = _Rewriter(current, stats, set(passes)).run()
            if "dce" in passes:
                current = dead_code_elim(current, stats)
            sp.set(iteration=stats.iterations, gates=len(current.gates))
        if len(current.gates) == before:
            break
    stats.gates_after = len(current.gates)
    return current, stats
