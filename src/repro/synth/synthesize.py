"""Top-level synthesis: RTL module → optimized, mapped netlist.

The classic frontend sequence (Section III-B of the paper): elaborate,
bit-blast, optimize to a fixed point, technology-map, optionally size, and
optionally prove equivalence against the RTL reference by simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hdl.ir import Module
from ..hdl.verilog import count_rtl_lines
from ..obs.trace import Tracer, get_tracer
from ..pdk.cells import Library
from .lower import lower
from .mapped import MappedNetlist
from .mapper import MapStats, tech_map
from .netlist import GateNetlist
from .opt import ALL_PASSES, OptStats, optimize
from .sizing import SizingStats, size_for_load
from .verify import EquivalenceResult, check_equivalence


@dataclass
class SynthesisResult:
    """Everything synthesis produces, plus the numbers analytics needs."""

    module: Module
    netlist: GateNetlist
    mapped: MappedNetlist
    opt_stats: OptStats
    map_stats: MapStats
    sizing_stats: SizingStats | None
    equivalence: EquivalenceResult | None
    rtl_lines: int

    @property
    def gate_count(self) -> int:
        """Mapped combinational cell count (excludes DFFs and ties)."""
        return sum(
            1
            for inst in self.mapped.cells
            if not inst.cell.is_sequential
            and not inst.cell.kind.startswith("TIE")
        )

    @property
    def gates_per_rtl_line(self) -> float:
        """The paper's frontend-productivity metric (experiment E2)."""
        return self.gate_count / max(1, self.rtl_lines)

    def report(self) -> dict[str, object]:
        return {
            "module": self.module.name,
            "rtl_lines": self.rtl_lines,
            "gates_raw": self.opt_stats.gates_before,
            "gates_optimized": self.opt_stats.gates_after,
            "cells": len(self.mapped.cells),
            "area_um2": round(self.mapped.area_um2(), 3),
            "gates_per_rtl_line": round(self.gates_per_rtl_line, 2),
            "equivalent": None
            if self.equivalence is None
            else self.equivalence.passed,
        }


def synthesize(
    module: Module,
    library: Library,
    objective: str = "area",
    opt_passes: frozenset[str] | set[str] = ALL_PASSES,
    sizing: bool = False,
    max_load_per_drive_ff: float = 8.0,
    verify: bool = False,
    verify_cycles: int = 64,
    verify_seed: int = 2025,
    tracer: Tracer | None = None,
) -> SynthesisResult:
    """Synthesize ``module`` onto ``library``.

    ``objective`` ("area" or "delay") selects the mapper pattern set;
    ``sizing`` enables post-mapping drive-strength selection; ``verify``
    runs a simulation equivalence check of the mapped netlist against the
    RTL reference, driving ``verify_cycles`` cycles of stimulus from
    ``verify_seed``.  ``tracer`` (default: the process tracer) receives
    one span per frontend flow step plus sub-spans for the inner phases.
    """
    if tracer is None:
        tracer = get_tracer()
    rtl_lines = count_rtl_lines(module)
    with tracer.span("step.synthesis", module=module.name) as synth_span:
        with tracer.span("synth.lower") as sp:
            raw = lower(module)
            sp.set(gates=len(raw.gates))
        with tracer.span("synth.optimize") as sp:
            optimized, opt_stats = optimize(
                raw, passes=opt_passes, tracer=tracer
            )
            sp.set(iterations=opt_stats.iterations,
                   gates_after=opt_stats.gates_after)
        synth_span.set(gates_raw=opt_stats.gates_before,
                       gates_optimized=opt_stats.gates_after)
    with tracer.span("step.technology_mapping") as map_span:
        with tracer.span("synth.map", objective=objective):
            mapped, map_stats = tech_map(
                optimized, library, objective=objective
            )
        if sizing:
            with tracer.span("synth.sizing") as sp:
                sizing_stats = size_for_load(mapped, max_load_per_drive_ff)
                sp.set(upsized=sizing_stats.upsized)
        else:
            sizing_stats = None
        map_span.set(cells=len(mapped.cells))
    with tracer.span("step.equivalence_check", checked=verify) as sp:
        equivalence = (
            check_equivalence(
                module, mapped, cycles=verify_cycles, seed=verify_seed,
                tracer=tracer,
            )
            if verify
            else None
        )
        if equivalence is not None:
            sp.set(passed=equivalence.passed, cycles=verify_cycles)
    return SynthesisResult(
        module=module,
        netlist=optimized,
        mapped=mapped,
        opt_stats=opt_stats,
        map_stats=map_stats,
        sizing_stats=sizing_stats,
        equivalence=equivalence,
        rtl_lines=rtl_lines,
    )
