"""Simulation-based equivalence checking.

Runs the RTL simulator and a gate-level simulator (pre- or post-mapping)
in lockstep on random stimulus and compares every output every cycle.
This is the verification backbone of the flow: synthesis, optimization and
mapping are each checked against the original RTL semantics.

Each divergence is recorded as a structured :class:`Mismatch` — the
failing cycle, the exact input vector applied that cycle and the RTL
register state it was applied in — so CI can archive failures
(:meth:`EquivalenceResult.to_json`) and so formal counterexamples from
:mod:`repro.formal.lec` replay through the same record type.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field

from ..hdl.ir import Module
from ..sim.engine import Simulator
from .mapped import MappedNetlist, MappedSimulator
from .netlist import GateNetlist, GateSimulator


@dataclass
class Mismatch:
    """One observed divergence between RTL and an implementation.

    ``inputs`` is the input vector applied on the failing cycle and
    ``state`` the RTL register values it was applied in — together they
    reproduce the failure directly via the simulators' ``load_state`` /
    ``set`` without replaying the whole random run.  ``gate_state``
    holds the implementation's register values on that cycle when they
    had already diverged from the RTL's (a buggy next-state function
    shows up one or more cycles before the wrong value reaches an
    output); empty means "same as ``state``".
    """

    cycle: int
    output: str
    expect: int
    got: int
    inputs: dict[str, int] = field(default_factory=dict)
    state: dict[str, int] = field(default_factory=dict)
    gate_state: dict[str, int] = field(default_factory=dict)

    def __str__(self) -> str:
        return (
            f"cycle {self.cycle}: output {self.output}: "
            f"rtl={self.expect} gate={self.got} inputs={self.inputs}"
        )

    __repr__ = __str__

    def to_dict(self) -> dict[str, object]:
        return {
            "cycle": self.cycle,
            "output": self.output,
            "expect": self.expect,
            "got": self.got,
            "inputs": dict(self.inputs),
            "state": dict(self.state),
            "gate_state": dict(self.gate_state),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Mismatch":
        return cls(
            cycle=int(data["cycle"]),
            output=data["output"],
            expect=int(data["expect"]),
            got=int(data["got"]),
            inputs={k: int(v) for k, v in data.get("inputs", {}).items()},
            state={k: int(v) for k, v in data.get("state", {}).items()},
            gate_state={
                k: int(v) for k, v in data.get("gate_state", {}).items()
            },
        )


@dataclass
class EquivalenceResult:
    """Outcome of a lockstep equivalence run."""

    passed: bool
    cycles: int
    mismatches: list[Mismatch] = field(default_factory=list)
    seed: int | None = None

    def summary(self) -> str:
        status = "EQUIVALENT" if self.passed else "MISMATCH"
        return f"{status} after {self.cycles} cycles"

    def to_json(self, indent: int | None = 2) -> str:
        """The CI-archivable failure record."""
        return json.dumps(
            {
                "passed": self.passed,
                "cycles": self.cycles,
                "seed": self.seed,
                "mismatches": [m.to_dict() for m in self.mismatches],
            },
            indent=indent,
        )

    @classmethod
    def from_json(cls, text: str) -> "EquivalenceResult":
        data = json.loads(text)
        return cls(
            passed=bool(data["passed"]),
            cycles=int(data["cycles"]),
            mismatches=[
                Mismatch.from_dict(m) for m in data.get("mismatches", ())
            ],
            seed=data.get("seed"),
        )


def _gate_sim(impl):
    if isinstance(impl, GateNetlist):
        return GateSimulator(impl)
    if isinstance(impl, MappedNetlist):
        return MappedSimulator(impl)
    raise TypeError(f"cannot simulate implementation of type {type(impl)!r}")


def check_equivalence(
    module: Module,
    implementation: GateNetlist | MappedNetlist,
    cycles: int = 64,
    seed: int = 2025,
) -> EquivalenceResult:
    """Compare ``module`` (RTL reference) against an implementation.

    Random inputs are applied each cycle; all outputs are compared both
    combinationally (after input settle) and across clock edges.  The
    stimulus stream is a pure function of ``seed`` — the flow threads
    its own ``FlowOptions.seed`` through here so runs are reproducible.
    """
    rtl = Simulator(module)
    gate = _gate_sim(implementation)
    rng = random.Random(seed)

    input_sigs = list(rtl.module.inputs)
    register_names = [reg.signal.name for reg in rtl.module.registers]
    output_names = [sig.name for sig in rtl.module.outputs]
    mismatches: list[Mismatch] = []

    def impl_state() -> dict[str, int]:
        """The implementation's register words, where flops are named.

        Hand-built netlists may leave flop names empty; they simply get
        no divergence snapshot (replay then reuses the RTL state).
        """
        words: dict[str, int] = {}
        for name in register_names:
            try:
                words[name] = gate.get_register(name)
            except KeyError:
                pass
        return words

    for cycle in range(cycles):
        state = {name: rtl.get(name) for name in register_names}
        gate_state = impl_state()
        vector: dict[str, int] = {}
        for sig in input_sigs:
            value = rng.randrange(1 << sig.width)
            vector[sig.name] = value
            rtl.set(sig.name, value)
            gate.set(sig.name, value)
        for name in output_names:
            want, got = rtl.get(name), gate.get(name)
            if want != got:
                mismatches.append(Mismatch(
                    cycle, name, want, got, dict(vector), state,
                    {} if gate_state == state else gate_state,
                ))
                if len(mismatches) >= 10:
                    return EquivalenceResult(
                        False, cycle + 1, mismatches, seed
                    )
        rtl.step()
        gate.step()
    return EquivalenceResult(not mismatches, cycles, mismatches, seed)


def replay_mismatch(
    module: Module,
    implementation: GateNetlist | MappedNetlist,
    mismatch: Mismatch,
) -> Mismatch | None:
    """Re-apply one recorded (or formally derived) failure directly.

    Loads the recorded register state into both simulators, applies the
    input vector, and compares the failing output once — no random
    replay needed.  Returns a fresh :class:`Mismatch` if the divergence
    reproduces, ``None`` if it does not.
    """
    rtl = Simulator(module)
    gate = _gate_sim(implementation)
    if mismatch.state:
        rtl.load_state(mismatch.state)
        gate.load_state(mismatch.gate_state or mismatch.state)
    for name, value in mismatch.inputs.items():
        rtl.set(name, value)
        gate.set(name, value)
    want, got = rtl.get(mismatch.output), gate.get(mismatch.output)
    if want == got:
        return None
    return Mismatch(
        0, mismatch.output, want, got, dict(mismatch.inputs),
        dict(mismatch.state),
    )
