"""Simulation-based equivalence checking.

Runs the RTL simulator and a gate-level simulator (pre- or post-mapping)
in lockstep on random stimulus and compares every output every cycle.
This is the verification backbone of the flow: synthesis, optimization and
mapping are each checked against the original RTL semantics.

Each divergence is recorded as a structured :class:`Mismatch` — the
failing cycle, the exact input vector applied that cycle and the RTL
register state it was applied in — so CI can archive failures
(:meth:`EquivalenceResult.to_json`) and so formal counterexamples from
:mod:`repro.formal.lec` replay through the same record type.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field

from ..hdl.ir import Module
from ..obs.metrics import MetricsRegistry, get_metrics
from ..obs.trace import Tracer, get_tracer
from ..sim.bitsim import (
    LANES,
    PackedGateSimulator,
    PackedMappedSimulator,
    PackedSimError,
    extract_lane,
    pack_word,
)
from ..sim.engine import Simulator
from .mapped import MappedNetlist, MappedSimulator
from .netlist import GateNetlist, GateSimulator

#: Lockstep equivalence stops collecting divergences at this many
#: mismatches: past that point the netlist is plainly broken and more
#: records add noise, not signal.  The cap is serialized into
#: :meth:`EquivalenceResult.to_json` so archived failures are
#: self-describing.
MISMATCH_CAP = 10

#: Histogram buckets for packed-simulation throughput (vectors/second).
_RATE_BUCKETS = (1e2, 1e3, 1e4, 1e5, 3e5, 1e6, 3e6, 1e7)


@dataclass
class Mismatch:
    """One observed divergence between RTL and an implementation.

    ``inputs`` is the input vector applied on the failing cycle and
    ``state`` the RTL register values it was applied in — together they
    reproduce the failure directly via the simulators' ``load_state`` /
    ``set`` without replaying the whole random run.  ``gate_state``
    holds the implementation's register values on that cycle when they
    had already diverged from the RTL's (a buggy next-state function
    shows up one or more cycles before the wrong value reaches an
    output); empty means "same as ``state``".
    """

    cycle: int
    output: str
    expect: int
    got: int
    inputs: dict[str, int] = field(default_factory=dict)
    state: dict[str, int] = field(default_factory=dict)
    gate_state: dict[str, int] = field(default_factory=dict)

    def __str__(self) -> str:
        return (
            f"cycle {self.cycle}: output {self.output}: "
            f"rtl={self.expect} gate={self.got} inputs={self.inputs}"
        )

    __repr__ = __str__

    def to_dict(self) -> dict[str, object]:
        return {
            "cycle": self.cycle,
            "output": self.output,
            "expect": self.expect,
            "got": self.got,
            "inputs": dict(self.inputs),
            "state": dict(self.state),
            "gate_state": dict(self.gate_state),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Mismatch":
        return cls(
            cycle=int(data["cycle"]),
            output=data["output"],
            expect=int(data["expect"]),
            got=int(data["got"]),
            inputs={k: int(v) for k, v in data.get("inputs", {}).items()},
            state={k: int(v) for k, v in data.get("state", {}).items()},
            gate_state={
                k: int(v) for k, v in data.get("gate_state", {}).items()
            },
        )


@dataclass
class EquivalenceResult:
    """Outcome of a lockstep equivalence run.

    ``cycles`` is the number of cycles actually simulated: a run that
    early-exits at the :data:`MISMATCH_CAP` reports the cycle count at
    the point it stopped, not the requested budget.  ``mismatch_cap``
    records the cap in force so an archived failure with exactly that
    many mismatches is recognizable as truncated.
    """

    passed: bool
    cycles: int
    mismatches: list[Mismatch] = field(default_factory=list)
    seed: int | None = None
    mismatch_cap: int = MISMATCH_CAP

    def summary(self) -> str:
        status = "EQUIVALENT" if self.passed else "MISMATCH"
        return f"{status} after {self.cycles} cycles"

    def to_json(self, indent: int | None = 2) -> str:
        """The CI-archivable failure record."""
        return json.dumps(
            {
                "passed": self.passed,
                "cycles": self.cycles,
                "seed": self.seed,
                "mismatch_cap": self.mismatch_cap,
                "mismatches": [m.to_dict() for m in self.mismatches],
            },
            indent=indent,
        )

    @classmethod
    def from_json(cls, text: str) -> "EquivalenceResult":
        data = json.loads(text)
        return cls(
            passed=bool(data["passed"]),
            cycles=int(data["cycles"]),
            mismatches=[
                Mismatch.from_dict(m) for m in data.get("mismatches", ())
            ],
            seed=data.get("seed"),
            mismatch_cap=int(data.get("mismatch_cap", MISMATCH_CAP)),
        )


def _gate_sim(impl):
    if isinstance(impl, GateNetlist):
        return GateSimulator(impl)
    if isinstance(impl, MappedNetlist):
        return MappedSimulator(impl)
    raise TypeError(f"cannot simulate implementation of type {type(impl)!r}")


def check_equivalence(
    module: Module,
    implementation: GateNetlist | MappedNetlist,
    cycles: int = 64,
    seed: int = 2025,
    engine: str = "auto",
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> EquivalenceResult:
    """Compare ``module`` (RTL reference) against an implementation.

    Random inputs are applied each cycle; all outputs are compared both
    combinationally (after input settle) and across clock edges.  The
    stimulus stream is a pure function of ``seed`` — the flow threads
    its own ``FlowOptions.seed`` through here so runs are reproducible.

    Mismatch collection stops at :data:`MISMATCH_CAP` records; the
    result then reports the cycle count actually simulated (the failing
    cycle + 1), not the requested budget.

    ``engine`` selects the simulation strategy:

    * ``"scalar"`` — the classic one-vector-per-cycle lockstep loop;
    * ``"packed"`` — the word-parallel fast path
      (:mod:`repro.sim.bitsim`): the RTL simulator records the random
      trajectory once, then the implementation verifies 64 cycles per
      packed pass.  Any packed divergence (or a netlist the packed
      engine cannot map onto the RTL registers) re-derives the result
      through the scalar loop, so the returned
      :class:`EquivalenceResult` — down to its JSON serialization — is
      identical to the scalar engine's for the same seed;
    * ``"auto"`` (default) — packed, with the scalar fallback.
    """
    if engine not in ("auto", "scalar", "packed"):
        raise ValueError(
            f"engine must be 'auto', 'scalar' or 'packed', got {engine!r}"
        )
    if tracer is None:
        tracer = get_tracer()
    if metrics is None:
        metrics = get_metrics()
    if engine != "scalar":
        result = _check_equivalence_packed(
            module, implementation, cycles, seed, tracer, metrics
        )
        if result is not None:
            return result
        metrics.counter("sim.packed.fallbacks").inc()
    return _check_equivalence_scalar(module, implementation, cycles, seed)


def _check_equivalence_scalar(
    module: Module,
    implementation: GateNetlist | MappedNetlist,
    cycles: int,
    seed: int,
) -> EquivalenceResult:
    """The reference lockstep loop; defines the result contract."""
    rtl = Simulator(module)
    gate = _gate_sim(implementation)
    rng = random.Random(seed)

    input_sigs = list(rtl.module.inputs)
    register_names = [reg.signal.name for reg in rtl.module.registers]
    output_names = [sig.name for sig in rtl.module.outputs]
    mismatches: list[Mismatch] = []

    def impl_state() -> dict[str, int]:
        """The implementation's register words, where flops are named.

        Hand-built netlists may leave flop names empty; they simply get
        no divergence snapshot (replay then reuses the RTL state).
        """
        words: dict[str, int] = {}
        for name in register_names:
            try:
                words[name] = gate.get_register(name)
            except KeyError:
                pass
        return words

    for cycle in range(cycles):
        state = {name: rtl.get(name) for name in register_names}
        gate_state = impl_state()
        vector = {
            sig.name: rng.randrange(1 << sig.width) for sig in input_sigs
        }
        rtl.set_many(vector)
        gate.set_many(vector)
        for name in output_names:
            want, got = rtl.get(name), gate.get(name)
            if want != got:
                mismatches.append(Mismatch(
                    cycle, name, want, got, dict(vector), state,
                    {} if gate_state == state else gate_state,
                ))
                if len(mismatches) >= MISMATCH_CAP:
                    return EquivalenceResult(
                        False, cycle + 1, mismatches, seed
                    )
        rtl.step()
        gate.step()
    return EquivalenceResult(not mismatches, cycles, mismatches, seed)


def _packed_impl_sim(impl):
    if isinstance(impl, GateNetlist):
        return PackedGateSimulator(impl)
    if isinstance(impl, MappedNetlist):
        return PackedMappedSimulator(impl)
    raise TypeError(f"cannot simulate implementation of type {type(impl)!r}")


def _check_equivalence_packed(
    module: Module,
    implementation: GateNetlist | MappedNetlist,
    cycles: int,
    seed: int,
    tracer: Tracer,
    metrics: MetricsRegistry,
) -> EquivalenceResult | None:
    """The word-parallel fast path; ``None`` means "use the scalar loop".

    Lockstep equivalence is inherently sequential (each cycle's state
    depends on the last), so the packed pass *forces the trajectory*:
    the cheap RTL simulator replays the seeded stimulus once, recording
    per-cycle register states, input vectors and expected outputs; the
    implementation then verifies 64 cycles per packed evaluation — each
    lane loaded with one cycle's RTL state and inputs — comparing both
    the settled outputs and the next-state register values against the
    recorded trajectory.  With the implementation's reset state checked
    up front, agreement on every transition of the trajectory implies
    (by induction) that the scalar lockstep run passes; any divergence
    returns ``None`` and the caller re-derives the exact mismatch
    records through the scalar loop.
    """
    rtl = Simulator(module)
    try:
        impl = _packed_impl_sim(implementation)
    except (PackedSimError, ValueError, KeyError):
        return None

    register_names = [reg.signal.name for reg in rtl.module.registers]
    reg_widths = {
        reg.signal.name: reg.signal.width for reg in rtl.module.registers
    }
    # The trajectory argument needs the implementation's *entire* state
    # to be forced and checked through the RTL register words: every
    # flop must belong to a named RTL register word covering exactly
    # bits 0..width-1, every RTL input/output must exist.  Anything
    # else (hand-built or renamed netlists) takes the scalar loop.
    words = impl.register_words()
    if set(words) != set(register_names):
        return None
    for name in register_names:
        if words[name] != list(range(reg_widths[name])):
            return None
    for sig in rtl.module.inputs:
        nets = implementation.inputs.get(sig.name)
        if nets is None or len(nets) != sig.width:
            return None
    out_widths = {}
    for sig in rtl.module.outputs:
        nets = implementation.outputs.get(sig.name)
        if nets is None:
            return None
        out_widths[sig.name] = max(sig.width, len(nets))
    for name in register_names:
        if extract_lane(impl.get_register(name), 0) != rtl.get(name):
            return None  # implementation wakes up in a different state

    started = time.perf_counter()
    with tracer.span(
        "sim.packed.equivalence", design=module.name, cycles=cycles
    ) as span:
        # Pass 1: scalar RTL replay records the trajectory.  The rng
        # stream is drawn exactly as the scalar loop draws it — per
        # cycle, per input signal in declaration order.
        rng = random.Random(seed)
        input_sigs = list(rtl.module.inputs)
        output_names = [sig.name for sig in rtl.module.outputs]
        vectors = [
            {
                sig.name: rng.randrange(1 << sig.width)
                for sig in input_sigs
            }
            for _ in range(cycles)
        ]
        states, expected = rtl.run_trajectory(vectors, output_names)

        # Pass 2: the implementation checks 64 trajectory cycles at once.
        clean = True
        for base in range(0, cycles, LANES):
            chunk = range(base, min(base + LANES, cycles))
            active = (1 << len(chunk)) - 1
            impl.load_state(
                {
                    name: pack_word(
                        [states[c][name] for c in chunk], reg_widths[name]
                    )
                    for name in register_names
                },
                settle=False,
            )
            impl.set_many({
                sig.name: pack_word(
                    [vectors[c][sig.name] for c in chunk], sig.width
                )
                for sig in input_sigs
            })
            for index, name in enumerate(output_names):
                got = impl.get(name)
                want = pack_word(
                    [expected[c][index] for c in chunk], out_widths[name]
                )
                got += [0] * (out_widths[name] - len(got))
                if any(
                    (g ^ w) & active for g, w in zip(got, want)
                ):
                    clean = False
                    break
            if not clean:
                break
            impl.step()
            for name in register_names:
                got = impl.get_register(name)
                want = pack_word(
                    [states[c + 1][name] for c in chunk], reg_widths[name]
                )
                if any(
                    (g ^ w) & active for g, w in zip(got, want)
                ):
                    clean = False
                    break
            if not clean:
                break
        if tracer.enabled:
            span.set(clean=clean, lanes=impl.lanes)

    elapsed = time.perf_counter() - started
    metrics.counter("sim.packed.vectors").inc(cycles)
    if elapsed > 0:
        metrics.histogram(
            "sim.packed.vectors_per_sec", buckets=_RATE_BUCKETS
        ).observe(cycles / elapsed)
    if not clean:
        # Some lane diverged: the scalar loop re-derives the exact
        # Mismatch records (cycle, inputs, state, the implementation's
        # own evolved divergence snapshots) so the result is
        # byte-identical to a scalar-engine run.
        return None
    return EquivalenceResult(True, cycles, [], seed)


def replay_mismatch(
    module: Module,
    implementation: GateNetlist | MappedNetlist,
    mismatch: Mismatch,
) -> Mismatch | None:
    """Re-apply one recorded (or formally derived) failure directly.

    Loads the recorded register state into both simulators, applies the
    input vector, and compares the failing output once — no random
    replay needed.  Returns a fresh :class:`Mismatch` if the divergence
    reproduces, ``None`` if it does not.
    """
    rtl = Simulator(module)
    gate = _gate_sim(implementation)
    if mismatch.state:
        rtl.load_state(mismatch.state)
        gate.load_state(mismatch.gate_state or mismatch.state)
    for name, value in mismatch.inputs.items():
        rtl.set(name, value)
        gate.set(name, value)
    want, got = rtl.get(mismatch.output), gate.get(mismatch.output)
    if want == got:
        return None
    return Mismatch(
        0, mismatch.output, want, got, dict(mismatch.inputs),
        dict(mismatch.state),
    )
