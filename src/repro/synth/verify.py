"""Simulation-based equivalence checking.

Runs the RTL simulator and a gate-level simulator (pre- or post-mapping)
in lockstep on random stimulus and compares every output every cycle.
This is the verification backbone of the flow: synthesis, optimization and
mapping are each checked against the original RTL semantics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..hdl.ir import Module
from ..sim.engine import Simulator
from .mapped import MappedNetlist, MappedSimulator
from .netlist import GateNetlist, GateSimulator


@dataclass
class EquivalenceResult:
    """Outcome of a lockstep equivalence run."""

    passed: bool
    cycles: int
    mismatches: list[str] = field(default_factory=list)

    def summary(self) -> str:
        status = "EQUIVALENT" if self.passed else "MISMATCH"
        return f"{status} after {self.cycles} cycles"


def _gate_sim(impl):
    if isinstance(impl, GateNetlist):
        return GateSimulator(impl)
    if isinstance(impl, MappedNetlist):
        return MappedSimulator(impl)
    raise TypeError(f"cannot simulate implementation of type {type(impl)!r}")


def check_equivalence(
    module: Module,
    implementation: GateNetlist | MappedNetlist,
    cycles: int = 64,
    seed: int = 2025,
) -> EquivalenceResult:
    """Compare ``module`` (RTL reference) against an implementation.

    Random inputs are applied each cycle; all outputs are compared both
    combinationally (after input settle) and across clock edges.
    """
    rtl = Simulator(module)
    gate = _gate_sim(implementation)
    rng = random.Random(seed)

    input_sigs = list(rtl.module.inputs)
    output_names = [sig.name for sig in rtl.module.outputs]
    mismatches: list[str] = []

    for cycle in range(cycles):
        for sig in input_sigs:
            value = rng.randrange(1 << sig.width)
            rtl.set(sig.name, value)
            gate.set(sig.name, value)
        for name in output_names:
            want, got = rtl.get(name), gate.get(name)
            if want != got:
                mismatches.append(
                    f"cycle {cycle}: output {name}: rtl={want} gate={got}"
                )
                if len(mismatches) >= 10:
                    return EquivalenceResult(False, cycle + 1, mismatches)
        rtl.step()
        gate.step()
    return EquivalenceResult(not mismatches, cycles, mismatches)
