"""Design-for-test: scan-chain insertion.

Section III-C notes that access to "foundries and test infrastructure"
is part of the barrier; scan insertion is the flow step that makes a
fabricated chip testable at all.  The pass stitches every flip-flop into
a shift register behind a scan multiplexer:

* new ports: ``scan_en``, ``scan_in`` (1 bit) and ``scan_out``;
* every DFF's D input goes through a MUX2 cell selecting functional data
  (``scan_en = 0``) or the previous chain element (``scan_en = 1``);
* functional behaviour with ``scan_en = 0`` is untouched (equivalence
  checked in the tests).

The resulting observability is summarized as a stuck-at test-coverage
estimate: with full scan every flip-flop is controllable and observable,
so coverage approaches the combinational fault coverage.
"""

from __future__ import annotations

from dataclasses import dataclass

from .mapped import MappedNetlist


@dataclass
class ScanReport:
    """What scan insertion did to the netlist."""

    chain_length: int
    mux_cells_added: int
    area_before_um2: float
    area_after_um2: float

    @property
    def area_overhead(self) -> float:
        if self.area_before_um2 == 0:
            return 0.0
        return self.area_after_um2 / self.area_before_um2 - 1.0


class DftError(Exception):
    """Raised when scan insertion cannot proceed."""


def insert_scan_chain(mapped: MappedNetlist) -> ScanReport:
    """Stitch all sequential cells into one scan chain, in place.

    Chain order follows cell order (placement-aware ordering is a later
    optimization in real flows).  Raises if the design has no flip-flops
    or is already scanned.
    """
    flops = mapped.seq_cells
    if not flops:
        raise DftError("design has no sequential cells to scan")
    if "scan_en" in mapped.inputs:
        raise DftError("design already has a scan chain")

    area_before = mapped.area_um2()
    scan_en = mapped.new_net()
    scan_in = mapped.new_net()
    mapped.set_port("input", "scan_en", [scan_en])
    mapped.set_port("input", "scan_in", [scan_in])

    mux_cell = mapped.library.by_kind("MUX2")
    previous = scan_in
    added = 0
    for flop in flops:
        functional_d = flop.pins["d"]
        mux_out = mapped.new_net()
        mapped.add_cell(
            mux_cell,
            {"a": functional_d, "b": previous, "s": scan_en, "y": mux_out},
        )
        added += 1
        mapped.rewire(flop, "d", mux_out)
        previous = flop.pins[flop.cell.output]

    mapped.set_port("output", "scan_out", [previous])
    return ScanReport(
        chain_length=len(flops),
        mux_cells_added=added,
        area_before_um2=round(area_before, 3),
        area_after_um2=round(mapped.area_um2(), 3),
    )


def coverage_estimate(mapped: MappedNetlist, scanned: bool) -> float:
    """Stuck-at coverage estimate.

    Full scan makes every net controllable/observable through the chain,
    leaving only collapsed-fault residue (~1%).  Without scan, faults in
    logic buried behind sequential depth need multi-cycle justification;
    we approximate testability decay as 0.85^depth per register stage.
    """
    if scanned:
        return 0.99
    depth = _sequential_depth(mapped)
    return round(0.99 * (0.85 ** depth), 4)


def _sequential_depth(mapped: MappedNetlist) -> int:
    """Longest register-to-register stage count from primary inputs."""
    driver = mapped.net_driver()
    memo: dict[int, int] = {}

    def net_depth(net: int, seen: frozenset) -> int:
        if net in memo:
            return memo[net]
        inst = driver.get(net)
        if inst is None:
            return 0
        if inst.name in seen:
            return 1  # feedback loop: at least one stage
        if inst.cell.is_sequential:
            result = 1 + net_depth(inst.pins["d"], seen | {inst.name})
        else:
            result = max(
                (net_depth(n, seen) for n in inst.input_nets()), default=0
            )
        memo[net] = result
        return result

    depths = [
        net_depth(inst.pins[inst.cell.output], frozenset())
        for inst in mapped.seq_cells
    ]
    for nets in mapped.outputs.values():
        depths.extend(net_depth(n, frozenset()) for n in nets)
    return max(depths, default=0)
