"""Design-for-test: scan-chain insertion and stuck-at fault simulation.

Section III-C notes that access to "foundries and test infrastructure"
is part of the barrier; scan insertion is the flow step that makes a
fabricated chip testable at all.  The pass stitches every flip-flop into
a shift register behind a scan multiplexer:

* new ports: ``scan_en``, ``scan_in`` (1 bit) and ``scan_out``;
* every DFF's D input goes through a MUX2 cell selecting functional data
  (``scan_en = 0``) or the previous chain element (``scan_en = 1``);
* functional behaviour with ``scan_en = 0`` is untouched (equivalence
  checked in the tests).

Testability is then *measured*, not guessed: :func:`simulate_faults` is
a word-parallel (PPSFP) stuck-at fault simulator built on the packed
evaluation of :mod:`repro.sim.bitsim`.  Lane 0 of every 64-lane word
carries the fault-free ("good") machine; each of the other lanes
carries the same circuit with exactly one stuck-at fault injected, so
one packed pass simulates 63 faulty machines against their reference
simultaneously.  A fault is *detected* when its lane's value differs
from lane 0 at an observation point — the primary outputs, plus (with
scan) every flip-flop output after a capture pulse, since the chain
can shift the captured state out.  :func:`coverage_estimate` reports
the measured detected / total ratio.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..obs.metrics import MetricsRegistry, get_metrics
from ..obs.trace import Tracer, get_tracer
from ..sim.bitsim import LANES, packed_cell_function
from .mapped import MappedNetlist


@dataclass
class ScanReport:
    """What scan insertion did to the netlist."""

    chain_length: int
    mux_cells_added: int
    area_before_um2: float
    area_after_um2: float

    @property
    def area_overhead(self) -> float:
        if self.area_before_um2 == 0:
            return 0.0
        return self.area_after_um2 / self.area_before_um2 - 1.0


class DftError(Exception):
    """Raised when scan insertion cannot proceed."""


def insert_scan_chain(mapped: MappedNetlist) -> ScanReport:
    """Stitch all sequential cells into one scan chain, in place.

    Chain order follows cell order (placement-aware ordering is a later
    optimization in real flows).  Raises if the design has no flip-flops
    or is already scanned.
    """
    flops = mapped.seq_cells
    if not flops:
        raise DftError("design has no sequential cells to scan")
    if "scan_en" in mapped.inputs:
        raise DftError("design already has a scan chain")

    area_before = mapped.area_um2()
    scan_en = mapped.new_net()
    scan_in = mapped.new_net()
    mapped.set_port("input", "scan_en", [scan_en])
    mapped.set_port("input", "scan_in", [scan_in])

    mux_cell = mapped.library.by_kind("MUX2")
    previous = scan_in
    added = 0
    for flop in flops:
        functional_d = flop.pins["d"]
        mux_out = mapped.new_net()
        mapped.add_cell(
            mux_cell,
            {"a": functional_d, "b": previous, "s": scan_en, "y": mux_out},
        )
        added += 1
        mapped.rewire(flop, "d", mux_out)
        previous = flop.pins[flop.cell.output]

    mapped.set_port("output", "scan_out", [previous])
    return ScanReport(
        chain_length=len(flops),
        mux_cells_added=added,
        area_before_um2=round(area_before, 3),
        area_after_um2=round(mapped.area_um2(), 3),
    )


@dataclass
class FaultSite:
    """One stuck-at fault: a cell pin tied to a constant.

    A fault on the cell's *output* pin sticks the driven net (visible to
    all fanout); a fault on an *input* pin sticks only that cell's view
    of the net — the classic distinction that makes input-pin faults of
    multi-fanout nets separately testable.
    """

    cell_index: int
    pin: str
    stuck_at: int

    def describe(self, mapped: MappedNetlist) -> str:
        inst = mapped.cells[self.cell_index]
        return f"{inst.name}.{self.pin}/SA{self.stuck_at}"


@dataclass
class FaultSimReport:
    """Outcome of a word-parallel stuck-at fault-simulation run."""

    total_faults: int
    detected_faults: int
    patterns: int
    scanned: bool
    undetected: list[FaultSite]

    @property
    def coverage(self) -> float:
        if not self.total_faults:
            return 1.0
        return self.detected_faults / self.total_faults

    def summary(self) -> str:
        mode = "scan" if self.scanned else "functional"
        return (
            f"{self.detected_faults}/{self.total_faults} stuck-at faults "
            f"detected ({self.coverage:.1%}) after {self.patterns} "
            f"{mode} patterns"
        )


def fault_sites(mapped: MappedNetlist) -> list[FaultSite]:
    """The full (uncollapsed) stuck-at fault universe: both polarities
    on every cell pin, inputs and outputs alike."""
    sites: list[FaultSite] = []
    for index, inst in enumerate(mapped.cells):
        pins = list(inst.cell.inputs)
        if inst.cell.output:
            pins.append(inst.cell.output)
        for pin in pins:
            for stuck in (0, 1):
                sites.append(FaultSite(index, pin, stuck))
    return sites


class _FaultMachine:
    """Packed mapped-netlist evaluator with per-lane pin forces.

    Like :class:`repro.sim.bitsim.PackedMappedSimulator`, every net
    holds a 64-lane word — but each program entry carries optional
    ``(or_mask, and_mask)`` force pairs per pin, so lane ``l`` can see
    pin ``p`` stuck at a constant while every other lane reads the real
    net value.  ``v' = (v | or_mask) & and_mask`` implements both
    polarities: stuck-at-1 sets the lane bit in ``or_mask``, stuck-at-0
    clears it in ``and_mask``.
    """

    def __init__(self, mapped: MappedNetlist, lanes: int = LANES):
        self.mapped = mapped
        self.lanes = lanes
        self.mask = (1 << lanes) - 1
        self._comb_index: dict[int, int] = {}
        self._seq_index: dict[int, int] = {}
        # Comb entry: [arity, fn, out, a, b, c, forces|None]; forces is
        # [a_or, a_and, b_or, b_and, c_or, c_and, out_or, out_and].
        self._program: list[list] = []
        cell_order = {id(inst): i for i, inst in enumerate(mapped.cells)}
        for inst in mapped.topo_comb():
            fn = packed_cell_function(inst.cell, self.mask)
            ins = [inst.pins[p] for p in inst.cell.inputs]
            a, b, c = (ins + [0, 0, 0])[:3]
            self._comb_index[cell_order[id(inst)]] = len(self._program)
            self._program.append(
                [len(ins), fn, inst.pins[inst.cell.output], a, b, c, None]
            )
        # Seq entry: [d, q, reset_value, forces|None]; forces is
        # [d_or, d_and, q_or, q_and].
        self._seq: list[list] = []
        for inst in mapped.seq_cells:
            self._seq_index[cell_order[id(inst)]] = len(self._seq)
            self._seq.append([
                inst.pins["d"], inst.pins[inst.cell.output],
                inst.reset_value, None,
            ])
        self._values: dict[int, int] = {n: 0 for n in mapped.nets()}
        self._forced: list[list] = []

    # -- fault injection ----------------------------------------------------

    def clear_faults(self) -> None:
        for entry in self._forced:
            entry[-1] = None
        self._forced.clear()

    def inject(self, site: FaultSite, lane: int) -> None:
        """Stick ``site``'s pin for one lane (lane 0 stays fault-free)."""
        inst = self.mapped.cells[site.cell_index]
        bit = 1 << lane
        sequential = inst.cell.is_sequential
        if sequential:
            entry = self._seq[self._seq_index[site.cell_index]]
            if entry[-1] is None:
                entry[-1] = [0, self.mask, 0, self.mask]
                self._forced.append(entry)
            slot = 0 if site.pin == "d" else 2
        else:
            entry = self._program[self._comb_index[site.cell_index]]
            if entry[-1] is None:
                entry[-1] = [0, self.mask] * 4
                self._forced.append(entry)
            pins = list(inst.cell.inputs)
            if site.pin == inst.cell.output:
                slot = 6
            else:
                slot = 2 * pins.index(site.pin)
        if site.stuck_at:
            entry[-1][slot] |= bit
        else:
            entry[-1][slot + 1] &= ~bit

    # -- evaluation ---------------------------------------------------------

    def load(self, state_bits: list[int], input_bits: dict[int, int]) -> None:
        """Broadcast scalar flop/input bits to all lanes and settle.

        ``state_bits[i]`` seeds sequential cell ``i``; ``input_bits``
        maps primary-input net id to its bit.  Output forces on flops
        apply immediately (a stuck Q is stuck in any state).
        """
        values = self._values
        mask = self.mask
        for entry, bit in zip(self._seq, state_bits):
            word = mask if bit else 0
            forces = entry[3]
            if forces is not None:
                word = (word | forces[2]) & forces[3]
            values[entry[1]] = word
        for net, bit in input_bits.items():
            values[net] = mask if bit else 0
        self._settle()

    def drive(self, input_bits: dict[int, int]) -> None:
        """Broadcast scalar primary-input bits to all lanes and settle."""
        values = self._values
        mask = self.mask
        for net, bit in input_bits.items():
            values[net] = mask if bit else 0
        self._settle()

    def _settle(self) -> None:
        values = self._values
        for arity, fn, out, a, b, c, forces in self._program:
            if forces is None:
                if arity == 2:
                    values[out] = fn(values[a], values[b])
                elif arity == 3:
                    values[out] = fn(values[a], values[b], values[c])
                elif arity == 1:
                    values[out] = fn(values[a])
                else:
                    values[out] = fn()
            else:
                if arity == 2:
                    word = fn(
                        (values[a] | forces[0]) & forces[1],
                        (values[b] | forces[2]) & forces[3],
                    )
                elif arity == 3:
                    word = fn(
                        (values[a] | forces[0]) & forces[1],
                        (values[b] | forces[2]) & forces[3],
                        (values[c] | forces[4]) & forces[5],
                    )
                elif arity == 1:
                    word = fn((values[a] | forces[0]) & forces[1])
                else:
                    word = fn()
                values[out] = (word | forces[6]) & forces[7]

    def step(self) -> None:
        """One clock edge: capture (forced) D into (forced) Q, settle."""
        values = self._values
        sampled = []
        for d, q, _, forces in self._seq:
            word = values[d]
            if forces is not None:
                word = (word | forces[0]) & forces[1]
                word = (word | forces[2]) & forces[3]
            sampled.append((q, word))
        for q, word in sampled:
            values[q] = word
        self._settle()

    def observe(self, nets: list[int]) -> int:
        """Lanes whose value differs from the good machine (lane 0) on
        any of ``nets`` — the per-pattern detection mask."""
        values = self._values
        mask = self.mask
        detected = 0
        for net in nets:
            word = values[net]
            good = -(word & 1) & mask  # lane 0's bit replicated
            detected |= word ^ good
        return detected & mask


def simulate_faults(
    mapped: MappedNetlist,
    scanned: bool,
    patterns: int | None = None,
    seed: int = 2025,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
) -> FaultSimReport:
    """Word-parallel stuck-at fault simulation over the full fault list.

    Faults are packed 63 per word (lane 0 is the fault-free machine)
    and simulated against random patterns:

    * ``scanned=True`` models scan-based test: every pattern loads a
      random register state (the chain makes any state controllable),
      drives random primary inputs, observes the primary outputs, then
      pulses the clock once (capture) and observes every flip-flop
      output (the chain shifts the captured state out).  Effectively a
      combinational test with full state observability.
    * ``scanned=False`` models functional test: one sequential run from
      reset per fault chunk, random primary inputs each cycle,
      observing only the primary outputs.  Faults buried behind
      sequential depth need their effect to propagate to an output
      before the budget runs out, which is exactly why unscanned
      coverage decays with pipeline depth.

    ``patterns`` defaults to 64 scan patterns or 24 functional cycles.
    Deterministic per ``seed``.
    """
    if tracer is None:
        tracer = get_tracer()
    if metrics is None:
        metrics = get_metrics()
    if patterns is None:
        patterns = 64 if scanned else 24
    sites = fault_sites(mapped)
    machine = _FaultMachine(mapped)
    rng = random.Random(seed)

    po_nets = [net for nets in mapped.outputs.values() for net in nets]
    q_nets = [inst.pins[inst.cell.output] for inst in mapped.seq_cells]
    input_nets = [
        net for nets in mapped.inputs.values() for net in nets
    ]
    # Scan test holds scan_en low while capturing — a shifting capture
    # observes the chain, not the logic.  Every fourth pattern shifts
    # (scan_en high) instead, so scan-path faults are exercised too.
    scan_en_nets = set(mapped.inputs.get("scan_en", ())) if scanned else set()
    n_seq = len(mapped.seq_cells)
    fault_lanes = machine.lanes - 1  # lane 0 carries the good machine

    detected: list[bool] = [False] * len(sites)
    with tracer.span(
        "sim.packed.faults", design=mapped.name, faults=len(sites),
        scanned=scanned, patterns=patterns,
    ) as span:
        for base in range(0, len(sites), fault_lanes):
            chunk = sites[base:base + fault_lanes]
            machine.clear_faults()
            for lane, site in enumerate(chunk, start=1):
                machine.inject(site, lane)
            chunk_detected = 0
            if scanned:
                for index in range(patterns):
                    shifting = index % 4 == 3
                    machine.load(
                        [rng.getrandbits(1) for _ in range(n_seq)],
                        {
                            net: (
                                int(shifting) if net in scan_en_nets
                                else rng.getrandbits(1)
                            )
                            for net in input_nets
                        },
                    )
                    chunk_detected |= machine.observe(po_nets)
                    machine.step()  # capture; chain shifts state out
                    chunk_detected |= machine.observe(q_nets)
            else:
                machine.load(
                    [entry[2] for entry in machine._seq],
                    {net: 0 for net in input_nets},
                )
                for _ in range(patterns):
                    machine.drive(
                        {net: rng.getrandbits(1) for net in input_nets}
                    )
                    chunk_detected |= machine.observe(po_nets)
                    machine.step()
            for lane, site in enumerate(chunk, start=1):
                if (chunk_detected >> lane) & 1:
                    detected[base + lane - 1] = True
            metrics.counter("sim.packed.vectors").inc(
                patterns * (len(chunk) + 1)
            )
        if tracer.enabled:
            span.set(detected=sum(detected))

    undetected = [
        site for site, hit in zip(sites, detected) if not hit
    ]
    return FaultSimReport(
        total_faults=len(sites),
        detected_faults=sum(detected),
        patterns=patterns,
        scanned=scanned,
        undetected=undetected,
    )


def coverage_estimate(
    mapped: MappedNetlist,
    scanned: bool,
    patterns: int | None = None,
    seed: int = 2025,
) -> float:
    """Measured stuck-at coverage: detected / total over the full fault
    list, via word-parallel fault simulation (:func:`simulate_faults`).

    With full scan every flip-flop is controllable and observable, so
    coverage approaches the combinational fault coverage; without scan,
    faults buried behind sequential depth must propagate to a primary
    output within the functional-pattern budget, so deeper pipelines
    measure lower.
    """
    report = simulate_faults(mapped, scanned, patterns=patterns, seed=seed)
    return round(report.coverage, 4)
