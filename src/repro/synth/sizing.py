"""Gate sizing and fanout buffering: drive-strength fixes on mapped netlists.

Two of the optimizations the "commercial" flow preset enables (experiment
E4):

* **Sizing** — any cell whose output load exceeds a target is swapped for
  the next drive strength up until the load per unit drive falls under the
  target or no stronger variant exists.  This trades area and leakage for
  delay — exactly the PPA lever the preset comparison measures.
* **Buffering** — nets with more sinks than a fanout bound get BUF cells
  inserted, splitting the sink list into chunks so no single driver sees
  the whole load.  Logic function is unchanged (BUF is the identity).

Both passes mutate the netlist in place through the
:class:`~repro.synth.mapped.MappedNetlist` mutation API, so the memoized
connectivity indexes (``net_loads``/``topo_comb``/...) are invalidated and
downstream consumers never see stale graphs.
"""

from __future__ import annotations

from dataclasses import dataclass

from .mapped import MappedNetlist


@dataclass
class SizingStats:
    upsized: int = 0
    examined: int = 0


@dataclass
class BufferStats:
    nets_buffered: int = 0
    buffers_inserted: int = 0
    sinks_moved: int = 0


def size_for_load(
    mapped: MappedNetlist, max_load_per_drive_ff: float = 8.0
) -> SizingStats:
    """Upsize cells in place; returns how many instances changed."""
    stats = SizingStats()
    loads = mapped.net_loads()
    for inst in mapped.cells:
        net = inst.output_net
        if net is None:
            continue
        stats.examined += 1
        load_ff = sum(
            sink.cell.input_cap_ff for sink, _pin in loads.get(net, ())
        )
        while load_ff > max_load_per_drive_ff * inst.cell.drive:
            stronger = mapped.library.stronger_variant(inst.cell)
            if stronger is None:
                break
            inst.cell = stronger
            stats.upsized += 1
    if stats.upsized:
        # Swapping a cell variant keeps connectivity but changes electrical
        # data; drop the indexes so derived caches are rebuilt fresh.
        mapped.invalidate()
    return stats


def buffer_heavy_nets(mapped: MappedNetlist, max_fanout: int = 8) -> BufferStats:
    """Split nets with more than ``max_fanout`` sinks behind BUF cells.

    Sinks beyond the first ``max_fanout`` are moved, in chunks of
    ``max_fanout``, onto fresh nets each driven by a BUF whose input is
    the original net.  The pass mutates in place via the netlist mutation
    API so all memoized indexes stay consistent.
    """
    stats = BufferStats()
    buf = mapped.library.by_kind("BUF")
    # Snapshot before mutating: rewiring invalidates the loads index.
    heavy = [
        (net, list(sinks))
        for net, sinks in sorted(mapped.net_loads().items())
        if len(sinks) > max_fanout
    ]
    for net, sinks in heavy:
        stats.nets_buffered += 1
        for start in range(max_fanout, len(sinks), max_fanout):
            chunk = sinks[start:start + max_fanout]
            branch = mapped.new_net()
            mapped.add_cell(buf, {"a": net, "y": branch})
            stats.buffers_inserted += 1
            for sink, pin in chunk:
                mapped.rewire(sink, pin, branch)
                stats.sinks_moved += 1
    return stats
