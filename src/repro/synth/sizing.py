"""Gate sizing: upsize drivers of heavily loaded nets.

One of the optimizations the "commercial" flow preset enables (experiment
E4): after mapping, any cell whose output load exceeds a target is swapped
for the next drive strength up until the load per unit drive falls under
the target or no stronger variant exists.  This trades area and leakage
for delay — exactly the PPA lever the preset comparison measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from .mapped import MappedNetlist


@dataclass
class SizingStats:
    upsized: int = 0
    examined: int = 0


def size_for_load(
    mapped: MappedNetlist, max_load_per_drive_ff: float = 8.0
) -> SizingStats:
    """Upsize cells in place; returns how many instances changed."""
    stats = SizingStats()
    loads = mapped.net_loads()
    for inst in mapped.cells:
        net = inst.output_net
        if net is None:
            continue
        stats.examined += 1
        load_ff = sum(
            sink.cell.input_cap_ff for sink, _pin in loads.get(net, ())
        )
        while load_ff > max_load_per_drive_ff * inst.cell.drive:
            stronger = mapped.library.stronger_variant(inst.cell)
            if stronger is None:
                break
            inst.cell = stronger
            stats.upsized += 1
    return stats
