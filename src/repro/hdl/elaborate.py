"""Hierarchy elaboration: flatten a module tree into a single module.

Synthesis, simulation and the rest of the flow operate on flat modules.
Instance signals are renamed ``<instance>.<signal>`` so reports and
waveforms stay readable.
"""

from __future__ import annotations

from .ir import (
    BinOp,
    Cat,
    Const,
    Expr,
    Module,
    Mux,
    Ref,
    Signal,
    Slice,
    UnaryOp,
)


def _clone_expr(expr: Expr, mapping: dict[Signal, Signal]) -> Expr:
    """Deep-copy ``expr`` rewriting signal references through ``mapping``."""
    if isinstance(expr, Const):
        return Const(expr.value, expr.width)
    if isinstance(expr, Ref):
        return Ref(mapping[expr.signal])
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, _clone_expr(expr.operand, mapping))
    if isinstance(expr, BinOp):
        return BinOp(
            expr.op, _clone_expr(expr.a, mapping), _clone_expr(expr.b, mapping)
        )
    if isinstance(expr, Mux):
        return Mux(
            _clone_expr(expr.sel, mapping),
            _clone_expr(expr.if_true, mapping),
            _clone_expr(expr.if_false, mapping),
        )
    if isinstance(expr, Cat):
        return Cat([_clone_expr(p, mapping) for p in expr.parts])
    if isinstance(expr, Slice):
        return Slice(_clone_expr(expr.value, mapping), expr.hi, expr.lo)
    raise TypeError(f"cannot clone expression {expr!r}")


def _inline(flat: Module, child: Module, prefix: str, port_map: dict[str, Signal]) -> None:
    """Copy ``child``'s contents into ``flat`` under ``prefix``.

    Child ports become plain wires in ``flat`` tied to the parent signals
    from ``port_map``; child instances are flattened recursively.
    """
    mapping: dict[Signal, Signal] = {}
    for sig in child.signals:
        mapping[sig] = flat.add_wire(f"{prefix}.{sig.name}", sig.width)

    for port in child.inputs:
        flat.assign(mapping[port], Ref(port_map[port.name]))

    for target, expr in child.assigns.items():
        flat.assign(mapping[target], _clone_expr(expr, mapping))

    for reg in child.registers:
        # The register signal was pre-created as a wire; re-register it.
        clone_sig = mapping[reg.signal]
        flat.registers.append(
            type(reg)(clone_sig, _clone_expr(reg.next, mapping), reg.reset_value)
        )

    for inst in child.instances:
        child_port_map = {
            name: mapping[sig] for name, sig in inst.connections.items()
        }
        _inline(flat, inst.module, f"{prefix}.{inst.name}", child_port_map)

    for port in child.outputs:
        flat.assign(port_map[port.name], Ref(mapping[port]))


def elaborate(top: Module) -> Module:
    """Return a flat, validated copy of ``top`` with all instances inlined."""
    top.validate()
    flat = Module(top.name)
    mapping: dict[Signal, Signal] = {}

    for sig in top.inputs:
        mapping[sig] = flat.add_input(sig.name, sig.width)
    for sig in top.outputs:
        mapping[sig] = flat.add_output(sig.name, sig.width)
    for sig in top.wires:
        mapping[sig] = flat.add_wire(sig.name, sig.width)

    for target, expr in top.assigns.items():
        flat.assign(mapping[target], _clone_expr(expr, mapping))
    for reg in top.registers:
        flat.registers.append(
            type(reg)(mapping[reg.signal], _clone_expr(reg.next, mapping), reg.reset_value)
        )
    for inst in top.instances:
        port_map = {name: mapping[sig] for name, sig in inst.connections.items()}
        _inline(flat, inst.module, inst.name, port_map)

    flat.validate()
    return flat
