"""A hardware-construction-language (HCL) frontend over the RTL IR.

The paper (Section III-B, Recommendation 4) argues that hardware
construction languages such as Chisel raise the abstraction level of
frontend design.  This module provides that style of API in Python:
values overload arithmetic/bitwise operators and build :mod:`repro.hdl.ir`
expression trees; a :class:`ModuleBuilder` collects ports, wires and
registers and produces a validated :class:`~repro.hdl.ir.Module`.

Example::

    b = ModuleBuilder("counter")
    en = b.input("en", 1)
    count = b.register("count", 8)
    count.next = mux(en, count + 1, count)
    b.output("q", count)
    module = b.build()

Comparisons use explicit methods (``a.eq(b)``, ``a.lt(b)``) rather than
overloading ``==`` so that :class:`Value` objects keep normal Python
identity semantics.
"""

from __future__ import annotations

from .ir import (
    BinOp,
    Cat,
    Const,
    Expr,
    HdlError,
    Module,
    Mux,
    Ref,
    Register,
    Signal,
    Slice,
    UnaryOp,
)


class Value:
    """A combinational value inside a :class:`ModuleBuilder`.

    Wraps an IR :class:`~repro.hdl.ir.Expr` and overloads operators to build
    larger expressions.  Integer operands are lifted to constants of the
    minimal width required (at least 1 bit).
    """

    __slots__ = ("builder", "expr")

    def __init__(self, builder: "ModuleBuilder", expr: Expr):
        self.builder = builder
        self.expr = expr

    @property
    def width(self) -> int:
        return self.expr.width

    # -- lifting ----------------------------------------------------------

    def _lift(self, other: "Value | int") -> "Value":
        if isinstance(other, Value):
            if other.builder is not self.builder:
                raise HdlError("cannot mix values from different builders")
            return other
        if isinstance(other, int):
            width = max(1, other.bit_length())
            return Value(self.builder, Const(other, width))
        raise TypeError(f"cannot use {other!r} as a hardware value")

    def _bin(self, op: str, other: "Value | int") -> "Value":
        rhs = self._lift(other)
        return Value(self.builder, BinOp(op, self.expr, rhs.expr))

    # -- arithmetic / bitwise ----------------------------------------------

    def __add__(self, other):
        return self._bin("add", other)

    def __radd__(self, other):
        return self._lift(other)._bin("add", self)

    def __sub__(self, other):
        return self._bin("sub", other)

    def __rsub__(self, other):
        return self._lift(other)._bin("sub", self)

    def __mul__(self, other):
        return self._bin("mul", other)

    def __rmul__(self, other):
        return self._lift(other)._bin("mul", self)

    def __and__(self, other):
        return self._bin("and", other)

    def __rand__(self, other):
        return self._lift(other)._bin("and", self)

    def __or__(self, other):
        return self._bin("or", other)

    def __ror__(self, other):
        return self._lift(other)._bin("or", self)

    def __xor__(self, other):
        return self._bin("xor", other)

    def __rxor__(self, other):
        return self._lift(other)._bin("xor", self)

    def __lshift__(self, other):
        return self._bin("shl", other)

    def __rshift__(self, other):
        return self._bin("shr", other)

    def __invert__(self):
        return Value(self.builder, UnaryOp("not", self.expr))

    def __neg__(self):
        return Value(self.builder, UnaryOp("neg", self.expr))

    # -- comparisons (explicit methods, all return a 1-bit value) ----------

    def eq(self, other):
        return self._bin("eq", other)

    def ne(self, other):
        return self._bin("ne", other)

    def lt(self, other):
        return self._bin("lt", other)

    def le(self, other):
        return self._bin("le", other)

    def gt(self, other):
        return self._bin("gt", other)

    def ge(self, other):
        return self._bin("ge", other)

    # -- reductions ---------------------------------------------------------

    def reduce_and(self):
        return Value(self.builder, UnaryOp("rand", self.expr))

    def reduce_or(self):
        return Value(self.builder, UnaryOp("ror", self.expr))

    def reduce_xor(self):
        return Value(self.builder, UnaryOp("rxor", self.expr))

    # -- bit access ----------------------------------------------------------

    def __getitem__(self, index: int | slice) -> "Value":
        """``v[i]`` extracts bit ``i``; ``v[hi:lo]`` an inclusive bit range.

        Following hardware convention the slice is written MSB first:
        ``v[7:0]`` is the low byte.  Plain Python ``v[3]`` is bit 3.
        """
        if isinstance(index, int):
            if index < 0:
                index += self.width
            return Value(self.builder, Slice(self.expr, index, index))
        if isinstance(index, slice):
            if index.step is not None:
                raise HdlError("bit slices do not support a step")
            hi, lo = index.start, index.stop
            if hi is None:
                hi = self.width - 1
            if lo is None:
                lo = 0
            if hi < lo:
                raise HdlError(f"slice [{hi}:{lo}] must be written MSB:LSB")
            return Value(self.builder, Slice(self.expr, hi, lo))
        raise TypeError(f"invalid bit index {index!r}")

    def zext(self, width: int) -> "Value":
        """Zero-extend to ``width`` bits."""
        if width < self.width:
            raise HdlError(f"zext to {width} narrower than {self.width}")
        if width == self.width:
            return self
        pad = Value(self.builder, Const(0, width - self.width))
        return cat(pad, self)

    def trunc(self, width: int) -> "Value":
        """Keep only the ``width`` least significant bits."""
        if width > self.width:
            raise HdlError(f"trunc to {width} wider than {self.width}")
        return self[width - 1 : 0]

    def __repr__(self) -> str:
        return f"Value({self.expr!r})"


class RegisterValue(Value):
    """A register's Q output.  Assign ``.next`` to set its next value."""

    __slots__ = ("_register",)

    def __init__(self, builder: "ModuleBuilder", register: Register):
        super().__init__(builder, Ref(register.signal))
        self._register = register

    @property
    def next(self) -> Value:
        return Value(self.builder, self._register.next)

    @next.setter
    def next(self, value: "Value | int") -> None:
        lifted = self._lift(value)
        if lifted.width > self._register.signal.width:
            raise HdlError(
                f"register {self._register.signal.name!r}: next value width "
                f"{lifted.width} exceeds register width "
                f"{self._register.signal.width}"
            )
        self._register.next = lifted.expr


def mux(sel: Value, if_true: "Value | int", if_false: "Value | int") -> Value:
    """Two-way selector; ``sel`` must be a 1-bit :class:`Value`."""
    t = sel._lift(if_true)
    f = sel._lift(if_false)
    return Value(sel.builder, Mux(sel.expr, t.expr, f.expr))


def cat(*parts: Value) -> Value:
    """Concatenate values, first argument becoming the most significant."""
    if not parts:
        raise HdlError("cat() needs at least one part")
    builder = parts[0].builder
    for p in parts:
        if p.builder is not builder:
            raise HdlError("cannot concatenate values from different builders")
    return Value(builder, Cat([p.expr for p in parts]))


class ModuleBuilder:
    """Constructs a :class:`~repro.hdl.ir.Module` through an HCL-style API."""

    def __init__(self, name: str):
        self.module = Module(name)

    def input(self, name: str, width: int) -> Value:
        return Value(self, Ref(self.module.add_input(name, width)))

    def output(self, name: str, value: "Value | int", width: int | None = None) -> Signal:
        """Create an output port driven by ``value``.

        Width defaults to the value's width; a wider port zero-extends.
        """
        if isinstance(value, int):
            value = self.const(value, width or max(1, value.bit_length()))
        if width is None:
            width = value.width
        sig = self.module.add_output(name, width)
        self.module.assign(sig, value.expr)
        return sig

    def wire(self, name: str, value: Value) -> Value:
        """Name an intermediate value (helps waveforms and reports)."""
        sig = self.module.add_wire(name, value.width)
        self.module.assign(sig, value.expr)
        return Value(self, Ref(sig))

    def register(self, name: str, width: int, reset: int = 0) -> RegisterValue:
        reg = self.module.add_register(name, width, reset_value=reset)
        return RegisterValue(self, reg)

    def const(self, value: int, width: int) -> Value:
        return Value(self, Const(value, width))

    def instance(
        self, name: str, module: Module, **connections: "Value | Signal"
    ) -> dict[str, Value]:
        """Instantiate ``module``.

        Input ports may be connected to any :class:`Value`; output ports are
        returned as a dict of fresh values.  All input ports must be given.
        """
        conns: dict[str, Signal] = {}
        for port_name, value in connections.items():
            port = module.port_by_name(port_name)
            if isinstance(value, Signal):
                conns[port_name] = value
                continue
            sig = self.module.add_wire(f"{name}_{port_name}", port.width)
            self.module.assign(sig, value.expr)
            conns[port_name] = sig
        outs: dict[str, Value] = {}
        for port in module.outputs:
            if port.name not in conns:
                sig = self.module.add_wire(f"{name}_{port.name}", port.width)
                conns[port.name] = sig
            outs[port.name] = Value(self, Ref(conns[port.name]))
        missing = {p.name for p in module.inputs} - set(conns)
        if missing:
            raise HdlError(
                f"instance {name!r} of {module.name!r}: "
                f"unconnected inputs {sorted(missing)}"
            )
        self.module.add_instance(name, module, conns)
        return outs

    def build(self) -> Module:
        """Validate and return the finished module."""
        self.module.validate()
        return self.module
